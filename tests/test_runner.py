"""Tests for the parallel experiment runner (spec, memo, resume)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.runner.runner as runner_mod
from repro.core import PPATunerConfig
from repro.experiments.scenarios import build_scenario_jobs, run_scenario
from repro.runner import (
    ExperimentRunner,
    RunJob,
    RunMemo,
    RunSpec,
    config_fingerprint,
    derive_rng,
    derive_seed,
    format_telemetry_table,
    make_params,
    stable_token,
)
from repro.runner.cells import execute_spec


def tiny_jobs(tiny_benchmark, methods=("Random", "MLCAD'19"), seed=0,
              repeats=1):
    """Scenario cells over the 60-point tiny benchmark."""
    return build_scenario_jobs(
        tiny_benchmark, tiny_benchmark, "tiny_scenario", "target2",
        methods=methods,
        objective_spaces={"power-delay": ("power", "delay")},
        n_source=30, seed=seed, repeats=repeats,
    )


class TestSpecHashing:
    def test_stable_token_ints_pass_through(self):
        assert stable_token(7) == 7
        assert stable_token(-1) == stable_token(-1)

    def test_stable_token_strings_stable(self):
        # Must not depend on the process hash salt.
        assert stable_token("power-delay") == stable_token("power-delay")
        assert stable_token("power") != stable_token("delay")

    def test_derive_rng_order_independent(self):
        a = derive_rng(0, "init", "power-delay").integers(0, 1000, 5)
        # Interleave unrelated draws; the keyed stream must not move.
        derive_rng(0, "source", 200).integers(0, 1000, 50)
        b = derive_rng(0, "init", "power-delay").integers(0, 1000, 5)
        np.testing.assert_array_equal(a, b)

    def test_derive_seed_distinguishes_streams(self):
        s1 = derive_seed(0, "method", "power-delay", "Random", 0)
        s2 = derive_seed(0, "method", "power-delay", "Random", 1)
        s3 = derive_seed(0, "method", "area-delay", "Random", 0)
        assert len({s1, s2, s3}) == 3

    def test_spec_hash_stable_and_sensitive(self):
        spec = RunSpec(
            kind="scenario", scenario="s", method="Random",
            objective_space="power-delay",
            objectives=("power", "delay"), seed=3,
            params=make_params(min_budget=20),
        )
        again = RunSpec(
            kind="scenario", scenario="s", method="Random",
            objective_space="power-delay",
            objectives=("power", "delay"), seed=3,
            params=make_params(min_budget=20),
        )
        assert spec.spec_hash() == again.spec_hash()
        bumped = RunSpec(
            kind="scenario", scenario="s", method="Random",
            objective_space="power-delay",
            objectives=("power", "delay"), seed=4,
            params=make_params(min_budget=20),
        )
        assert spec.spec_hash() != bumped.spec_hash()

    def test_config_fingerprint(self):
        assert config_fingerprint(None) == ""
        a = config_fingerprint(PPATunerConfig(max_iterations=10))
        b = config_fingerprint(PPATunerConfig(max_iterations=10))
        c = config_fingerprint(PPATunerConfig(max_iterations=11))
        assert a == b
        assert a != c


class TestMemo:
    def make_record(self, tiny_benchmark, seed=0):
        job = tiny_jobs(tiny_benchmark, methods=("Random",), seed=seed)[0]
        return execute_spec(job.spec, tiny_benchmark, tiny_benchmark)

    def test_roundtrip(self, tmp_path, tiny_benchmark):
        memo = RunMemo(tmp_path)
        record = self.make_record(tiny_benchmark)
        memo.save(record)
        assert len(memo) == 1
        loaded = memo.load(record.spec)
        assert loaded is not None
        assert loaded.telemetry.memoized
        assert loaded.outcome.hv_error == record.outcome.hv_error
        assert loaded.outcome.adrs == record.outcome.adrs
        assert loaded.outcome.runs == record.outcome.runs
        np.testing.assert_array_equal(
            loaded.outcome.result.evaluated_indices,
            record.outcome.result.evaluated_indices,
        )

    def test_miss_for_other_spec(self, tmp_path, tiny_benchmark):
        memo = RunMemo(tmp_path)
        memo.save(self.make_record(tiny_benchmark, seed=0))
        other = tiny_jobs(tiny_benchmark, methods=("Random",), seed=9)
        assert memo.load(other[0].spec) is None

    def test_corruption_self_heals(self, tmp_path, tiny_benchmark):
        memo = RunMemo(tmp_path)
        record = self.make_record(tiny_benchmark)
        memo.save(record)
        path = tmp_path / memo.entry_name(record.spec)
        path.write_bytes(b"torn write")
        assert memo.load(record.spec) is None
        assert not path.exists()

    def test_invalidate(self, tmp_path, tiny_benchmark):
        memo = RunMemo(tmp_path)
        record = self.make_record(tiny_benchmark)
        memo.save(record)
        memo.invalidate([record.spec])
        assert len(memo) == 0
        assert memo.load(record.spec) is None


class TestResume:
    @pytest.fixture()
    def counting(self, monkeypatch):
        """Count real cell executions through the runner."""
        calls = []
        real = runner_mod._execute_job

        def spy(job):
            calls.append(job.spec.spec_hash())
            return real(job)

        monkeypatch.setattr(runner_mod, "_execute_job", spy)
        return calls

    def test_second_run_executes_nothing(
        self, tmp_path, tiny_benchmark, counting
    ):
        jobs = tiny_jobs(tiny_benchmark)
        ExperimentRunner(workers=1, memo=RunMemo(tmp_path)).run(jobs)
        assert len(counting) == len(jobs)
        records = ExperimentRunner(
            workers=1, memo=RunMemo(tmp_path)
        ).run(jobs)
        assert len(counting) == len(jobs)  # no new executions
        assert all(r.telemetry.memoized for r in records)

    def test_interrupted_run_resumes_unfinished_cells(
        self, tmp_path, tiny_benchmark, counting
    ):
        jobs = tiny_jobs(tiny_benchmark, methods=("Random", "MLCAD'19"))
        # "Killed" first invocation: only the first cell completed.
        ExperimentRunner(workers=1, memo=RunMemo(tmp_path)).run(jobs[:1])
        assert len(counting) == 1
        records = ExperimentRunner(
            workers=1, memo=RunMemo(tmp_path)
        ).run(jobs)
        executed = set(counting)
        assert len(counting) == len(jobs)  # 1 before + remainder
        assert {j.spec.spec_hash() for j in jobs} == executed
        assert records[0].telemetry.memoized
        assert not records[1].telemetry.memoized

    def test_force_invalidates_and_reruns(
        self, tmp_path, tiny_benchmark, counting
    ):
        jobs = tiny_jobs(tiny_benchmark, methods=("Random",))
        ExperimentRunner(workers=1, memo=RunMemo(tmp_path)).run(jobs)
        records = ExperimentRunner(
            workers=1, memo=RunMemo(tmp_path), force=True
        ).run(jobs)
        assert len(counting) == 2 * len(jobs)
        assert not any(r.telemetry.memoized for r in records)

    def test_duplicate_specs_execute_once(
        self, tiny_benchmark, counting
    ):
        jobs = tiny_jobs(tiny_benchmark, methods=("Random",))
        records = ExperimentRunner(workers=1).run(jobs + jobs)
        assert len(counting) == len(jobs)
        assert len(records) == 2 * len(jobs)
        assert records[0].outcome.hv_error == records[1].outcome.hv_error


class TestSerialParallelIdentity:
    def test_bit_identical(self, tiny_benchmark):
        kwargs = dict(
            source=tiny_benchmark, target=tiny_benchmark,
            name="tiny_scenario", budget_key="target2",
            methods=("Random", "MLCAD'19", "PPATuner"),
            objective_spaces={"power-delay": ("power", "delay")},
            n_source=30, seed=0,
        )
        serial = run_scenario(workers=1, **kwargs)
        parallel = run_scenario(workers=2, **kwargs)
        assert len(serial.outcomes) == len(parallel.outcomes)
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert (a.method, a.objective_space) == (
                b.method, b.objective_space
            )
            assert a.hv_error == b.hv_error
            assert a.adrs == b.adrs
            assert a.runs == b.runs
            np.testing.assert_array_equal(
                a.result.evaluated_indices, b.result.evaluated_indices
            )
            np.testing.assert_array_equal(
                a.result.pareto_indices, b.result.pareto_indices
            )

    def test_repeats_have_distinct_seeds(self, tiny_benchmark):
        result = run_scenario(
            tiny_benchmark, tiny_benchmark, "tiny_scenario", "target2",
            methods=("Random",),
            objective_spaces={"power-delay": ("power", "delay")},
            n_source=30, seed=0, repeats=2,
        )
        assert [o.repeat for o in result.outcomes] == [0, 1]
        a, b = result.outcomes
        assert not np.array_equal(
            a.result.evaluated_indices, b.result.evaluated_indices
        )


class TestTelemetry:
    def test_table_lists_cells_and_totals(self, tiny_benchmark):
        runner = ExperimentRunner(workers=1)
        runner.run(tiny_jobs(tiny_benchmark, methods=("Random",)))
        text = format_telemetry_table(runner.history)
        assert "tiny_scenario" in text
        assert "Random" in text
        lines = text.splitlines()
        assert lines[0].startswith("cell")
        assert lines[-1].startswith("total")

    def test_progress_lines_emitted(self, tiny_benchmark):
        seen = []
        runner = ExperimentRunner(workers=1, progress=seen.append)
        jobs = tiny_jobs(tiny_benchmark, methods=("Random",))
        runner.run(jobs)
        assert len(seen) == len(jobs)
        assert seen[0].startswith("[1/")
        assert "hv=" in seen[0]


class TestRunnerMap:
    def test_map_preserves_order(self):
        runner = ExperimentRunner(workers=1)
        assert runner.map(abs, [-3, 2, -1]) == [3, 2, 1]

    def test_map_parallel_matches_serial(self):
        runner = ExperimentRunner(workers=2)
        items = list(range(8))
        assert runner.map(_square, items) == [i * i for i in items]


def _square(x):
    return x * x
