"""Tests for convergence curves and benchmark CSV interchange."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import RandomSearchTuner
from repro.bench.io import export_benchmark_csv, import_benchmark_csv
from repro.core import PoolOracle, PPATuner, PPATunerConfig
from repro.experiments.convergence import (
    ConvergenceCurve,
    convergence_curve,
    evaluation_order,
    format_convergence_table,
)


class TestConvergenceCurve:
    @pytest.fixture(scope="class")
    def curve(self, request):
        tiny = request.getfixturevalue("tiny_benchmark")
        names = ("power", "delay")
        oracle = PoolOracle(tiny.objectives(names))
        result = RandomSearchTuner(budget=30, seed=0).tune(
            tiny.X, oracle
        )
        return convergence_curve("Random", result, tiny, names), tiny

    def test_monotone_nonincreasing(self, curve):
        c, _ = curve
        assert np.all(np.diff(c.hv_error) <= 1e-12)

    def test_length_matches_runs(self, curve):
        c, _ = curve
        assert len(c.runs) == len(c.hv_error) == 30
        assert c.runs[0] == 1

    def test_errors_bounded(self, curve):
        c, _ = curve
        assert np.all(c.hv_error <= 1.0 + 1e-9)
        assert np.all(c.hv_error >= -1e-9)

    def test_runs_to_reach(self, curve):
        c, _ = curve
        hit = c.runs_to_reach(0.5)
        if hit is not None:
            assert c.hv_error[hit - 1] <= 0.5
        assert c.runs_to_reach(-1.0) is None

    def test_ppatuner_history_order(self, tiny_benchmark):
        names = ("power", "delay")
        oracle = PoolOracle(tiny_benchmark.objectives(names))
        result = PPATuner(
            PPATunerConfig(max_iterations=10, seed=0)
        ).tune(tiny_benchmark.X, oracle)
        order = evaluation_order(result)
        assert set(order) == set(result.evaluated_indices)
        assert len(order) == len(set(order))

    def test_format_table(self, curve):
        c, _ = curve
        text = format_convergence_table([c])
        assert "Random" in text
        assert "final" in text

    def test_direct_construction(self):
        c = ConvergenceCurve(
            "m", np.array([1, 2, 3]), np.array([0.5, 0.3, 0.1])
        )
        assert c.runs_to_reach(0.3) == 2


class TestBenchmarkCsv:
    def test_roundtrip(self, tiny_benchmark, tmp_path):
        path = tmp_path / "bench.csv"
        export_benchmark_csv(tiny_benchmark, path)
        back = import_benchmark_csv(
            path, tiny_benchmark.space, name="rt"
        )
        assert back.n == tiny_benchmark.n
        assert np.allclose(back.Y, tiny_benchmark.Y)
        assert back.configs == tiny_benchmark.configs
        assert np.allclose(back.X, tiny_benchmark.X)

    def test_wrong_columns_rejected(self, tiny_benchmark, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(ValueError, match="columns"):
            import_benchmark_csv(path, tiny_benchmark.space)

    def test_empty_rejected(self, tiny_benchmark, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            import_benchmark_csv(path, tiny_benchmark.space)

    def test_header_only_rejected(self, tiny_benchmark, tmp_path):
        path = tmp_path / "header.csv"
        export_benchmark_csv(
            tiny_benchmark.subsample(1, seed=0), path
        )
        lines = path.read_text().splitlines()
        path.write_text(lines[0] + "\n")
        with pytest.raises(ValueError, match="no data"):
            import_benchmark_csv(path, tiny_benchmark.space)

    def test_out_of_domain_rejected(self, tiny_benchmark, tmp_path):
        path = tmp_path / "ood.csv"
        export_benchmark_csv(tiny_benchmark.subsample(2, seed=0), path)
        lines = path.read_text().splitlines()
        cells = lines[1].split(",")
        cells[0] = "99.0"  # place_rcfactor far outside [1.0, 1.3]
        lines[1] = ",".join(cells)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="outside"):
            import_benchmark_csv(path, tiny_benchmark.space)

    def test_malformed_row_rejected(self, tiny_benchmark, tmp_path):
        path = tmp_path / "short.csv"
        export_benchmark_csv(tiny_benchmark.subsample(2, seed=0), path)
        lines = path.read_text().splitlines()
        lines[1] = lines[1].rsplit(",", 1)[0]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="column count"):
            import_benchmark_csv(path, tiny_benchmark.space)

    def test_lowercase_booleans_accepted(self, tiny_benchmark, tmp_path):
        # external tools write "true"/"false"; import must not turn them
        # into strings that then fail space.validate
        path = tmp_path / "lower.csv"
        export_benchmark_csv(tiny_benchmark.subsample(3, seed=0), path)
        text = path.read_text()
        assert "True" in text or "False" in text  # space has a bool knob
        path.write_text(
            text.replace("True", "true").replace("False", "FALSE")
        )
        back = import_benchmark_csv(path, tiny_benchmark.space)
        assert back.n == 3
        for config in back.configs:
            assert isinstance(config["clock_power_driven"], bool)

    def test_bad_row_error_names_line(self, tiny_benchmark, tmp_path):
        path = tmp_path / "badline.csv"
        export_benchmark_csv(tiny_benchmark.subsample(3, seed=0), path)
        lines = path.read_text().splitlines()
        cells = lines[3].split(",")
        cells[0] = "not-a-number"  # out-of-domain on data row 3 (line 4)
        lines[3] = ",".join(cells)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="row 4"):
            import_benchmark_csv(path, tiny_benchmark.space)
