"""Randomized cross-validation of the decision rules against a
brute-force reference implementation.

The production rules use a Pareto-front acceleration with a self-
exclusion second pass; this reference checks every pair directly, so any
divergence flags a real bug in the optimization.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import UncertaintyRegions, apply_decision_rules


def _brute_force(
    lo: np.ndarray,
    hi: np.ndarray,
    undecided: np.ndarray,
    pareto: np.ndarray,
    delta: np.ndarray,
    pareto_delta: np.ndarray,
) -> tuple[set[int], set[int]]:
    """Reference: O(n^2) direct application of Eq. (11)/(12)."""
    live = undecided | pareto
    live_ids = np.nonzero(live)[0]
    und_ids = np.nonzero(undecided)[0]

    def dominates(a, b, slack):
        relaxed = b + slack
        return np.all(a <= relaxed) and np.any(a < relaxed)

    dropped: set[int] = set()
    for x in und_ids:
        for xp in live_ids:
            if xp == x:
                continue
            if dominates(hi[xp], lo[x], delta):
                dropped.add(int(x))
                break

    survivors = [i for i in live_ids if i not in dropped]
    classified: set[int] = set()
    for x in und_ids:
        if x in dropped:
            continue
        threatened = False
        for xp in survivors:
            if xp == x:
                continue
            if dominates(lo[xp], hi[x] - pareto_delta, np.zeros_like(delta)):
                threatened = True
                break
        if not threatened:
            classified.add(int(x))
    return dropped, classified


@st.composite
def decision_instances(draw):
    n = draw(st.integers(3, 14))
    m = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 99_999))
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0, 4, size=(n, m))
    widths = rng.uniform(0, 1.5, size=(n, m))
    lo = centers - widths / 2
    hi = centers + widths / 2
    pareto = rng.uniform(size=n) < 0.2
    undecided = ~pareto
    delta = rng.uniform(0, 0.3, size=m)
    scale = draw(st.sampled_from([1.0, 3.0]))
    return lo, hi, undecided, pareto, delta, scale * delta


class TestAgainstBruteForce:
    @settings(max_examples=120, deadline=None)
    @given(decision_instances())
    def test_matches_reference(self, instance):
        lo, hi, undecided, pareto, delta, pareto_delta = instance
        regions = UncertaintyRegions(lo=lo.copy(), hi=hi.copy())
        got_dropped, got_pareto = apply_decision_rules(
            regions, undecided, pareto, delta, pareto_delta=pareto_delta
        )
        want_dropped, want_pareto = _brute_force(
            lo, hi, undecided, pareto, delta, pareto_delta
        )
        assert set(got_dropped.tolist()) == want_dropped
        assert set(got_pareto.tolist()) == want_pareto

    @settings(max_examples=60, deadline=None)
    @given(decision_instances())
    def test_outputs_disjoint_and_undecided_only(self, instance):
        lo, hi, undecided, pareto, delta, pareto_delta = instance
        regions = UncertaintyRegions(lo=lo.copy(), hi=hi.copy())
        dropped, classified = apply_decision_rules(
            regions, undecided, pareto, delta, pareto_delta=pareto_delta
        )
        assert not set(dropped.tolist()) & set(classified.tolist())
        und = set(np.nonzero(undecided)[0].tolist())
        assert set(dropped.tolist()) <= und
        assert set(classified.tolist()) <= und


class TestDegenerateCases:
    def test_collapsed_identical_points_not_both_dropped(self):
        """Two identical observed points: neither strictly dominates."""
        regions = UncertaintyRegions(
            lo=np.array([[1.0, 1.0], [1.0, 1.0]]),
            hi=np.array([[1.0, 1.0], [1.0, 1.0]]),
        )
        dropped, classified = apply_decision_rules(
            regions, np.array([True, True]), np.zeros(2, bool),
            np.zeros(2),
        )
        assert len(dropped) == 0
        assert set(classified) == {0, 1}

    def test_identical_with_delta_drop_each_other(self):
        """With δ > 0 two identical points δ-dominate each other; the
        rule must drop at least one and never classify a dropped one."""
        regions = UncertaintyRegions(
            lo=np.array([[1.0, 1.0], [1.0, 1.0]]),
            hi=np.array([[1.0, 1.0], [1.0, 1.0]]),
        )
        dropped, classified = apply_decision_rules(
            regions, np.array([True, True]), np.zeros(2, bool),
            np.full(2, 0.5),
        )
        assert len(dropped) >= 1
        assert not set(dropped.tolist()) & set(classified.tolist())

    def test_single_candidate_is_pareto(self):
        regions = UncertaintyRegions(
            lo=np.array([[1.0, 1.0]]), hi=np.array([[2.0, 2.0]])
        )
        dropped, classified = apply_decision_rules(
            regions, np.array([True]), np.zeros(1, bool), np.zeros(2)
        )
        assert len(dropped) == 0
        assert list(classified) == [0]

    def test_one_objective(self):
        regions = UncertaintyRegions(
            lo=np.array([[1.0], [2.0], [0.5]]),
            hi=np.array([[1.2], [2.5], [0.6]]),
        )
        dropped, classified = apply_decision_rules(
            regions, np.ones(3, bool), np.zeros(3, bool), np.zeros(1)
        )
        assert 2 in classified       # clear minimum
        assert 1 in dropped          # clearly dominated
