"""Integration tests for the full PD flow (the simulated tool)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.pdtool.flow import FlowConfig, PDFlow, effective_frequency_mhz
from repro.pdtool.params import ToolParameters
from repro.pdtool.qor import QoRReport


class TestBasicRuns:
    def test_reports_positive_qor(self, tiny_flow):
        r = tiny_flow.run(ToolParameters())
        assert r.area > 0 and r.power > 0 and r.delay > 0

    def test_deterministic(self, tiny_flow):
        p = ToolParameters(freq=1050.0)
        assert tiny_flow.run(p) == tiny_flow.run(p)

    def test_distinct_configs_distinct_qor(self, tiny_flow):
        a = tiny_flow.run(ToolParameters(freq=950.0))
        b = tiny_flow.run(ToolParameters(freq=1300.0))
        assert a != b

    def test_run_count_increments(self, tiny_netlist):
        flow = PDFlow(tiny_netlist)
        flow.run(ToolParameters())
        flow.run(ToolParameters())
        assert flow.run_count == 2

    def test_run_batch(self, tiny_flow):
        configs = [ToolParameters(freq=f) for f in (950.0, 1000.0)]
        reports = tiny_flow.run_batch(configs)
        assert len(reports) == 2
        assert all(isinstance(r, QoRReport) for r in reports)

    def test_runtime_model_scales_with_effort(self, tiny_flow):
        std = tiny_flow.run(ToolParameters(flow_effort="standard"))
        ext = tiny_flow.run(ToolParameters(flow_effort="extreme"))
        assert ext.runtime_hours > std.runtime_hours


class TestParameterDirections:
    """Each tool knob must move QoR in the physically expected direction
    (variation/jitter disabled so the physical gradients are visible)."""

    def test_frequency_increases_power(self, quiet_flow):
        lo = quiet_flow.run(ToolParameters(freq=900.0))
        hi = quiet_flow.run(ToolParameters(freq=1300.0))
        assert hi.power > lo.power

    def test_utilization_decreases_area(self, quiet_flow):
        loose = quiet_flow.run(ToolParameters(max_density_util=0.5))
        tight = quiet_flow.run(ToolParameters(max_density_util=0.9))
        assert tight.area < loose.area

    def test_rcfactor_increases_delay_and_power(self, quiet_flow):
        lo = quiet_flow.run(ToolParameters(place_rcfactor=1.0))
        hi = quiet_flow.run(ToolParameters(place_rcfactor=1.3))
        assert hi.delay > lo.delay
        assert hi.power > lo.power

    def test_uncertainty_increases_delay(self, quiet_flow):
        lo = quiet_flow.run(ToolParameters(place_uncertainty=20.0))
        hi = quiet_flow.run(ToolParameters(place_uncertainty=200.0))
        assert hi.delay > lo.delay

    def test_tight_transition_grows_area(self, quiet_flow):
        loose = quiet_flow.run(ToolParameters(max_transition=0.34))
        tight = quiet_flow.run(ToolParameters(max_transition=0.10))
        assert tight.n_drv_violations >= loose.n_drv_violations
        assert tight.area >= loose.area * 0.999

    def test_wirelength_positive(self, quiet_flow):
        assert quiet_flow.run(ToolParameters()).wirelength > 0

    def test_cells_include_buffers(self, quiet_flow, tiny_netlist):
        r = quiet_flow.run(ToolParameters())
        assert r.n_cells >= tiny_netlist.n_cells


class TestNoiseModel:
    def test_zero_noise_disables_jitter(self, tiny_netlist):
        quiet = PDFlow(
            tiny_netlist,
            FlowConfig(qor_noise=0.0, variation_amplitude=0.0),
        )
        noisy = PDFlow(
            tiny_netlist,
            FlowConfig(qor_noise=0.05, variation_amplitude=0.0),
        )
        pq = quiet.run(ToolParameters())
        pn = noisy.run(ToolParameters())
        # Same physics, different jitter envelope.
        assert pq.delay == pytest.approx(pn.delay, rel=0.06)
        assert pq.delay != pn.delay

    def test_jitter_bounded(self, tiny_netlist):
        amp = 0.05
        quiet = PDFlow(
            tiny_netlist,
            FlowConfig(qor_noise=0.0, variation_amplitude=0.0),
        )
        noisy = PDFlow(
            tiny_netlist,
            FlowConfig(qor_noise=amp, variation_amplitude=0.0),
        )
        for f in (900.0, 1000.0, 1100.0):
            a = quiet.run(ToolParameters(freq=f))
            b = noisy.run(ToolParameters(freq=f))
            assert abs(b.delay / a.delay - 1.0) <= amp + 1e-9

    def test_variation_field_shared_within_design(self, tiny_netlist):
        f1 = PDFlow(tiny_netlist)
        f2 = PDFlow(tiny_netlist)
        p = ToolParameters(freq=977.0)
        assert f1.run(p) == f2.run(p)


class TestQoRReport:
    def test_objectives_extraction(self):
        r = QoRReport(area=1.0, power=2.0, delay=3.0)
        assert r.objectives(("power", "delay")) == (2.0, 3.0)
        assert r.objectives(("area", "power", "delay")) == (1.0, 2.0, 3.0)

    def test_objectives_unknown_raises(self):
        r = QoRReport(area=1.0, power=2.0, delay=3.0)
        with pytest.raises(AttributeError):
            r.objectives(("nonexistent",))

    def test_to_dict(self):
        d = QoRReport(area=1.0, power=2.0, delay=3.0).to_dict()
        assert d["area"] == 1.0 and "runtime_hours" in d

    def test_frozen(self):
        r = QoRReport(area=1.0, power=2.0, delay=3.0)
        with pytest.raises(dataclasses.FrozenInstanceError):
            r.area = 5.0  # type: ignore[misc]


class TestEffectiveFrequency:
    def test_inverse_of_delay(self):
        r = QoRReport(area=1.0, power=1.0, delay=2.0)
        assert effective_frequency_mhz(r, ToolParameters()) == 500.0

    def test_degenerate_delay(self):
        r = QoRReport(area=1.0, power=1.0, delay=0.0)
        assert effective_frequency_mhz(r, ToolParameters()) == float("inf")
