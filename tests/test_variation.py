"""Unit tests for the systematic variation field."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pdtool.params import ToolParameters
from repro.pdtool.variation import (
    VariationField,
    normalize_params,
)


class TestNormalizeParams:
    def test_in_unit_cube(self):
        x = normalize_params(ToolParameters())
        assert np.all(x >= 0.0) and np.all(x <= 1.0)

    def test_sensitive_to_each_knob(self):
        base = normalize_params(ToolParameters())
        for change in (
            {"freq": 1300.0}, {"place_rcfactor": 1.3},
            {"max_fanout": 50}, {"uniform_density": True},
            {"flow_effort": "extreme"}, {"clock_power_driven": True},
        ):
            x = normalize_params(ToolParameters().replace(**change))
            assert not np.array_equal(x, base), change

    def test_clipped_outside_reference(self):
        x = normalize_params(ToolParameters(freq=5000.0))
        assert x.max() <= 1.0


class TestVariationField:
    def test_deterministic(self):
        a = VariationField(123, 0.05)
        b = VariationField(123, 0.05)
        p = ToolParameters(freq=1111.0)
        assert np.array_equal(a.multipliers(p), b.multipliers(p))

    def test_different_seeds_differ(self):
        p = ToolParameters()
        a = VariationField(1, 0.05).multipliers(p)
        b = VariationField(2, 0.05).multipliers(p)
        assert not np.allclose(a, b)

    def test_amplitude_zero_is_identity(self):
        field = VariationField(7, 0.0)
        assert np.allclose(
            field.multipliers(ToolParameters()), 1.0
        )

    def test_negative_amplitude_rejected(self):
        with pytest.raises(ValueError):
            VariationField(7, -0.1)

    def test_bad_family_weight_rejected(self):
        with pytest.raises(ValueError):
            VariationField(7, 0.05, family_seed=1, family_weight=1.5)

    def test_field_statistics(self):
        field = VariationField(11, 0.05)
        rng = np.random.default_rng(0)
        samples = []
        for _ in range(300):
            p = ToolParameters(
                freq=rng.uniform(950, 1300),
                place_rcfactor=rng.uniform(1.0, 1.3),
                max_density_util=rng.uniform(0.5, 1.0),
                max_allowed_delay=rng.uniform(0, 0.25),
            )
            samples.append(field.multipliers(p))
        arr = np.array(samples) - 1.0
        # Roughly zero-mean with std near the amplitude.
        assert abs(arr.mean()) < 0.02
        assert 0.02 < arr.std() < 0.09

    def test_family_sharing_correlates_fields(self):
        rng = np.random.default_rng(3)
        shared_a = VariationField(
            1, 0.05, family_seed=99, family_weight=0.8
        )
        shared_b = VariationField(
            2, 0.05, family_seed=99, family_weight=0.8
        )
        unrelated = VariationField(
            3, 0.05, family_seed=77, family_weight=0.8
        )
        va, vb, vu = [], [], []
        for _ in range(200):
            p = ToolParameters(
                freq=rng.uniform(950, 1300),
                max_density_util=rng.uniform(0.5, 1.0),
            )
            va.append(shared_a.multipliers(p))
            vb.append(shared_b.multipliers(p))
            vu.append(unrelated.multipliers(p))
        va, vb, vu = np.array(va), np.array(vb), np.array(vu)
        corr_family = np.corrcoef(va[:, 2], vb[:, 2])[0, 1]
        corr_unrel = np.corrcoef(va[:, 2], vu[:, 2])[0, 1]
        assert corr_family > 0.4
        assert corr_family > corr_unrel

    def test_without_family_weight_ignored(self):
        field = VariationField(5, 0.05, family_seed=None,
                               family_weight=0.9)
        assert field.family_weight == 0.0
