"""Flow integration across the benchmark parameter spaces.

Samples configurations from each Table 1 space and checks the simulated
tool's global contracts: finite positive QoR everywhere, determinism
across tool instances, and scale separation between designs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.spaces import SPACES
from repro.pdtool.flow import PDFlow
from repro.pdtool.mac import LARGE_MAC, SMALL_MAC, generate_mac_netlist
from repro.pdtool.params import ToolParameters
from repro.space.sampling import latin_hypercube


@pytest.fixture(scope="module")
def small_flow():
    return PDFlow(generate_mac_netlist(SMALL_MAC))


@pytest.fixture(scope="module")
def large_flow():
    return PDFlow(generate_mac_netlist(LARGE_MAC))


class TestAcrossSpaces:
    @pytest.mark.parametrize("space_name", sorted(SPACES))
    def test_every_sample_runs_clean(self, space_name, small_flow):
        space = SPACES[space_name]()
        for config in latin_hypercube(space, 12, seed=5):
            report = small_flow.run(ToolParameters.from_dict(dict(config)))
            for value in (report.area, report.power, report.delay):
                assert np.isfinite(value) and value > 0
            assert report.wirelength > 0
            assert report.n_cells >= small_flow.compiled.n_cells

    @pytest.mark.parametrize("space_name", ["target1", "target2"])
    def test_qor_varies_across_space(self, space_name, small_flow):
        space = SPACES[space_name]()
        reports = [
            small_flow.run(ToolParameters.from_dict(dict(c)))
            for c in latin_hypercube(space, 15, seed=9)
        ]
        delays = np.array([r.delay for r in reports])
        powers = np.array([r.power for r in reports])
        assert np.ptp(delays) / delays.mean() > 0.02
        assert np.ptp(powers) / powers.mean() > 0.02


class TestCrossInstanceDeterminism:
    def test_fresh_flow_reproduces(self):
        p = ToolParameters(freq=1012.0, max_density_util=0.71)
        a = PDFlow(generate_mac_netlist(SMALL_MAC)).run(p)
        b = PDFlow(generate_mac_netlist(SMALL_MAC)).run(p)
        assert a == b


class TestDesignScaleSeparation:
    def test_large_design_bigger_and_slower(self, small_flow, large_flow):
        p = ToolParameters(freq=450.0)
        small = small_flow.run(p)
        large = large_flow.run(p)
        assert large.area > 2 * small.area
        assert large.power > 1.5 * small.power
        assert large.delay > 1.3 * small.delay

    def test_large_design_runtime_model(self, small_flow, large_flow):
        p = ToolParameters()
        assert (
            large_flow.run(p).runtime_hours
            > small_flow.run(p).runtime_hours
        )


class TestToolRunCountAccounting:
    def test_counts_every_invocation(self, small_flow):
        before = small_flow.run_count
        small_flow.run(ToolParameters())
        small_flow.run(ToolParameters())  # identical config still a run
        assert small_flow.run_count == before + 2
