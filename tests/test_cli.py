"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_generate_args(self):
        args = build_parser().parse_args(
            ["generate", "target2", "--points", "10"]
        )
        assert args.benchmark == "target2"
        assert args.points == 10

    def test_tune_args(self):
        args = build_parser().parse_args([
            "tune", "target2", "--source", "source2",
            "--objectives", "area-delay", "--scale", "100",
        ])
        assert args.target == "target2"
        assert args.objectives == "area-delay"

    def test_invalid_benchmark(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["generate", "bogus"])

    def test_scenario_args(self):
        args = build_parser().parse_args(
            ["scenario", "two", "--scale", "50"]
        )
        assert args.which == "two"
        assert args.workers is None
        assert args.resume is True
        assert args.force is False

    def test_scenario_runner_flags(self):
        args = build_parser().parse_args([
            "scenario", "one", "--workers", "4", "--repeats", "3",
            "--no-resume", "--force", "--points", "60",
            "--methods", "Random,PPATuner",
        ])
        assert args.workers == 4
        assert args.repeats == 3
        assert args.resume is False
        assert args.force is True
        assert args.points == 60
        assert args.methods == "Random,PPATuner"

    def test_experiments_args(self):
        args = build_parser().parse_args(
            ["experiments", "all", "--workers", "2"]
        )
        assert args.suite == "all"
        assert args.workers == 2

    def test_sensitivity_args(self):
        args = build_parser().parse_args(["sensitivity", "source2"])
        assert args.benchmark == "source2"

    def test_tune_trace_flag(self):
        args = build_parser().parse_args(
            ["tune", "target2", "--trace", "run.jsonl"]
        )
        assert args.trace == "run.jsonl"

    def test_scenario_trace_dir_flag(self):
        args = build_parser().parse_args(
            ["scenario", "two", "--trace-dir", "traces"]
        )
        assert args.trace_dir == "traces"

    def test_trace_args(self):
        args = build_parser().parse_args([
            "trace", "show", "run.jsonl",
            "--type", "selection_made", "--limit", "3",
        ])
        assert args.action == "show"
        assert args.trace == "run.jsonl"
        assert args.type == "selection_made"
        assert args.limit == 3

    def test_trace_diff_args(self):
        args = build_parser().parse_args(
            ["trace", "diff", "a.jsonl", "b.jsonl"]
        )
        assert args.action == "diff"
        assert args.other == "b.jsonl"

    def test_trace_rejects_bad_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "bogus", "run.jsonl"])


class TestCommands:
    def test_export_writes_verilog(self, tmp_path, capsys):
        out = tmp_path / "design.v"
        rc = main(["export", "small", str(out)])
        assert rc == 0
        assert out.exists()
        assert "module mac_small" in out.read_text()
        assert "wrote" in capsys.readouterr().out

    def test_tune_reduced(self, capsys):
        rc = main([
            "tune", "target2", "--scale", "80",
            "--max-iterations", "6", "--seed", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "runs=" in out
        assert "hv_error=" in out

    def test_generate_with_points(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("PPATUNER_CACHE", str(tmp_path))
        rc = main(["generate", "target2", "--points", "8"])
        assert rc == 0
        assert "target2" in capsys.readouterr().out


class TestScenarioCommand:
    """Reduced-scale smoke of the runner-backed scenario command."""

    ARGS = [
        "scenario", "two", "--points", "30", "--scale", "20",
        "--methods", "Random", "--seed", "1",
    ]

    @pytest.fixture(autouse=True)
    def _isolated_caches(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PPATUNER_CACHE", str(tmp_path / "bench"))
        monkeypatch.setenv("PPATUNER_RUN_CACHE", str(tmp_path / "runs"))

    def test_parallel_smoke(self, capsys):
        rc = main(self.ARGS + ["--workers", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Random" in out
        assert "[1/3]" in out  # one method over three objective spaces
        assert "(memo)" not in out

    def test_resume_serves_from_memo(self, capsys):
        assert main(self.ARGS) == 0
        capsys.readouterr()
        assert main(self.ARGS) == 0
        assert "(memo)" in capsys.readouterr().out

    def test_force_reruns(self, capsys):
        assert main(self.ARGS) == 0
        capsys.readouterr()
        assert main(self.ARGS + ["--force"]) == 0
        assert "(memo)" not in capsys.readouterr().out

    def test_no_resume_skips_memo(self, tmp_path, capsys):
        assert main(self.ARGS + ["--no-resume"]) == 0
        assert not list((tmp_path / "runs").glob("*.npz"))


class TestTraceCommand:
    def test_tune_trace_round_trip(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        rc = main([
            "tune", "target2", "--scale", "80",
            "--max-iterations", "6", "--seed", "1",
            "--trace", str(trace),
        ])
        assert rc == 0
        assert trace.exists()
        assert "trace:" in capsys.readouterr().out

        assert main(["trace", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "finished:" in out
        assert "calibration:" in out

        assert main([
            "trace", "show", str(trace),
            "--type", "selection_made", "--limit", "2",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        assert all(line.startswith("selection_made") for line in lines)

        assert main(["trace", "diff", str(trace), str(trace)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_trace_diff_requires_other(self, tmp_path):
        trace = tmp_path / "a.jsonl"
        trace.write_text("")
        with pytest.raises(SystemExit):
            main(["trace", "diff", str(trace)])


class TestCacheCommand:
    def test_info_empty(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("PPATUNER_CACHE", str(tmp_path))
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "tables: 0" in out

    def test_verify_heals_corrupt_file(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("PPATUNER_CACHE", str(tmp_path))
        main(["generate", "target2", "--points", "8"])
        cached = next(
            p for p in tmp_path.glob("*.npz")
            if not p.name.startswith(".")
        )
        cached.write_bytes(b"torn write")
        assert main(["cache", "verify"]) == 0
        out = capsys.readouterr().out
        assert "quarantined" in out
        assert not cached.exists()

    def test_verify_then_info_reports_ok(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("PPATUNER_CACHE", str(tmp_path))
        main(["generate", "target2", "--points", "8"])
        assert main(["cache", "verify"]) == 0
        assert main(["cache", "info"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "manifested" in out

    def test_clear(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("PPATUNER_CACHE", str(tmp_path))
        main(["generate", "target2", "--points", "8"])
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.npz"))
