"""Shared fixtures: tiny designs, flows, pools — sized for fast tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.dataset import BenchmarkDataset
from repro.bench.generate import evaluate_configs
from repro.bench.spaces import target2_space
from repro.pdtool.flow import FlowConfig, PDFlow
from repro.pdtool.library import CellLibrary
from repro.pdtool.mac import MacSpec, generate_mac_netlist
from repro.pdtool.params import ToolParameters
from repro.space.sampling import latin_hypercube

#: A deliberately tiny MAC so per-test flow runs are ~1 ms.
TINY_MAC = MacSpec(width=4, lanes=1, acc_bits=10, name="mac_tiny")


@pytest.fixture(scope="session")
def library() -> CellLibrary:
    """The default synthetic 7 nm library."""
    return CellLibrary.default_7nm()


@pytest.fixture(scope="session")
def tiny_netlist():
    """A small but structurally complete MAC netlist."""
    return generate_mac_netlist(TINY_MAC)


@pytest.fixture(scope="session")
def tiny_flow(tiny_netlist) -> PDFlow:
    """A PD flow over the tiny MAC."""
    return PDFlow(tiny_netlist)


@pytest.fixture(scope="session")
def quiet_flow(tiny_netlist) -> PDFlow:
    """Tiny-MAC flow with jitter and variation disabled, for tests that
    check the *direction* of physical parameter effects."""
    return PDFlow(
        tiny_netlist, FlowConfig(qor_noise=0.0, variation_amplitude=0.0)
    )


@pytest.fixture(scope="session")
def compiled(tiny_netlist):
    """Compiled view of the tiny MAC."""
    return tiny_netlist.compile()


@pytest.fixture()
def default_params() -> ToolParameters:
    """Default tool parameters."""
    return ToolParameters()


@pytest.fixture(scope="session")
def tiny_benchmark() -> BenchmarkDataset:
    """A 60-point offline benchmark over the tiny MAC (target2 space)."""
    space = target2_space()
    configs = latin_hypercube(space, 60, seed=7)
    flow = PDFlow(
        generate_mac_netlist(TINY_MAC), FlowConfig(qor_noise=0.01)
    )
    Y = evaluate_configs(flow, configs, {"freq": 700.0})
    X = space.encode_many(configs)
    return BenchmarkDataset("tiny", space, configs, X, Y, "tiny")


@pytest.fixture(scope="session")
def synthetic_pool():
    """A smooth synthetic bi-objective pool: (X, Y, Xs, Ys).

    Target objectives have a known trade-off; the source task is the
    same function shifted slightly (positive transfer expected).
    """
    rng = np.random.default_rng(42)
    d, n = 4, 150

    def f(X, shift=0.0):
        f1 = (
            (X[:, 0] - 0.3) ** 2 + 0.5 * X[:, 1]
            + 0.2 * np.sin(3 * X[:, 2]) + 1.5 + shift
        )
        f2 = (
            (X[:, 0] - 0.8) ** 2 + 0.4 * (1 - X[:, 1])
            + 0.1 * X[:, 3] + 1.0 + 0.5 * shift
        )
        return np.column_stack([f1, f2])

    X = rng.uniform(size=(n, d))
    Y = f(X)
    Xs = rng.uniform(size=(120, d))
    Ys = f(Xs, shift=0.05)
    return X, Y, Xs, Ys
