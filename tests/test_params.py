"""Unit tests for the tool-parameter schema."""

from __future__ import annotations

import pytest

from repro.pdtool.params import (
    CONG_EFFORT_LEVELS,
    FLOW_EFFORT_LEVELS,
    TIMING_EFFORT_LEVELS,
    ToolParameters,
)


class TestValidation:
    def test_defaults_valid(self):
        ToolParameters()

    @pytest.mark.parametrize("value", ["bogus", "", "EXTREME"])
    def test_bad_flow_effort(self, value):
        with pytest.raises(ValueError, match="flow_effort"):
            ToolParameters(flow_effort=value)

    def test_bad_timing_effort(self):
        with pytest.raises(ValueError, match="timing_effort"):
            ToolParameters(timing_effort="low")

    def test_bad_cong_effort(self):
        with pytest.raises(ValueError, match="cong_effort"):
            ToolParameters(cong_effort="auto")

    @pytest.mark.parametrize("freq", [0.0, -100.0])
    def test_bad_freq(self, freq):
        with pytest.raises(ValueError, match="freq"):
            ToolParameters(freq=freq)

    @pytest.mark.parametrize("util", [0.0, 1.5, -0.2])
    def test_bad_util(self, util):
        with pytest.raises(ValueError):
            ToolParameters(max_density_util=util)

    def test_util_of_one_allowed(self):
        ToolParameters(max_density_util=1.0)

    def test_negative_rcfactor_rejected(self):
        with pytest.raises(ValueError, match="place_rcfactor"):
            ToolParameters(place_rcfactor=-1.0)

    def test_zero_fanout_rejected(self):
        with pytest.raises(ValueError, match="max_fanout"):
            ToolParameters(max_fanout=0)

    def test_zero_allowed_delay_fine(self):
        ToolParameters(max_allowed_delay=0.0)


class TestDerived:
    def test_clock_period(self):
        assert ToolParameters(freq=1000.0).clock_period_ps == 1000.0
        assert ToolParameters(freq=500.0).clock_period_ps == 2000.0

    def test_effort_levels(self):
        p = ToolParameters(
            flow_effort="extreme", timing_effort="high",
            cong_effort="HIGH",
        )
        assert p.flow_effort_level == 2
        assert p.timing_effort_level == 1
        assert p.cong_effort_level == 2

    def test_level_constants_ordering(self):
        assert FLOW_EFFORT_LEVELS[0] == "standard"
        assert FLOW_EFFORT_LEVELS[-1] == "extreme"
        assert TIMING_EFFORT_LEVELS == ("medium", "high")
        assert CONG_EFFORT_LEVELS[0] == "AUTO"


class TestConversion:
    def test_replace_changes_one_field(self):
        p = ToolParameters()
        q = p.replace(freq=1200.0)
        assert q.freq == 1200.0
        assert q.max_fanout == p.max_fanout

    def test_replace_validates(self):
        with pytest.raises(ValueError):
            ToolParameters().replace(freq=-1.0)

    def test_roundtrip_dict(self):
        p = ToolParameters(freq=1111.0, uniform_density=True)
        assert ToolParameters.from_dict(p.to_dict()) == p

    def test_from_partial_dict(self):
        p = ToolParameters.from_dict({"freq": 900.0})
        assert p.freq == 900.0
        assert p.max_fanout == ToolParameters().max_fanout

    def test_from_dict_unknown_key(self):
        with pytest.raises(ValueError, match="unknown tool parameters"):
            ToolParameters.from_dict({"frequency": 900.0})

    def test_frozen(self):
        p = ToolParameters()
        with pytest.raises(AttributeError):
            p.freq = 1.0  # type: ignore[misc]

    def test_to_dict_covers_all_fields(self):
        d = ToolParameters().to_dict()
        assert len(d) == 15
        assert "max_density_place" in d and "max_density_util" in d
