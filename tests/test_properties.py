"""Cross-module property-based tests (hypothesis).

These encode invariants that must hold for *any* input: tuner contracts
over random pools, flow monotonicities, metric consistency.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import RandomSearchTuner
from repro.core import PoolOracle, PPATuner, PPATunerConfig
from repro.pareto import (
    adrs,
    dominates,
    hypervolume,
    hypervolume_error,
    non_dominated_mask,
    pareto_front,
)

slow = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def random_pools(draw):
    """A random bi-objective pool with mild structure."""
    n = draw(st.integers(20, 60))
    d = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, d))
    w1 = rng.normal(size=d)
    w2 = rng.normal(size=d)
    Y = np.column_stack([
        1.5 + X @ w1 + 0.3 * rng.normal(size=n),
        1.5 + X @ w2 + 0.3 * rng.normal(size=n),
    ])
    Y = Y - Y.min(axis=0) + 1.0  # strictly positive (ADRS-safe)
    return X, Y


class TestTunerContracts:
    @slow
    @given(random_pools())
    def test_ppatuner_contract(self, pool):
        X, Y = pool
        oracle = PoolOracle(Y)
        cfg = PPATunerConfig(
            max_iterations=8, seed=0, min_init=3, init_fraction=0.05,
            refit_every=4,
        )
        result = PPATuner(cfg).tune(X, oracle)
        # Indices in range, unique; points match the table.
        assert len(set(result.pareto_indices.tolist())) == len(
            result.pareto_indices
        )
        assert np.all(result.pareto_indices >= 0)
        assert np.all(result.pareto_indices < len(X))
        assert np.allclose(Y[result.pareto_indices], result.pareto_points)
        # Runs accounting: the loop never exceeds init + iterations*batch.
        assert result.n_evaluations <= 3 + max(
            int(round(0.05 * len(X))), 3
        ) + 8
        # The reported front is mutually non-dominated in golden QoR.
        assert non_dominated_mask(result.pareto_points).all()
        # Every sampled non-dominated point is reported, unless a
        # verified point (possibly evaluated only during the final
        # verification pass) strictly dominates it.
        sampled_front = pareto_front(Y[result.evaluated_indices])
        reported = {tuple(p) for p in result.pareto_points}
        for p in sampled_front:
            assert tuple(p) in reported or any(
                dominates(q, p) for q in result.pareto_points
            )

    @slow
    @given(random_pools())
    def test_random_tuner_contract(self, pool):
        X, Y = pool
        result = RandomSearchTuner(budget=12, seed=1).tune(
            X, PoolOracle(Y)
        )
        assert result.n_evaluations == min(12, len(X))
        front_mask = non_dominated_mask(result.pareto_points)
        assert front_mask.all()


class TestMetricConsistency:
    @slow
    @given(random_pools())
    def test_golden_front_has_zero_error(self, pool):
        _, Y = pool
        golden = pareto_front(Y)
        assert hypervolume_error(golden, golden) == pytest.approx(0.0)
        assert adrs(golden, golden) == pytest.approx(0.0, abs=1e-12)

    @slow
    @given(random_pools())
    def test_subset_error_nonnegative(self, pool):
        _, Y = pool
        golden = pareto_front(Y)
        subset = golden[: max(1, len(golden) // 2)]
        assert hypervolume_error(subset, golden) >= -1e-9

    @slow
    @given(random_pools())
    def test_hypervolume_translation_invariance(self, pool):
        _, Y = pool
        front = pareto_front(Y)
        ref = Y.max(axis=0) + 1.0
        shift = np.array([3.7, -0.9])
        h1 = hypervolume(front, ref)
        h2 = hypervolume(front + shift, ref + shift)
        assert h1 == pytest.approx(h2, rel=1e-9)

    @slow
    @given(random_pools())
    def test_hypervolume_scale_covariance(self, pool):
        _, Y = pool
        front = pareto_front(Y)
        ref = Y.max(axis=0) + 1.0
        h1 = hypervolume(front, ref)
        h2 = hypervolume(front * 2.0, ref * 2.0)
        assert h2 == pytest.approx(h1 * 4.0, rel=1e-9)


class TestFlowMonotonicity:
    """Deterministic directional invariants of the quiet flow, swept by
    hypothesis over the operating point."""

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(
        util=st.floats(min_value=0.55, max_value=0.85),
        freq=st.floats(min_value=900.0, max_value=1200.0),
    )
    def test_power_increases_with_frequency(self, quiet_flow, util, freq):
        from repro.pdtool.params import ToolParameters

        lo = quiet_flow.run(ToolParameters(
            freq=freq, max_density_util=util,
        ))
        hi = quiet_flow.run(ToolParameters(
            freq=freq + 120.0, max_density_util=util,
        ))
        assert hi.power > lo.power

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(util=st.floats(min_value=0.55, max_value=0.9))
    def test_area_inverse_in_utilization(self, quiet_flow, util):
        from repro.pdtool.params import ToolParameters

        a = quiet_flow.run(ToolParameters(max_density_util=util))
        b = quiet_flow.run(ToolParameters(
            max_density_util=min(util + 0.08, 1.0)
        ))
        assert b.area < a.area
