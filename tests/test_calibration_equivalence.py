"""Equivalence suite for the incremental calibration engine.

The fast path (rank-1 border updates + cached pool cross-covariance)
must be numerically indistinguishable from a from-scratch refit: for
random kernels, noise levels, source/target splits, and append orders,
posterior mean/variance agree within 1e-8 — including when the border
update falls back to the exact jittered refactorization.  The
golden-trajectory test then locks the whole loop: `PPATuner.tune` with
the engine on selects the same evaluation indices and the same final
Pareto set as the from-scratch path (guards Eq. (9)-(13) behavior).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PoolOracle, PPATuner, PPATunerConfig
from repro.gp import (
    GPRegressor,
    Matern52Kernel,
    MultiSourceTransferGP,
    NotPositiveDefiniteError,
    RBFKernel,
    TransferGP,
    cholesky_append_row,
    cholesky_append_rows,
    cholesky_rank1_downdate,
    cholesky_rank1_update,
)

TOL = 1e-8

moderate = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _random_spd(rng, n):
    A = rng.normal(size=(n, n))
    return A @ A.T + n * np.eye(n)


# ---------------------------------------------------------------------
# linalg helpers
# ---------------------------------------------------------------------


class TestCholeskyHelpers:
    @pytest.mark.parametrize("n,k", [(1, 1), (4, 1), (6, 3), (10, 4)])
    def test_append_rows_matches_full_factorization(self, n, k):
        rng = np.random.default_rng(n * 31 + k)
        A = _random_spd(rng, n + k)
        L = np.linalg.cholesky(A[:n, :n])
        L_ext = cholesky_append_rows(L, A[:n, n:], A[n:, n:])
        np.testing.assert_allclose(
            L_ext, np.linalg.cholesky(A), atol=1e-10
        )

    def test_append_single_row(self):
        rng = np.random.default_rng(7)
        A = _random_spd(rng, 5)
        L = np.linalg.cholesky(A[:4, :4])
        L_ext = cholesky_append_row(L, A[:4, 4], float(A[4, 4]))
        np.testing.assert_allclose(
            L_ext, np.linalg.cholesky(A), atol=1e-10
        )

    def test_append_rejects_indefinite_schur_complement(self):
        L = np.eye(2)
        with pytest.raises(NotPositiveDefiniteError):
            cholesky_append_rows(
                L, np.array([[0.9], [0.9]]), np.array([[0.1]])
            )

    def test_append_shape_validation(self):
        with pytest.raises(ValueError, match="mismatch"):
            cholesky_append_rows(
                np.eye(3), np.zeros((2, 1)), np.eye(1)
            )

    def test_rank1_update_and_downdate_roundtrip(self):
        rng = np.random.default_rng(11)
        A = _random_spd(rng, 6)
        v = rng.normal(size=6)
        L = np.linalg.cholesky(A)
        L_up = cholesky_rank1_update(L, v)
        np.testing.assert_allclose(
            L_up @ L_up.T, A + np.outer(v, v), atol=1e-9
        )
        L_down = cholesky_rank1_downdate(L_up, v)
        np.testing.assert_allclose(L_down @ L_down.T, A, atol=1e-9)
        # Inputs untouched.
        np.testing.assert_allclose(L, np.linalg.cholesky(A))

    def test_rank1_downdate_rejects_indefinite(self):
        L = np.linalg.cholesky(np.eye(3))
        with pytest.raises(NotPositiveDefiniteError):
            cholesky_rank1_downdate(L, np.array([2.0, 0.0, 0.0]))


# ---------------------------------------------------------------------
# property-based posterior equivalence
# ---------------------------------------------------------------------


def _make_kernel(name, d, ls, var):
    cls = {"rbf": RBFKernel, "matern52": Matern52Kernel}[name]
    return cls(np.full(d, ls), var)


@st.composite
def calibration_cases(draw):
    """Random kernel/noise/split/append-order scenarios."""
    seed = draw(st.integers(0, 10_000))
    d = draw(st.integers(1, 4))
    kernel = draw(st.sampled_from(["rbf", "matern52"]))
    ls = draw(st.floats(0.2, 1.5))
    var = draw(st.floats(0.3, 3.0))
    noise = draw(st.floats(1e-4, 1e-1))
    n_src = draw(st.integers(0, 25))
    n_t0 = draw(st.integers(1, 6))
    n_app = draw(st.integers(1, 8))
    n_batches = draw(st.integers(1, min(3, n_app)))
    return seed, d, kernel, ls, var, noise, n_src, n_t0, n_app, n_batches


def _split_batches(rng, n, k):
    """Split range(n) into k contiguous non-empty batches, shuffled."""
    order = rng.permutation(n)
    cuts = np.sort(rng.choice(np.arange(1, n), size=k - 1, replace=False)) \
        if k > 1 else np.array([], dtype=int)
    return np.split(order, cuts)


class TestPosteriorEquivalence:
    @given(calibration_cases())
    @moderate
    def test_transfer_gp(self, case):
        seed, d, kname, ls, var, noise, n_src, n_t0, n_app, n_b = case
        rng = np.random.default_rng(seed)
        Xs = rng.uniform(size=(n_src, d))
        ys = rng.normal(size=n_src)
        Xt = rng.uniform(size=(n_t0 + n_app, d))
        yt = rng.normal(size=n_t0 + n_app)
        Xq = rng.uniform(size=(10, d))

        def make():
            return TransferGP(
                kernel=_make_kernel(kname, d, ls, var),
                noise_source=noise, noise_target=noise,
                optimize=False,
            )

        inc = make().fit(Xs, ys, Xt[:n_t0], yt[:n_t0])
        app = np.arange(n_t0, n_t0 + n_app)
        for batch in _split_batches(rng, n_app, n_b):
            ids = app[batch]
            inc.update(Xt[ids], yt[ids])
        # From-scratch refit on the same data in the same final order.
        order = np.concatenate(
            [np.arange(n_t0)]
            + [app[b] for b in _split_batches(
                np.random.default_rng(seed), n_app, n_b
            )]
        )
        ref = make().fit(Xs, ys, Xt[order], yt[order])
        mi, vi = inc.predict(Xq)
        mr, vr = ref.predict(Xq)
        np.testing.assert_allclose(mi, mr, atol=TOL)
        np.testing.assert_allclose(vi, vr, atol=TOL)

    @given(calibration_cases())
    @moderate
    def test_gp_regressor(self, case):
        seed, d, kname, ls, var, noise, _, n_t0, n_app, n_b = case
        rng = np.random.default_rng(seed)
        X = rng.uniform(size=(n_t0 + n_app, d))
        y = rng.normal(size=n_t0 + n_app)
        Xq = rng.uniform(size=(10, d))

        def make():
            return GPRegressor(
                _make_kernel(kname, d, ls, var),
                noise_variance=noise, optimize=False,
            )

        inc = make().fit(X[:n_t0], y[:n_t0])
        app = np.arange(n_t0, n_t0 + n_app)
        batches = _split_batches(rng, n_app, n_b)
        for batch in batches:
            inc.update(X[app[batch]], y[app[batch]])
        order = np.concatenate([np.arange(n_t0)] + [app[b] for b in batches])
        ref = make().fit(X[order], y[order])
        mi, vi = inc.predict(Xq)
        mr, vr = ref.predict(Xq)
        np.testing.assert_allclose(mi, mr, atol=TOL)
        np.testing.assert_allclose(vi, vr, atol=TOL)

    @given(calibration_cases())
    @moderate
    def test_multisource(self, case):
        seed, d, kname, ls, var, noise, n_src, n_t0, n_app, n_b = case
        rng = np.random.default_rng(seed)
        sources = [
            (rng.uniform(size=(max(n_src, 2), d)),
             rng.normal(size=max(n_src, 2)))
            for _ in range(2)
        ]
        Xt = rng.uniform(size=(n_t0 + n_app, d))
        yt = rng.normal(size=n_t0 + n_app)
        Xq = rng.uniform(size=(10, d))

        def make():
            return MultiSourceTransferGP(
                kernel=_make_kernel(kname, d, ls, var),
                noise=noise, optimize=False,
            )

        inc = make().fit(sources, Xt[:n_t0], yt[:n_t0])
        app = np.arange(n_t0, n_t0 + n_app)
        batches = _split_batches(rng, n_app, n_b)
        for batch in batches:
            inc.update(Xt[app[batch]], yt[app[batch]])
        order = np.concatenate([np.arange(n_t0)] + [app[b] for b in batches])
        ref = make().fit(sources, Xt[order], yt[order])
        mi, vi = inc.predict(Xq)
        mr, vr = ref.predict(Xq)
        np.testing.assert_allclose(mi, mr, atol=TOL)
        np.testing.assert_allclose(vi, vr, atol=TOL)

    @given(calibration_cases())
    @moderate
    def test_pool_cache_matches_direct_predict(self, case):
        seed, d, kname, ls, var, noise, n_src, n_t0, n_app, _ = case
        rng = np.random.default_rng(seed)
        Xs = rng.uniform(size=(n_src, d))
        ys = rng.normal(size=n_src)
        Xt = rng.uniform(size=(n_t0 + n_app, d))
        yt = rng.normal(size=n_t0 + n_app)
        pool = rng.uniform(size=(15, d))

        model = TransferGP(
            kernel=_make_kernel(kname, d, ls, var),
            noise_source=noise, noise_target=noise, optimize=False,
        ).fit(Xs, ys, Xt[:n_t0], yt[:n_t0])
        model.register_pool(pool)
        # Build the cache, then grow incrementally: the extended cache
        # must keep matching the direct (uncached) predict.
        for flag in (False, True):
            idx = rng.choice(15, size=8, replace=False)
            mp, vp = model.predict_pool(idx, include_noise=flag)
            md, vd = model.predict(pool[idx], include_noise=flag)
            np.testing.assert_allclose(mp, md, atol=TOL)
            np.testing.assert_allclose(vp, vd, atol=TOL)
            model.update(Xt[n_t0:], yt[n_t0:])


class TestFallbackPath:
    def _fitted(self):
        rng = np.random.default_rng(5)
        Xs = rng.uniform(size=(12, 3))
        Xt = rng.uniform(size=(6, 3))
        model = TransferGP(
            kernel=RBFKernel(np.full(3, 0.4)), optimize=False
        ).fit(Xs, rng.normal(size=12), Xt, rng.normal(size=6))
        return model, rng

    def test_forced_fallback_matches_refit(self, monkeypatch):
        """When the border update is rejected, the exact refactorization
        produces the same posterior as a from-scratch fit."""
        model, rng = self._fitted()
        X_new = rng.uniform(size=(2, 3))
        y_new = rng.normal(size=2)
        Xq = rng.uniform(size=(9, 3))

        import repro.gp.incremental as incremental

        def boom(*args, **kwargs):
            raise NotPositiveDefiniteError("forced")

        monkeypatch.setattr(incremental, "cholesky_append_rows", boom)
        model.register_pool(Xq)
        model.predict_pool(np.arange(9))  # warm the cache pre-fallback
        model.update(X_new, y_new)
        assert model.last_update_fallback is True

        ref = TransferGP(
            kernel=RBFKernel(np.full(3, 0.4)), optimize=False
        ).fit(
            model._X[model._tasks == 0],
            model._y_raw[model._tasks == 0],
            model._X[model._tasks == 1],
            model._y_raw[model._tasks == 1],
        )
        mi, vi = model.predict(Xq)
        mr, vr = ref.predict(Xq)
        np.testing.assert_allclose(mi, mr, atol=TOL)
        np.testing.assert_allclose(vi, vr, atol=TOL)
        # The invalidated pool cache rebuilds to the same numbers.
        mp, vp = model.predict_pool(np.arange(9))
        np.testing.assert_allclose(mp, mi, atol=TOL)
        np.testing.assert_allclose(vp, vi, atol=TOL)

    def test_near_singular_append_still_equivalent(self):
        """Appending near-duplicate points (ill-conditioned Schur
        complement) stays within tolerance of the exact refit whichever
        path it takes."""
        model, rng = self._fitted()
        x_dup = model._X[model._tasks == 1][:1]
        X_new = np.vstack([x_dup + 1e-9, x_dup + 2e-9])
        y_new = rng.normal(size=2)
        Xq = rng.uniform(size=(9, 3))
        model.update(X_new, y_new)
        ref = TransferGP(
            kernel=RBFKernel(np.full(3, 0.4)), optimize=False
        ).fit(
            model._X[model._tasks == 0],
            model._y_raw[model._tasks == 0],
            model._X[model._tasks == 1],
            model._y_raw[model._tasks == 1],
        )
        mi, vi = model.predict(Xq)
        mr, vr = ref.predict(Xq)
        np.testing.assert_allclose(mi, mr, atol=1e-6)
        np.testing.assert_allclose(vi, vr, atol=1e-6)

    def test_update_validation(self):
        model, rng = self._fitted()
        with pytest.raises(ValueError, match="misaligned"):
            model.update(rng.uniform(size=(2, 3)), np.zeros(3))
        with pytest.raises(ValueError, match="dimensionality"):
            model.update(rng.uniform(size=(2, 5)), np.zeros(2))
        with pytest.raises(RuntimeError, match="before fit"):
            TransferGP().update(np.zeros((1, 3)), np.zeros(1))
        # Empty update is a no-op.
        L_before = model._L.copy()
        model.update(np.empty((0, 3)), np.empty(0))
        np.testing.assert_array_equal(model._L, L_before)


# ---------------------------------------------------------------------
# warm-started hyperparameter refits
# ---------------------------------------------------------------------


class TestWarmStart:
    def test_refit_resumes_from_previous_optimum(self):
        rng = np.random.default_rng(2)
        Xs = rng.uniform(size=(20, 3))
        Xt = rng.uniform(size=(10, 3))
        model = TransferGP(
            kernel=RBFKernel(np.full(3, 0.4)), n_restarts=0, seed=0
        )
        model.fit(Xs, rng.normal(size=20), Xt, rng.normal(size=10))
        theta_opt = model._opt_theta.copy()
        # Perturb the live kernel the way an aborted objective
        # evaluation would; the refit must resume from the stored
        # optimum, not the perturbed live value.
        model.transfer_kernel.theta = theta_opt[:-2] + 2.5
        with np.errstate(all="ignore"):
            model._optimize_hyperparameters = (
                TransferGP._optimize_hyperparameters.__get__(model)
            )
        # Refit with a zero-iteration budget: whatever the optimizer
        # starts from is what it returns.
        import repro.gp.transfer_gp as transfer_gp_mod

        original = transfer_gp_mod.maximize_objective
        seen_theta0 = {}

        def spy(objective, theta0, bounds, **kwargs):
            seen_theta0["value"] = np.asarray(theta0).copy()
            return original(objective, theta0, bounds, **kwargs)

        transfer_gp_mod.maximize_objective = spy
        try:
            model.fit(
                Xs, rng.normal(size=20), Xt, rng.normal(size=10)
            )
        finally:
            transfer_gp_mod.maximize_objective = original
        np.testing.assert_allclose(seen_theta0["value"], theta_opt)


# ---------------------------------------------------------------------
# golden trajectory: the engine swap must not move Algorithm 1
# ---------------------------------------------------------------------


class TestGoldenTrajectory:
    def _run(self, synthetic_pool, incremental, **kw):
        X, Y, Xs, Ys = synthetic_pool
        cfg = PPATunerConfig(
            max_iterations=40, seed=3, incremental=incremental, **kw
        )
        tuner = PPATuner(cfg)
        result = tuner.tune(X, PoolOracle(Y), Xs, Ys)
        return tuner, result

    def test_same_indices_and_pareto_set(self, synthetic_pool):
        _, fast = self._run(synthetic_pool, incremental=True)
        _, slow_ = self._run(synthetic_pool, incremental=False)
        assert [h.selected for h in fast.history] == [
            h.selected for h in slow_.history
        ]
        np.testing.assert_array_equal(
            fast.evaluated_indices, slow_.evaluated_indices
        )
        np.testing.assert_array_equal(
            fast.pareto_indices, slow_.pareto_indices
        )
        np.testing.assert_allclose(
            fast.pareto_points, slow_.pareto_points
        )
        assert fast.n_evaluations == slow_.n_evaluations

    def test_same_trajectory_multisource(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        sources = [(Xs[:60], Ys[:60]), (Xs[60:], Ys[60:])]

        def run(incremental):
            cfg = PPATunerConfig(
                max_iterations=25, seed=3, incremental=incremental
            )
            return PPATuner(cfg).tune(
                X, PoolOracle(Y), sources=sources
            )

        fast, slow_ = run(True), run(False)
        np.testing.assert_array_equal(
            fast.evaluated_indices, slow_.evaluated_indices
        )
        np.testing.assert_array_equal(
            fast.pareto_indices, slow_.pareto_indices
        )

    def test_engine_uses_fast_path(self, synthetic_pool):
        tuner, result = self._run(synthetic_pool, incremental=True)
        stats = tuner.calibration_.stats
        assert stats.n_incremental > 0
        # Full fits only on the re-optimization cadence.
        m = len(tuner.models_)
        expected_ticks = 1 + (result.n_iterations - 1) // (
            tuner.config.effective_reopt_every
        )
        assert stats.n_full_fits <= m * (expected_ticks + 1)
        assert stats.n_reopts >= m

    def test_reopt_never_cadence(self, synthetic_pool):
        tuner, result = self._run(
            synthetic_pool, incremental=True, reopt_every=0
        )
        stats = tuner.calibration_.stats
        # One initial (unoptimized) fit per metric, everything else
        # incremental.
        assert stats.n_reopts == 0
        assert stats.n_full_fits == len(tuner.models_)
        assert len(result.pareto_indices) > 0

    def test_reopt_every_validation(self):
        with pytest.raises(ValueError, match="reopt_every"):
            PPATunerConfig(reopt_every=-1)
        assert PPATunerConfig(reopt_every=None).effective_reopt_every == 10
        assert PPATunerConfig(
            refit_every=7, reopt_every=3
        ).effective_reopt_every == 3
