"""Tests for the DesignFamily registry and legacy-name shims."""

from __future__ import annotations

import pytest

from repro.pdtool.family import (
    _FAMILY_REGISTRY,
    DesignFamily,
    design_family,
    family_token,
    register_design_family,
    registered_design_families,
    resolve_design,
)


class TestRegistry:
    def test_builtin_families_registered(self):
        assert registered_design_families() == (
            "alu", "cpu", "fabric", "fir", "mac",
        )

    def test_every_family_satisfies_protocol(self):
        for token in registered_design_families():
            assert isinstance(design_family(token), DesignFamily)

    def test_lookup_by_design_name(self):
        assert design_family("mac_small").family == "mac"
        assert design_family("fabric_large").family == "fabric"
        assert design_family("cpu_small").family == "cpu"

    def test_lookup_by_bare_token(self):
        assert design_family("fir").family == "fir"

    def test_unknown_family_lists_registered(self):
        with pytest.raises(ValueError) as exc:
            design_family("ring_small")
        msg = str(exc.value)
        assert "'ring'" in msg  # the parsed token
        assert "'ring_small'" in msg  # the original design name
        for token in registered_design_families():
            assert token in msg

    def test_unknown_design_within_family(self):
        fam = design_family("mac")
        with pytest.raises(ValueError, match="mac_large, mac_small"):
            fam.spec("mac_medium")

    def test_family_token(self):
        assert family_token("fabric_small") == "fabric"
        assert family_token("mac") == "mac"

    def test_decorator_rejects_non_conforming(self):
        with pytest.raises(TypeError):
            @register_design_family("broken")
            class Broken:
                family = "broken"

        assert "broken" not in registered_design_families()

    def test_decorator_registers_and_replaces(self):
        class Stub:
            family = "mac"

            def design_names(self):
                return ("mac_stub",)

            def spec(self, design, full=None):
                return object()

            def netlist(self, design, full=None):
                raise NotImplementedError

            def parameter_space(self, design):
                raise NotImplementedError

            def base_params(self, design):
                return {}

        original = _FAMILY_REGISTRY["mac"]
        try:
            register_design_family("mac")(Stub)
            assert design_family("mac_small").design_names() == (
                "mac_stub",
            )
        finally:
            _FAMILY_REGISTRY["mac"] = original
        assert design_family("mac_small") is original


class TestFamilySurface:
    """Every registered family's full chain works for every design."""

    @pytest.mark.parametrize("token", registered_design_families())
    def test_designs_build(self, token):
        fam = design_family(token)
        names = fam.design_names()
        assert names == tuple(sorted(names))
        for design in names:
            assert family_token(design) == token
            assert fam.spec(design, full=False) is not None
            space = fam.parameter_space(design)
            assert space.dim >= 2
            base = fam.base_params(design)
            assert isinstance(base, dict)
            # Space knobs and base params never overlap: base pins only
            # what the space does not tune.
            assert not set(base) & set(space.names)

    @pytest.mark.parametrize("token", ("fabric", "cpu"))
    def test_new_family_netlists_validate(self, token):
        fam = design_family(token)
        small = fam.design_names()[1]  # *_small sorts after *_large
        nl = fam.netlist(small, full=False)
        nl.validate()
        assert nl.name == small

    def test_scale_selects_spec(self):
        fam = design_family("cpu")
        reduced = fam.spec("cpu_small", full=False)
        paper = fam.spec("cpu_small", full=True)
        assert paper.width > reduced.width

    def test_base_params_copied(self):
        fam = design_family("mac")
        params = fam.base_params("mac_large")
        assert params == {"freq": 450.0}
        params["freq"] = 0.0
        assert fam.base_params("mac_large") == {"freq": 450.0}


class TestLegacyShims:
    def test_resolve_legacy_warns(self):
        with pytest.warns(DeprecationWarning, match="mac_small"):
            assert resolve_design("small") == "mac_small"
        with pytest.warns(DeprecationWarning, match="mac_large"):
            assert resolve_design("large") == "mac_large"

    def test_resolve_canonical_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_design("mac_small") == "mac_small"
            assert resolve_design("fabric_large") == "fabric_large"

    def test_design_family_accepts_legacy(self):
        with pytest.warns(DeprecationWarning):
            assert design_family("small").family == "mac"

    def test_design_spec_legacy_matches_canonical(self):
        from repro.bench.generate import design_spec

        with pytest.warns(DeprecationWarning):
            legacy = design_spec("large")
        assert legacy is design_spec("mac_large")

    def test_get_flow_legacy_shares_cache(self):
        from repro.bench.generate import get_flow

        with pytest.warns(DeprecationWarning):
            legacy = get_flow("small")
        assert legacy is get_flow("mac_small")
