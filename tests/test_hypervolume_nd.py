"""Deep tests for the n-dimensional (WFG) hypervolume path."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.pareto import hypervolume, pareto_front

three_d_sets = arrays(
    np.float64,
    st.tuples(st.integers(1, 10), st.just(3)),
    elements=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)


def _monte_carlo(pts: np.ndarray, ref: np.ndarray, n: int = 60_000) -> float:
    lo = pts.min(axis=0)
    rng = np.random.default_rng(0)
    samples = rng.uniform(lo, ref, size=(n, pts.shape[1]))
    covered = np.zeros(n, dtype=bool)
    for p in pts:
        covered |= np.all(samples >= p, axis=1)
    return float(covered.mean() * np.prod(ref - lo))


class TestWfg3d:
    @settings(max_examples=25, deadline=5000)
    @given(three_d_sets)
    def test_matches_monte_carlo(self, pts):
        ref = pts.max(axis=0) + 0.5
        exact = hypervolume(pts, ref)
        estimate = _monte_carlo(pts, ref)
        box = np.prod(ref - pts.min(axis=0))
        assert exact == pytest.approx(estimate, abs=0.05 * box + 1e-9)

    def test_known_staircase(self):
        # Three mutually non-dominated points forming a 3-D staircase.
        pts = np.array([
            [0.0, 1.0, 2.0],
            [1.0, 2.0, 0.0],
            [2.0, 0.0, 1.0],
        ])
        ref = np.array([3.0, 3.0, 3.0])
        # Inclusion-exclusion by hand: each box = prod(3 - p).
        boxes = [np.prod(ref - p) for p in pts]
        pair_ij = np.prod(ref - np.maximum(pts[0], pts[1]))
        pair_ik = np.prod(ref - np.maximum(pts[0], pts[2]))
        pair_jk = np.prod(ref - np.maximum(pts[1], pts[2]))
        triple = np.prod(ref - np.maximum.reduce(pts))
        expected = sum(boxes) - pair_ij - pair_ik - pair_jk + triple
        assert hypervolume(pts, ref) == pytest.approx(expected)

    def test_duplicated_points_no_double_count(self):
        pts = np.array([[1.0, 1.0, 1.0]] * 4)
        assert hypervolume(pts, [2.0, 2.0, 2.0]) == pytest.approx(1.0)

    def test_permutation_invariance(self):
        rng = np.random.default_rng(3)
        pts = rng.uniform(0, 3, size=(8, 3))
        ref = pts.max(axis=0) + 1.0
        h1 = hypervolume(pts, ref)
        h2 = hypervolume(pts[rng.permutation(8)], ref)
        assert h1 == pytest.approx(h2)

    def test_objective_permutation_invariance(self):
        rng = np.random.default_rng(4)
        pts = rng.uniform(0, 3, size=(7, 3))
        ref = pts.max(axis=0) + 1.0
        perm = [2, 0, 1]
        h1 = hypervolume(pts, ref)
        h2 = hypervolume(pts[:, perm], ref[perm])
        assert h1 == pytest.approx(h2)

    @settings(max_examples=20, deadline=5000)
    @given(three_d_sets)
    def test_bounded_by_enclosing_box(self, pts):
        ref = pts.max(axis=0) + 1.0
        front = pareto_front(pts)
        box = np.prod(ref - front.min(axis=0))
        assert 0.0 <= hypervolume(pts, ref) <= box + 1e-9

    def test_4d_simple(self):
        pts = np.array([[1.0, 1.0, 1.0, 1.0]])
        assert hypervolume(pts, [2.0, 2.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_4d_union(self):
        pts = np.array([
            [0.0, 1.0, 1.0, 1.0],
            [1.0, 0.0, 1.0, 1.0],
        ])
        ref = np.full(4, 2.0)
        # 2*1*1*1 each, overlap 1 -> union 3.
        assert hypervolume(pts, ref) == pytest.approx(3.0)
