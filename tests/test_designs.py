"""Tests for the FIR and ALU design generators."""

from __future__ import annotations

import pytest

from repro.pdtool.designs import (
    AluSpec,
    FirSpec,
    generate_alu_netlist,
    generate_fir_netlist,
)
from repro.pdtool.flow import FlowConfig, PDFlow
from repro.pdtool.params import ToolParameters


class TestFir:
    def test_validates(self):
        nl = generate_fir_netlist(FirSpec(taps=3, width=4, name="f"))
        nl.validate()

    def test_taps_scale_cells(self):
        small = generate_fir_netlist(FirSpec(taps=2, width=4, name="a"))
        big = generate_fir_netlist(FirSpec(taps=6, width=4, name="b"))
        assert big.n_cells > 2.5 * small.n_cells

    def test_has_multiplier_structure(self):
        nl = generate_fir_netlist(FirSpec(taps=2, width=4, name="c"))
        counts = nl.counts_by_function()
        assert counts.get("FA", 0) > 0
        assert counts.get("DFF", 0) > 0

    def test_inputs(self):
        spec = FirSpec(taps=3, width=5, name="d")
        nl = generate_fir_netlist(spec)
        # data + one coefficient bus per tap.
        assert nl.n_primary_inputs == spec.width * (1 + spec.taps)

    def test_runs_through_flow(self):
        nl = generate_fir_netlist(FirSpec(taps=2, width=4, name="e"))
        flow = PDFlow(nl, FlowConfig())
        r = flow.run(ToolParameters(freq=700.0))
        assert r.area > 0 and r.power > 0 and r.delay > 0

    def test_deterministic(self):
        spec = FirSpec(taps=2, width=4, name="g")
        a = generate_fir_netlist(spec)
        b = generate_fir_netlist(spec)
        assert a.n_cells == b.n_cells


class TestAlu:
    def test_validates(self):
        generate_alu_netlist(AluSpec(width=8, name="a")).validate()

    def test_has_mux_network(self):
        nl = generate_alu_netlist(AluSpec(width=8, name="b"))
        counts = nl.counts_by_function()
        # Three MUX2 levels per output bit.
        assert counts["MUX2"] == 3 * 8

    def test_opcode_fanout(self):
        nl = generate_alu_netlist(AluSpec(width=8, name="c"))
        compiled = nl.compile()
        # The select lines broadcast to all bit slices.
        assert compiled.fanout_count.max() >= 8

    def test_width_scales(self):
        small = generate_alu_netlist(AluSpec(width=8, name="d"))
        big = generate_alu_netlist(AluSpec(width=24, name="e"))
        assert big.n_cells > 2 * small.n_cells

    def test_runs_through_flow(self):
        nl = generate_alu_netlist(AluSpec(width=8, name="f"))
        r = PDFlow(nl).run(ToolParameters(freq=1500.0))
        assert r.delay > 0

    def test_alu_shallower_than_fir(self):
        """Control-heavy ALU has far fewer logic levels than a
        multiplier datapath at similar width."""
        alu = generate_alu_netlist(AluSpec(width=8, name="g")).compile()
        fir = generate_fir_netlist(
            FirSpec(taps=2, width=8, name="h")
        ).compile()
        assert len(alu.levels) < len(fir.levels)


class TestFamilySeparation:
    def test_distinct_variation_families(self):
        """FIR and MAC share no family seed with the ALU (name prefixes
        differ), so their QoR variation fields decorrelate."""
        fir = PDFlow(generate_fir_netlist(
            FirSpec(taps=2, width=4, name="fir_x")
        ))
        alu = PDFlow(generate_alu_netlist(AluSpec(width=8, name="alu_x")))
        assert fir._variation is not alu._variation

    @pytest.mark.parametrize("gen,spec", [
        (generate_fir_netlist, FirSpec(taps=2, width=4, name="fir_q")),
        (generate_alu_netlist, AluSpec(width=8, name="alu_q")),
    ])
    def test_acyclic(self, gen, spec):
        nl = gen(spec)
        for idx, inst in enumerate(nl.instances):
            for f in inst.fanins:
                assert f < idx or f == -1
