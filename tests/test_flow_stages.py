"""Unit tests for placement, routing, CTS, DRV, STA and power stages."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pdtool.cts import synthesize_clock_tree
from repro.pdtool.drv import repair_drv
from repro.pdtool.params import ToolParameters
from repro.pdtool.placement import _morton_decode, place
from repro.pdtool.power import analyze_power
from repro.pdtool.routing import route
from repro.pdtool.sta import analyze_timing


@pytest.fixture()
def placed(compiled, default_params):
    return place(compiled, default_params)


@pytest.fixture()
def routed(compiled, placed, default_params):
    return route(compiled, placed, default_params)


@pytest.fixture()
def cts_result(compiled, placed, default_params, library):
    return synthesize_clock_tree(compiled, placed, default_params, library)


@pytest.fixture()
def drv_result(compiled, routed, default_params, library):
    return repair_drv(compiled, routed, default_params, library)


class TestMorton:
    def test_decode_first_sites(self):
        x, y = _morton_decode(np.arange(4), bits=2)
        assert list(zip(x.tolist(), y.tolist())) == [
            (0, 0), (1, 0), (0, 1), (1, 1),
        ]

    def test_decode_is_bijective(self):
        x, y = _morton_decode(np.arange(64), bits=3)
        assert len({(a, b) for a, b in zip(x.tolist(), y.tolist())}) == 64

    def test_locality(self):
        # Consecutive Morton indices stay within a small neighbourhood.
        x, y = _morton_decode(np.arange(256), bits=4)
        dist = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert np.median(dist) <= 2


class TestPlacement:
    def test_all_cells_inside_die(self, placed):
        assert np.all(placed.xy >= 0)
        assert np.all(placed.xy[:, 0] <= placed.die_width)
        assert np.all(placed.xy[:, 1] <= placed.die_height)

    def test_utilization_drives_die_area(self, compiled):
        tight = place(compiled, ToolParameters(max_density_util=0.9))
        loose = place(compiled, ToolParameters(max_density_util=0.5))
        assert loose.die_width > tight.die_width

    def test_lower_util_longer_wires(self, compiled):
        tight = place(compiled, ToolParameters(max_density_util=0.9))
        loose = place(compiled, ToolParameters(max_density_util=0.5))
        assert loose.total_wirelength > tight.total_wirelength

    def test_uniform_density_reduces_variance(self, compiled):
        base = place(compiled, ToolParameters(uniform_density=False))
        uni = place(compiled, ToolParameters(uniform_density=True))
        assert uni.bin_density.std() < base.bin_density.std()

    def test_tight_place_cap_spreads(self, compiled):
        base = place(compiled, ToolParameters(max_density_place=0.9))
        spread = place(compiled, ToolParameters(max_density_place=0.5))
        assert spread.total_wirelength > base.total_wirelength

    def test_deterministic_under_seed(self, compiled, default_params):
        a = place(compiled, default_params, seed=3)
        b = place(compiled, default_params, seed=3)
        assert np.array_equal(a.xy, b.xy)

    def test_edge_lengths_nonnegative(self, placed):
        assert np.all(placed.edge_length >= 0)

    def test_density_overflow_nonnegative(self, placed):
        assert placed.density_overflow >= 0


class TestRouting:
    def test_detour_at_least_one(self, routed):
        assert routed.detour_factor >= 1.0

    def test_routed_at_least_placed(self, placed, routed):
        assert routed.total_wirelength >= placed.total_wirelength * 0.99

    def test_high_effort_relieves_overflow(self, compiled, placed):
        auto = route(compiled, placed, ToolParameters(cong_effort="AUTO"))
        high = route(compiled, placed, ToolParameters(cong_effort="HIGH"))
        assert high.overflow <= auto.overflow

    def test_overflow_nonnegative(self, routed):
        assert routed.overflow >= 0


class TestCts:
    def test_buffers_inserted(self, cts_result):
        assert cts_result.n_clock_buffers > 0

    def test_power_driven_reduces_cap(self, compiled, placed, library):
        base = synthesize_clock_tree(
            compiled, placed, ToolParameters(clock_power_driven=False),
            library,
        )
        pd = synthesize_clock_tree(
            compiled, placed, ToolParameters(clock_power_driven=True),
            library,
        )
        assert pd.clock_tree_cap < base.clock_tree_cap

    def test_power_driven_worsens_skew(self, compiled, placed, library):
        base = synthesize_clock_tree(
            compiled, placed, ToolParameters(clock_power_driven=False),
            library,
        )
        pd = synthesize_clock_tree(
            compiled, placed, ToolParameters(clock_power_driven=True),
            library,
        )
        assert pd.skew > base.skew

    def test_no_sequential_no_tree(self, library):
        from repro.pdtool.netlist import PRIMARY_INPUT, Netlist

        nl = Netlist("comb", library)
        nl.add_input()
        nl.add_cell("INV", [PRIMARY_INPUT])
        compiled = nl.compile()
        placed = place(compiled, ToolParameters())
        result = synthesize_clock_tree(
            compiled, placed, ToolParameters(), library
        )
        assert result.n_clock_buffers == 0
        assert result.clock_tree_cap == 0.0


class TestDrv:
    def test_fanout_rule_binds_when_tight(self, compiled, routed,
                                           library):
        limit = int(compiled.fanout_count.max()) - 1
        assert limit >= 1
        tight = repair_drv(
            compiled, routed, ToolParameters(max_fanout=limit), library
        )
        assert tight.n_violations >= 1
        assert tight.n_buffers >= 1

    def test_tighter_transition_more_buffers(self, compiled, routed,
                                             library):
        loose = repair_drv(
            compiled, routed, ToolParameters(max_transition=0.34), library
        )
        tight = repair_drv(
            compiled, routed, ToolParameters(max_transition=0.10), library
        )
        assert tight.n_buffers >= loose.n_buffers

    def test_buffering_reduces_effective_load(self, compiled, routed,
                                              library, drv_result):
        pins = compiled.sink_load_cap()
        violating = drv_result.repair_delay > 0
        if violating.any():
            assert np.all(
                drv_result.effective_load[violating]
                <= pins[violating] + drv_result.net_wire_cap[violating]
                + 1e6  # effective load includes buffer pin, bounded
            )

    def test_added_area_scales_with_buffers(self, drv_result, library):
        buf = library.variant("BUF", 4)
        assert drv_result.added_area == pytest.approx(
            drv_result.n_buffers * buf.area
        )

    def test_rcfactor_scales_wire_cap(self, compiled, routed, library):
        lo = repair_drv(
            compiled, routed, ToolParameters(place_rcfactor=1.0), library
        )
        hi = repair_drv(
            compiled, routed, ToolParameters(place_rcfactor=1.3), library
        )
        assert hi.net_wire_cap.sum() > lo.net_wire_cap.sum()

    def test_net_length_nonnegative(self, drv_result):
        assert np.all(drv_result.net_length >= 0)


class TestSta:
    def test_arrivals_nonnegative(self, compiled, drv_result, cts_result,
                                  default_params, routed):
        t = analyze_timing(
            compiled, drv_result, cts_result, default_params,
            routed.routed_edge_length,
        )
        assert np.all(t.arrival >= 0)
        assert t.critical_delay > 0

    def test_uncertainty_adds_to_delay(self, compiled, drv_result,
                                       cts_result, routed):
        lo = analyze_timing(
            compiled, drv_result, cts_result,
            ToolParameters(place_uncertainty=20.0),
            routed.routed_edge_length,
        )
        hi = analyze_timing(
            compiled, drv_result, cts_result,
            ToolParameters(place_uncertainty=200.0),
            routed.routed_edge_length,
        )
        assert hi.critical_delay == pytest.approx(
            lo.critical_delay + 180.0
        )

    def test_rcfactor_slows_wires(self, compiled, drv_result, cts_result,
                                  routed):
        lo = analyze_timing(
            compiled, drv_result, cts_result,
            ToolParameters(place_rcfactor=1.0),
            routed.routed_edge_length,
        )
        hi = analyze_timing(
            compiled, drv_result, cts_result,
            ToolParameters(place_rcfactor=1.3),
            routed.routed_edge_length,
        )
        assert hi.critical_delay > lo.critical_delay

    def test_slack_consistent(self, compiled, drv_result, cts_result,
                              default_params, routed):
        t = analyze_timing(
            compiled, drv_result, cts_result, default_params,
            routed.routed_edge_length,
        )
        assert t.slack == pytest.approx(
            default_params.clock_period_ps - t.critical_delay
        )

    def test_critical_cells_nonempty(self, compiled, drv_result,
                                     cts_result, default_params, routed):
        t = analyze_timing(
            compiled, drv_result, cts_result, default_params,
            routed.routed_edge_length,
        )
        assert len(t.critical_cells) > 0

    def test_delay_ns_conversion(self, compiled, drv_result, cts_result,
                                 default_params, routed):
        t = analyze_timing(
            compiled, drv_result, cts_result, default_params,
            routed.routed_edge_length,
        )
        assert t.delay_ns == pytest.approx(t.critical_delay / 1000.0)


class TestPower:
    def test_components_positive(self, compiled, drv_result, cts_result,
                                 default_params, library):
        p = analyze_power(
            compiled, drv_result, cts_result, default_params, library
        )
        assert p.switching_power > 0
        assert p.internal_power > 0
        assert p.leakage_power > 0
        assert p.clock_power > 0

    def test_total_is_sum(self, compiled, drv_result, cts_result,
                          default_params, library):
        p = analyze_power(
            compiled, drv_result, cts_result, default_params, library
        )
        assert p.total_power == pytest.approx(
            p.switching_power + p.internal_power + p.leakage_power
            + p.clock_power
        )

    def test_power_scales_with_frequency(self, compiled, drv_result,
                                         cts_result, library):
        lo = analyze_power(
            compiled, drv_result, cts_result,
            ToolParameters(freq=800.0), library,
        )
        hi = analyze_power(
            compiled, drv_result, cts_result,
            ToolParameters(freq=1200.0), library,
        )
        assert hi.total_power > lo.total_power
        # Dynamic part should scale ~linearly.
        assert hi.switching_power == pytest.approx(
            lo.switching_power * 1.5, rel=1e-6
        )

    def test_clock_gating_saves_power(self, compiled, drv_result,
                                      cts_result, library):
        base = analyze_power(
            compiled, drv_result, cts_result,
            ToolParameters(clock_power_driven=False), library,
        )
        gated = analyze_power(
            compiled, drv_result, cts_result,
            ToolParameters(clock_power_driven=True), library,
        )
        assert gated.clock_power < base.clock_power
