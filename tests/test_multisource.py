"""Tests for the multi-source transfer GP extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gp import GPRegressor
from repro.gp.multisource import MultiSourceTransferGP

rng = np.random.default_rng(7)


def _f(X):
    return np.sin(3 * X.sum(axis=1))


def _make(n_tgt=10, n_src=50):
    Xs1 = rng.uniform(size=(n_src, 3))
    ys1 = _f(Xs1)  # well-correlated source
    Xs2 = rng.uniform(size=(n_src, 3))
    ys2 = rng.normal(size=n_src)  # pure-noise source
    Xt = rng.uniform(size=(n_tgt, 3))
    yt = _f(Xt) + 0.03
    Xq = rng.uniform(size=(60, 3))
    yq = _f(Xq) + 0.03
    return [(Xs1, ys1), (Xs2, ys2)], Xt, yt, Xq, yq


class TestFit:
    def test_learns_per_source_similarity(self):
        sources, Xt, yt, Xq, yq = _make()
        model = MultiSourceTransferGP(seed=0).fit(sources, Xt, yt)
        lams = model.lambdas
        assert len(lams) == 2
        # The informative source must be rated more similar than the
        # noise source.
        assert lams[0] > lams[1]
        assert lams[0] > 0.4

    def test_beats_target_only(self):
        sources, Xt, yt, Xq, yq = _make()
        multi = MultiSourceTransferGP(seed=0).fit(sources, Xt, yt)
        solo = GPRegressor(seed=0).fit(Xt, yt)
        rmse_multi = np.sqrt(np.mean((multi.predict(Xq)[0] - yq) ** 2))
        rmse_solo = np.sqrt(np.mean((solo.predict(Xq)[0] - yq) ** 2))
        assert rmse_multi < rmse_solo

    def test_matches_two_task_model_with_one_source(self):
        sources, Xt, yt, Xq, yq = _make()
        one = MultiSourceTransferGP(seed=0).fit(sources[:1], Xt, yt)
        mean, var = one.predict(Xq)
        rmse = np.sqrt(np.mean((mean - yq) ** 2))
        assert rmse < 0.2
        assert np.all(var > 0)

    def test_no_sources(self):
        _, Xt, yt, Xq, _ = _make(n_tgt=20)
        model = MultiSourceTransferGP(seed=0).fit([], Xt, yt)
        mean, var = model.predict(Xq)
        assert mean.shape == (60,)
        assert model.lambdas.shape == (0,)

    def test_empty_source_entries_skipped(self):
        sources, Xt, yt, *_ = _make()
        sources = sources + [(np.empty((0, 3)), np.empty(0))]
        model = MultiSourceTransferGP(seed=0).fit(sources, Xt, yt)
        assert len(model.lambdas) == 2

    def test_task_matrix_psd(self):
        sources, Xt, yt, *_ = _make()
        model = MultiSourceTransferGP(seed=0).fit(sources, Xt, yt)
        B = model._task_matrix(model._coeffs())
        eigs = np.linalg.eigvalsh(B)
        assert eigs.min() > -1e-10
        assert np.allclose(np.diag(B), 1.0)


class TestValidation:
    def test_empty_target_rejected(self):
        with pytest.raises(ValueError):
            MultiSourceTransferGP().fit(
                [], np.empty((0, 3)), np.empty(0)
            )

    def test_misaligned_source_rejected(self):
        _, Xt, yt, *_ = _make()
        with pytest.raises(ValueError, match="misaligned"):
            MultiSourceTransferGP().fit(
                [(np.zeros((5, 3)), np.zeros(4))], Xt, yt
            )

    def test_dim_mismatch_rejected(self):
        _, Xt, yt, *_ = _make()
        with pytest.raises(ValueError, match="dimensionality"):
            MultiSourceTransferGP().fit(
                [(np.zeros((5, 2)), np.zeros(5))], Xt, yt
            )

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            MultiSourceTransferGP().predict(np.zeros((1, 3)))

    def test_bad_init_params(self):
        with pytest.raises(ValueError):
            MultiSourceTransferGP(a=-1.0)
        with pytest.raises(ValueError):
            MultiSourceTransferGP(noise=0.0)

    def test_include_noise(self):
        sources, Xt, yt, Xq, _ = _make()
        model = MultiSourceTransferGP(seed=0).fit(sources, Xt, yt)
        _, v0 = model.predict(Xq[:3])
        _, v1 = model.predict(Xq[:3], include_noise=True)
        assert np.all(v1 >= v0)
