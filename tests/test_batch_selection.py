"""Batched q-point selection, fantasy collapse, and pool refinement.

Covers the PR's contracts:

- ``select_batch`` degenerates to the serial Eq. (13) rule at ``q=1``
  and spreads its picks under the fantasy-collapse diversity penalty;
- a ``q=1`` session with refinement off is bit-identical to the serial
  driver (same Pareto indices, selection sequence, and trace stream);
- out-of-order tells within a batch re-sequence deterministically, and
  a snapshot taken mid-batch (buffered tells outstanding) restores
  bit-identically — including after pool refinement has grown the pool;
- pool refinement grows the pool deterministically, extends the GP
  caches incrementally (append == rebuild), and replays on restore;
- oracle batch edge cases: duplicates, empty batches, and evaluation
  accounting when a batch partially fails under ``ResilientOracle``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CallableOracle,
    PoolOracle,
    PPATunerConfig,
    TuningSession,
    drive,
    select_batch,
    select_next,
)
from repro.core.selection import select_with_fallback
from repro.core.uncertainty import UncertaintyRegions
from repro.obs import MemorySink, TraceRecorder
from repro.obs.events import BatchSelected, PoolRefined, SelectionMade
from repro.obs.replay import replay_trace
from repro.reliability import FaultPolicy, ResilientOracle
from repro.reliability.errors import TransientEvaluationError


def random_pool(seed: int, n: int = 40, d: int = 3, m: int = 2):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, d))
    Y = rng.uniform(0.5, 2.0, size=(n, m))
    return X, Y


def stripped_events(sink: MemorySink) -> list[dict]:
    out = []
    for ev in sink.events:
        d = ev.to_json()
        d.pop("seconds", None)
        out.append(d)
    return out


# ---------------------------------------------------------------------------
# select_batch unit behavior


class TestSelectBatch:
    def _regions(self):
        # Three tight boxes sharing a centre plus one far-away box:
        # naive top-3 would take the three clustered ones.
        lo = np.array([
            [0.0, 0.0],    # diam 1.41, centre (.5, .5)
            [0.05, 0.05],  # diam 1.34, same neighbourhood
            [0.1, 0.1],    # diam 1.27, same neighbourhood
            [5.0, 5.0],    # diam 1.13, centre (5.4, 5.4) — far away
        ])
        hi = np.array([
            [1.0, 1.0],
            [1.0, 1.0],
            [1.0, 1.0],
            [5.8, 5.8],
        ])
        return UncertaintyRegions(lo=lo, hi=hi)

    def test_q1_matches_serial_rule(self):
        regions = self._regions()
        eligible = np.ones(4, dtype=bool)
        batch = select_batch(regions, eligible, q=1)
        serial = select_next(regions, eligible, batch_size=1)
        assert list(batch) == list(serial)

    def test_fantasy_collapse_spreads_the_batch(self):
        regions = self._regions()
        eligible = np.ones(4, dtype=bool)
        naive = select_next(regions, eligible, batch_size=2)
        batch = select_batch(regions, eligible, q=2)
        # Serial top-2 clusters on the shared centre; the penalized
        # batch takes the far candidate second.
        assert list(naive) == [0, 1]
        assert list(batch) == [0, 3]

    def test_unbounded_regions_keep_priority(self):
        regions = UncertaintyRegions.unbounded(3, 2)
        regions.intersect(
            np.array([1]), np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]])
        )
        chosen = select_batch(regions, np.ones(3, dtype=bool), q=2)
        # Both never-predicted candidates (inf diameter) come first.
        assert set(chosen) == {0, 2}

    def test_empty_and_exhausted(self):
        regions = self._regions()
        assert len(select_batch(regions, np.zeros(4, dtype=bool), q=2)) == 0
        chosen = select_batch(regions, np.ones(4, dtype=bool), q=10)
        assert sorted(chosen) == [0, 1, 2, 3]
        assert len(set(chosen)) == 4

    def test_emits_selection_and_batch_events(self):
        sink = MemorySink()
        rec = TraceRecorder(sinks=[sink])
        regions = self._regions()
        chosen = select_batch(
            regions, np.ones(4, dtype=bool), q=2, recorder=rec,
            iteration=7,
        )
        kinds = [type(e) for e in sink.events]
        assert kinds == [SelectionMade, BatchSelected]
        sel, bat = sink.events
        assert sel.selected == [int(i) for i in chosen]
        assert bat.selected == sel.selected
        assert bat.iteration == 7
        assert len(bat.scores) == len(chosen)
        # First score is the raw max diameter (no penalty applied yet).
        assert bat.scores[0] == pytest.approx(bat.diameters[0])

    def test_fallback_respects_quarantine_mask(self):
        regions = self._regions()
        eligible = np.ones(4, dtype=bool)
        quarantined = np.zeros(4, dtype=bool)
        quarantined[0] = True  # failed permanently in an earlier batch
        evaluated, failed = select_with_fallback(
            regions, eligible, 2, lambda i: True,
            quarantined=quarantined,
        )
        assert 0 not in evaluated and 0 not in failed
        assert evaluated == [1, 2]


# ---------------------------------------------------------------------------
# q=1 bit-identity (the PR's backward-compatibility guarantee)


@pytest.mark.fastpath
class TestSerialEquivalence:
    def _drive(self, config, seed=3):
        X, Y = random_pool(seed)
        sink = MemorySink()
        session = TuningSession(
            config, X, Y.shape[1],
            recorder=TraceRecorder(sinks=[sink]),
        )
        result = drive(session, PoolOracle(Y))
        return result, stripped_events(sink)

    def test_explicit_q1_identical_to_default_config(self):
        base = PPATunerConfig(max_iterations=12, seed=0)
        explicit = PPATunerConfig(
            max_iterations=12, seed=0, q=1, pool_refine_every=0,
        )
        r_base, ev_base = self._drive(base)
        r_explicit, ev_explicit = self._drive(explicit)
        np.testing.assert_array_equal(
            r_base.pareto_indices, r_explicit.pareto_indices
        )
        assert [h.selected for h in r_base.history] == [
            h.selected for h in r_explicit.history
        ]
        assert ev_base == ev_explicit

    def test_q1_trace_has_no_batch_events(self):
        cfg = PPATunerConfig(max_iterations=10, seed=1)
        _, events = self._drive(cfg)
        assert all(e["type"] != "batch_selected" for e in events)
        assert all(e["type"] != "pool_refined" for e in events)

    def test_batched_run_still_covers_serial_consumers(self):
        # q>1 traces keep one aggregate SelectionMade per round, so
        # replay/history tooling built on the serial stream still works.
        X, Y = random_pool(5)
        cfg = PPATunerConfig(max_iterations=8, seed=2, q=3)
        sink = MemorySink()
        session = TuningSession(
            cfg, X, Y.shape[1], recorder=TraceRecorder(sinks=[sink])
        )
        result = drive(session, PoolOracle(Y))
        replay = replay_trace(list(sink.events))
        np.testing.assert_array_equal(
            replay.pareto_indices, result.pareto_indices
        )
        assert replay.batch_selections  # q>1 emits the batched view
        for ev in replay.batch_selections:
            assert len(ev.selected) <= 3
            assert len(set(ev.selected)) == len(ev.selected)


# ---------------------------------------------------------------------------
# batched drive: same verified front, fewer synchronous rounds


class TestBatchedDrive:
    def test_batched_front_mutually_non_dominated(self):
        from repro.pareto import non_dominated_mask

        X, Y = random_pool(11, n=50)
        cfg = PPATunerConfig(max_iterations=15, seed=4, q=4)
        result = drive(
            TuningSession(cfg, X, Y.shape[1]), PoolOracle(Y)
        )
        assert len(result.pareto_indices) > 0
        assert non_dominated_mask(result.pareto_points).all()

    def test_batch_dispatch_counts_once_per_candidate(self):
        X, Y = random_pool(13, n=30)
        cfg = PPATunerConfig(max_iterations=10, seed=0, q=4)
        oracle = PoolOracle(Y)
        result = drive(TuningSession(cfg, X, Y.shape[1]), oracle)
        assert result.n_evaluations == oracle.n_evaluations

    def test_ask_returns_at_most_q_in_loop_phase(self):
        X, Y = random_pool(7)
        cfg = PPATunerConfig(max_iterations=10, seed=0, q=3)
        s = TuningSession(cfg, X, Y.shape[1])
        # Clear initialization first.
        pending = s.ask()
        while pending and s.phase == "init":
            for i in list(pending):
                s.tell(int(i), Y[int(i)])
            pending = s.ask()
        while not s.done and s.phase == "loop":
            assert len(pending) <= 3
            assert len(set(pending)) == len(pending)
            for i in list(pending):
                s.tell(int(i), Y[int(i)])
            pending = s.ask()


# ---------------------------------------------------------------------------
# out-of-order tells and mid-batch snapshots


def assert_snapshots_equal(a: dict, b: dict) -> None:
    """Full state equality, excluding wall-clock (elapsed feeds the
    fingerprint, so fingerprints differ across re-snapshots by design)."""
    volatile = {"elapsed", "fingerprint"}
    meta_a = {k: v for k, v in a["meta"].items() if k not in volatile}
    meta_b = {k: v for k, v in b["meta"].items() if k not in volatile}
    assert meta_a == meta_b
    assert set(a["arrays"]) == set(b["arrays"])
    for k in a["arrays"]:
        np.testing.assert_array_equal(a["arrays"][k], b["arrays"][k])


class TestMidBatchSnapshot:
    def _advance_to_loop_batch(self, s, Y):
        pending = s.ask()
        while pending and s.phase != "loop":
            for i in list(pending):
                s.tell(int(i), Y[int(i) % len(Y)])
            pending = s.ask()
        return pending

    def test_snapshot_with_buffered_tells_restores_bit_identically(self):
        X, Y = random_pool(17, n=36)
        cfg = PPATunerConfig(max_iterations=12, seed=1, q=4)
        s = TuningSession(cfg, X, Y.shape[1])
        pending = self._advance_to_loop_batch(s, Y)
        assert len(pending) > 1
        # Tell the *last* batch member first: it buffers out of order.
        tail = int(pending[-1])
        s.tell(tail, Y[tail])
        assert tail not in s.ask()

        snap = s.snapshot()
        restored = TuningSession.restore(snap)
        assert_snapshots_equal(restored.snapshot(), snap)

        # Both finish identically from the interrupted point.
        r_live = drive(s, PoolOracle(Y))
        r_rest = drive(restored, PoolOracle(Y))
        np.testing.assert_array_equal(
            r_live.pareto_indices, r_rest.pareto_indices
        )
        assert [h.selected for h in r_live.history] == [
            h.selected for h in r_rest.history
        ]

    def test_duplicate_buffered_tell_rejected(self):
        X, Y = random_pool(19, n=36)
        cfg = PPATunerConfig(max_iterations=12, seed=1, q=4)
        s = TuningSession(cfg, X, Y.shape[1])
        pending = self._advance_to_loop_batch(s, Y)
        assert len(pending) > 1
        tail = int(pending[-1])
        s.tell(tail, Y[tail])
        with pytest.raises(ValueError, match="duplicate"):
            s.tell(tail, Y[tail])


# ---------------------------------------------------------------------------
# pool refinement


def _quadratic_oracle(X_pool: np.ndarray, workers: int = 1):
    def f(x: np.ndarray) -> np.ndarray:
        return np.array([
            float(np.sum((x - 0.3) ** 2)),
            float(np.sum((x - 0.7) ** 2)),
        ])

    return CallableOracle(f, X_pool, 2, workers=workers)


class TestPoolRefinement:
    def _config(self, **kw):
        base = dict(
            max_iterations=14, seed=2, pool_refine_every=4,
            pool_refine_points=6, reopt_every=0, n_restarts=0,
        )
        base.update(kw)
        return PPATunerConfig(**base)

    def test_pool_grows_and_emits_events(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(size=(30, 3))
        sink = MemorySink()
        s = TuningSession(
            self._config(), X, 2, recorder=TraceRecorder(sinks=[sink])
        )
        result = drive(s, _quadratic_oracle(X))
        refined = [e for e in sink.events if isinstance(e, PoolRefined)]
        assert refined
        assert s.n == 30 + sum(e.n_new for e in refined)
        assert s.n > 30
        for ev in refined:
            assert 0 < ev.n_new <= 6
            assert ev.zoom == pytest.approx(s.config.pool_zoom)
        # Refined rows stay inside the original normalization box, so
        # restore-time normalization is invariant under growth.
        lo, hi = X.min(axis=0), X.max(axis=0)
        assert (s.X_pool >= lo - 1e-12).all()
        assert (s.X_pool <= hi + 1e-12).all()
        assert len(result.pareto_indices) > 0

    def test_refinement_is_deterministic(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(30, 3))
        runs = []
        for _ in range(2):
            s = TuningSession(self._config(), X, 2)
            r = drive(s, _quadratic_oracle(X))
            runs.append((s.X_pool.copy(), list(r.pareto_indices)))
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        assert runs[0][1] == runs[1][1]

    def test_snapshot_after_growth_restores_bit_identically(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(size=(30, 3))
        s = TuningSession(self._config(), X, 2)
        oracle = _quadratic_oracle(X)
        # Step manually until the pool has grown at least once.
        pending = s.ask()
        while pending and s.n == 30:
            if s.n > oracle.n_candidates:
                oracle.extend(s.X_pool[oracle.n_candidates:])
            for i in list(pending):
                s.tell(
                    int(i), oracle.evaluate(int(i)),
                    n_evaluations=oracle.n_evaluations,
                )
            pending = s.ask()
        assert s.n > 30, "refinement never fired"

        snap = s.snapshot()
        restored = TuningSession.restore(snap)
        assert restored.n == s.n
        assert_snapshots_equal(restored.snapshot(), snap)

        oracle2 = _quadratic_oracle(X)
        r_live = drive(s, oracle)
        r_rest = drive(restored, oracle2)
        np.testing.assert_array_equal(
            r_live.pareto_indices, r_rest.pareto_indices
        )
        assert [h.selected for h in r_live.history] == [
            h.selected for h in r_rest.history
        ]

    def test_drive_raises_for_non_extendable_oracle(self):
        rng = np.random.default_rng(3)
        X = rng.uniform(size=(24, 3))
        Y = np.column_stack([
            np.sum((X - 0.3) ** 2, axis=1),
            np.sum((X - 0.7) ** 2, axis=1),
        ])
        s = TuningSession(self._config(), X, 2)
        with pytest.raises(RuntimeError, match="extend"):
            drive(s, PoolOracle(Y))


# ---------------------------------------------------------------------------
# incremental GP pool-append equivalence


@pytest.mark.fastpath
class TestExtendPoolEquivalence:
    def test_append_matches_full_registration(self):
        from repro.gp import RBFKernel, TransferGP

        rng = np.random.default_rng(9)
        Xs = rng.uniform(size=(20, 3))
        ys = rng.normal(size=20)
        Xt = rng.uniform(size=(8, 3))
        yt = rng.normal(size=8)
        pool = rng.uniform(size=(25, 3))
        X_new = rng.uniform(size=(7, 3))
        grown = np.vstack([pool, X_new])

        def fitted():
            return TransferGP(
                kernel=RBFKernel(np.full(3, 0.4)), optimize=False
            ).fit(Xs, ys, Xt, yt)

        # Arm A: register the prefix, warm the cache, append.
        a = fitted()
        a.register_pool(pool)
        a.predict_pool(np.arange(len(pool)))
        a.extend_pool(X_new)
        ma, va = a.predict_pool(np.arange(len(grown)))

        # Arm B: register the full grown pool up front.
        b = fitted()
        b.register_pool(grown)
        mb, vb = b.predict_pool(np.arange(len(grown)))

        np.testing.assert_allclose(ma, mb, atol=1e-10)
        np.testing.assert_allclose(va, vb, atol=1e-10)
        # The appended rows' cache also matches a direct predict.
        md, vd = a.predict(X_new)
        np.testing.assert_allclose(ma[len(pool):], md, atol=1e-10)
        np.testing.assert_allclose(va[len(pool):], vd, atol=1e-10)


# ---------------------------------------------------------------------------
# oracle batch edge cases


class TestOracleBatchEdges:
    def test_empty_batch_returns_zero_rows(self):
        _, Y = random_pool(0)
        oracle = PoolOracle(Y)
        out = oracle.evaluate_batch([])
        assert out.shape == (0, Y.shape[1])
        assert oracle.n_evaluations == 0

    def test_callable_batch_duplicates_evaluated_once(self):
        rng = np.random.default_rng(4)
        X = rng.uniform(size=(10, 3))
        calls = []

        def f(x):
            calls.append(tuple(np.round(x, 12)))
            return np.array([float(x.sum()), float(x.prod())])

        oracle = CallableOracle(f, X, 2, workers=3)
        out = oracle.evaluate_batch([2, 5, 2, 7])
        assert out.shape == (4, 2)
        np.testing.assert_array_equal(out[0], out[2])
        assert oracle.n_evaluations == 3
        assert len(calls) == 3  # the duplicate never hit the function

    def test_callable_batch_matches_serial(self):
        rng = np.random.default_rng(5)
        X = rng.uniform(size=(12, 3))

        def f(x):
            return np.array([float(x.sum()), float((x ** 2).sum())])

        par = CallableOracle(f, X, 2, workers=4)
        ser = CallableOracle(f, X, 2, workers=1)
        idx = [3, 1, 4, 1, 5]
        np.testing.assert_array_equal(
            par.evaluate_batch(idx), ser.evaluate_batch(idx)
        )
        assert par.n_evaluations == ser.n_evaluations

    def test_resilient_partial_failure_accounting(self):
        rng = np.random.default_rng(6)
        X = rng.uniform(size=(8, 2))
        attempts: dict[int, int] = {}

        def flaky(x):
            key = int(np.argmin(np.abs(X[:, 0] - x[0])))
            attempts[key] = attempts.get(key, 0) + 1
            # Fails the batch prefetch AND the first serial attempt, so
            # the fallback path must retry it to succeed.
            if key == 2 and attempts[key] <= 2:
                raise TransientEvaluationError("injected")
            return np.array([float(x.sum()), float(x[0])])

        inner = CallableOracle(flaky, X, 2, workers=3)
        oracle = ResilientOracle(
            inner, FaultPolicy(max_retries=2, backoff_base=0.0),
            sleep=lambda s: None,
        )
        out = oracle.evaluate_batch([1, 2, 3])
        assert out.shape == (3, 2)
        # The batch prefetch failed on candidate 2's first attempt; the
        # serial fallback retried it and re-served 1 and 3 from cache.
        assert oracle.n_retries >= 1
        assert inner.n_evaluations == 3  # each candidate counted once
        assert np.isfinite(out).all()

    def test_resilient_empty_batch(self):
        _, Y = random_pool(1)
        oracle = ResilientOracle(PoolOracle(Y))
        assert oracle.evaluate_batch([]).shape == (0, Y.shape[1])

    def test_resilient_extend_delegates_or_raises(self):
        rng = np.random.default_rng(7)
        X = rng.uniform(size=(6, 2))
        inner = CallableOracle(
            lambda x: np.array([1.0, 2.0]), X, 2
        )
        oracle = ResilientOracle(inner)
        oracle.extend(rng.uniform(size=(3, 2)))
        assert inner.n_candidates == 9

        _, Y = random_pool(2)
        plain = ResilientOracle(PoolOracle(Y))
        with pytest.raises(RuntimeError, match="pool extension"):
            plain.extend(np.zeros((1, 3)))
