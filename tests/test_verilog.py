"""Tests for structural Verilog export/import."""

from __future__ import annotations

import pytest

from repro.pdtool.library import CellLibrary
from repro.pdtool.netlist import PRIMARY_INPUT, Netlist
from repro.pdtool.verilog import (
    VerilogParseError,
    read_verilog,
    write_verilog,
)


@pytest.fixture()
def small_netlist(library) -> Netlist:
    nl = Netlist("adder_bit", library)
    nl.add_input()
    nl.add_input()
    a = nl.add_cell("DFF", [PRIMARY_INPUT])
    b = nl.add_cell("DFF", [PRIMARY_INPUT])
    s = nl.add_cell("XOR2", [a, b])
    c = nl.add_cell("AND2", [a, b], drive=2)
    nl.add_cell("DFF", [s])
    nl.add_cell("DFF", [c])
    return nl


class TestWrite:
    def test_emits_module(self, small_netlist, tmp_path):
        path = tmp_path / "out.v"
        write_verilog(small_netlist, path)
        text = path.read_text()
        assert "module adder_bit" in text
        assert "endmodule" in text
        assert "XOR2_X1" in text
        assert "AND2_X2" in text

    def test_sequential_cells_get_clock(self, small_netlist, tmp_path):
        path = tmp_path / "out.v"
        write_verilog(small_netlist, path)
        text = path.read_text()
        assert ".CK(clk)" in text
        assert text.count(".Q(") == 4  # four DFFs

    def test_inputs_declared(self, small_netlist, tmp_path):
        path = tmp_path / "out.v"
        write_verilog(small_netlist, path)
        text = path.read_text()
        assert "input pi0;" in text and "input pi1;" in text


class TestRoundTrip:
    def test_small_netlist(self, small_netlist, tmp_path):
        path = tmp_path / "rt.v"
        write_verilog(small_netlist, path)
        back = read_verilog(path, small_netlist.library)
        assert back.name == small_netlist.name
        assert back.n_cells == small_netlist.n_cells
        assert back.n_primary_inputs == small_netlist.n_primary_inputs
        assert (
            back.counts_by_function()
            == small_netlist.counts_by_function()
        )

    def test_mac_netlist(self, tiny_netlist, tmp_path):
        path = tmp_path / "mac.v"
        write_verilog(tiny_netlist, path)
        back = read_verilog(path, tiny_netlist.library)
        assert back.n_cells == tiny_netlist.n_cells
        assert (
            back.counts_by_function() == tiny_netlist.counts_by_function()
        )

    def test_roundtrip_preserves_qor(self, tiny_netlist, tmp_path):
        """The re-imported design must implement identical physics."""
        from repro.pdtool.flow import FlowConfig, PDFlow
        from repro.pdtool.params import ToolParameters

        path = tmp_path / "mac.v"
        write_verilog(tiny_netlist, path)
        back = read_verilog(path, tiny_netlist.library)
        cfg = FlowConfig(qor_noise=0.0, variation_amplitude=0.0)
        a = PDFlow(tiny_netlist, cfg).run(ToolParameters())
        b = PDFlow(back, cfg).run(ToolParameters())
        assert a.area == pytest.approx(b.area)
        assert a.delay == pytest.approx(b.delay, rel=1e-6)
        assert a.power == pytest.approx(b.power, rel=1e-6)

    def test_instance_names_preserved(self, small_netlist, tmp_path):
        path = tmp_path / "rt.v"
        write_verilog(small_netlist, path)
        back = read_verilog(path, small_netlist.library)
        assert {i.name for i in back.instances} == {
            i.name for i in small_netlist.instances
        }


class TestParserErrors:
    def _parse(self, tmp_path, text):
        path = tmp_path / "bad.v"
        path.write_text(text)
        return read_verilog(path)

    def test_unknown_cell(self, tmp_path):
        with pytest.raises(VerilogParseError, match="unknown cell"):
            self._parse(tmp_path, """
module m (clk, pi0);
  input clk; input pi0;
  wire n0;
  MAGIC_X9 u0 (.A(pi0), .Y(n0));
endmodule
""")

    def test_undriven_net(self, tmp_path):
        with pytest.raises(VerilogParseError, match="undriven"):
            self._parse(tmp_path, """
module m (clk, pi0);
  input clk; input pi0;
  wire n0;
  INV_X1 u0 (.A(mystery), .Y(n0));
endmodule
""")

    def test_multiply_driven_net(self, tmp_path):
        with pytest.raises(VerilogParseError, match="multiply driven"):
            self._parse(tmp_path, """
module m (clk, pi0);
  input clk; input pi0;
  wire n0;
  INV_X1 u0 (.A(pi0), .Y(n0));
  INV_X1 u1 (.A(pi0), .Y(n0));
endmodule
""")

    def test_combinational_cycle(self, tmp_path):
        with pytest.raises(VerilogParseError, match="cyclic"):
            self._parse(tmp_path, """
module m (clk, pi0);
  input clk; input pi0;
  wire n0; wire n1;
  INV_X1 u0 (.A(n1), .Y(n0));
  INV_X1 u1 (.A(n0), .Y(n1));
endmodule
""")

    def test_missing_pin(self, tmp_path):
        with pytest.raises(VerilogParseError, match="missing pin"):
            self._parse(tmp_path, """
module m (clk, pi0);
  input clk; input pi0;
  wire n0;
  NAND2_X1 u0 (.A(pi0), .Y(n0));
endmodule
""")

    def test_no_module(self, tmp_path):
        with pytest.raises(VerilogParseError, match="no module"):
            self._parse(tmp_path, "wire x;\n")

    def test_unsupported_construct(self, tmp_path):
        with pytest.raises(VerilogParseError, match="unsupported"):
            self._parse(tmp_path, """
module m (clk);
  input clk;
  assign x = 1'b0;
endmodule
""")

    def test_comments_ignored(self, tmp_path):
        path = tmp_path / "c.v"
        path.write_text("""
// a comment
module m (clk, pi0); /* block
comment */
  input clk; input pi0;
  wire n0;
  INV_X1 u0 (.A(pi0), .Y(n0)); // inline
endmodule
""")
        nl = read_verilog(path)
        assert nl.n_cells == 1
