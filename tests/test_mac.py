"""Unit tests for the MAC design generator."""

from __future__ import annotations

import pytest

from repro.pdtool.mac import (
    LARGE_MAC,
    SMALL_MAC,
    MacSpec,
    estimate_cell_count,
    generate_mac_netlist,
)


class TestGeneration:
    def test_validates(self, tiny_netlist):
        tiny_netlist.validate()

    def test_has_registers(self, tiny_netlist):
        counts = tiny_netlist.counts_by_function()
        assert counts.get("DFF", 0) > 0

    def test_has_multiplier_structure(self, tiny_netlist):
        counts = tiny_netlist.counts_by_function()
        assert counts.get("AND2", 0) > 0  # partial products
        assert counts.get("FA", 0) > 0  # wallace compressors

    def test_deterministic(self):
        spec = MacSpec(width=4, lanes=1, acc_bits=8, name="d")
        a = generate_mac_netlist(spec)
        b = generate_mac_netlist(spec)
        assert a.n_cells == b.n_cells
        assert [i.cell.name for i in a.instances] == [
            i.cell.name for i in b.instances
        ]

    def test_width_scales_cells(self):
        small = generate_mac_netlist(
            MacSpec(width=4, lanes=1, acc_bits=8, name="a")
        )
        big = generate_mac_netlist(
            MacSpec(width=8, lanes=1, acc_bits=8, name="b")
        )
        assert big.n_cells > 2 * small.n_cells

    def test_lanes_scale_cells_linearly(self):
        one = generate_mac_netlist(
            MacSpec(width=4, lanes=1, acc_bits=8, name="a")
        )
        four = generate_mac_netlist(
            MacSpec(width=4, lanes=4, acc_bits=8, name="b")
        )
        # Minus the shared enable register.
        assert four.n_cells == pytest.approx(
            4 * (one.n_cells - 1) + 1, rel=0.02
        )

    def test_benchmark_specs_differ_in_scale(self):
        small = generate_mac_netlist(SMALL_MAC)
        large = generate_mac_netlist(LARGE_MAC)
        assert large.n_cells > 2 * small.n_cells

    def test_high_fanout_enable_net(self, tiny_netlist):
        compiled = tiny_netlist.compile()
        # The broadcast enable should be the highest-fanout net and
        # exceed typical max_fanout limits on real benchmarks.
        assert compiled.fanout_count.max() >= tiny_netlist.instances[
            0
        ].cell.n_inputs * 4

    def test_primary_inputs_counted(self, tiny_netlist):
        # 2 operands x width bits per lane + enable.
        assert tiny_netlist.n_primary_inputs == 2 * 4 * 1 + 1

    def test_estimate_within_factor_two(self):
        spec = MacSpec(width=6, lanes=2, acc_bits=16, name="e")
        actual = generate_mac_netlist(spec).n_cells
        estimate = estimate_cell_count(spec)
        assert 0.5 < estimate / actual < 2.0

    def test_pipeline_stages_add_registers(self):
        base = generate_mac_netlist(
            MacSpec(width=4, lanes=1, acc_bits=8, pipeline_stages=1,
                    name="p1")
        )
        deep = generate_mac_netlist(
            MacSpec(width=4, lanes=1, acc_bits=8, pipeline_stages=3,
                    name="p3")
        )
        assert (
            deep.counts_by_function()["DFF"]
            > base.counts_by_function()["DFF"]
        )

    def test_acyclic_by_construction(self, tiny_netlist):
        for idx, inst in enumerate(tiny_netlist.instances):
            for f in inst.fanins:
                assert f < idx or f == -1
