"""Tests for the observability subsystem (``repro.obs``).

Covers the event schema round-trip (property-tested), the sinks and
recorders, metrics aggregation, trace replay fidelity against a live
run, and the human-readable reports.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PoolOracle, PPATuner, PPATunerConfig
from repro.obs import (
    NULL_RECORDER,
    CalibrationDone,
    DecisionSummary,
    IterationEnd,
    IterationStart,
    JsonlSink,
    MemorySink,
    MetricsRegistry,
    NullRecorder,
    RunEnd,
    RunStart,
    SelectionMade,
    Sink,
    ToolEvaluation,
    TraceRecorder,
    convergence_from_trace,
    diff_traces,
    event_from_json,
    format_events,
    read_trace,
    records_equal,
    replay_trace,
    summarize_trace,
    trace_path_for,
)

# --- event strategies --------------------------------------------------

_ints = st.integers(min_value=0, max_value=10**9)
_floats = st.floats(allow_nan=False, width=64)
_int_lists = st.lists(_ints, max_size=8)
_float_lists = st.lists(_floats, max_size=8)
_words = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
    max_size=20,
)

_events = st.one_of(
    st.builds(
        RunStart, n_candidates=_ints, n_objectives=_ints, seed=_ints,
        n_init=_ints, n_sources=_ints, delta=_float_lists,
    ),
    st.builds(
        IterationStart, iteration=_ints, n_undecided=_ints,
        n_pareto=_ints, n_dropped=_ints,
    ),
    st.builds(
        CalibrationDone, iteration=_ints,
        path=st.sampled_from(["full", "incremental", "noop"]),
        n_models=_ints, n_new=_ints, n_fallbacks=_ints,
        reopt=st.booleans(), seconds=_floats,
    ),
    st.builds(
        DecisionSummary, iteration=_ints, n_live=_ints,
        n_undecided=_ints, n_pareto=_ints, n_dropped=_ints,
        newly_dropped=_ints, newly_pareto=_ints,
    ),
    st.builds(
        SelectionMade, iteration=_ints, selected=_int_lists,
        diameters=_float_lists,
    ),
    st.builds(
        ToolEvaluation, index=_ints, seconds=_floats,
        cached=st.booleans(), oracle=_words, values=_float_lists,
    ),
    st.builds(
        IterationEnd, iteration=_ints, n_undecided=_ints,
        n_pareto=_ints, n_dropped=_ints, n_evaluations=_ints,
        max_diameter=_floats, selected=_int_lists,
    ),
    st.builds(
        RunEnd, stop_reason=_words, n_iterations=_ints,
        n_evaluations=_ints, seconds=_floats,
        pareto_indices=_int_lists, evaluated_indices=_int_lists,
    ),
)


class TestEventSchema:
    @settings(max_examples=200, deadline=None)
    @given(_events)
    def test_round_trips_through_json_line(self, event):
        # The exact serialization path JsonlSink/read_trace use.
        line = json.dumps(event.to_json(), sort_keys=True)
        back = event_from_json(json.loads(line))
        assert type(back) is type(event)
        assert back == event

    def test_nan_and_inf_round_trip(self):
        ev = IterationEnd(
            iteration=0, n_undecided=3, n_pareto=0, n_dropped=0,
            n_evaluations=5, max_diameter=math.nan, selected=[],
        )
        back = event_from_json(json.loads(json.dumps(ev.to_json())))
        assert math.isnan(back.max_diameter)
        ev2 = SelectionMade(iteration=1, selected=[3],
                            diameters=[math.inf])
        back2 = event_from_json(json.loads(json.dumps(ev2.to_json())))
        assert back2.diameters == [math.inf]

    def test_unknown_keys_ignored(self):
        payload = IterationStart(
            iteration=2, n_undecided=5, n_pareto=1, n_dropped=0,
        ).to_json()
        payload["added_in_a_future_version"] = 42
        back = event_from_json(payload)
        assert back.iteration == 2

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown trace event"):
            event_from_json({"type": "bogus"})
        with pytest.raises(ValueError):
            event_from_json({})


class TestSinks:
    def test_memory_sink_ring_buffer(self):
        sink = MemorySink(capacity=3)
        for i in range(5):
            sink.write(IterationStart(
                iteration=i, n_undecided=0, n_pareto=0, n_dropped=0,
            ))
        assert sink.n_written == 5
        assert [e.iteration for e in sink.events] == [2, 3, 4]

    def test_memory_sink_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MemorySink(capacity=0)

    def test_jsonl_sink_lazy_open(self, tmp_path):
        path = tmp_path / "sub" / "t.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()  # wired up but never emitted to
        sink.write(RunEnd(stop_reason="x", n_iterations=0,
                          n_evaluations=0, seconds=0.0))
        sink.close()
        assert path.exists()
        assert len(read_trace(path)) == 1

    def test_sinks_satisfy_protocol(self, tmp_path):
        assert isinstance(MemorySink(), Sink)
        assert isinstance(JsonlSink(tmp_path / "t.jsonl"), Sink)

    def test_read_trace_skips_torn_trailing_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps(IterationStart(
            iteration=0, n_undecided=1, n_pareto=0, n_dropped=0,
        ).to_json())
        path.write_text(good + "\n" + good[: len(good) // 2])
        assert len(read_trace(path)) == 1

    def test_read_trace_rejects_corrupt_middle_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = json.dumps(IterationStart(
            iteration=0, n_undecided=1, n_pareto=0, n_dropped=0,
        ).to_json())
        path.write_text(good + "\n{torn\n" + good + "\n")
        with pytest.raises(ValueError, match="corrupt trace line 2"):
            read_trace(path)

    def test_trace_path_convention(self, tmp_path, monkeypatch):
        p = trace_path_for("abc123", tmp_path)
        assert p == tmp_path / "trace-abc123.jsonl"
        monkeypatch.setenv("PPATUNER_TRACE_DIR", str(tmp_path / "env"))
        assert trace_path_for("h").parent == tmp_path / "env"


class TestRecorders:
    def test_null_recorder_is_falsy(self):
        assert not NULL_RECORDER
        assert not NullRecorder()
        assert bool(TraceRecorder())

    def test_null_recorder_drops_everything(self):
        NULL_RECORDER.emit(RunEnd(stop_reason="x", n_iterations=0,
                                  n_evaluations=0, seconds=0.0))
        NULL_RECORDER.flush()
        NULL_RECORDER.close()

    def test_events_property_requires_memory_sink(self, tmp_path):
        rec = TraceRecorder(sinks=[JsonlSink(tmp_path / "t.jsonl")])
        with pytest.raises(RuntimeError):
            rec.events

    def test_metrics_aggregation(self):
        rec = TraceRecorder()
        rec.emit(ToolEvaluation(index=0, seconds=0.01, cached=False,
                                oracle="pool", values=[1.0]))
        rec.emit(ToolEvaluation(index=0, seconds=0.0, cached=True,
                                oracle="pool", values=[1.0]))
        rec.emit(CalibrationDone(iteration=1, path="incremental",
                                 n_models=2, n_new=1, n_fallbacks=1,
                                 reopt=True, seconds=0.2))
        snap = rec.metrics.snapshot()
        assert snap["counters"]["events.tool_evaluation"] == 2
        assert snap["counters"]["oracle.tool_runs"] == 1
        assert snap["counters"]["oracle.cached_hits"] == 1
        assert snap["counters"]["calibration.fallbacks"] == 1
        assert snap["counters"]["calibration.reopts"] == 1
        assert snap["histograms"]["oracle_seconds"]["count"] == 2
        assert rec.n_emitted == 3
        assert rec.metrics.format()  # renders without error

    def test_metrics_histogram_moments(self):
        m = MetricsRegistry()
        for v in (0.001, 0.004, 0.002):
            m.histogram("lat").observe(v)
        h = m.histogram("lat")
        assert h.count == 3
        assert h.min == 0.001 and h.max == 0.004
        assert h.mean == pytest.approx(0.007 / 3)


def _traced_run(synthetic_pool, path, seed=3, iters=8):
    X, Y, Xs, Ys = synthetic_pool
    rec = TraceRecorder(sinks=[MemorySink(), JsonlSink(path)])
    tuner = PPATuner(
        PPATunerConfig(max_iterations=iters, seed=seed), recorder=rec,
    )
    result = tuner.tune(X, PoolOracle(Y), X_source=Xs, Y_source=Ys)
    rec.close()
    return result, rec


class TestReplay:
    def test_replay_reproduces_live_run_exactly(
        self, synthetic_pool, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        result, _ = _traced_run(synthetic_pool, path)
        replay = replay_trace(path)
        assert records_equal(replay.history, result.history)
        rebuilt = replay.to_result()
        np.testing.assert_array_equal(
            rebuilt.pareto_indices, result.pareto_indices
        )
        np.testing.assert_allclose(
            rebuilt.pareto_points, result.pareto_points
        )
        np.testing.assert_array_equal(
            rebuilt.evaluated_indices, result.evaluated_indices
        )
        assert rebuilt.n_evaluations == result.n_evaluations
        assert rebuilt.n_iterations == result.n_iterations
        assert rebuilt.stop_reason == result.stop_reason

    def test_last_run_wins_on_shared_file(
        self, synthetic_pool, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        _traced_run(synthetic_pool, path, seed=3)
        second, _ = _traced_run(synthetic_pool, path, seed=11)
        replay = replay_trace(path)
        assert records_equal(replay.history, second.history)
        np.testing.assert_array_equal(
            replay.pareto_indices, second.pareto_indices
        )

    def test_truncated_trace_keeps_history(
        self, synthetic_pool, tmp_path
    ):
        path = tmp_path / "run.jsonl"
        result, _ = _traced_run(synthetic_pool, path)
        events = [e for e in read_trace(path)
                  if not isinstance(e, RunEnd)]
        replay = replay_trace(events)
        assert replay.run_end is None
        assert records_equal(replay.history, result.history)
        assert len(replay.pareto_indices) == 0
        with pytest.raises(ValueError, match="truncated"):
            replay.to_result()

    def test_oracle_adoption_and_restore(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        rec = TraceRecorder()
        oracle = PoolOracle(Y)
        PPATuner(
            PPATunerConfig(max_iterations=4, seed=0), recorder=rec,
        ).tune(X, oracle, X_source=Xs, Y_source=Ys)
        # The tuner lends its recorder to the oracle for the run only.
        assert not oracle.recorder
        census = rec.metrics.snapshot()["counters"]
        assert census["events.tool_evaluation"] >= oracle.n_evaluations
        assert census["events.run_start"] == 1
        assert census["events.run_end"] == 1

    def test_disabled_recorder_emits_nothing(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        oracle = PoolOracle(Y)
        result = PPATuner(
            PPATunerConfig(max_iterations=4, seed=0),
        ).tune(X, oracle, X_source=Xs, Y_source=Ys)
        assert result.n_iterations >= 1
        assert not oracle.recorder

    def test_convergence_from_trace_matches_live(
        self, tiny_benchmark, tmp_path
    ):
        from repro.experiments.convergence import convergence_curve

        names = ("power", "delay")
        path = tmp_path / "run.jsonl"
        rec = TraceRecorder(sinks=[JsonlSink(path)])
        result = PPATuner(
            PPATunerConfig(max_iterations=6, seed=5), recorder=rec,
        ).tune(tiny_benchmark.X,
               PoolOracle(tiny_benchmark.objectives(names)))
        rec.close()
        live = convergence_curve("m", result, tiny_benchmark, names)
        replayed = convergence_from_trace(
            path, tiny_benchmark, names, method="m"
        )
        np.testing.assert_array_equal(replayed.runs, live.runs)
        np.testing.assert_allclose(replayed.hv_error, live.hv_error)


class TestReports:
    def test_summary_renders_key_lines(self, synthetic_pool, tmp_path):
        path = tmp_path / "run.jsonl"
        _traced_run(synthetic_pool, path)
        text = summarize_trace(path)
        assert "run: 150 candidates x 2 objectives" in text
        assert "finished:" in text
        assert "calibration:" in text
        assert "oracle:" in text
        assert "rectangles:" in text

    def test_summary_flags_truncation(self, synthetic_pool, tmp_path):
        path = tmp_path / "run.jsonl"
        _traced_run(synthetic_pool, path)
        events = [e for e in read_trace(path)
                  if not isinstance(e, RunEnd)]
        assert "TRUNCATED" in summarize_trace(replay_trace(events))

    def test_format_events_filters(self, synthetic_pool, tmp_path):
        path = tmp_path / "run.jsonl"
        _traced_run(synthetic_pool, path)
        only_sel = format_events(path, event_type="selection_made")
        lines = only_sel.splitlines()
        assert lines and all(
            line.startswith("selection_made") for line in lines
        )
        assert len(format_events(path, limit=3).splitlines()) == 3

    def test_diff_identical_and_divergent(
        self, synthetic_pool, tmp_path
    ):
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        _traced_run(synthetic_pool, a, seed=3)
        _traced_run(synthetic_pool, b, seed=11)
        same = diff_traces(a, a)
        assert "selections identical" in same
        assert "final Pareto sets identical" in same
        differing = diff_traces(a, b)
        assert ("diverges at iteration" in differing
                or "selections identical" in differing)
