"""Tests for PPATuner's multi-source extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PoolOracle, PPATuner, PPATunerConfig
from repro.gp.multisource import MultiSourceTransferGP
from repro.gp.transfer_gp import TransferGP
from repro.pareto import hypervolume_error, pareto_front


@pytest.fixture()
def multi_pool(synthetic_pool):
    X, Y, Xs, Ys = synthetic_pool
    rng = np.random.default_rng(9)
    X_noise = rng.uniform(size=Xs.shape)
    Y_noise = rng.uniform(1.0, 3.0, size=Ys.shape)
    return X, Y, [(Xs, Ys), (X_noise, Y_noise)]


class TestMultiSourceTuning:
    def test_uses_multisource_models(self, multi_pool):
        X, Y, sources = multi_pool
        tuner = PPATuner(PPATunerConfig(max_iterations=15, seed=0))
        tuner.tune(X, PoolOracle(Y), sources=sources)
        assert all(
            isinstance(m, MultiSourceTransferGP) for m in tuner.models_
        )

    def test_single_entry_sources_uses_two_task_model(self, multi_pool):
        X, Y, sources = multi_pool
        tuner = PPATuner(PPATunerConfig(max_iterations=10, seed=0))
        tuner.tune(X, PoolOracle(Y), sources=sources[:1])
        assert all(isinstance(m, TransferGP) for m in tuner.models_)

    def test_quality_comparable_to_single_source(self, multi_pool):
        X, Y, sources = multi_pool
        golden = pareto_front(Y)

        def run(**kwargs):
            res = PPATuner(
                PPATunerConfig(max_iterations=60, seed=3)
            ).tune(X, PoolOracle(Y), **kwargs)
            return hypervolume_error(
                pareto_front(res.pareto_points), golden
            )

        err_multi = run(sources=sources)
        err_single = run(
            X_source=sources[0][0], Y_source=sources[0][1]
        )
        # The irrelevant archive must not break tuning.
        assert err_multi <= err_single + 0.1

    def test_conflicting_args_rejected(self, multi_pool):
        X, Y, sources = multi_pool
        with pytest.raises(ValueError, match="not both"):
            PPATuner().tune(
                X, PoolOracle(Y),
                X_source=sources[0][0], Y_source=sources[0][1],
                sources=sources,
            )

    def test_empty_sources_means_no_transfer(self, multi_pool):
        X, Y, _ = multi_pool
        tuner = PPATuner(PPATunerConfig(max_iterations=8, seed=0))
        result = tuner.tune(X, PoolOracle(Y), sources=[])
        assert len(result.pareto_indices) > 0
        assert all(isinstance(m, TransferGP) for m in tuner.models_)

    def test_misaligned_source_rejected(self, multi_pool):
        X, Y, sources = multi_pool
        bad = [(sources[0][0][:5], sources[0][1])]
        with pytest.raises(ValueError, match="misaligned"):
            PPATuner().tune(X, PoolOracle(Y), sources=bad)

    def test_transfer_off_ignores_sources(self, multi_pool):
        X, Y, sources = multi_pool
        tuner = PPATuner(
            PPATunerConfig(max_iterations=8, seed=0, transfer=False)
        )
        tuner.tune(X, PoolOracle(Y), sources=sources)
        assert all(isinstance(m, TransferGP) for m in tuner.models_)
