"""End-to-end integration: tuners driving the live simulated tool.

The benchmark protocol uses precomputed tables; these tests exercise the
other deployment mode — FlowOracle invoking the PD flow on demand — for
both PPATuner and a baseline, including run accounting consistency
between the oracle and the tool.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import Mlcad19LcbBayesOpt
from repro.core import FlowOracle, PPATuner, PPATunerConfig
from repro.pareto import non_dominated_mask
from repro.space import (
    EnumParameter,
    FloatParameter,
    ParameterSpace,
    latin_hypercube,
)


@pytest.fixture(scope="module")
def live_setup(request):
    flow = request.getfixturevalue("tiny_flow")
    space = ParameterSpace((
        FloatParameter("freq", 900.0, 1300.0),
        EnumParameter("flow_effort", ("standard", "express", "extreme")),
        FloatParameter("max_density_util", 0.55, 0.95),
        FloatParameter("max_allowed_delay", 0.0, 0.2),
    ))
    configs = latin_hypercube(space, 80, seed=2)
    X = space.encode_many(configs)
    return flow, space, configs, X


@pytest.fixture(scope="module")
def tiny_flow(request):
    return request.getfixturevalue("tiny_flow")


class TestPpatunerLive:
    def test_tunes_against_live_tool(self, live_setup):
        flow, _, configs, X = live_setup
        oracle = FlowOracle(flow, configs, ("power", "delay"))
        before = flow.run_count
        result = PPATuner(
            PPATunerConfig(max_iterations=12, seed=0)
        ).tune(X, oracle)
        assert len(result.pareto_indices) >= 1
        # Oracle evaluations are real tool runs (cached per config).
        assert flow.run_count - before >= oracle.n_evaluations > 0

    def test_front_points_are_real_tool_outputs(self, live_setup):
        flow, _, configs, X = live_setup
        oracle = FlowOracle(flow, configs, ("area", "power"))
        result = PPATuner(
            PPATunerConfig(max_iterations=10, seed=1)
        ).tune(X, oracle)
        from repro.pdtool import ToolParameters

        for idx, point in zip(
            result.pareto_indices, result.pareto_points
        ):
            report = flow.run(
                ToolParameters.from_dict(dict(configs[int(idx)]))
            )
            assert point[0] == pytest.approx(report.area)
            assert point[1] == pytest.approx(report.power)


class TestBaselineLive:
    def test_bo_against_live_tool(self, live_setup):
        flow, _, configs, X = live_setup
        oracle = FlowOracle(flow, configs, ("power", "delay"))
        result = Mlcad19LcbBayesOpt(budget=15, seed=0).tune(X, oracle)
        assert result.n_evaluations == 15
        assert non_dominated_mask(result.pareto_points).all()


class TestOracleCaching:
    def test_repeat_evaluations_do_not_rerun_tool(self, live_setup):
        flow, _, configs, _ = live_setup
        oracle = FlowOracle(flow, configs, ("power", "delay"))
        oracle.evaluate(3)
        runs_after_first = flow.run_count
        v2 = oracle.evaluate(3)
        assert flow.run_count == runs_after_first
        assert np.isfinite(v2).all()
