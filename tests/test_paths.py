"""Tests for critical-path extraction and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pdtool.cts import synthesize_clock_tree
from repro.pdtool.drv import repair_drv
from repro.pdtool.params import ToolParameters
from repro.pdtool.paths import (
    extract_critical_paths,
    format_path_report,
    install_report_context,
)
from repro.pdtool.placement import place
from repro.pdtool.routing import route
from repro.pdtool.sta import analyze_timing


@pytest.fixture()
def timing_setup(compiled, library):
    params = ToolParameters()
    placed = place(compiled, params)
    routed = route(compiled, placed, params)
    cts = synthesize_clock_tree(compiled, placed, params, library)
    drv = repair_drv(compiled, routed, params, library)
    timing = analyze_timing(
        compiled, drv, cts, params, routed.routed_edge_length
    )
    return compiled, timing


class TestExtraction:
    def test_paths_end_at_sequential(self, timing_setup):
        compiled, timing = timing_setup
        for path in extract_critical_paths(compiled, timing, 3):
            assert compiled.is_seq[path.endpoint]

    def test_worst_first_ordering(self, timing_setup):
        compiled, timing = timing_setup
        paths = extract_critical_paths(compiled, timing, 5)
        arrivals = [p.arrival for p in paths]
        assert arrivals == sorted(arrivals, reverse=True)

    def test_worst_path_matches_sta(self, timing_setup):
        compiled, timing = timing_setup
        paths = extract_critical_paths(compiled, timing, 1)
        worst = timing.data_arrival[compiled.is_seq].max()
        assert paths[0].arrival == pytest.approx(worst)

    def test_path_arrivals_monotone(self, timing_setup):
        compiled, timing = timing_setup
        path = extract_critical_paths(compiled, timing, 1)[0]
        arrivals = timing.arrival[list(path.cells)]
        assert np.all(np.diff(arrivals) >= -1e-9)

    def test_path_starts_at_startpoint(self, timing_setup):
        compiled, timing = timing_setup
        path = extract_critical_paths(compiled, timing, 1)[0]
        first = path.cells[0]
        # The chain starts at a register or a primary-input-fed cell.
        lo, hi = compiled.fanin_ptr[first], compiled.fanin_ptr[first + 1]
        drivers = compiled.fanin_idx[lo:hi]
        assert compiled.is_seq[first] or np.all(drivers < 0) or (
            len(path.cells) >= 1
        )

    def test_path_connectivity(self, timing_setup):
        compiled, timing = timing_setup
        path = extract_critical_paths(compiled, timing, 1)[0]
        chain = list(path.cells) + [path.endpoint]
        for a, b in zip(chain, chain[1:]):
            lo, hi = compiled.fanin_ptr[b], compiled.fanin_ptr[b + 1]
            assert a in compiled.fanin_idx[lo:hi]

    def test_depth(self, timing_setup):
        compiled, timing = timing_setup
        path = extract_critical_paths(compiled, timing, 1)[0]
        assert path.depth == len(path.cells) > 1

    def test_n_paths_validation(self, timing_setup):
        compiled, timing = timing_setup
        with pytest.raises(ValueError):
            extract_critical_paths(compiled, timing, 0)

    def test_no_sequential_no_paths(self, library):
        from repro.pdtool.netlist import PRIMARY_INPUT, Netlist

        nl = Netlist("comb", library)
        nl.add_input()
        nl.add_cell("INV", [PRIMARY_INPUT])
        compiled = nl.compile()
        params = ToolParameters()
        placed = place(compiled, params)
        routed = route(compiled, placed, params)
        cts = synthesize_clock_tree(compiled, placed, params, library)
        drv = repair_drv(compiled, routed, params, library)
        timing = analyze_timing(
            compiled, drv, cts, params, routed.routed_edge_length
        )
        assert extract_critical_paths(compiled, timing) == []


class TestReport:
    def test_report_renders(self, timing_setup):
        compiled, timing = timing_setup
        install_report_context(compiled, timing)
        paths = extract_critical_paths(compiled, timing, 2)
        report = format_path_report(compiled, paths)
        assert "Path 1" in report
        assert "arrival=" in report
        assert "slack=" in report

    def test_report_lists_cells(self, timing_setup):
        compiled, timing = timing_setup
        install_report_context(compiled, timing)
        paths = extract_critical_paths(compiled, timing, 1)
        report = format_path_report(compiled, paths)
        # One line per path cell plus a header.
        assert len(report.splitlines()) == 1 + paths[0].depth
