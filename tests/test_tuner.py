"""Integration tests for PPATuner (Algorithm 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PoolOracle, PPATuner, PPATunerConfig
from repro.pareto import adrs, hypervolume_error, pareto_front


@pytest.fixture()
def tuned(synthetic_pool):
    X, Y, Xs, Ys = synthetic_pool
    oracle = PoolOracle(Y)
    tuner = PPATuner(PPATunerConfig(max_iterations=80, seed=3))
    result = tuner.tune(X, oracle, Xs, Ys)
    return tuner, result, X, Y


class TestOnSyntheticPool:
    def test_finds_accurate_front(self, tuned):
        _, result, _, Y = tuned
        golden = pareto_front(Y)
        approx = pareto_front(result.pareto_points)
        assert hypervolume_error(approx, golden) < 0.1
        assert adrs(golden, approx) < 0.1

    def test_uses_fraction_of_pool(self, tuned):
        _, result, X, _ = tuned
        assert result.n_evaluations < len(X) / 2

    def test_history_recorded(self, tuned):
        _, result, _, _ = tuned
        assert len(result.history) == result.n_iterations
        assert result.history[0].n_evaluations > 0

    def test_undecided_monotone_decreasing_tail(self, tuned):
        _, result, _, _ = tuned
        undecided = [h.n_undecided for h in result.history]
        assert undecided[-1] <= undecided[0]

    def test_pareto_points_match_indices(self, tuned):
        _, result, _, Y = tuned
        assert np.allclose(Y[result.pareto_indices], result.pareto_points)

    def test_stop_reason_set(self, tuned):
        _, result, _, _ = tuned
        assert result.stop_reason in (
            "all_decided", "max_iterations", "pool_exhausted",
        )

    def test_models_fitted_per_objective(self, tuned):
        tuner, _, _, Y = tuned
        assert len(tuner.models_) == Y.shape[1]
        assert all(m.is_fitted for m in tuner.models_)


class TestTransferBehavior:
    def test_transfer_reduces_runs_or_error(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        golden = pareto_front(Y)

        def run(transfer):
            oracle = PoolOracle(Y)
            cfg = PPATunerConfig(
                max_iterations=80, seed=3, transfer=transfer
            )
            res = PPATuner(cfg).tune(X, oracle, Xs, Ys)
            err = hypervolume_error(
                pareto_front(res.pareto_points), golden
            )
            return res.n_evaluations, err

        runs_t, err_t = run(True)
        runs_n, err_n = run(False)
        # Transfer must help on at least one axis without losing the
        # other by more than noise.
        assert (runs_t <= runs_n and err_t <= err_n + 0.05) or (
            err_t <= err_n and runs_t <= runs_n * 1.2
        )

    def test_works_without_source(self, synthetic_pool):
        X, Y, _, _ = synthetic_pool
        oracle = PoolOracle(Y)
        result = PPATuner(
            PPATunerConfig(max_iterations=40, seed=0)
        ).tune(X, oracle)
        assert len(result.pareto_indices) > 0


class TestValidation:
    def test_pool_oracle_mismatch(self, synthetic_pool):
        X, Y, _, _ = synthetic_pool
        with pytest.raises(ValueError, match="size mismatch"):
            PPATuner().tune(X[:10], PoolOracle(Y))

    def test_source_misaligned(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        with pytest.raises(ValueError, match="misaligned"):
            PPATuner().tune(X, PoolOracle(Y), Xs[:5], Ys)

    def test_source_objective_mismatch(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        with pytest.raises(ValueError, match="objectives"):
            PPATuner().tune(X, PoolOracle(Y), Xs, Ys[:, :1])

    def test_explicit_init_indices_used(self, synthetic_pool):
        X, Y, _, _ = synthetic_pool
        oracle = PoolOracle(Y)
        init = np.array([0, 1, 2, 3, 4])
        result = PPATuner(
            PPATunerConfig(max_iterations=5, seed=0)
        ).tune(X, oracle, init_indices=init)
        assert set(init).issubset(set(result.evaluated_indices))


class TestBatchMode:
    def test_batch_reduces_iterations(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool

        def run(batch):
            oracle = PoolOracle(Y)
            cfg = PPATunerConfig(
                max_iterations=100, seed=3, batch_size=batch
            )
            return PPATuner(cfg).tune(X, oracle, Xs, Ys)

        single = run(1)
        quad = run(4)
        assert quad.n_iterations <= single.n_iterations

    def test_batch_selection_counts(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        oracle = PoolOracle(Y)
        cfg = PPATunerConfig(max_iterations=10, seed=3, batch_size=4)
        result = PPATuner(cfg).tune(X, oracle, Xs, Ys)
        for h in result.history[:-1]:
            assert len(h.selected) <= 4


class TestTinyBenchmarkIntegration:
    def test_tunes_real_flow_pool(self, tiny_benchmark):
        names = ("power", "delay")
        oracle = PoolOracle(tiny_benchmark.objectives(names))
        cfg = PPATunerConfig(max_iterations=25, seed=1)
        result = PPATuner(cfg).tune(tiny_benchmark.X, oracle)
        golden = tiny_benchmark.golden_front(names)
        approx = pareto_front(result.pareto_points)
        assert hypervolume_error(approx, golden) < 0.5
        assert result.n_evaluations <= 35
