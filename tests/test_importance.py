"""Tests for FIST-style knob importance and space pruning."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import knob_importance, prune_space
from repro.space import FloatParameter, ParameterSpace


def _space(d: int) -> ParameterSpace:
    return ParameterSpace(tuple(
        FloatParameter(f"k{i}", 0.0, 1.0) for i in range(d)
    ))


def _table(n=200, d=5, seed=0):
    """Synthetic golden table: k0/k1 drive the response, k2..k4 dead."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, d))
    y1 = 3.0 * X[:, 0] + (X[:, 1] - 0.4) ** 2
    y2 = np.sin(4 * X[:, 0]) + 0.8 * X[:, 1]
    Y = np.column_stack([y1, y2]) + 0.01 * rng.normal(size=(n, 2))
    return X, Y


class TestKnobImportance:
    def test_deterministic(self):
        X, Y = _table()
        names = tuple(f"k{i}" for i in range(5))
        a = knob_importance(X, Y, names, seed=3)
        b = knob_importance(X, Y, names, seed=3)
        assert np.array_equal(a.importances, b.importances)
        assert np.array_equal(a.per_metric, b.per_metric)

    def test_finds_live_knobs(self):
        X, Y = _table()
        rep = knob_importance(X, Y, tuple(f"k{i}" for i in range(5)))
        ranked = [name for name, _ in rep.ranked()]
        assert set(ranked[:2]) == {"k0", "k1"}

    @pytest.mark.parametrize("method", ("tree", "permutation"))
    def test_methods_agree_on_top_knob(self, method):
        X, Y = _table()
        rep = knob_importance(
            X, Y, tuple(f"k{i}" for i in range(5)), method=method
        )
        assert rep.ranked()[0][0] == "k0"
        assert rep.method == method

    def test_normalized(self):
        X, Y = _table()
        rep = knob_importance(X, Y, tuple(f"k{i}" for i in range(5)))
        assert rep.importances.sum() == pytest.approx(1.0)
        assert np.allclose(rep.per_metric.sum(axis=1), 1.0)
        assert (rep.importances >= 0).all()

    def test_single_metric_and_vector_y(self):
        X, Y = _table()
        rep = knob_importance(X, Y[:, 0], tuple(f"k{i}" for i in range(5)))
        assert rep.metrics == ("y0",)
        assert rep.per_metric.shape == (1, 5)

    def test_constant_metric_degrades_to_flat(self):
        X, _ = _table(n=80)
        Y = np.ones((80, 1))
        rep = knob_importance(X, Y, tuple(f"k{i}" for i in range(5)))
        assert np.allclose(rep.per_metric, 0.2)

    def test_rejects_bad_inputs(self):
        X, Y = _table()
        with pytest.raises(ValueError, match="aligned"):
            knob_importance(X[:10], Y, tuple(f"k{i}" for i in range(5)))
        with pytest.raises(ValueError, match="names"):
            knob_importance(X, Y, ("a", "b"))
        with pytest.raises(ValueError, match="unknown importance"):
            knob_importance(X, Y, tuple(f"k{i}" for i in range(5)),
                            method="magic")

    def test_format_lists_every_knob(self):
        X, Y = _table()
        rep = knob_importance(X, Y, tuple(f"k{i}" for i in range(5)))
        text = rep.format()
        for name in rep.names:
            assert name in text


class TestPruneSpace:
    def test_drops_dead_knobs(self):
        X, Y = _table()
        pruned = prune_space(_space(5), X, Y, threshold=0.05)
        assert "k0" in pruned.kept and "k1" in pruned.kept
        assert set(pruned.dropped) <= {"k2", "k3", "k4"}
        assert len(pruned.dropped) >= 1

    def test_indices_in_original_order(self):
        X, Y = _table()
        pruned = prune_space(_space(5), X, Y)
        assert list(pruned.indices) == sorted(pruned.indices)
        assert pruned.kept == tuple(
            f"k{i}" for i in pruned.indices
        )
        assert pruned.space.names == list(pruned.kept)

    def test_slice_selects_columns(self):
        X, Y = _table()
        pruned = prune_space(_space(5), X, Y)
        sliced = pruned.slice(X)
        assert sliced.shape == (len(X), len(pruned.kept))
        assert np.array_equal(sliced, X[:, list(pruned.indices)])
        assert sliced.flags["C_CONTIGUOUS"]

    def test_min_keep_floor(self):
        X, Y = _table()
        pruned = prune_space(_space(5), X, Y, threshold=0.99, min_keep=3)
        assert len(pruned.kept) == 3
        top = [n for n, _ in pruned.report.ranked()[:3]]
        assert set(pruned.kept) == set(top)

    def test_zero_threshold_keeps_everything(self):
        X, Y = _table()
        pruned = prune_space(_space(5), X, Y, threshold=0.0)
        assert pruned.dropped == ()
        assert pruned.space is not None
        assert pruned.space.dim == 5

    def test_dimension_mismatch(self):
        X, Y = _table()
        with pytest.raises(ValueError, match="columns"):
            prune_space(_space(4), X, Y)


class TestPruningInvariance:
    """Pruning dead knobs must not shift the reachable Pareto front."""

    def test_dropped_columns_carry_no_signal(self):
        """A model on the pruned features predicts the table as well as
        one on the full features — the pruned columns were dead."""
        from repro.ml import GradientBoostingRegressor

        X, Y = _table(n=300)
        pruned = prune_space(_space(5), X, Y, threshold=0.05)
        assert pruned.dropped
        train, val = np.arange(0, 200), np.arange(200, 300)
        Xp = pruned.slice(X)
        for m in range(Y.shape[1]):
            full = GradientBoostingRegressor(
                n_estimators=40, max_depth=3, seed=0
            ).fit(X[train], Y[train, m])
            slim = GradientBoostingRegressor(
                n_estimators=40, max_depth=3, seed=0
            ).fit(Xp[train], Y[train, m])
            mse_full = np.mean((full.predict(X[val]) - Y[val, m]) ** 2)
            mse_slim = np.mean((slim.predict(Xp[val]) - Y[val, m]) ** 2)
            assert mse_slim <= 1.25 * mse_full + 1e-4

    def test_scenario_quality_within_tolerance(self):
        """A pruned-space tuning run stays close to the full-space
        run's front quality on a real cross-design scenario."""
        from repro.experiments import cross_design_scenario

        kw = dict(n_points=120, scale=80, seed=11,
                  methods=("PPATuner",))
        full = cross_design_scenario("mac_to_fabric", **kw)
        pruned = cross_design_scenario("mac_to_fabric",
                                       prune_space=True, **kw)
        hv_full = np.mean([o.hv_error for o in full.outcomes])
        hv_pruned = np.mean([o.hv_error for o in pruned.outcomes])
        assert hv_pruned <= hv_full + 0.1
