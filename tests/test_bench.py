"""Tests for benchmark spaces (Table 1), datasets, and generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    BENCHMARK_DESIGN,
    OBJECTIVE_SPACES,
    PAPER_POOL_SIZES,
    POOL_SIZES,
    QOR_METRICS,
    SPACES,
    generate_benchmark,
    source1_space,
    source2_space,
    target1_space,
    target2_space,
)
from repro.bench.dataset import BenchmarkDataset
from repro.space import EnumParameter, FloatParameter, IntParameter


class TestTable1Spaces:
    """The four spaces must match paper Table 1 verbatim."""

    def test_dimensions(self):
        assert source1_space().dim == 12
        assert target1_space().dim == 12
        assert source2_space().dim == 9
        assert target2_space().dim == 9

    def test_pool_sizes(self):
        assert PAPER_POOL_SIZES == {
            "source1": 5000, "target1": 5000,
            "source2": 1440, "target2": 727,
        }

    def test_source1_ranges(self):
        s = source1_space()
        freq = s["freq"]
        assert isinstance(freq, FloatParameter)
        assert (freq.low, freq.high) == (950.0, 1050.0)
        unc = s["place_uncertainty"]
        assert (unc.low, unc.high) == (50.0, 200.0)
        tran = s["max_transition"]
        assert (tran.low, tran.high) == (0.19, 0.34)
        cap = s["max_capacitance"]
        assert (cap.low, cap.high) == (0.08, 0.13)
        fan = s["max_fanout"]
        assert isinstance(fan, IntParameter)
        assert (fan.low, fan.high) == (25, 50)

    def test_target1_ranges(self):
        s = target1_space()
        assert (s["freq"].low, s["freq"].high) == (1000.0, 1300.0)
        assert (
            s["place_uncertainty"].low, s["place_uncertainty"].high
        ) == (20.0, 100.0)
        assert (s["max_length"].low, s["max_length"].high) == (
            160.0, 300.0,
        )
        assert (s["max_transition"].low, s["max_transition"].high) == (
            0.10, 0.35,
        )
        assert (s["max_capacitance"].low, s["max_capacitance"].high) == (
            0.08, 0.20,
        )

    def test_source2_ranges(self):
        s = source2_space()
        assert (s["place_rcfactor"].low, s["place_rcfactor"].high) == (
            1.00, 1.30,
        )
        assert (s["max_length"].low, s["max_length"].high) == (
            250.0, 350.0,
        )
        assert (s["max_fanout"].low, s["max_fanout"].high) == (25, 40)
        assert (
            s["max_allowed_delay"].low, s["max_allowed_delay"].high
        ) == (0.06, 0.12)

    def test_target2_ranges(self):
        s = target2_space()
        assert (s["max_capacitance"].low, s["max_capacitance"].high) == (
            0.05, 0.15,
        )
        assert (s["max_fanout"].low, s["max_fanout"].high) == (25, 39)
        assert (
            s["max_allowed_delay"].low, s["max_allowed_delay"].high
        ) == (0.00, 0.12)
        assert (
            s["max_density_util"].low, s["max_density_util"].high
        ) == (0.50, 1.00)

    def test_effort_levels_span_paper_range(self):
        s = source1_space()
        fe = s["flow_effort"]
        assert isinstance(fe, EnumParameter)
        assert fe.levels[0] == "standard" and fe.levels[-1] == "extreme"
        ce = s["cong_effort"]
        assert ce.levels[0] == "AUTO" and ce.levels[-1] == "HIGH"

    def test_scenario_pairs_share_parameters(self):
        assert source1_space().names == target1_space().names
        assert source2_space().names == target2_space().names

    def test_designs(self):
        assert BENCHMARK_DESIGN["target2"] == "mac_large"
        assert {
            BENCHMARK_DESIGN[n] for n in ("source1", "target1", "source2")
        } == {"mac_small"}

    def test_registry_complete(self):
        assert set(SPACES) == set(POOL_SIZES)
        assert set(SPACES) == set(BENCHMARK_DESIGN)
        assert set(PAPER_POOL_SIZES) <= set(POOL_SIZES)
        assert all(
            POOL_SIZES[n] == PAPER_POOL_SIZES[n] for n in PAPER_POOL_SIZES
        )


class TestBenchmarkDataset:
    def test_metric_access(self, tiny_benchmark):
        assert tiny_benchmark.metric_column("power").shape == (
            tiny_benchmark.n,
        )
        with pytest.raises(ValueError):
            tiny_benchmark.metric_column("foo")

    def test_objectives_order(self, tiny_benchmark):
        pd = tiny_benchmark.objectives(("power", "delay"))
        assert np.array_equal(
            pd[:, 0], tiny_benchmark.metric_column("power")
        )
        dp = tiny_benchmark.objectives(("delay", "power"))
        assert np.array_equal(dp[:, 0], pd[:, 1])

    def test_golden_front_nondominated(self, tiny_benchmark):
        front = tiny_benchmark.golden_front(("power", "delay"))
        assert len(front) >= 1
        for p in front:
            better = np.all(
                tiny_benchmark.objectives(("power", "delay")) <= p,
                axis=1,
            ) & np.any(
                tiny_benchmark.objectives(("power", "delay")) < p, axis=1
            )
            assert not better.any()

    def test_golden_indices_consistent(self, tiny_benchmark):
        names = ("power", "delay")
        idx = tiny_benchmark.golden_indices(names)
        front = tiny_benchmark.golden_front(names)
        pts = tiny_benchmark.objectives(names)[idx]
        assert {tuple(p) for p in front} == {tuple(p) for p in pts}

    def test_subsample(self, tiny_benchmark):
        sub = tiny_benchmark.subsample(20, seed=0)
        assert sub.n == 20
        assert sub.space is tiny_benchmark.space

    def test_subsample_larger_is_identity(self, tiny_benchmark):
        assert tiny_benchmark.subsample(10_000) is tiny_benchmark

    def test_summary_fields(self, tiny_benchmark):
        s = tiny_benchmark.summary()
        assert s["n_points"] == tiny_benchmark.n
        assert s["area_range"][0] <= s["area_range"][1]

    def test_misaligned_rejected(self, tiny_benchmark):
        with pytest.raises(ValueError):
            BenchmarkDataset(
                "bad", tiny_benchmark.space, tiny_benchmark.configs,
                tiny_benchmark.X[:-1], tiny_benchmark.Y, "tiny",
            )

    def test_objective_spaces_constant(self):
        assert set(OBJECTIVE_SPACES) == {
            "area-delay", "power-delay", "area-power-delay",
        }
        assert OBJECTIVE_SPACES["area-power-delay"] == QOR_METRICS


class TestGeneration:
    def test_small_generation_uncached(self):
        b = generate_benchmark("target2", n_points=25, cache=False)
        assert b.n == 25
        assert b.Y.shape == (25, 3)
        assert np.all(b.Y > 0)

    def test_generation_deterministic(self):
        a = generate_benchmark("target2", n_points=10, cache=False)
        b = generate_benchmark("target2", n_points=10, cache=False)
        assert np.array_equal(a.Y, b.Y)

    def test_unknown_benchmark(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            generate_benchmark("nope")

    def test_configs_respect_space(self):
        b = generate_benchmark("source2", n_points=15, cache=False)
        for c in b.configs:
            b.space.validate(c)

    def test_cache_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("PPATUNER_CACHE", str(tmp_path))
        a = generate_benchmark("target2", n_points=12, cache=True)
        assert any(tmp_path.iterdir())
        b = generate_benchmark("target2", n_points=12, cache=True)
        assert np.array_equal(a.Y, b.Y)
        assert [dict(c) for c in a.configs] == [dict(c) for c in b.configs]
