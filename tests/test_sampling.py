"""Tests for Latin-hypercube and other sampling schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.space import (
    FloatParameter,
    IntParameter,
    ParameterSpace,
    grid_sample,
    latin_hypercube,
    random_sample,
    unique_configurations,
)


@pytest.fixture()
def cont_space() -> ParameterSpace:
    return ParameterSpace((
        FloatParameter("a", 0.0, 1.0),
        FloatParameter("b", -5.0, 5.0),
        FloatParameter("c", 100.0, 200.0),
    ))


class TestLatinHypercube:
    def test_count(self, cont_space):
        assert len(latin_hypercube(cont_space, 37, seed=0)) == 37

    def test_stratification(self, cont_space):
        """Each of n strata per dimension is hit exactly once."""
        n = 50
        configs = latin_hypercube(cont_space, n, seed=1)
        X = cont_space.encode_many(configs)
        Xn = cont_space.normalize(X)
        for j in range(cont_space.dim):
            strata = np.floor(Xn[:, j] * n).astype(int)
            strata = np.clip(strata, 0, n - 1)
            assert len(np.unique(strata)) == n, f"dim {j}"

    def test_deterministic_under_seed(self, cont_space):
        a = latin_hypercube(cont_space, 10, seed=5)
        b = latin_hypercube(cont_space, 10, seed=5)
        assert a == b

    def test_different_seeds_differ(self, cont_space):
        a = latin_hypercube(cont_space, 10, seed=5)
        b = latin_hypercube(cont_space, 10, seed=6)
        assert a != b

    def test_all_in_domain(self, cont_space):
        for config in latin_hypercube(cont_space, 25, seed=2):
            cont_space.validate(config)

    def test_n_zero_rejected(self, cont_space):
        with pytest.raises(ValueError):
            latin_hypercube(cont_space, 0)

    def test_single_point(self, cont_space):
        configs = latin_hypercube(cont_space, 1, seed=0)
        cont_space.validate(configs[0])

    def test_better_coverage_than_random(self, cont_space):
        """LHS marginal coverage beats random sampling on max-gap."""
        n = 40
        lhs = cont_space.normalize(cont_space.encode_many(
            latin_hypercube(cont_space, n, seed=3)
        ))
        rnd = cont_space.normalize(cont_space.encode_many(
            random_sample(cont_space, n, seed=3)
        ))

        def max_gap(col):
            s = np.sort(col)
            return np.max(np.diff(np.concatenate([[0.0], s, [1.0]])))

        lhs_gaps = np.mean([max_gap(lhs[:, j]) for j in range(3)])
        rnd_gaps = np.mean([max_gap(rnd[:, j]) for j in range(3)])
        assert lhs_gaps < rnd_gaps


class TestRandomSample:
    def test_count_and_domain(self, cont_space):
        configs = random_sample(cont_space, 20, seed=0)
        assert len(configs) == 20
        for c in configs:
            cont_space.validate(c)

    def test_seeded(self, cont_space):
        assert random_sample(cont_space, 5, seed=1) == random_sample(
            cont_space, 5, seed=1
        )


class TestGridSample:
    def test_full_factorial_count(self):
        space = ParameterSpace((
            FloatParameter("a", 0.0, 1.0), FloatParameter("b", 0.0, 1.0),
        ))
        assert len(grid_sample(space, 4)) == 16

    def test_includes_corners(self):
        space = ParameterSpace((FloatParameter("a", 0.0, 2.0),))
        values = {c["a"] for c in grid_sample(space, 3)}
        assert values == {0.0, 1.0, 2.0}

    def test_too_few_points_rejected(self):
        space = ParameterSpace((FloatParameter("a", 0.0, 1.0),))
        with pytest.raises(ValueError):
            grid_sample(space, 1)


class TestUniqueConfigurations:
    def test_deduplicates(self):
        configs = [{"a": 1}, {"a": 1}, {"a": 2}]
        assert unique_configurations(configs) == [{"a": 1}, {"a": 2}]

    def test_preserves_order(self):
        configs = [{"a": 2}, {"a": 1}, {"a": 2}]
        assert unique_configurations(configs) == [{"a": 2}, {"a": 1}]

    def test_discretized_space_dedup(self):
        space = ParameterSpace((IntParameter("i", 0, 2),))
        configs = latin_hypercube(space, 30, seed=0)
        unique = unique_configurations(configs)
        assert len(unique) == 3
