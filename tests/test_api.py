"""Tests for the unified public API.

Covers the :class:`repro.core.oracle.Oracle` protocol (both built-in
oracles and third-party duck-typed implementations), ``FlowOracle``
batch/accounting semantics, the unified GP source-data fit keyword with
its deprecation aliases, and the lazy ``repro`` package surface with
its deep-import shims.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.core import FlowOracle, Oracle, PoolOracle, PPATuner, PPATunerConfig
from repro.gp import MultiSourceTransferGP, TransferGP
from repro.space import (
    EnumParameter,
    FloatParameter,
    ParameterSpace,
    latin_hypercube,
)

rng = np.random.default_rng(11)


class _DuckOracle:
    """Minimal third-party oracle: satisfies the protocol, inherits
    nothing."""

    def __init__(self, Y):
        self.Y = np.asarray(Y, dtype=float)
        self._seen = set()

    @property
    def n_candidates(self):
        return self.Y.shape[0]

    @property
    def n_objectives(self):
        return self.Y.shape[1]

    @property
    def n_evaluations(self):
        return len(self._seen)

    def evaluate(self, index):
        self._seen.add(int(index))
        return self.Y[int(index)].copy()

    def evaluate_batch(self, indices):
        return np.vstack([self.evaluate(int(i)) for i in indices])

    def reset(self):
        self._seen.clear()


class TestOracleProtocol:
    def test_builtin_oracles_satisfy_protocol(self, tiny_flow):
        assert isinstance(PoolOracle(rng.uniform(size=(5, 2))), Oracle)
        space = ParameterSpace((FloatParameter("freq", 900.0, 1300.0),))
        configs = latin_hypercube(space, 3, seed=0)
        assert isinstance(FlowOracle(tiny_flow, configs), Oracle)

    def test_duck_typed_oracle_satisfies_protocol(self):
        assert isinstance(_DuckOracle(rng.uniform(size=(5, 2))), Oracle)

    def test_tuner_accepts_duck_typed_oracle(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        oracle = _DuckOracle(Y)
        result = PPATuner(
            PPATunerConfig(max_iterations=4, seed=0)
        ).tune(X, oracle, X_source=Xs, Y_source=Ys)
        assert len(result.pareto_indices) > 0
        assert oracle.n_evaluations > 0

    def test_deep_import_shim_warns(self):
        import repro.core.tuner as tuner_mod

        with pytest.warns(DeprecationWarning, match="repro.core.oracle"):
            shimmed = tuner_mod.Oracle
        assert shimmed is Oracle


class TestFlowOracleSemantics:
    @pytest.fixture(scope="class")
    def oracle(self, request):
        flow = request.getfixturevalue("tiny_flow")
        space = ParameterSpace((
            FloatParameter("freq", 900.0, 1300.0),
            EnumParameter(
                "flow_effort", ("standard", "express", "extreme")
            ),
        ))
        configs = latin_hypercube(space, 6, seed=2)
        return FlowOracle(flow, configs, ("power", "delay"))

    def test_batch_rows_follow_indices_order(self, oracle):
        oracle.reset()
        batch = oracle.evaluate_batch(np.array([4, 1, 4, 2]))
        assert batch.shape == (4, 2)
        np.testing.assert_allclose(batch[0], oracle.evaluate(4))
        np.testing.assert_allclose(batch[1], oracle.evaluate(1))
        np.testing.assert_allclose(batch[2], batch[0])
        np.testing.assert_allclose(batch[3], oracle.evaluate(2))

    def test_batch_counts_distinct_runs_only(self, oracle):
        oracle.reset()
        oracle.evaluate_batch(np.array([0, 3, 0, 3, 5]))
        assert oracle.n_evaluations == 3
        oracle.evaluate(0)  # cached: not recounted
        assert oracle.n_evaluations == 3

    def test_reset_forgets_and_reproduces(self, oracle):
        oracle.reset()
        first = oracle.evaluate(1)
        assert oracle.n_evaluations == 1
        oracle.reset()
        assert oracle.n_evaluations == 0
        np.testing.assert_allclose(oracle.evaluate(1), first)

    def test_out_of_range_raises(self, oracle):
        with pytest.raises(IndexError):
            oracle.evaluate(99)


def _transfer_data():
    Xs = rng.uniform(size=(14, 2))
    ys = Xs[:, 0] + 0.3 * Xs[:, 1]
    Xt = rng.uniform(size=(8, 2))
    yt = Xt[:, 0] + 0.35 * Xt[:, 1]
    return Xs, ys, Xt, yt


class TestUnifiedFitKeyword:
    def test_sources_matches_positional(self):
        Xs, ys, Xt, yt = _transfer_data()
        Xq = rng.uniform(size=(5, 2))
        a = TransferGP(seed=0, optimize=False).fit(Xs, ys, Xt, yt)
        b = TransferGP(seed=0, optimize=False).fit(
            sources=[(Xs, ys)], X_target=Xt, y_target=yt
        )
        np.testing.assert_allclose(
            a.predict(Xq)[0], b.predict(Xq)[0]
        )

    def test_multiple_pairs_stack(self):
        Xs, ys, Xt, yt = _transfer_data()
        Xq = rng.uniform(size=(5, 2))
        split = 7
        stacked = TransferGP(seed=0, optimize=False).fit(
            Xs, ys, Xt, yt
        )
        paired = TransferGP(seed=0, optimize=False).fit(
            sources=[(Xs[:split], ys[:split]), (Xs[split:], ys[split:])],
            X_target=Xt, y_target=yt,
        )
        np.testing.assert_allclose(
            stacked.predict(Xq)[0], paired.predict(Xq)[0]
        )

    def test_deprecated_aliases_warn_and_match(self):
        Xs, ys, Xt, yt = _transfer_data()
        Xq = rng.uniform(size=(5, 2))
        a = TransferGP(seed=0, optimize=False).fit(Xs, ys, Xt, yt)
        with pytest.warns(DeprecationWarning):
            b = TransferGP(seed=0, optimize=False).fit(
                Xs=Xs, ys=ys, X_target=Xt, y_target=yt
            )
        np.testing.assert_allclose(
            a.predict(Xq)[0], b.predict(Xq)[0]
        )

    def test_conflicting_kwargs_raise(self):
        Xs, ys, Xt, yt = _transfer_data()
        with pytest.raises(ValueError):
            TransferGP(optimize=False).fit(
                Xs, ys, Xt, yt, sources=[(Xs, ys)]
            )
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                TransferGP(optimize=False).fit(
                    Xs, ys, Xt, yt, Xs=Xs, ys=ys,
                )

    def test_multisource_alias_warns_and_matches(self):
        Xs, ys, Xt, yt = _transfer_data()
        Xq = rng.uniform(size=(5, 2))
        pairs = [(Xs[:7], ys[:7]), (Xs[7:], ys[7:])]
        a = MultiSourceTransferGP(seed=0, optimize=False).fit(
            pairs, Xt, yt
        )
        with pytest.warns(DeprecationWarning):
            b = MultiSourceTransferGP(seed=0, optimize=False).fit(
                Xs=pairs, X_target=Xt, y_target=yt
            )
        np.testing.assert_allclose(
            a.predict(Xq)[0], b.predict(Xq)[0]
        )


class TestLazyPackageSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_dir_lists_exports(self):
        listing = dir(repro)
        for name in ("PPATuner", "Oracle", "TraceRecorder",
                     "ExperimentRunner", "replay_trace"):
            assert name in listing

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_a_thing

    def test_protocol_is_the_canonical_object(self):
        from repro.core.oracle import Oracle as canonical

        assert repro.Oracle is canonical

    def test_import_is_lazy(self):
        import subprocess
        import sys

        code = (
            "import sys; import repro; "
            "heavy = [m for m in ('repro.pdtool.flow', "
            "'repro.experiments.scenarios', 'repro.runner.runner') "
            "if m in sys.modules]; "
            "print(','.join(heavy) or 'LAZY')"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
        )
        assert out.stdout.strip() == "LAZY"
