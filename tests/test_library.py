"""Unit tests for the standard-cell library model."""

from __future__ import annotations

import pytest

from repro.pdtool.library import CellLibrary, CellType


class TestLibraryConstruction:
    def test_default_library_nonempty(self, library):
        assert len(library) > 0

    def test_every_function_has_four_drives(self, library):
        for fn in library.functions():
            assert library.drives_for(fn) == [1, 2, 4, 8]

    def test_expected_functions_present(self, library):
        expected = {
            "INV", "BUF", "NAND2", "NOR2", "AND2", "OR2", "XOR2",
            "XNOR2", "AOI21", "OAI21", "MUX2", "HA", "FA", "DFF",
            "CLKBUF",
        }
        assert expected <= set(library.functions())

    def test_contains_by_name(self, library):
        assert "INV_X1" in library
        assert "NAND2_X4" in library
        assert "FOO_X1" not in library

    def test_get_unknown_raises(self, library):
        with pytest.raises(KeyError):
            library.get("NOT_A_CELL")

    def test_variant_lookup(self, library):
        cell = library.variant("NAND2", 4)
        assert cell.function == "NAND2"
        assert cell.drive == 4


class TestDriveScaling:
    def test_higher_drive_lower_resistance(self, library):
        for fn in library.functions():
            drives = library.drives_for(fn)
            res = [library.variant(fn, d).drive_res for d in drives]
            assert res == sorted(res, reverse=True), fn

    def test_higher_drive_more_area(self, library):
        for fn in library.functions():
            drives = library.drives_for(fn)
            areas = [library.variant(fn, d).area for d in drives]
            assert areas == sorted(areas), fn

    def test_higher_drive_more_leakage(self, library):
        x1 = library.variant("INV", 1)
        x8 = library.variant("INV", 8)
        assert x8.leakage > x1.leakage

    def test_higher_drive_more_input_cap(self, library):
        x1 = library.variant("NAND2", 1)
        x8 = library.variant("NAND2", 8)
        assert x8.input_cap > x1.input_cap

    def test_drive_halves_resistance(self, library):
        x1 = library.variant("BUF", 1)
        x2 = library.variant("BUF", 2)
        assert x2.drive_res == pytest.approx(x1.drive_res / 2)


class TestRelativeOrdering:
    def test_inverter_is_smallest_combinational(self, library):
        inv = library.variant("INV", 1)
        for fn in ("NAND2", "XOR2", "FA", "MUX2"):
            assert library.variant(fn, 1).area >= inv.area

    def test_full_adder_slowest_simple_gate(self, library):
        fa = library.variant("FA", 1)
        nand = library.variant("NAND2", 1)
        assert fa.intrinsic_delay > nand.intrinsic_delay

    def test_dff_is_sequential(self, library):
        assert library.variant("DFF", 1).is_sequential
        assert not library.variant("INV", 1).is_sequential

    def test_xor_larger_than_nand(self, library):
        assert (
            library.variant("XOR2", 1).area
            > library.variant("NAND2", 1).area
        )


class TestUpsizeDownsize:
    def test_upsize_steps_up(self, library):
        cell = library.variant("INV", 1)
        up = library.upsize(cell)
        assert up is not None and up.drive == 2

    def test_upsize_at_top_returns_none(self, library):
        assert library.upsize(library.variant("INV", 8)) is None

    def test_downsize_steps_down(self, library):
        cell = library.variant("INV", 4)
        down = library.downsize(cell)
        assert down is not None and down.drive == 2

    def test_downsize_at_bottom_returns_none(self, library):
        assert library.downsize(library.variant("INV", 1)) is None

    def test_roundtrip(self, library):
        cell = library.variant("NOR2", 2)
        assert library.downsize(library.upsize(cell)) == cell


class TestCellType:
    def test_frozen(self, library):
        cell = library.variant("INV", 1)
        with pytest.raises(AttributeError):
            cell.area = 10.0  # type: ignore[misc]

    def test_pin_counts(self, library):
        assert library.variant("INV", 1).n_inputs == 1
        assert library.variant("NAND2", 1).n_inputs == 2
        assert library.variant("FA", 1).n_inputs == 3
        assert library.variant("MUX2", 1).n_inputs == 3

    def test_custom_cell(self):
        cell = CellType("T_X1", "T", 1, 2, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)
        assert cell.name == "T_X1"
        assert not cell.is_sequential

    def test_positive_attributes(self, library):
        for cell in library.cells.values():
            assert cell.area > 0
            assert cell.input_cap > 0
            assert cell.drive_res > 0
            assert cell.intrinsic_delay > 0
            assert cell.leakage > 0
            assert cell.internal_energy > 0
