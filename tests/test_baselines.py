"""Tests for the four reimplemented baseline tuners + random search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    Aspdac20Fist,
    CopulaTransferTuner,
    Dac19Recommender,
    Mlcad19LcbBayesOpt,
    RandomSearchTuner,
    Tcad19ActiveLearner,
)
from repro.core import PoolOracle
from repro.pareto import hypervolume_error, pareto_front

ALL_TUNERS = [
    Tcad19ActiveLearner,
    Mlcad19LcbBayesOpt,
    Dac19Recommender,
    Aspdac20Fist,
    RandomSearchTuner,
    CopulaTransferTuner,
]


@pytest.fixture()
def pool(synthetic_pool):
    X, Y, Xs, Ys = synthetic_pool
    return X, Y, Xs, Ys


class TestCommonContract:
    @pytest.mark.parametrize("cls", ALL_TUNERS)
    def test_respects_budget(self, cls, pool):
        X, Y, _, _ = pool
        oracle = PoolOracle(Y)
        result = cls(budget=25, seed=0).tune(X, oracle)
        assert result.n_evaluations <= 25

    @pytest.mark.parametrize("cls", ALL_TUNERS)
    def test_front_is_nondominated_subset_of_evaluated(self, cls, pool):
        X, Y, _, _ = pool
        oracle = PoolOracle(Y)
        result = cls(budget=25, seed=0).tune(X, oracle)
        assert set(result.pareto_indices) <= set(result.evaluated_indices)
        front = pareto_front(result.pareto_points)
        assert len(front) == len(result.pareto_points)

    @pytest.mark.parametrize("cls", ALL_TUNERS)
    def test_points_match_pool_values(self, cls, pool):
        X, Y, _, _ = pool
        oracle = PoolOracle(Y)
        result = cls(budget=20, seed=1).tune(X, oracle)
        assert np.allclose(
            Y[result.pareto_indices], result.pareto_points
        )

    @pytest.mark.parametrize("cls", ALL_TUNERS)
    def test_deterministic_under_seed(self, cls, pool):
        X, Y, _, _ = pool
        a = cls(budget=20, seed=7).tune(X, PoolOracle(Y))
        b = cls(budget=20, seed=7).tune(X, PoolOracle(Y))
        assert np.array_equal(a.evaluated_indices, b.evaluated_indices)

    @pytest.mark.parametrize("cls", ALL_TUNERS)
    def test_init_indices_honoured(self, cls, pool):
        X, Y, _, _ = pool
        init = np.array([3, 8, 13, 21, 34])
        result = cls(budget=20, seed=0).tune(
            X, PoolOracle(Y), init_indices=init
        )
        assert set(init) <= set(result.evaluated_indices)

    @pytest.mark.parametrize("cls", ALL_TUNERS)
    def test_invalid_budget(self, cls):
        with pytest.raises(ValueError):
            cls(budget=0)


class TestGuidedBeatRandom:
    """Model-guided baselines should beat random search at equal budget."""

    @pytest.mark.parametrize(
        "cls", [Tcad19ActiveLearner, Mlcad19LcbBayesOpt, Aspdac20Fist],
    )
    def test_better_than_random(self, cls, pool):
        X, Y, Xs, Ys = pool
        golden = pareto_front(Y)
        budget = 35

        def err(result):
            return hypervolume_error(
                pareto_front(result.pareto_points), golden
            )

        guided = np.mean([
            err(cls(budget=budget, seed=s).tune(
                X, PoolOracle(Y), sources=[(Xs, Ys)]
            ))
            for s in (0, 1, 2)
        ])
        random = np.mean([
            err(RandomSearchTuner(budget=budget, seed=s).tune(
                X, PoolOracle(Y)
            ))
            for s in (0, 1, 2)
        ])
        assert guided <= random + 0.02


class TestMethodSpecific:
    def test_tcad_convergence_stops_early(self, pool):
        X, Y, _, _ = pool
        tuner = Tcad19ActiveLearner(budget=120, patience=2, seed=0)
        result = tuner.tune(X, PoolOracle(Y))
        assert result.stop_reason in ("converged", "budget")

    def test_mlcad_kappa_validation(self):
        with pytest.raises(ValueError):
            Mlcad19LcbBayesOpt(kappa=-1.0)

    def test_dac_one_hot_bins(self):
        Xn = np.array([[0.0, 0.99], [0.5, 0.25]])
        enc = Dac19Recommender._one_hot_bins(Xn, n_bins=2)
        assert enc.shape == (2, 5)
        assert np.all(enc[:, -1] == 1.0)
        assert enc[0, 0] == 1.0 and enc[0, 3] == 1.0

    def test_dac_uses_archive(self, pool):
        X, Y, Xs, Ys = pool
        with_archive = Dac19Recommender(budget=25, seed=0).tune(
            X, PoolOracle(Y), sources=[(Xs, Ys)]
        )
        without = Dac19Recommender(budget=25, seed=0).tune(
            X, PoolOracle(Y)
        )
        assert not np.array_equal(
            with_archive.evaluated_indices, without.evaluated_indices
        )

    def test_fist_importance_from_source(self, pool):
        X, Y, Xs, Ys = pool
        tuner = Aspdac20Fist(budget=25, seed=0)
        rng = np.random.default_rng(0)
        uniform = tuner._importances(X, None, None, rng)
        assert np.allclose(uniform, uniform[0])
        informed = tuner._importances(X, Xs, Ys, rng)
        assert not np.allclose(informed, informed[0])
        assert informed.sum() == pytest.approx(1.0)

    def test_fist_explore_fraction_validation(self):
        with pytest.raises(ValueError):
            Aspdac20Fist(explore_fraction=1.0)
        with pytest.raises(ValueError):
            Aspdac20Fist(epsilon=1.5)

    def test_random_search_covers_budget_exactly(self, pool):
        X, Y, _, _ = pool
        result = RandomSearchTuner(budget=15, seed=0).tune(
            X, PoolOracle(Y)
        )
        assert result.n_evaluations == 15
