"""Tests for the parameter-sensitivity analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.sensitivity import (
    SensitivityReport,
    _spearman,
    analyze_sensitivity,
)


class TestSpearman:
    def test_perfect_monotone(self):
        x = np.arange(20, dtype=float)
        assert _spearman(x, x**3) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        x = np.arange(20, dtype=float)
        assert _spearman(x, -x) == pytest.approx(-1.0)

    def test_constant_is_zero(self):
        x = np.arange(10, dtype=float)
        assert _spearman(x, np.ones(10)) == 0.0


class TestAnalyze:
    @pytest.fixture(scope="class")
    def report(self, request) -> SensitivityReport:
        tiny = request.getfixturevalue("tiny_benchmark")
        return analyze_sensitivity(tiny, n_estimators=20, seed=0)

    def test_shapes(self, report, tiny_benchmark):
        d = tiny_benchmark.space.dim
        assert report.rank_correlation.shape == (d, 3)
        assert report.tree_importance.shape == (d, 3)
        assert report.effect_span.shape == (d, 3)

    def test_importances_normalized(self, report):
        sums = report.tree_importance.sum(axis=0)
        assert np.allclose(sums, 1.0, atol=1e-6)

    def test_correlations_bounded(self, report):
        assert np.all(np.abs(report.rank_correlation) <= 1.0 + 1e-9)

    def test_utilization_drives_area(self, report):
        """max_density_util must be the dominant area knob (area is
        cell_area / utilization by construction)."""
        i = report.parameter_names.index("max_density_util")
        j = report.metric_names.index("area")
        assert report.rank_correlation[i, j] < -0.5
        assert report.top_parameters("area", 2)[0] == "max_density_util"

    def test_top_parameters_k(self, report):
        top = report.top_parameters("delay", 3)
        assert len(top) == 3
        assert len(set(top)) == 3

    def test_format_renders(self, report):
        text = report.format()
        assert "max_density_util" in text
        assert "corr" in text
