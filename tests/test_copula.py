"""Tests for the Gaussian-copula transfer package (``repro.copula``).

Covers the empirical-marginal rank transforms (property-based round
trips), the joint copula fit/condition/predict surface, the warm-start
seed selection, and the ``CopulaTransferTuner`` baseline contract.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CopulaTransferTuner, RandomSearchTuner
from repro.copula import (
    EmpiricalMarginal,
    GaussianCopula,
    copula_seed_indices,
)
from repro.core import PoolOracle
from repro.pareto import hypervolume_error, pareto_front

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


# ---------------------------------------------------------------------------
# EmpiricalMarginal
# ---------------------------------------------------------------------------


class TestEmpiricalMarginal:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(finite_floats, min_size=2, max_size=40))
    def test_value_round_trip_at_knots(self, values):
        m = EmpiricalMarginal().fit(np.asarray(values))
        x = np.asarray(values)
        assert np.allclose(m.quantile(m.cdf(x)), x, atol=1e-9)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(finite_floats, min_size=2, max_size=40, unique=True))
    def test_cdf_monotone_and_interior(self, values):
        m = EmpiricalMarginal().fit(np.asarray(values))
        x = np.sort(np.asarray(values))
        u = m.cdf(x)
        assert np.all(np.diff(u) >= 0)
        assert np.all((u > 0) & (u < 1))

    @settings(max_examples=60, deadline=None)
    @given(st.lists(finite_floats, min_size=2, max_size=40))
    def test_normal_scores_round_trip(self, values):
        m = EmpiricalMarginal().fit(np.asarray(values))
        x = np.asarray(values)
        assert np.allclose(m.from_normal(m.normal_scores(x)), x, atol=1e-6)

    def test_ties_share_a_knot(self):
        m = EmpiricalMarginal().fit(np.array([1.0, 1.0, 1.0, 2.0]))
        u = m.cdf(np.array([1.0, 1.0]))
        assert u[0] == u[1]

    def test_degenerate_constant_column(self):
        m = EmpiricalMarginal().fit(np.full(7, 3.5))
        assert m.degenerate
        assert np.allclose(m.cdf(np.array([3.5, 0.0, 99.0])), 0.5)
        assert np.allclose(m.quantile(np.array([0.1, 0.9])), 3.5)

    def test_clamps_outside_support(self):
        m = EmpiricalMarginal().fit(np.array([0.0, 1.0, 2.0]))
        u = m.cdf(np.array([-50.0, 50.0]))
        assert 0 < u[0] < u[1] < 1


# ---------------------------------------------------------------------------
# GaussianCopula
# ---------------------------------------------------------------------------


def _toy_table(n=80, seed=0):
    """A (x1, x2, y) table with y monotone in x1 and anti-monotone in x2."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, 2))
    y = 2.0 * X[:, 0] - 1.5 * X[:, 1] + 0.05 * rng.normal(size=n)
    return np.column_stack([X, y])


class TestGaussianCopula:
    def test_fit_requires_three_rows(self):
        with pytest.raises(ValueError):
            GaussianCopula().fit(np.ones((2, 3)))

    def test_correlation_is_valid(self):
        cop = GaussianCopula().fit(_toy_table())
        R = cop.corr_
        assert np.allclose(R, R.T)
        assert np.allclose(np.diag(R), 1.0)
        assert np.all(np.linalg.eigvalsh(R) > 0)

    def test_predict_tracks_monotone_response(self):
        D = _toy_table()
        cop = GaussianCopula().fit(D)
        pred = cop.predict(D[:, :2], x_cols=[0, 1], y_cols=[2])[:, 0]
        corr = np.corrcoef(pred, D[:, 2])[0, 1]
        assert corr > 0.8

    def test_conditional_shapes(self):
        cop = GaussianCopula().fit(_toy_table())
        rest, mean, cov = cop.conditional([2], np.array([[0.0], [1.0]]))
        assert list(rest) == [0, 1]
        assert mean.shape == (2, 2)
        assert cov.shape == (2, 2)

    def test_good_region_scores_prefer_low_objective(self):
        D = _toy_table()
        cop = GaussianCopula().fit(D)
        scores = cop.good_region_scores(
            D[:, :2], x_cols=[0, 1], y_cols=[2], top_quantile=0.25
        )
        best = np.argsort(-scores)[:10]
        assert D[best, 2].mean() < D[:, 2].mean()

    def test_degenerate_column_is_safe(self):
        D = _toy_table()
        D[:, 1] = 0.7  # constant parameter column
        cop = GaussianCopula().fit(D)
        scores = cop.good_region_scores(
            D[:, :2], x_cols=[0, 1], y_cols=[2]
        )
        assert np.all(np.isfinite(scores))


# ---------------------------------------------------------------------------
# copula_seed_indices (warm-start selection)
# ---------------------------------------------------------------------------


class TestCopulaSeedIndices:
    def test_deterministic_and_valid(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        a = copula_seed_indices(X, [(Xs, Ys)], n_init=8, seed=3)
        b = copula_seed_indices(X, [(Xs, Ys)], n_init=8, seed=3)
        assert np.array_equal(a, b)
        assert len(a) == 8 and len(set(a.tolist())) == 8
        assert np.all((a >= 0) & (a < len(X)))

    def test_seed_changes_selection_input(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        a = copula_seed_indices(X, [(Xs, Ys)], n_init=8, seed=0)
        b = copula_seed_indices(X, [(Xs, Ys)], n_init=8, seed=1)
        # Tie-breaking is seed-derived; selections need not be equal but
        # both must be valid — and typically overlap on the clear wins.
        assert len(set(a.tolist())) == len(set(b.tolist())) == 8

    def test_seeds_span_a_better_front_than_random(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        golden = pareto_front(Y)
        idx = copula_seed_indices(X, [(Xs, Ys)], n_init=10, seed=0)
        copula_err = hypervolume_error(pareto_front(Y[idx]), golden)
        random_err = np.mean([
            hypervolume_error(
                pareto_front(Y[np.random.default_rng(s).choice(
                    len(X), 10, replace=False
                )]),
                golden,
            )
            for s in range(5)
        ])
        assert copula_err < random_err

    def test_unsupported_inputs_return_none(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        assert copula_seed_indices(X, [], 8, seed=0) is None
        assert copula_seed_indices(X, None, 8, seed=0) is None
        tiny = [(Xs[:2], Ys[:2])]
        assert copula_seed_indices(X, tiny, 8, seed=0) is None
        wrong_d = [(Xs[:, :2], Ys)]
        assert copula_seed_indices(X, wrong_d, 8, seed=0) is None
        assert (
            copula_seed_indices(X, [(Xs, Ys)], len(X) + 1, seed=0) is None
        )


# ---------------------------------------------------------------------------
# CopulaTransferTuner
# ---------------------------------------------------------------------------


class TestCopulaTransferTuner:
    def test_validation(self):
        with pytest.raises(ValueError):
            CopulaTransferTuner(budget=1)
        with pytest.raises(ValueError):
            CopulaTransferTuner(batch_size=0)

    def test_sources_change_trajectory(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        with_src = CopulaTransferTuner(budget=25, seed=0).tune(
            X, PoolOracle(Y), sources=[(Xs, Ys)]
        )
        without = CopulaTransferTuner(budget=25, seed=0).tune(
            X, PoolOracle(Y)
        )
        assert not np.array_equal(
            with_src.evaluated_indices, without.evaluated_indices
        )

    def test_transfer_beats_random_few_shot(self, synthetic_pool):
        """The headline few-shot claim: at a tiny budget, copula
        transfer reaches a lower hypervolume error than random."""
        X, Y, Xs, Ys = synthetic_pool
        golden = pareto_front(Y)

        def err(result):
            return hypervolume_error(
                pareto_front(result.pareto_points), golden
            )

        copula = np.mean([
            err(CopulaTransferTuner(budget=15, seed=s).tune(
                X, PoolOracle(Y), sources=[(Xs, Ys)]
            ))
            for s in (0, 1, 2)
        ])
        random = np.mean([
            err(RandomSearchTuner(budget=15, seed=s).tune(
                X, PoolOracle(Y)
            ))
            for s in (0, 1, 2)
        ])
        assert copula <= random + 0.02

    def test_multiple_sources_accepted(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        result = CopulaTransferTuner(budget=20, seed=0).tune(
            X, PoolOracle(Y), sources=[(Xs[:60], Ys[:60]), (Xs[60:], Ys[60:])]
        )
        assert result.n_evaluations <= 20
