"""Tests for the PPATuner core: regions, decisions, selection, oracle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    PoolOracle,
    PPATunerConfig,
    UncertaintyRegions,
    apply_decision_rules,
    prediction_rectangle,
    select_next,
)
from repro.core.oracle import FlowOracle
from repro.core.result import TuningResult
from repro.pdtool.params import ToolParameters


class TestConfig:
    def test_defaults_valid(self):
        PPATunerConfig()

    @pytest.mark.parametrize("kw", [
        {"tau": 0.0}, {"tau": -1.0}, {"batch_size": 0},
        {"max_iterations": 0}, {"init_fraction": 0.0},
        {"init_fraction": 1.5}, {"min_init": 0}, {"refit_every": 0},
        {"delta_rel": -0.1},
    ])
    def test_invalid_rejected(self, kw):
        with pytest.raises(ValueError):
            PPATunerConfig(**kw)


class TestUncertaintyRegions:
    def test_unbounded_start(self):
        r = UncertaintyRegions.unbounded(3, 2)
        assert not r.is_bounded().any()
        assert np.all(np.isinf(r.diameters()))

    def test_intersection_shrinks(self):
        r = UncertaintyRegions.unbounded(2, 2)
        idx = np.array([0, 1])
        r.intersect(idx, np.zeros((2, 2)), np.ones((2, 2)))
        d1 = r.diameters().copy()
        r.intersect(idx, 0.25 * np.ones((2, 2)), 0.75 * np.ones((2, 2)))
        assert np.all(r.diameters() <= d1)
        assert np.allclose(r.lo[0], 0.25)

    def test_intersection_never_grows(self):
        r = UncertaintyRegions.unbounded(1, 2)
        idx = np.array([0])
        r.intersect(idx, np.zeros((1, 2)), np.ones((1, 2)))
        # A wider new rectangle must not grow the region.
        r.intersect(idx, -np.ones((1, 2)), 2 * np.ones((1, 2)))
        assert np.allclose(r.lo[0], 0.0)
        assert np.allclose(r.hi[0], 1.0)

    def test_disjoint_intersection_degenerates_gracefully(self):
        r = UncertaintyRegions.unbounded(1, 1)
        idx = np.array([0])
        r.intersect(idx, np.array([[0.0]]), np.array([[1.0]]))
        r.intersect(idx, np.array([[2.0]]), np.array([[3.0]]))
        assert r.lo[0, 0] <= r.hi[0, 0]
        assert r.diameters()[0] == 0.0

    def test_collapse(self):
        r = UncertaintyRegions.unbounded(2, 2)
        r.collapse(1, np.array([3.0, 4.0]))
        assert r.is_bounded()[1]
        assert r.diameters()[1] == 0.0
        assert not r.is_bounded()[0]

    def test_diameter_euclidean(self):
        r = UncertaintyRegions(
            lo=np.array([[0.0, 0.0]]), hi=np.array([[3.0, 4.0]])
        )
        assert r.diameters()[0] == pytest.approx(5.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            UncertaintyRegions(lo=np.zeros((2, 2)), hi=np.zeros((3, 2)))

    def test_intersect_empty_indices_is_noop(self):
        r = UncertaintyRegions.unbounded(3, 2)
        r.intersect(np.array([0]), np.zeros((1, 2)), np.ones((1, 2)))
        lo, hi = r.lo.copy(), r.hi.copy()
        r.intersect(
            np.array([], dtype=int), np.empty((0, 2)), np.empty((0, 2))
        )
        np.testing.assert_array_equal(r.lo, lo)
        np.testing.assert_array_equal(r.hi, hi)

    def test_intersect_after_empty_intersection_stays_degenerate(self):
        r = UncertaintyRegions.unbounded(1, 2)
        idx = np.array([0])
        r.intersect(idx, np.zeros((1, 2)), np.ones((1, 2)))
        r.intersect(idx, np.full((1, 2), 5.0), np.full((1, 2), 6.0))
        assert r.diameters()[0] == 0.0
        # A further disjoint prediction keeps the collapsed point inside
        # the previous (degenerate) region — it cannot re-inflate.
        point = r.lo.copy()
        r.intersect(idx, np.full((1, 2), -9.0), np.full((1, 2), -8.0))
        np.testing.assert_array_equal(r.lo, point)
        np.testing.assert_array_equal(r.hi, point)

    def test_collapse_already_collapsed_repins(self):
        r = UncertaintyRegions.unbounded(2, 2)
        r.collapse(0, np.array([1.0, 2.0]))
        r.collapse(0, np.array([1.0, 2.0]))  # idempotent
        np.testing.assert_array_equal(r.lo[0], [1.0, 2.0])
        r.collapse(0, np.array([3.0, 4.0]))  # golden value wins
        np.testing.assert_array_equal(r.lo[0], [3.0, 4.0])
        np.testing.assert_array_equal(r.hi[0], [3.0, 4.0])
        assert r.diameters()[0] == 0.0

    def test_collapse_wrong_shape_rejected(self):
        r = UncertaintyRegions.unbounded(2, 2)
        with pytest.raises(ValueError, match="objective values"):
            r.collapse(0, np.array([1.0, 2.0, 3.0]))
        with pytest.raises(ValueError, match="objective values"):
            r.collapse(0, np.array([1.0]))


class TestPredictionRectangle:
    def test_widths(self):
        lo, hi = prediction_rectangle(
            np.array([[1.0, 2.0]]), np.array([[0.5, 0.1]]), tau=4.0
        )
        assert np.allclose(hi - lo, [[2.0, 0.4]])
        assert np.allclose((hi + lo) / 2, [[1.0, 2.0]])

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            prediction_rectangle(
                np.zeros((1, 2)), -np.ones((1, 2)), tau=1.0
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            prediction_rectangle(np.zeros((1, 2)), np.ones((1, 3)), 1.0)

    def test_zero_variance_degenerates_to_point(self):
        mean = np.array([[1.5, -2.0]])
        lo, hi = prediction_rectangle(mean, np.zeros((1, 2)), tau=4.0)
        np.testing.assert_array_equal(lo, mean)
        np.testing.assert_array_equal(hi, mean)


class TestDecisionRules:
    def _regions(self, lo, hi):
        return UncertaintyRegions(
            lo=np.asarray(lo, float), hi=np.asarray(hi, float)
        )

    def test_clearly_dominated_point_dropped(self):
        # Point 0 is better than point 1 even pessimistically.
        regions = self._regions(
            [[0.0, 0.0], [5.0, 5.0]], [[1.0, 1.0], [6.0, 6.0]]
        )
        undecided = np.array([True, True])
        pareto = np.zeros(2, bool)
        dropped, classified = apply_decision_rules(
            regions, undecided, pareto, np.zeros(2)
        )
        assert list(dropped) == [1]
        assert 0 in classified

    def test_uncertain_point_stays_undecided(self):
        # Overlapping boxes: neither dominates nor is safe.
        regions = self._regions(
            [[0.0, 0.0], [0.5, 0.5]], [[2.0, 2.0], [2.5, 2.5]]
        )
        dropped, classified = apply_decision_rules(
            regions, np.array([True, True]), np.zeros(2, bool),
            np.zeros(2),
        )
        assert len(dropped) == 0
        assert len(classified) == 0

    def test_delta_relaxation_drops_near_ties(self):
        # Point 1 is within delta of point 0 -> dropped under Eq. (11).
        regions = self._regions(
            [[0.0, 0.0], [0.05, 0.05]], [[0.0, 0.0], [0.05, 0.05]]
        )
        dropped, _ = apply_decision_rules(
            regions, np.array([True, True]), np.zeros(2, bool),
            np.full(2, 0.1),
        )
        assert 1 in dropped or 0 in dropped

    def test_incomparable_points_both_pareto(self):
        regions = self._regions(
            [[0.0, 1.0], [1.0, 0.0]], [[0.1, 1.1], [1.1, 0.1]]
        )
        dropped, classified = apply_decision_rules(
            regions, np.array([True, True]), np.zeros(2, bool),
            np.zeros(2),
        )
        assert len(dropped) == 0
        assert set(classified) == {0, 1}

    def test_unbounded_points_ignored(self):
        regions = UncertaintyRegions.unbounded(2, 2)
        regions.collapse(0, np.array([0.0, 0.0]))
        dropped, classified = apply_decision_rules(
            regions, np.array([True, True]), np.zeros(2, bool),
            np.zeros(2),
        )
        assert 1 not in dropped and 1 not in classified

    def test_pareto_points_can_drop_others(self):
        regions = self._regions(
            [[0.0, 0.0], [5.0, 5.0]], [[0.0, 0.0], [6.0, 6.0]]
        )
        undecided = np.array([False, True])
        pareto = np.array([True, False])
        dropped, _ = apply_decision_rules(
            regions, undecided, pareto, np.zeros(2)
        )
        assert list(dropped) == [1]

    def test_generous_pareto_delta_classifies_more(self):
        # Point 1's pessimistic corner is within pareto_delta of point
        # 0's optimistic corner -> classified under the generous rule.
        regions = self._regions(
            [[0.0, 0.0], [0.3, 0.3]], [[0.2, 0.2], [0.5, 0.5]]
        )
        _, strict = apply_decision_rules(
            regions, np.array([True, True]), np.zeros(2, bool),
            np.full(2, 0.01), pareto_delta=np.full(2, 0.01),
        )
        _, generous = apply_decision_rules(
            regions, np.array([True, True]), np.zeros(2, bool),
            np.full(2, 0.01), pareto_delta=np.full(2, 0.6),
        )
        assert len(generous) >= len(strict)

    def test_wrong_delta_shape_raises(self):
        regions = self._regions([[0.0, 0.0]], [[1.0, 1.0]])
        with pytest.raises(ValueError):
            apply_decision_rules(
                regions, np.array([True]), np.zeros(1, bool),
                np.zeros(3),
            )


class TestSelection:
    def test_picks_largest_diameter(self):
        regions = UncertaintyRegions(
            lo=np.zeros((3, 2)),
            hi=np.array([[1.0, 1.0], [3.0, 3.0], [2.0, 2.0]]),
        )
        chosen = select_next(regions, np.ones(3, bool), batch_size=1)
        assert list(chosen) == [1]

    def test_batch_ordering(self):
        regions = UncertaintyRegions(
            lo=np.zeros((3, 2)),
            hi=np.array([[1.0, 1.0], [3.0, 3.0], [2.0, 2.0]]),
        )
        chosen = select_next(regions, np.ones(3, bool), batch_size=2)
        assert list(chosen) == [1, 2]

    def test_respects_eligibility(self):
        regions = UncertaintyRegions(
            lo=np.zeros((3, 2)),
            hi=np.array([[1.0, 1.0], [3.0, 3.0], [2.0, 2.0]]),
        )
        eligible = np.array([True, False, True])
        chosen = select_next(regions, eligible, batch_size=1)
        assert list(chosen) == [2]

    def test_unbounded_prioritized(self):
        regions = UncertaintyRegions.unbounded(2, 2)
        regions.intersect(
            np.array([0]), np.zeros((1, 2)), np.ones((1, 2))
        )
        chosen = select_next(regions, np.ones(2, bool), batch_size=1)
        assert list(chosen) == [1]

    def test_empty_eligible(self):
        regions = UncertaintyRegions.unbounded(2, 2)
        assert len(select_next(regions, np.zeros(2, bool))) == 0


class TestPoolOracle:
    def test_counts_unique_evaluations(self):
        oracle = PoolOracle(np.arange(6.0).reshape(3, 2))
        oracle.evaluate(0)
        oracle.evaluate(0)
        oracle.evaluate(2)
        assert oracle.n_evaluations == 2

    def test_returns_copies(self):
        Y = np.ones((2, 2))
        oracle = PoolOracle(Y)
        v = oracle.evaluate(0)
        v[0] = 99.0
        assert oracle.Y[0, 0] == 1.0

    def test_out_of_range(self):
        oracle = PoolOracle(np.ones((2, 2)))
        with pytest.raises(IndexError):
            oracle.evaluate(5)

    def test_batch(self):
        oracle = PoolOracle(np.arange(6.0).reshape(3, 2))
        batch = oracle.evaluate_batch(np.array([0, 2]))
        assert batch.shape == (2, 2)

    def test_reset(self):
        oracle = PoolOracle(np.ones((2, 2)))
        oracle.evaluate(0)
        oracle.reset()
        assert oracle.n_evaluations == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            PoolOracle(np.empty((0, 2)))


class TestFlowOracle:
    def test_runs_and_caches(self, tiny_flow):
        configs = [ToolParameters(freq=f) for f in (950.0, 1000.0)]
        oracle = FlowOracle(tiny_flow, configs, ("power", "delay"))
        a = oracle.evaluate(0)
        b = oracle.evaluate(0)
        assert np.array_equal(a, b)
        assert oracle.n_evaluations == 1
        assert oracle.n_objectives == 2

    def test_accepts_dict_configs(self, tiny_flow):
        oracle = FlowOracle(
            tiny_flow, [{"freq": 999.0}], ("area", "delay")
        )
        v = oracle.evaluate(0)
        assert v.shape == (2,)

    def test_empty_pool_rejected(self, tiny_flow):
        with pytest.raises(ValueError):
            FlowOracle(tiny_flow, [])


class TestTuningResult:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            TuningResult(
                pareto_indices=np.array([0, 1]),
                pareto_points=np.ones((3, 2)),
                n_evaluations=1,
                n_iterations=1,
            )
