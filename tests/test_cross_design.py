"""Tests for the cross-design transfer scenarios and pruning wiring."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    CROSS_DESIGN_METHODS,
    CROSS_DESIGN_SCENARIOS,
    build_scenario_jobs,
    cross_design_scenario,
)
from repro.runner import ExperimentRunner

FAST = dict(n_points=120, scale=60, methods=("PPATuner", "Random"))


class TestScenarioTable:
    def test_names_and_pairs(self):
        assert set(CROSS_DESIGN_SCENARIOS) == {
            "mac_to_fabric", "cpu_small_to_large", "fabric_to_cpu",
        }
        from repro.bench import SPACES

        for src, tgt in CROSS_DESIGN_SCENARIOS.values():
            assert src in SPACES and tgt in SPACES
            # TransferGP requires column-aligned knob spaces.
            assert SPACES[src]().names == SPACES[tgt]().names

    def test_default_methods(self):
        assert CROSS_DESIGN_METHODS == ("PPATuner", "PPATuner-NT",
                                        "Random")

    def test_unknown_scenario_lists_known(self):
        with pytest.raises(ValueError) as exc:
            cross_design_scenario("mac_to_toaster")
        msg = str(exc.value)
        for known in CROSS_DESIGN_SCENARIOS:
            assert known in msg


class TestEndToEnd:
    def test_runs_and_beats_random(self):
        res = cross_design_scenario("mac_to_fabric", seed=5, **FAST)
        assert res.source == "source3"
        assert res.target.startswith("fabric1")
        assert res.pool_size == 60
        assert len(res.outcomes) == 6  # 3 objective spaces x 2 methods
        avg = res.averages()
        assert avg["PPATuner"][0] < avg["Random"][0]

    def test_parallel_bit_identical_to_serial(self):
        kw = dict(seed=9, **FAST)
        serial = cross_design_scenario("fabric_to_cpu", workers=1, **kw)
        parallel = cross_design_scenario("fabric_to_cpu", workers=2,
                                         **kw)
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert (a.method, a.objective_space) == (
                b.method, b.objective_space,
            )
            assert a.hv_error == b.hv_error
            assert a.adrs == b.adrs
            assert np.array_equal(
                a.result.pareto_points, b.result.pareto_points
            )

    def test_pruning_reports_dropped_knobs(self):
        records = []

        class Spy(ExperimentRunner):
            def run(self, jobs):
                out = super().run(jobs)
                records.extend(out)
                return out

        cross_design_scenario(
            "mac_to_fabric", seed=5, prune_space=True,
            runner=Spy(workers=1, memo=None), **FAST,
        )
        assert records
        for rec in records:
            if rec.spec.method == "Random":
                continue
            dropped = rec.extras["pruned_knobs"]
            assert dropped  # fabric1 has dead knobs at this scale
            space_names = set()
            from repro.bench import fabric1_space

            space_names = set(fabric1_space().names)
            assert set(dropped) < space_names

    def test_pruning_deterministic_across_runs(self):
        kw = dict(seed=5, prune_space={"threshold": 0.08}, **FAST)
        a = cross_design_scenario("mac_to_fabric", **kw)
        b = cross_design_scenario("mac_to_fabric", **kw)
        for oa, ob in zip(a.outcomes, b.outcomes):
            assert oa.hv_error == ob.hv_error
            assert np.array_equal(
                oa.result.pareto_points, ob.result.pareto_points
            )


class TestMemoHashes:
    def _jobs(self, **kwargs):
        from repro.runner import DatasetRef

        src = DatasetRef("source3", n_points=60).resolve()
        tgt = DatasetRef("fabric1", n_points=60).resolve()
        return build_scenario_jobs(
            src, tgt, "mac_to_fabric", "fabric1",
            methods=("PPATuner",), **kwargs,
        )

    def test_prune_off_preserves_hashes(self):
        """None and False leave the spec hash exactly as before the
        ``prune_space`` param existed — memoized runs stay valid."""
        base = [j.spec.spec_hash() for j in self._jobs()]
        off = [j.spec.spec_hash() for j in self._jobs(prune_space=False)]
        none = [j.spec.spec_hash() for j in self._jobs(prune_space=None)]
        assert base == off == none

    def test_prune_on_changes_hashes(self):
        base = [j.spec.spec_hash() for j in self._jobs()]
        on = [j.spec.spec_hash() for j in self._jobs(prune_space=True)]
        assert set(base).isdisjoint(on)

    def test_prune_settings_are_canonicalized(self):
        a = [j.spec.spec_hash() for j in self._jobs(
            prune_space={"threshold": 0.08, "min_keep": 3}
        )]
        b = [j.spec.spec_hash() for j in self._jobs(
            prune_space={"min_keep": 3, "threshold": 0.08}
        )]
        assert a == b

    def test_memoized_resume_skips_completed_cells(self, tmp_path):
        from repro.runner import RunMemo

        memo = RunMemo(root=tmp_path)
        kw = dict(seed=4, **FAST)
        first = cross_design_scenario(
            "cpu_small_to_large",
            runner=ExperimentRunner(workers=1, memo=memo), **kw,
        )
        runner = ExperimentRunner(workers=1, memo=memo)
        second = cross_design_scenario(
            "cpu_small_to_large", runner=runner, **kw,
        )
        for a, b in zip(first.outcomes, second.outcomes):
            assert a.hv_error == b.hv_error
            assert np.array_equal(
                a.result.pareto_points, b.result.pareto_points
            )
        assert all(r.telemetry.memoized for r in runner.history)
