"""Tests for the transfer kernel (Eq. (5)-(7)) and transfer GP (Eq. (8))."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import approx_fprime

from repro.gp import (
    SOURCE_TASK,
    TARGET_TASK,
    RBFKernel,
    TransferGP,
    TransferKernel,
    gaussian_log_marginal,
    transfer_factor,
)

rng = np.random.default_rng(1)


class TestTransferFactor:
    def test_range(self):
        for a in (0.1, 1.0, 10.0):
            for b in (0.1, 1.0, 10.0):
                lam = transfer_factor(a, b)
                assert -1.0 < lam <= 1.0

    def test_limit_full_transfer(self):
        # a -> 0: lambda -> 1 (tasks identical).
        assert transfer_factor(1e-9, 1.0) == pytest.approx(1.0)

    def test_limit_negative_transfer(self):
        # Large a, b: lambda -> -1 (anti-correlated tasks).
        assert transfer_factor(100.0, 10.0) == pytest.approx(-1.0, abs=1e-3)

    def test_zero_crossing(self):
        # (1+a)^-b = 1/2 -> lambda = 0.
        a = 1.0
        b = 1.0  # (2)^-1 = 0.5
        assert transfer_factor(a, b) == pytest.approx(0.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            transfer_factor(-1.0, 1.0)
        with pytest.raises(ValueError):
            transfer_factor(1.0, 0.0)

    def test_matches_eq7_form(self):
        a, b = 0.7, 2.3
        assert transfer_factor(a, b) == pytest.approx(
            2.0 * (1.0 / (1.0 + a)) ** b - 1.0
        )


class TestTransferKernel:
    def _kernel(self, a=1.0, b=1.0):
        return TransferKernel(RBFKernel(np.full(2, 0.5)), a=a, b=b)

    def test_within_task_is_base_kernel(self):
        tk = self._kernel()
        X = rng.uniform(size=(6, 2))
        tasks = np.zeros(6, dtype=int)
        assert np.allclose(tk.eval(X, tasks), tk.base.eval(X))

    def test_cross_task_damped(self):
        tk = self._kernel(a=1.0, b=2.0)  # lambda = 2/4-1 = -0.5
        X = rng.uniform(size=(4, 2))
        tasks = np.array([0, 0, 1, 1])
        K = tk.eval(X, tasks)
        K_base = tk.base.eval(X)
        assert np.allclose(K[:2, 2:], tk.lam * K_base[:2, 2:])
        assert np.allclose(K[:2, :2], K_base[:2, :2])

    def test_psd_for_positive_lambda(self):
        tk = self._kernel(a=0.5, b=0.5)
        assert tk.lam > 0
        X = rng.uniform(size=(10, 2))
        tasks = (np.arange(10) % 2)
        eigs = np.linalg.eigvalsh(tk.eval(X, tasks))
        assert eigs.min() > -1e-8

    def test_theta_includes_gamma_params(self):
        tk = self._kernel()
        assert len(tk.theta) == tk.base.n_params + 2

    def test_theta_setter(self):
        tk = self._kernel()
        theta = tk.theta
        theta[-2:] = np.log([2.0, 3.0])
        tk.theta = theta
        assert tk.a == pytest.approx(2.0)
        assert tk.b == pytest.approx(3.0)

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ValueError):
            TransferKernel(RBFKernel(np.ones(2)), a=-1.0)

    def test_gradients_match_finite_differences(self):
        X = rng.uniform(size=(10, 2))
        tasks = np.array([0] * 5 + [1] * 5)
        y = np.sin(4 * X.sum(axis=1))
        tk = self._kernel(a=0.8, b=1.2)

        def lml(theta):
            tk.theta = theta
            K, _ = tk.eval_with_grads(X, tasks)
            value, _, _ = gaussian_log_marginal(
                K + 0.01 * np.eye(10), y
            )
            return value

        def grad(theta):
            tk.theta = theta
            K, grads = tk.eval_with_grads(X, tasks)
            _, g, _ = gaussian_log_marginal(
                K + 0.01 * np.eye(10), y, grads
            )
            return g

        theta0 = tk.theta + rng.normal(scale=0.05, size=len(tk.theta))
        numeric = approx_fprime(theta0, lml, 1e-6)
        assert np.allclose(grad(theta0), numeric, atol=1e-4)


def _make_tasks(shift=0.05, flip=False, n_src=60, n_tgt=10):
    Xs = rng.uniform(size=(n_src, 3))
    f = lambda X: np.sin(3 * X.sum(axis=1))  # noqa: E731
    ys = -f(Xs) if flip else f(Xs)
    Xt = rng.uniform(size=(n_tgt, 3))
    yt = f(Xt) + shift
    Xq = rng.uniform(size=(60, 3))
    yq = f(Xq) + shift
    return Xs, ys, Xt, yt, Xq, yq


class TestTransferGP:
    def test_positive_transfer_learned(self):
        Xs, ys, Xt, yt, Xq, yq = _make_tasks()
        model = TransferGP(seed=0).fit(Xs, ys, Xt, yt)
        assert model.lam > 0.5
        mean, _ = model.predict(Xq)
        assert np.sqrt(np.mean((mean - yq) ** 2)) < 0.15

    def test_negative_transfer_learned(self):
        Xs, ys, Xt, yt, Xq, yq = _make_tasks(flip=True)
        model = TransferGP(seed=0).fit(Xs, ys, Xt, yt)
        assert model.lam < -0.5
        mean, _ = model.predict(Xq)
        assert np.sqrt(np.mean((mean - yq) ** 2)) < 0.3

    def test_transfer_beats_target_only(self):
        from repro.gp import GPRegressor

        Xs, ys, Xt, yt, Xq, yq = _make_tasks()
        transfer = TransferGP(seed=0).fit(Xs, ys, Xt, yt)
        target_only = GPRegressor(seed=0).fit(Xt, yt)
        rmse_t = np.sqrt(np.mean((transfer.predict(Xq)[0] - yq) ** 2))
        rmse_o = np.sqrt(np.mean((target_only.predict(Xq)[0] - yq) ** 2))
        assert rmse_t < rmse_o

    def test_no_source_data_still_works(self):
        _, _, Xt, yt, Xq, yq = _make_tasks(n_tgt=25)
        model = TransferGP(seed=0).fit(
            np.empty((0, 3)), np.empty(0), Xt, yt
        )
        mean, var = model.predict(Xq)
        assert mean.shape == (60,)
        assert np.all(var > 0)

    def test_empty_target_raises(self):
        Xs, ys, *_ = _make_tasks()
        with pytest.raises(ValueError, match="target"):
            TransferGP().fit(Xs, ys, np.empty((0, 3)), np.empty(0))

    def test_dim_mismatch_raises(self):
        Xs, ys, Xt, yt, *_ = _make_tasks()
        with pytest.raises(ValueError, match="dimensionality"):
            TransferGP().fit(Xs[:, :2], ys, Xt, yt)

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            TransferGP().predict(np.zeros((1, 3)))

    def test_noise_properties(self):
        Xs, ys, Xt, yt, *_ = _make_tasks()
        model = TransferGP(
            noise_source=0.5, noise_target=0.25, optimize=False
        ).fit(Xs, ys, Xt, yt)
        assert model.noise_source == pytest.approx(0.5)
        assert model.noise_target == pytest.approx(0.25)

    def test_include_noise_adds_target_noise(self):
        Xs, ys, Xt, yt, Xq, _ = _make_tasks()
        model = TransferGP(seed=0).fit(Xs, ys, Xt, yt)
        _, v0 = model.predict(Xq[:3], include_noise=False)
        _, v1 = model.predict(Xq[:3], include_noise=True)
        assert np.all(v1 >= v0)

    def test_interpolates_target_points(self):
        Xs, ys, Xt, yt, *_ = _make_tasks(n_tgt=15)
        model = TransferGP(
            noise_target=1e-6, noise_source=1e-2, seed=0
        ).fit(Xs, ys, Xt, yt)
        mean, _ = model.predict(Xt)
        assert np.abs(mean - yt).max() < 0.1

    def test_lml_finite(self):
        Xs, ys, Xt, yt, *_ = _make_tasks()
        model = TransferGP(seed=0).fit(Xs, ys, Xt, yt)
        assert np.isfinite(model.log_marginal_likelihood())

    def test_task_constants(self):
        assert SOURCE_TASK != TARGET_TASK
