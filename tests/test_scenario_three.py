"""Tests for the Scenario Three (mixed-archive) experiment module."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.scenario_three import (
    ScenarioThreeOutcome,
    format_scenario_three,
)


class TestOutcomeFormatting:
    def test_format_with_lambdas(self):
        outcomes = [
            ScenarioThreeOutcome(
                "related-only", 0.1, 0.05, 40, [[0.6], [0.7]]
            ),
            ScenarioThreeOutcome(
                "multi-source", 0.12, 0.06, 42,
                [[0.6, 0.01], [0.5, -0.02]],
            ),
            ScenarioThreeOutcome("no-transfer", 0.2, 0.1, 60, []),
        ]
        text = format_scenario_three(outcomes)
        assert "related-only" in text
        assert "+0.60" in text
        assert "-0.02" in text
        # No-transfer row renders a dash for lambdas.
        assert text.splitlines()[-1].rstrip().endswith("-")

    def test_columns_aligned(self):
        outcomes = [
            ScenarioThreeOutcome("a", 0.1, 0.05, 40, []),
            ScenarioThreeOutcome("bbbbbb", 0.2, 0.15, 140, []),
        ]
        lines = format_scenario_three(outcomes).splitlines()
        assert lines[0].startswith("variant")
        assert len(lines) == 3


class TestScenarioThreeReduced:
    """End-to-end at a toy scale (real benchmarks are bench territory)."""

    def test_variants_complete(self, monkeypatch, tiny_benchmark):
        import sys

        import repro.experiments.scenario_three  # noqa: F401

        # The package re-exports the scenario_three *function*, which
        # shadows the submodule attribute — resolve the module itself.
        s3 = sys.modules["repro.experiments.scenario_three"]

        def fake_generate(name):
            if name == "source2":
                return tiny_benchmark
            return tiny_benchmark.subsample(40, seed=1)

        monkeypatch.setattr(s3, "generate_benchmark", fake_generate)
        outcomes = s3.scenario_three(
            n_source=20, max_iterations=6, seed=0
        )
        assert [o.variant for o in outcomes] == [
            "related-only", "multi-source", "decoy-only", "no-transfer",
        ]
        for o in outcomes:
            assert np.isfinite(o.hv_error)
            assert o.runs > 0
        # Multi-source variant reports two lambdas per objective.
        multi = outcomes[1]
        assert all(len(per_obj) == 2 for per_obj in multi.lambdas)
        # No-transfer reports none.
        assert outcomes[3].lambdas == []
