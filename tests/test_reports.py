"""Tests for the tool-style report formatters."""

from __future__ import annotations

import pytest

from repro.pdtool.params import ToolParameters
from repro.pdtool.qor import QoRReport
from repro.pdtool.reports import format_comparison, format_qor_report


@pytest.fixture()
def report() -> QoRReport:
    return QoRReport(
        area=1234.5, power=1.75, delay=0.98, slack_ns=0.02,
        wirelength=8000.0, n_cells=2000, n_drv_violations=3,
        congestion_overflow=0.01, runtime_hours=2.5,
    )


class TestQorReport:
    def test_contains_metrics(self, report):
        text = format_qor_report(report, design_name="mac")
        assert "mac" in text
        assert "1234.50" in text
        assert "1.7500" in text
        assert "0.9800" in text

    def test_params_echoed(self, report):
        text = format_qor_report(report, ToolParameters(freq=1111.0))
        assert "freq" in text
        assert "1111.0" in text

    def test_without_params_no_parameter_block(self, report):
        text = format_qor_report(report)
        assert "Parameters" not in text


class TestComparison:
    def test_deltas_vs_baseline(self, report):
        other = QoRReport(area=report.area * 1.1, power=report.power,
                          delay=report.delay * 0.9)
        text = format_comparison([("base", report), ("opt", other)])
        assert "+10.0%" in text
        assert "-10.0%" in text
        assert "+0.0%" in text

    def test_custom_baseline(self, report):
        other = QoRReport(area=2 * report.area, power=1.0, delay=1.0)
        text = format_comparison(
            [("a", report), ("b", other)], baseline=1
        )
        assert "-50.0%" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_comparison([])

    def test_bad_baseline_rejected(self, report):
        with pytest.raises(ValueError):
            format_comparison([("a", report)], baseline=5)

    def test_zero_reference_handled(self, report):
        zero = QoRReport(area=0.0, power=0.0, delay=0.0)
        text = format_comparison([("z", zero), ("a", report)])
        assert "n/a" in text
