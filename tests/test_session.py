"""Tests for the ask/tell core: state machine, snapshots, invariants.

Covers the two behavioral guarantees this layer introduced:

- the verified front is *mutually non-dominated* (the dominance bugfix:
  golden verification can reveal that a kept point dominates another,
  and the dominated one must not be reported), clean and under faults;
- ``TuningSession`` + :func:`drive` is bit-identical to
  :meth:`PPATuner.tune` — same Pareto indices, same trace events —
  and a snapshot taken at *any* tell boundary resumes to the same
  final result.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest

from repro.core import (
    EvaluationFailure,
    PoolOracle,
    PPATuner,
    PPATunerConfig,
    TuningSession,
    drive,
)
from repro.core.result import IterationRecord, TuningResult
from repro.obs import MemorySink, TraceRecorder
from repro.pareto import dominates, non_dominated_mask
from repro.reliability import (
    FaultInjectingOracle,
    FaultPlan,
    FaultPolicy,
    ResilientOracle,
)
from repro.reliability.errors import PermanentEvaluationError


def random_pool(seed: int, n: int = 40, d: int = 3, m: int = 2):
    """A small random pool with correlated objectives."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, d))
    Y = rng.uniform(0.5, 2.0, size=(n, m))
    return X, Y


def stripped_events(sink: MemorySink) -> list[dict]:
    """Event stream as JSON dicts with wall-clock fields removed."""
    out = []
    for ev in sink.events:
        d = ev.to_json()
        d.pop("seconds", None)
        out.append(d)
    return out


# ---------------------------------------------------------------------------
# dominance invariant (the bugfix)


class TestFrontNonDominance:
    def test_seed2_regression(self):
        """The original repro: seed-2 run on a 40x2 random pool leaked a
        dominated point into the verified front."""
        X, Y = random_pool(2)
        cfg = PPATunerConfig(max_iterations=15, seed=2)
        result = PPATuner(cfg).tune(X, PoolOracle(Y))
        assert non_dominated_mask(result.pareto_points).all()

    @pytest.mark.parametrize("seed", range(8))
    def test_front_mutually_non_dominated(self, seed):
        X, Y = random_pool(seed)
        cfg = PPATunerConfig(max_iterations=15, seed=seed)
        result = PPATuner(cfg).tune(X, PoolOracle(Y))
        assert non_dominated_mask(result.pareto_points).all()
        # Reported points must really come from the pool.
        assert np.allclose(Y[result.pareto_indices], result.pareto_points)

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_front_non_dominated_under_faults(self, seed):
        X, Y = random_pool(seed, n=50)
        plan = FaultPlan.seeded(
            seed, len(X), rate=0.25,
            kinds=("transient", "partial", "persistent"),
        )
        oracle = FaultInjectingOracle(PoolOracle(Y), plan, latency_s=0.0)
        cfg = PPATunerConfig(
            max_iterations=15, seed=seed,
            fault_policy=FaultPolicy(max_retries=2),
        )
        result = PPATuner(cfg).tune(X, oracle)
        assert non_dominated_mask(result.pareto_points).all()

    def test_unreported_sampled_points_are_dominated(self):
        """A sampled point missing from the front must be dominated by a
        reported one (the corrected contract)."""
        X, Y = random_pool(2)
        cfg = PPATunerConfig(max_iterations=15, seed=2)
        result = PPATuner(cfg).tune(X, PoolOracle(Y))
        reported = {tuple(p) for p in result.pareto_points}
        sampled = Y[result.evaluated_indices]
        for p in sampled[non_dominated_mask(sampled)]:
            assert tuple(p) in reported or any(
                dominates(q, p) for q in result.pareto_points
            )


# ---------------------------------------------------------------------------
# ask/tell equivalence with the closed-loop tuner


class TestAskTellEquivalence:
    @pytest.mark.parametrize("seed", [0, 2, 5])
    def test_drive_matches_tune(self, seed):
        X, Y = random_pool(seed)
        cfg = PPATunerConfig(max_iterations=15, seed=seed)

        sink_a = MemorySink()
        oracle = PoolOracle(Y)
        ref = PPATuner(
            cfg, recorder=TraceRecorder(sinks=[sink_a])
        ).tune(X, oracle)

        # tune() lends its recorder to the oracle for ToolEvaluation
        # events; the ask/tell caller wires both sides explicitly.
        sink_b = MemorySink()
        rec_b = TraceRecorder(sinks=[sink_b])
        session = TuningSession(cfg, X, Y.shape[1], recorder=rec_b)
        got = drive(session, PoolOracle(Y, recorder=rec_b))

        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert np.allclose(ref.pareto_points, got.pareto_points)
        assert np.array_equal(
            ref.evaluated_indices, got.evaluated_indices
        )
        assert ref.n_evaluations == got.n_evaluations
        assert ref.stop_reason == got.stop_reason
        assert ref.history == got.history
        assert stripped_events(sink_a) == stripped_events(sink_b)

    def test_manual_ask_tell_loop(self):
        """Hand-rolled ask/evaluate/tell loop, no drive() helper."""
        X, Y = random_pool(4)
        cfg = PPATunerConfig(max_iterations=15, seed=4)
        ref = PPATuner(cfg).tune(X, PoolOracle(Y))

        session = TuningSession(cfg, X, Y.shape[1])
        oracle = PoolOracle(Y)
        while not session.done:
            pending = session.ask()
            if not pending:
                break
            for idx in pending:
                session.tell(
                    idx,
                    oracle.evaluate(idx),
                    n_evaluations=oracle.n_evaluations,
                )
        got = session.result()
        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert ref.n_evaluations == got.n_evaluations
        assert ref.stop_reason == got.stop_reason

    def test_ask_is_idempotent_while_pending(self):
        X, Y = random_pool(1)
        session = TuningSession(
            PPATunerConfig(max_iterations=15, seed=1), X, Y.shape[1]
        )
        first = session.ask()
        assert first
        assert session.ask() == first

    def test_faulted_drive_matches_tune(self):
        X, Y = random_pool(9, n=50)
        plan = FaultPlan.seeded(
            9, len(X), rate=0.3,
            kinds=("transient", "partial", "persistent"),
        )
        policy = FaultPolicy(max_retries=2)
        cfg = PPATunerConfig(
            max_iterations=12, seed=9, fault_policy=policy
        )

        ref = PPATuner(cfg).tune(
            X,
            FaultInjectingOracle(PoolOracle(Y), plan, latency_s=0.0),
        )

        session = TuningSession(cfg, X, Y.shape[1])
        resilient = ResilientOracle(
            FaultInjectingOracle(PoolOracle(Y), plan, latency_s=0.0),
            policy,
        )
        got = drive(session, resilient, policy)

        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert np.array_equal(
            ref.quarantined_indices, got.quarantined_indices
        )
        assert ref.n_failed_evaluations == got.n_failed_evaluations
        assert ref.stop_reason == got.stop_reason

    def test_drive_raises_without_policy(self):
        X, Y = random_pool(9, n=50)
        # Every index fails permanently, so the first evaluation raises.
        plan = FaultPlan(
            faults=tuple(
                (i, ("persistent",) * 4) for i in range(len(X))
            )
        )
        session = TuningSession(
            PPATunerConfig(max_iterations=5, seed=0), X, Y.shape[1]
        )
        resilient = ResilientOracle(
            FaultInjectingOracle(PoolOracle(Y), plan, latency_s=0.0),
            FaultPolicy(max_retries=1),
        )
        with pytest.raises(PermanentEvaluationError):
            drive(session, resilient, policy=None)


# ---------------------------------------------------------------------------
# tell() contract


class TestTellContract:
    def _session(self):
        X, Y = random_pool(0)
        s = TuningSession(
            PPATunerConfig(max_iterations=15, seed=0), X, Y.shape[1]
        )
        return s, Y

    def test_rejects_non_pending_index(self):
        s, Y = self._session()
        pending = s.ask()
        assert len(pending) >= 1
        wrong = max(pending) + 1
        with pytest.raises(ValueError, match="expected"):
            s.tell(wrong, Y[wrong % len(Y)])

    def test_out_of_order_tell_buffers_and_resequences(self):
        s, Y = self._session()
        pending = s.ask()
        if len(pending) < 2:
            pytest.skip("init batch has a single pending candidate")
        tail = pending[-1]
        s.tell(tail, Y[tail])  # buffered, not yet applied
        # The told candidate is no longer offered...
        assert tail not in s.ask()
        # ...and a second tell for it is rejected.
        with pytest.raises(ValueError, match="duplicate"):
            s.tell(tail, Y[tail])
        # Outcomes flush in ask order once the head arrives.
        for idx in pending[:-1]:
            s.tell(idx, Y[idx])
        assert tail not in s.ask()
        assert list(s._eval_order[-len(pending):]) == list(pending)

    def test_rejects_values_and_failure_together(self):
        s, Y = self._session()
        idx = s.ask()[0]
        with pytest.raises(ValueError):
            s.tell(idx, Y[idx], failure=EvaluationFailure("boom"))

    def test_rejects_neither_values_nor_failure(self):
        s, _ = self._session()
        idx = s.ask()[0]
        with pytest.raises(ValueError):
            s.tell(idx)

    def test_rejects_bad_shape(self):
        s, Y = self._session()
        idx = s.ask()[0]
        with pytest.raises(ValueError):
            s.tell(idx, np.zeros(Y.shape[1] + 1))

    def test_tell_after_done_raises(self):
        s, Y = self._session()
        drive(s, PoolOracle(Y))
        assert s.done
        with pytest.raises(RuntimeError):
            s.tell(0, np.zeros(2))

    def test_stop_jumps_to_verification(self):
        """stop() discards pending asks and queues golden verification;
        the stop reason survives through to the result."""
        s, Y = self._session()
        idx = s.ask()[0]
        s.tell(idx, Y[idx], n_evaluations=1)
        s.stop("operator")
        assert s.phase in ("verify", "done")
        while not s.done:
            pending = s.ask()
            if not pending:
                break
            for i in pending:
                s.tell(i, Y[i])
        result = s.result()
        assert result.stop_reason == "operator"
        assert s.ask() == []

    def test_result_before_done_raises(self):
        s, _ = self._session()
        s.ask()
        with pytest.raises(RuntimeError):
            s.result()


# ---------------------------------------------------------------------------
# snapshot / resume


class TestSnapshotResume:
    def _roundtrip(self, snapshot: dict) -> dict:
        """Push the snapshot through a real npz buffer, like the store."""
        buf = io.BytesIO()
        np.savez(
            buf,
            __meta__=np.frombuffer(
                json.dumps(snapshot["meta"]).encode(), dtype=np.uint8
            ),
            **snapshot["arrays"],
        )
        buf.seek(0)
        with np.load(buf) as data:
            return {
                "meta": json.loads(bytes(data["__meta__"]).decode()),
                "arrays": {
                    k: data[k] for k in data.files if k != "__meta__"
                },
            }

    @pytest.mark.parametrize("seed", [0, 2])
    @pytest.mark.parametrize("cut", [1, 9, 23])
    def test_resume_bit_identical(self, seed, cut):
        X, Y = random_pool(seed)
        cfg = PPATunerConfig(max_iterations=15, seed=seed)
        ref = PPATuner(cfg).tune(X, PoolOracle(Y))

        # Interrupt after `cut` tells, snapshot, discard the session.
        session = TuningSession(cfg, X, Y.shape[1])
        oracle = PoolOracle(Y)
        told = 0
        interrupted = False
        while not session.done and not interrupted:
            pending = session.ask()
            if not pending:
                break
            for idx in pending:
                session.tell(
                    idx,
                    oracle.evaluate(idx),
                    n_evaluations=oracle.n_evaluations,
                )
                told += 1
                if told >= cut:
                    interrupted = True
                    break
        snap = self._roundtrip(session.snapshot())
        del session

        resumed = TuningSession.restore(snap)
        got = drive(resumed, oracle)
        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert np.allclose(ref.pareto_points, got.pareto_points)
        assert np.array_equal(
            ref.evaluated_indices, got.evaluated_indices
        )
        assert ref.n_evaluations == got.n_evaluations
        assert ref.stop_reason == got.stop_reason
        assert ref.history == got.history

    @pytest.mark.fastpath
    @pytest.mark.parametrize("cut", [3, 11])
    def test_resume_bit_identical_under_fast_paths(self, cut):
        """Mid-run resume with every hot-path switch engaged: float32
        pool caches, blocked cache builds, the shared Cholesky factor
        (kept active by ``reopt_every=0``) and vectorized decisions.
        The replayed session must continue bit-identically."""
        X, Y = random_pool(7)
        cfg = PPATunerConfig(
            max_iterations=15, seed=7, reopt_every=0,
            float32_pool=True, pool_block=16,
        )
        ref = PPATuner(cfg).tune(X, PoolOracle(Y))

        session = TuningSession(cfg, X, Y.shape[1])
        oracle = PoolOracle(Y)
        told = 0
        interrupted = False
        while not session.done and not interrupted:
            pending = session.ask()
            if not pending:
                break
            for idx in pending:
                session.tell(
                    idx,
                    oracle.evaluate(idx),
                    n_evaluations=oracle.n_evaluations,
                )
                told += 1
                if told >= cut:
                    interrupted = True
                    break
        snap = self._roundtrip(session.snapshot())
        del session

        resumed = TuningSession.restore(snap)
        # The restored engine replays calibration with the fast paths
        # re-engaged — sharing must be live again, not just configured.
        got = drive(resumed, oracle)
        assert resumed.engine.stats.n_shared_updates > 0
        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert np.allclose(ref.pareto_points, got.pareto_points)
        assert np.array_equal(
            ref.evaluated_indices, got.evaluated_indices
        )
        assert ref.n_evaluations == got.n_evaluations
        assert ref.history == got.history

    def test_snapshot_of_done_session(self):
        X, Y = random_pool(3)
        cfg = PPATunerConfig(max_iterations=15, seed=3)
        session = TuningSession(cfg, X, Y.shape[1])
        ref = drive(session, PoolOracle(Y))
        resumed = TuningSession.restore(
            self._roundtrip(session.snapshot())
        )
        assert resumed.done
        got = resumed.result()
        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert ref.stop_reason == got.stop_reason

    def test_corrupt_snapshot_rejected(self):
        X, Y = random_pool(3)
        session = TuningSession(
            PPATunerConfig(max_iterations=15, seed=3), X, Y.shape[1]
        )
        idx = session.ask()[0]
        session.tell(idx, Y[idx], n_evaluations=1)
        snap = session.snapshot()
        snap["arrays"]["y_obs"] = snap["arrays"]["y_obs"] + 1.0
        with pytest.raises(ValueError, match="fingerprint"):
            TuningSession.restore(snap)


# ---------------------------------------------------------------------------
# JSON round-trips


class TestJsonRoundTrips:
    def test_evaluation_failure(self):
        f = EvaluationFailure("Timeout", attempts=3, circuit_open=True)
        g = EvaluationFailure.from_json(
            json.loads(json.dumps(f.to_json()))
        )
        assert g == f

    def test_config_roundtrip(self):
        cfg = PPATunerConfig(
            max_iterations=7, seed=11, batch_size=2,
            delta_rel=np.array([0.05, 0.07]),
        )
        got = PPATunerConfig.from_json(
            json.loads(json.dumps(cfg.to_json()))
        )
        assert got.max_iterations == cfg.max_iterations
        assert got.seed == cfg.seed
        assert np.allclose(got.delta_rel, cfg.delta_rel)

    def test_config_rejects_unknown_keys(self):
        with pytest.raises(TypeError):
            PPATunerConfig.from_json({"not_a_field": 1})

    def test_result_roundtrip(self):
        X, Y = random_pool(5)
        cfg = PPATunerConfig(max_iterations=15, seed=5)
        ref = PPATuner(cfg).tune(X, PoolOracle(Y))
        got = TuningResult.from_json(
            json.loads(json.dumps(ref.to_json()))
        )
        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert np.allclose(ref.pareto_points, got.pareto_points)
        assert ref.history == got.history
        assert ref.stop_reason == got.stop_reason

    def test_empty_result_roundtrip(self):
        empty = TuningResult(
            pareto_indices=np.empty(0, dtype=int),
            pareto_points=np.empty((0, 2)),
            n_evaluations=0,
            n_iterations=0,
            history=[],
            evaluated_indices=np.empty(0, dtype=int),
            stop_reason="stopped",
        )
        got = TuningResult.from_json(
            json.loads(json.dumps(empty.to_json()))
        )
        assert got.pareto_points.shape == (0, 2)
        assert len(got.pareto_indices) == 0

    def test_iteration_record_roundtrip(self):
        rec = IterationRecord(
            iteration=3, n_undecided=10, n_pareto=4, n_dropped=2,
            n_evaluations=8, max_diameter=0.5, selected=[1, 2],
        )
        assert IterationRecord.from_json(
            json.loads(json.dumps(rec.to_json()))
        ) == rec


# ---------------------------------------------------------------------------
# recorder adoption (satellite bugfix)


class TestRecorderRestoration:
    def test_tune_restores_none_recorder(self):
        X, Y = random_pool(6)
        oracle = PoolOracle(Y)
        oracle.recorder = None
        PPATuner(
            PPATunerConfig(max_iterations=5, seed=6),
            recorder=TraceRecorder(sinks=[MemorySink()]),
        ).tune(X, oracle)
        assert oracle.recorder is None

    def test_tune_restores_custom_recorder(self):
        X, Y = random_pool(6)
        oracle = PoolOracle(Y)
        sentinel = TraceRecorder(sinks=[MemorySink()])
        oracle.recorder = sentinel
        PPATuner(PPATunerConfig(max_iterations=5, seed=6)).tune(
            X, oracle
        )
        assert oracle.recorder is sentinel
