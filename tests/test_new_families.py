"""Tests for the structured-ASIC fabric and CPU-core design families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import generate_benchmark
from repro.pdtool.cpu import (
    SMALL_CPU,
    CpuSpec,
    estimate_cpu_cell_count,
    generate_cpu_netlist,
)
from repro.pdtool.fabric import (
    SMALL_FABRIC,
    FabricSpec,
    estimate_fabric_cell_count,
    generate_fabric_netlist,
)
from repro.pdtool.flow import PDFlow
from repro.pdtool.params import ToolParameters

TINY_FABRIC = FabricSpec(rows=2, cols=2, lut_inputs=2, htree_depth=1,
                         channel_tracks=1, name="fabric_tiny")
TINY_CPU = CpuSpec(width=4, n_regs=4, name="cpu_tiny")


class TestFabric:
    def test_validates(self):
        generate_fabric_netlist(TINY_FABRIC).validate()

    def test_acyclic(self):
        nl = generate_fabric_netlist(TINY_FABRIC)
        for idx, inst in enumerate(nl.instances):
            for f in inst.fanins:
                assert f < idx or f == -1

    def test_cell_count_estimate_exact(self):
        for spec in (TINY_FABRIC, SMALL_FABRIC):
            nl = generate_fabric_netlist(spec)
            assert nl.n_cells == estimate_fabric_cell_count(spec)

    def test_tile_grid_scales_cells(self):
        small = generate_fabric_netlist(TINY_FABRIC)
        big = generate_fabric_netlist(FabricSpec(
            rows=4, cols=4, lut_inputs=2, htree_depth=1,
            channel_tracks=1, name="fabric_b",
        ))
        assert big.n_cells > 3 * small.n_cells

    def test_htree_structure(self):
        """The clock tree is CLKBUF-only and doubles per level."""
        nl = generate_fabric_netlist(SMALL_FABRIC)
        counts = nl.counts_by_function()
        # 1 + 2 + ... + 2^depth buffers in the H-tree.
        assert counts["CLKBUF"] == 2 ** (SMALL_FABRIC.htree_depth + 1) - 1
        assert counts.get("DFF", 0) > SMALL_FABRIC.rows * SMALL_FABRIC.cols

    def test_lut_mux_trees(self):
        """Each tile carries a full 2^L-leaf MUX2 tree plus routing."""
        nl = generate_fabric_netlist(TINY_FABRIC)
        counts = nl.counts_by_function()
        n_tiles = TINY_FABRIC.rows * TINY_FABRIC.cols
        lut_muxes = (2 ** TINY_FABRIC.lut_inputs - 1) * n_tiles
        assert counts["MUX2"] >= lut_muxes

    def test_regular_structure_dff_dominated(self):
        """Config storage makes fabrics DFF-heavy, unlike the MAC."""
        counts = generate_fabric_netlist(SMALL_FABRIC).counts_by_function()
        assert counts["DFF"] > 0.3 * sum(counts.values())

    def test_runs_through_flow(self):
        nl = generate_fabric_netlist(TINY_FABRIC)
        r = PDFlow(nl).run(ToolParameters(freq=1800.0))
        assert r.area > 0 and r.power > 0 and r.delay > 0

    def test_deterministic(self):
        a = generate_fabric_netlist(SMALL_FABRIC)
        b = generate_fabric_netlist(SMALL_FABRIC)
        assert [i.fanins for i in a.instances] == [
            i.fanins for i in b.instances
        ]


class TestCpu:
    def test_validates(self):
        generate_cpu_netlist(TINY_CPU).validate()

    def test_acyclic(self):
        nl = generate_cpu_netlist(TINY_CPU)
        for idx, inst in enumerate(nl.instances):
            for f in inst.fanins:
                assert f < idx or f == -1

    def test_cell_count_estimate_exact(self):
        for spec in (TINY_CPU, SMALL_CPU):
            nl = generate_cpu_netlist(spec)
            assert nl.n_cells == estimate_cpu_cell_count(spec)

    def test_regs_must_be_power_of_two(self):
        with pytest.raises(ValueError):
            CpuSpec(width=8, n_regs=6, name="cpu_bad")

    def test_width_scales_cells(self):
        small = generate_cpu_netlist(TINY_CPU)
        big = generate_cpu_netlist(CpuSpec(width=16, n_regs=8,
                                           name="cpu_b"))
        assert big.n_cells > 2 * small.n_cells

    def test_register_file_state(self):
        """One DFF rank per register plus instruction/control state."""
        counts = generate_cpu_netlist(TINY_CPU).counts_by_function()
        assert counts["DFF"] > TINY_CPU.width * TINY_CPU.n_regs

    def test_write_enable_fanout(self):
        """The registered write-enable broadcasts across the decode
        network — CPUs carry high-fanout control nets fabrics lack."""
        compiled = generate_cpu_netlist(SMALL_CPU).compile()
        assert compiled.fanout_count.max() >= SMALL_CPU.n_regs

    def test_carry_chain_deeper_than_fabric(self):
        cpu = generate_cpu_netlist(TINY_CPU).compile()
        fab = generate_fabric_netlist(TINY_FABRIC).compile()
        assert len(cpu.levels) > len(fab.levels)

    def test_runs_through_flow(self):
        nl = generate_cpu_netlist(TINY_CPU)
        r = PDFlow(nl).run(ToolParameters(freq=1200.0))
        assert r.area > 0 and r.power > 0 and r.delay > 0

    def test_deterministic(self):
        a = generate_cpu_netlist(SMALL_CPU)
        b = generate_cpu_netlist(SMALL_CPU)
        assert [i.fanins for i in a.instances] == [
            i.fanins for i in b.instances
        ]


class TestGoldenTables:
    """The new benchmarks' golden tables are deterministic."""

    @pytest.mark.parametrize("name", ("fabric1", "cpu2"))
    def test_rebuild_bit_identical(self, name):
        a = generate_benchmark(name, n_points=40, cache=False)
        b = generate_benchmark(name, n_points=40, cache=False)
        assert np.array_equal(a.X, b.X)
        assert np.array_equal(a.Y, b.Y)

    @pytest.mark.parametrize("name,design", (
        ("source3", "mac_small"),
        ("fabric1", "fabric_small"),
        ("fabric2", "fabric_small"),
        ("cpu1", "cpu_small"),
        ("cpu2", "cpu_large"),
    ))
    def test_design_wiring(self, name, design):
        ds = generate_benchmark(name, n_points=25, cache=False)
        assert ds.design == design
        assert ds.n == 25
        assert np.isfinite(ds.Y).all()
        assert (ds.Y > 0).all()

    def test_pool_seeds_differ_across_benchmarks(self):
        """Distinct LHS seeds: fabric1/fabric2 pools must not repeat."""
        a = generate_benchmark("fabric1", n_points=30, cache=False)
        b = generate_benchmark("fabric2", n_points=30, cache=False)
        assert a.space.names != b.space.names

    def test_cross_design_pairs_share_columns(self):
        """TransferGP needs column-aligned source/target features."""
        pairs = (("source3", "fabric1"), ("cpu1", "cpu2"),
                 ("fabric2", "cpu2"))
        from repro.bench import SPACES

        for src, tgt in pairs:
            assert SPACES[src]().names == SPACES[tgt]().names
