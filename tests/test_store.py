"""Tests for the crash-safe benchmark cache store.

Covers corruption injection (truncation, garbage bytes, checksum
mismatch, missing arrays), atomic-write temp-file hygiene, stale-version
garbage collection, and two-process concurrent generation.
"""

from __future__ import annotations

import json
import multiprocessing
import os

import numpy as np
import pytest

from repro.bench import generate_benchmark
from repro.bench.generate import (
    CACHE_VERSION,
    evaluate_configs,
    evaluate_configs_parallel,
    get_flow,
)
from repro.bench.spaces import target2_space
from repro.bench.store import (
    MANIFEST_NAME,
    QUARANTINE_DIR,
    TMP_PREFIX,
    BenchmarkStore,
    VerifyReport,
    file_cache_version,
)
from repro.space.sampling import latin_hypercube


@pytest.fixture()
def cache_dir(tmp_path, monkeypatch):
    """Point the benchmark cache at a fresh directory."""
    monkeypatch.setenv("PPATUNER_CACHE", str(tmp_path))
    return tmp_path


def _only_npz(cache_dir):
    files = sorted(
        p for p in cache_dir.glob("*.npz")
        if not p.name.startswith(TMP_PREFIX)
    )
    assert len(files) == 1, files
    return files[0]


def _builds(cache_dir, filename):
    manifest = json.loads((cache_dir / MANIFEST_NAME).read_text())
    return manifest["entries"][filename]["builds"]


class TestStorePrimitives:
    def test_save_load_roundtrip(self, tmp_path):
        store = BenchmarkStore(tmp_path)
        X = np.arange(12.0).reshape(4, 3)
        Y = np.ones((4, 3))
        path = store.save("t-reduced-n4-v1.npz", {"X": X, "Y": Y})
        assert path.exists()
        arrays = store.load("t-reduced-n4-v1.npz", required=("X", "Y"))
        assert np.array_equal(arrays["X"], X)
        assert np.array_equal(arrays["Y"], Y)
        entry = store.manifest_entry("t-reduced-n4-v1.npz")
        assert entry["builds"] == 1
        assert entry["size"] == path.stat().st_size

    def test_load_missing_returns_none(self, tmp_path):
        assert BenchmarkStore(tmp_path).load("nope.npz") is None

    def test_no_tmp_files_left_after_save(self, tmp_path):
        store = BenchmarkStore(tmp_path)
        store.save("a-v1.npz", {"X": np.zeros((2, 2))})
        assert not list(tmp_path.glob(f"{TMP_PREFIX}*"))

    def test_rebuild_increments_builds(self, tmp_path):
        store = BenchmarkStore(tmp_path)
        store.save("a-v1.npz", {"X": np.zeros(3)})
        store.save("a-v1.npz", {"X": np.ones(3)})
        assert store.manifest_entry("a-v1.npz")["builds"] == 2

    def test_corrupt_manifest_tolerated(self, tmp_path):
        store = BenchmarkStore(tmp_path)
        store.save("a-v1.npz", {"X": np.zeros(3)})
        (tmp_path / MANIFEST_NAME).write_text("{not json")
        arrays = store.load("a-v1.npz")
        assert np.array_equal(arrays["X"], np.zeros(3))
        store.save("b-v1.npz", {"X": np.ones(3)})
        assert store.manifest_entry("b-v1.npz") is not None

    def test_file_cache_version(self):
        assert file_cache_version("t-reduced-n10-v15.npz") == 15
        assert file_cache_version("weird.npz") is None


class TestCorruptionHealing:
    """Injected corruption never raises; the table regenerates."""

    def _generate(self, n=12):
        return generate_benchmark("target2", n_points=n, cache=True)

    def test_truncated_file_regenerates(self, cache_dir):
        golden = self._generate()
        path = _only_npz(cache_dir)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])

        healed = self._generate()
        assert np.array_equal(healed.Y, golden.Y)
        # the repaired file round-trips through a plain np.load
        with np.load(_only_npz(cache_dir)) as data:
            assert np.array_equal(data["Y"], golden.Y)
        # the torn file was quarantined, and the manifest entry was
        # rebuilt from scratch for the regenerated table
        assert (cache_dir / QUARANTINE_DIR / path.name).exists()
        assert _builds(cache_dir, path.name) == 1

    def test_garbage_bytes_regenerate(self, cache_dir):
        golden = self._generate()
        path = _only_npz(cache_dir)
        path.write_bytes(b"\xde\xad\xbe\xef" * 512)

        healed = self._generate()
        assert np.array_equal(healed.Y, golden.Y)
        assert (cache_dir / QUARANTINE_DIR / path.name).exists()

    def test_checksum_mismatch_regenerates(self, cache_dir):
        golden = self._generate()
        path = _only_npz(cache_dir)
        # a structurally valid .npz written behind the store's back:
        # zip check passes, manifest checksum must catch it
        np.savez_compressed(path, X=np.zeros((2, 2)), Y=np.zeros((2, 3)))

        healed = self._generate()
        assert np.array_equal(healed.Y, golden.Y)
        assert (cache_dir / QUARANTINE_DIR / path.name).exists()

    def test_missing_array_regenerates(self, cache_dir):
        golden = self._generate()
        store = BenchmarkStore(cache_dir)
        path = _only_npz(cache_dir)
        store.save(path.name, {"X": np.zeros((2, 2))})  # no "Y"

        healed = self._generate()
        assert np.array_equal(healed.Y, golden.Y)

    def test_verify_quarantines_and_reports(self, cache_dir):
        self._generate()
        path = _only_npz(cache_dir)
        path.write_bytes(b"torn")
        reports = BenchmarkStore(cache_dir).verify(
            current_version=CACHE_VERSION
        )
        assert [r.status for r in reports] == ["quarantined"]
        assert not path.exists()


class TestAtomicWriteHygiene:
    def test_leftover_tmp_ignored_on_load(self, cache_dir):
        golden = self._first = generate_benchmark(
            "target2", n_points=10, cache=True
        )
        junk = cache_dir / f"{TMP_PREFIX}dead.npz"
        junk.write_bytes(b"half-written")
        again = generate_benchmark("target2", n_points=10, cache=True)
        assert np.array_equal(again.Y, golden.Y)
        assert _builds(cache_dir, _only_npz(cache_dir).name) == 1

    def test_old_tmp_swept_by_verify(self, cache_dir):
        junk = cache_dir / f"{TMP_PREFIX}dead.npz"
        junk.write_bytes(b"half-written")
        os.utime(junk, (0, 0))  # pretend the writer died long ago
        reports = BenchmarkStore(cache_dir).verify()
        assert not junk.exists()
        assert VerifyReport(junk.name, "swept-tmp",
                            "abandoned temp file") in reports

    def test_fresh_tmp_not_swept(self, cache_dir):
        junk = cache_dir / f"{TMP_PREFIX}inflight.npz"
        junk.write_bytes(b"being written right now")
        BenchmarkStore(cache_dir).verify()
        assert junk.exists()


class TestGarbageCollection:
    def test_stale_generations_removed_on_build(self, cache_dir):
        for version in (3, 7, CACHE_VERSION - 1):
            np.savez_compressed(
                cache_dir / f"target2-reduced-n10-v{version}.npz",
                X=np.zeros((2, 2)), Y=np.zeros((2, 3)),
            )
        generate_benchmark("target2", n_points=10, cache=True)
        versions = {
            file_cache_version(p.name) for p in cache_dir.glob("*.npz")
        }
        assert versions == {CACHE_VERSION}

    def test_gc_keeps_current_generation(self, cache_dir):
        store = BenchmarkStore(cache_dir)
        store.save(f"a-v{CACHE_VERSION}.npz", {"X": np.zeros(2)})
        store.save("a-v2.npz", {"X": np.zeros(2)})
        removed = store.gc_stale(CACHE_VERSION)
        assert removed == ["a-v2.npz"]
        assert (cache_dir / f"a-v{CACHE_VERSION}.npz").exists()
        assert store.manifest_entry("a-v2.npz") is None

    def test_clear_empties_cache(self, cache_dir):
        generate_benchmark("target2", n_points=8, cache=True)
        path = _only_npz(cache_dir)
        path.write_bytes(b"junk")
        store = BenchmarkStore(cache_dir)
        store.load(path.name)  # populate quarantine/
        assert store.clear() > 0
        assert not list(cache_dir.glob("*.npz"))
        assert not (cache_dir / MANIFEST_NAME).exists()
        assert not (cache_dir / QUARANTINE_DIR).exists()


def _concurrent_worker(cache_dir: str, barrier, queue) -> None:
    """Child process: generate the same table as its sibling."""
    os.environ["PPATUNER_CACHE"] = cache_dir
    barrier.wait(timeout=60)
    try:
        bench = generate_benchmark("target2", n_points=120, cache=True)
        queue.put(("ok", float(bench.Y.sum())))
    except Exception as exc:  # pragma: no cover - failure reporting
        queue.put(("error", repr(exc)))


class TestConcurrentGeneration:
    def test_two_processes_build_exactly_once(self, cache_dir):
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()
        procs = [
            ctx.Process(
                target=_concurrent_worker,
                args=(str(cache_dir), barrier, queue),
            )
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        results = [queue.get(timeout=120) for _ in procs]
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0

        statuses = [status for status, _ in results]
        assert statuses == ["ok", "ok"], results
        sums = {payload for _, payload in results}
        assert len(sums) == 1  # both saw the same table

        path = _only_npz(cache_dir)
        assert _builds(cache_dir, path.name) == 1  # exactly one build
        with np.load(path) as data:  # and it is loadable
            assert data["Y"].shape == (120, 3)


class TestParallelEvaluation:
    def test_matches_serial(self):
        space = target2_space()
        configs = latin_hypercube(space, 16, seed=3)
        base = {"freq": 450.0}
        serial = evaluate_configs(get_flow("large"), configs, base)
        parallel = evaluate_configs_parallel(
            "large", configs, base, n_workers=2
        )
        assert np.array_equal(parallel, serial)

    def test_single_worker_is_serial(self):
        space = target2_space()
        configs = latin_hypercube(space, 5, seed=4)
        serial = evaluate_configs(
            get_flow("large"), configs, {"freq": 450.0}
        )
        same = evaluate_configs_parallel(
            "large", configs, {"freq": 450.0}, n_workers=1
        )
        assert np.array_equal(same, serial)

    def test_small_pool_defaults_to_serial(self):
        space = target2_space()
        configs = latin_hypercube(space, 4, seed=5)
        out = evaluate_configs_parallel("large", configs, {"freq": 450.0})
        assert out.shape == (4, 3)
