"""Verilog round-trips for the extension design generators."""

from __future__ import annotations

import pytest

from repro.pdtool.designs import (
    AluSpec,
    FirSpec,
    generate_alu_netlist,
    generate_fir_netlist,
)
from repro.pdtool.flow import FlowConfig, PDFlow
from repro.pdtool.params import ToolParameters
from repro.pdtool.verilog import read_verilog, write_verilog


@pytest.mark.parametrize("generator,spec", [
    (generate_fir_netlist, FirSpec(taps=2, width=4, name="fir_rt")),
    (generate_alu_netlist, AluSpec(width=8, name="alu_rt")),
])
class TestDesignRoundTrips:
    def test_structure_preserved(self, generator, spec, tmp_path):
        original = generator(spec)
        path = tmp_path / f"{spec.name}.v"
        write_verilog(original, path)
        back = read_verilog(path, original.library)
        assert back.n_cells == original.n_cells
        assert back.n_primary_inputs == original.n_primary_inputs
        assert back.counts_by_function() == original.counts_by_function()

    def test_physics_preserved(self, generator, spec, tmp_path):
        original = generator(spec)
        path = tmp_path / f"{spec.name}.v"
        write_verilog(original, path)
        back = read_verilog(path, original.library)
        cfg = FlowConfig(qor_noise=0.0, variation_amplitude=0.0)
        p = ToolParameters(freq=700.0)
        a = PDFlow(original, cfg).run(p)
        b = PDFlow(back, cfg).run(p)
        assert a.area == pytest.approx(b.area)
        assert a.delay == pytest.approx(b.delay, rel=1e-6)
        assert a.power == pytest.approx(b.power, rel=1e-6)

    def test_levelization_preserved(self, generator, spec, tmp_path):
        original = generator(spec)
        path = tmp_path / f"{spec.name}.v"
        write_verilog(original, path)
        back = read_verilog(path, original.library)
        assert len(back.compile().levels) == len(
            original.compile().levels
        )
