"""Unit + property tests for dominance, hypervolume, ADRS."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.pareto import (
    adrs,
    coverage,
    dominates,
    epsilon_dominates,
    hypervolume,
    hypervolume_error,
    non_dominated_mask,
    pareto_front,
    pareto_indices,
    spacing,
)

point_sets = arrays(
    np.float64,
    st.tuples(st.integers(1, 12), st.integers(1, 3)),
    elements=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
)


class TestDominates:
    def test_strict_dominance(self):
        assert dominates([1, 1], [2, 2])

    def test_partial_better_not_dominating(self):
        assert not dominates([1, 3], [2, 2])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([1, 1], [1, 1])

    def test_weak_dominance_counts(self):
        assert dominates([1, 2], [1, 3])

    def test_epsilon_dominance_scalar(self):
        assert epsilon_dominates([2, 2], [1.5, 1.5], 0.6)
        assert not epsilon_dominates([2, 2], [1.5, 1.5], 0.1)

    def test_epsilon_dominance_vector(self):
        assert epsilon_dominates(
            [2, 2], [1.5, 1.9], np.array([0.5, 0.1])
        )


class TestNonDominatedMask:
    def test_simple_front(self):
        pts = np.array([[1, 3], [2, 2], [3, 1], [3, 3]])
        mask = non_dominated_mask(pts)
        assert list(mask) == [True, True, True, False]

    def test_duplicates_all_kept(self):
        pts = np.array([[1, 1], [1, 1], [2, 2]])
        mask = non_dominated_mask(pts)
        assert list(mask) == [True, True, False]

    def test_single_point(self):
        assert non_dominated_mask(np.array([[5.0, 5.0]]))[0]

    def test_all_on_front(self):
        pts = np.array([[1, 4], [2, 3], [3, 2], [4, 1]])
        assert non_dominated_mask(pts).all()

    def test_dominated_by_equal_first_coordinate(self):
        pts = np.array([[1.0, 5.0], [1.0, 3.0]])
        mask = non_dominated_mask(pts)
        assert list(mask) == [False, True]

    @settings(max_examples=50)
    @given(point_sets)
    def test_front_members_not_dominated(self, pts):
        mask = non_dominated_mask(pts)
        front = pts[mask]
        for p in front:
            assert not any(dominates(q, p) for q in pts)

    @settings(max_examples=50)
    @given(point_sets)
    def test_non_front_members_dominated(self, pts):
        mask = non_dominated_mask(pts)
        for i in np.nonzero(~mask)[0]:
            assert any(dominates(q, pts[i]) for q in pts)


class TestParetoFront:
    def test_sorted_and_unique(self):
        pts = np.array([[3, 1], [1, 3], [3, 1], [2, 2]])
        front = pareto_front(pts)
        assert np.array_equal(front, np.array([[1, 3], [2, 2], [3, 1]]))

    def test_indices_match_mask(self):
        pts = np.random.default_rng(0).uniform(size=(30, 2))
        idx = pareto_indices(pts)
        assert np.array_equal(idx, np.nonzero(non_dominated_mask(pts))[0])


class TestHypervolume:
    def test_single_point_2d(self):
        assert hypervolume(np.array([[1.0, 1.0]]), [2.0, 2.0]) == 1.0

    def test_two_point_staircase(self):
        pts = np.array([[1.0, 2.0], [2.0, 1.0]])
        # Union of boxes to (3,3): 2*1 + 1*2 - 1*1 = 3.
        assert hypervolume(pts, [3.0, 3.0]) == pytest.approx(3.0)

    def test_dominated_point_ignored(self):
        pts = np.array([[1.0, 1.0], [1.5, 1.5]])
        assert hypervolume(pts, [2.0, 2.0]) == pytest.approx(1.0)

    def test_point_beyond_reference_ignored(self):
        pts = np.array([[1.0, 1.0], [3.0, 0.5]])
        assert hypervolume(pts, [2.0, 2.0]) == pytest.approx(1.0)

    def test_empty_contribution(self):
        assert hypervolume(np.array([[5.0, 5.0]]), [2.0, 2.0]) == 0.0

    def test_3d_single_box(self):
        pts = np.array([[1.0, 1.0, 1.0]])
        assert hypervolume(pts, [2.0, 3.0, 4.0]) == pytest.approx(6.0)

    def test_3d_union(self):
        pts = np.array([[0.0, 1.0, 1.0], [1.0, 0.0, 1.0]])
        # Boxes to (2,2,2): each 1*2*... inclusive 2*1*1=2 each? compute:
        # box1 = (2-0)(2-1)(2-1)=2; box2 = (2-1)(2-0)(2-1)=2;
        # intersection = (2-1)(2-1)(2-1)=1; union = 3.
        assert hypervolume(pts, [2.0, 2.0, 2.0]) == pytest.approx(3.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            hypervolume(np.array([[1.0, 1.0]]), [2.0, 2.0, 2.0])

    def test_1d(self):
        assert hypervolume(np.array([[1.0], [0.5]]), [2.0]) == 1.5

    @settings(max_examples=40, deadline=2000)
    @given(point_sets)
    def test_monotone_in_points(self, pts):
        """Adding points never decreases hypervolume."""
        ref = pts.max(axis=0) + 1.0
        h_all = hypervolume(pts, ref)
        h_sub = hypervolume(pts[: max(1, len(pts) // 2)], ref)
        assert h_all >= h_sub - 1e-9

    @settings(max_examples=40, deadline=2000)
    @given(point_sets)
    def test_2d_matches_montecarlo(self, pts):
        """Exact HV agrees with a Monte-Carlo estimate."""
        if pts.shape[1] != 2:
            return
        ref = pts.max(axis=0) + 0.5
        lo = pts.min(axis=0)
        h = hypervolume(pts, ref)
        rng = np.random.default_rng(0)
        samples = rng.uniform(lo, ref, size=(4000, 2))
        covered = np.zeros(len(samples), dtype=bool)
        for p in pts:
            covered |= np.all(samples >= p, axis=1)
        estimate = covered.mean() * np.prod(ref - lo)
        assert h == pytest.approx(estimate, abs=0.12 * np.prod(ref - lo))

    @settings(max_examples=30, deadline=2000)
    @given(point_sets)
    def test_front_only_matters(self, pts):
        ref = pts.max(axis=0) + 1.0
        assert hypervolume(pts, ref) == pytest.approx(
            hypervolume(pareto_front(pts), ref)
        )


class TestHypervolumeError:
    def test_zero_for_identical(self):
        front = np.array([[1.0, 2.0], [2.0, 1.0]])
        assert hypervolume_error(front, front) == pytest.approx(0.0)

    def test_positive_for_worse(self):
        golden = np.array([[1.0, 2.0], [2.0, 1.0]])
        worse = np.array([[1.5, 2.5], [2.5, 1.5]])
        assert hypervolume_error(worse, golden) > 0

    def test_explicit_reference(self):
        golden = np.array([[1.0, 1.0]])
        approx = np.array([[1.5, 1.5]])
        e = hypervolume_error(approx, golden, np.array([2.0, 2.0]))
        assert e == pytest.approx((1.0 - 0.25) / 1.0)

    def test_zero_golden_volume_raises(self):
        golden = np.array([[1.0, 1.0]])
        with pytest.raises(ValueError):
            hypervolume_error(golden, golden, np.array([1.0, 1.0]))


class TestAdrs:
    def test_zero_when_matched(self):
        ref = np.array([[1.0, 2.0], [2.0, 1.0]])
        assert adrs(ref, ref) == 0.0

    def test_known_value(self):
        ref = np.array([[1.0, 1.0]])
        approx = np.array([[1.1, 1.2]])
        assert adrs(ref, approx) == pytest.approx(0.2)

    def test_takes_closest(self):
        ref = np.array([[1.0, 1.0]])
        approx = np.array([[5.0, 5.0], [1.1, 1.0]])
        assert adrs(ref, approx) == pytest.approx(0.1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            adrs(np.empty((0, 2)), np.array([[1.0, 1.0]]))

    def test_dim_mismatch_raises(self):
        with pytest.raises(ValueError):
            adrs(np.array([[1.0, 1.0]]), np.array([[1.0, 1.0, 1.0]]))

    def test_zero_reference_coordinate_raises(self):
        with pytest.raises(ValueError):
            adrs(np.array([[0.0, 1.0]]), np.array([[1.0, 1.0]]))

    @settings(max_examples=40)
    @given(point_sets)
    def test_nonnegative_and_zero_on_self(self, pts):
        assert adrs(pts, pts) == pytest.approx(0.0, abs=1e-12)

    @settings(max_examples=40)
    @given(point_sets)
    def test_superset_never_worse(self, pts):
        """Adding candidate points can only reduce ADRS."""
        ref = pts[: max(1, len(pts) // 2)]
        a_small = adrs(ref, pts[:1])
        a_big = adrs(ref, pts)
        assert a_big <= a_small + 1e-12


class TestSupplementaryMetrics:
    def test_coverage_total(self):
        a = np.array([[1.0, 1.0]])
        b = np.array([[2.0, 2.0], [3.0, 3.0]])
        assert coverage(a, b) == 1.0

    def test_coverage_none(self):
        a = np.array([[2.0, 2.0]])
        b = np.array([[1.0, 1.0]])
        assert coverage(a, b) == 0.0

    def test_coverage_empty_raises(self):
        with pytest.raises(ValueError):
            coverage(np.empty((0, 2)), np.array([[1.0, 1.0]]))

    def test_spacing_uniform_front_is_zero(self):
        front = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        assert spacing(front) == pytest.approx(0.0)

    def test_spacing_nonuniform_positive(self):
        front = np.array([[0.0, 3.0], [0.1, 2.9], [3.0, 0.0]])
        assert spacing(front) > 0

    def test_spacing_single_point(self):
        assert spacing(np.array([[1.0, 1.0]])) == 0.0
