"""Tests for the unified ``Tuner`` protocol, the deprecation shims on
the old ``X_source``/``Y_source`` spelling, the method registry, and the
``warm_start`` config surface (bit-identity of the random path,
fingerprint/memo stability, snapshot round trips).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.baselines import (
    Aspdac20Fist,
    CopulaTransferTuner,
    Dac19Recommender,
    Mlcad19LcbBayesOpt,
    RandomSearchTuner,
    Tcad19ActiveLearner,
)
from repro.core import PPATuner, PPATunerConfig, PoolOracle, Tuner
from repro.core.session import TuningSession, drive
from repro.experiments import (
    ALL_METHODS,
    make_method,
    register_method,
    registered_methods,
)
from repro.obs import MemorySink, TraceRecorder
from repro.runner.spec import config_fingerprint
from repro.service import RemoteTuner, ServiceClient

BASELINES = [
    Tcad19ActiveLearner,
    Mlcad19LcbBayesOpt,
    Dac19Recommender,
    Aspdac20Fist,
    RandomSearchTuner,
    CopulaTransferTuner,
]

TRANSFER_BASELINES = [Dac19Recommender, Aspdac20Fist, CopulaTransferTuner]


def _stripped(sink: MemorySink) -> list[dict]:
    out = []
    for ev in sink.events:
        d = ev.to_json()
        d.pop("seconds", None)
        out.append(d)
    return out


# ---------------------------------------------------------------------------
# Protocol conformance
# ---------------------------------------------------------------------------


class TestTunerProtocol:
    @pytest.mark.parametrize("cls", BASELINES)
    def test_baselines_conform(self, cls):
        assert isinstance(cls(budget=10), Tuner)

    def test_ppatuner_conforms(self):
        assert isinstance(PPATuner(), Tuner)

    def test_remote_tuner_conforms(self):
        client = ServiceClient("http://localhost:1")
        assert isinstance(RemoteTuner(client), Tuner)

    def test_duck_typed_object_conforms(self):
        class MyTuner:
            name = "mine"

            def tune(self, X_pool, oracle, *, sources=None,
                     init_indices=None):
                raise NotImplementedError

        assert isinstance(MyTuner(), Tuner)

    def test_missing_tune_fails(self):
        class NotATuner:
            name = "nope"

        assert not isinstance(NotATuner(), Tuner)

    @pytest.mark.parametrize("cls", BASELINES)
    def test_unified_kwargs_accepted(self, cls, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        result = cls(budget=25, seed=0).tune(
            X, PoolOracle(Y), sources=[(Xs, Ys)]
        )
        assert result.n_evaluations <= 25


# ---------------------------------------------------------------------------
# Deprecated X_source/Y_source spelling
# ---------------------------------------------------------------------------


class TestDeprecatedSourceKwargs:
    @pytest.mark.parametrize("cls", TRANSFER_BASELINES)
    def test_old_spelling_warns_and_matches(self, cls, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        new = cls(budget=15, seed=0).tune(
            X, PoolOracle(Y), sources=[(Xs, Ys)]
        )
        with pytest.warns(DeprecationWarning, match="X_source/Y_source"):
            old = cls(budget=15, seed=0).tune(
                X, PoolOracle(Y), X_source=Xs, Y_source=Ys
            )
        assert np.array_equal(new.evaluated_indices, old.evaluated_indices)
        assert np.array_equal(new.pareto_indices, old.pareto_indices)

    def test_both_spellings_rejected(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        with pytest.raises(ValueError, match="not both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                Dac19Recommender(budget=10).tune(
                    X, PoolOracle(Y),
                    X_source=Xs, Y_source=Ys, sources=[(Xs, Ys)],
                )

    def test_half_a_pair_rejected(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        with pytest.raises(ValueError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                Dac19Recommender(budget=10).tune(
                    X, PoolOracle(Y), X_source=Xs
                )

    def test_new_spelling_is_warning_free(self, synthetic_pool, recwarn):
        X, Y, Xs, Ys = synthetic_pool
        warnings.simplefilter("error", DeprecationWarning)
        Dac19Recommender(budget=10, seed=0).tune(
            X, PoolOracle(Y), sources=[(Xs, Ys)]
        )


# ---------------------------------------------------------------------------
# init_indices validation
# ---------------------------------------------------------------------------


class TestInitIndicesValidation:
    @pytest.mark.parametrize("cls", BASELINES)
    def test_duplicates_rejected(self, cls, synthetic_pool):
        X, Y, _, _ = synthetic_pool
        with pytest.raises(ValueError, match=r"duplicate.*\[1\]"):
            cls(budget=10).tune(
                X, PoolOracle(Y), init_indices=np.array([0, 1, 1, 2])
            )

    @pytest.mark.parametrize("cls", BASELINES)
    def test_out_of_range_rejected(self, cls, synthetic_pool):
        X, Y, _, _ = synthetic_pool
        with pytest.raises(ValueError, match=r"out of range.*\[500\]"):
            cls(budget=10).tune(
                X, PoolOracle(Y), init_indices=np.array([0, 500])
            )


# ---------------------------------------------------------------------------
# Method registry
# ---------------------------------------------------------------------------


class TestMethodRegistry:
    @pytest.mark.parametrize("name", ALL_METHODS)
    def test_all_methods_construct_and_conform(self, name):
        tuner = make_method(name, budget=20, pool_size=100, seed=0)
        assert isinstance(tuner, Tuner)

    def test_unknown_method_lists_registered(self):
        with pytest.raises(ValueError) as exc:
            make_method("NoSuchMethod", budget=20, pool_size=100, seed=0)
        msg = str(exc.value)
        assert "NoSuchMethod" in msg
        for name in registered_methods():
            assert name in msg

    def test_registered_methods_cover_all_methods(self):
        assert set(ALL_METHODS) <= set(registered_methods())

    def test_register_decorator_adds_and_replaces(self):
        from repro.experiments import scenarios

        @register_method("TestOnly")
        def _factory(budget, pool_size, seed, ppa_config, fault_policy):
            return RandomSearchTuner(budget=budget, seed=seed)

        try:
            assert "TestOnly" in registered_methods()
            tuner = make_method("TestOnly", budget=9, pool_size=50, seed=1)
            assert isinstance(tuner, RandomSearchTuner)

            @register_method("TestOnly")
            def _factory2(budget, pool_size, seed, ppa_config, fault_policy):
                return CopulaTransferTuner(budget=budget, seed=seed)

            tuner = make_method("TestOnly", budget=9, pool_size=50, seed=1)
            assert isinstance(tuner, CopulaTransferTuner)
        finally:
            scenarios._METHOD_REGISTRY.pop("TestOnly", None)

    def test_copula_transfer_runs_via_registry(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        tuner = make_method(
            "CopulaTransfer", budget=15, pool_size=len(X), seed=0
        )
        result = tuner.tune(X, PoolOracle(Y), sources=[(Xs, Ys)])
        assert 0 < result.n_evaluations <= 15


# ---------------------------------------------------------------------------
# warm_start: config surface
# ---------------------------------------------------------------------------


class TestWarmStartConfig:
    def test_invalid_value_rejected(self):
        with pytest.raises(ValueError, match="warm_start"):
            PPATunerConfig(warm_start="bogus")

    def test_json_round_trip(self):
        cfg = PPATunerConfig(warm_start="copula")
        back = PPATunerConfig.from_json(cfg.to_json())
        assert back.warm_start == "copula"
        assert back == cfg

    def test_old_payload_defaults_to_random(self):
        payload = PPATunerConfig().to_json()
        payload.pop("warm_start")
        assert PPATunerConfig.from_json(payload).warm_start == "random"

    def test_fingerprint_drops_default_spelling(self):
        # Explicit-but-default warm_start must hash like a config from
        # before the field existed, so old memo entries stay valid.
        assert config_fingerprint(PPATunerConfig()) == config_fingerprint(
            PPATunerConfig(warm_start="random")
        )
        assert config_fingerprint(PPATunerConfig()) != config_fingerprint(
            PPATunerConfig(warm_start="copula")
        )


# ---------------------------------------------------------------------------
# warm_start: trajectories
# ---------------------------------------------------------------------------


class TestWarmStartTrajectories:
    def _run(self, synthetic_pool, **cfg_kw):
        X, Y, Xs, Ys = synthetic_pool
        sink = MemorySink()
        cfg = PPATunerConfig(max_iterations=12, seed=3, **cfg_kw)
        tuner = PPATuner(cfg, recorder=TraceRecorder(sinks=[sink]))
        result = tuner.tune(X, PoolOracle(Y), sources=[(Xs, Ys)])
        return result, _stripped(sink), tuner.session_.init_indices

    def test_random_warm_start_is_bit_identical(self, synthetic_pool):
        """``warm_start="random"`` must not perturb the default
        trajectory in any way — results or the full event stream."""
        ref, ref_stream, ref_init = self._run(synthetic_pool)
        got, got_stream, got_init = self._run(
            synthetic_pool, warm_start="random"
        )
        assert np.array_equal(ref_init, got_init)
        assert np.array_equal(ref.evaluated_indices, got.evaluated_indices)
        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert ref_stream == got_stream

    def test_copula_warm_start_changes_init(self, synthetic_pool):
        _, _, random_init = self._run(synthetic_pool)
        _, _, copula_init = self._run(synthetic_pool, warm_start="copula")
        assert not np.array_equal(
            np.sort(random_init), np.sort(copula_init)
        )

    def test_copula_warm_start_deterministic(self, synthetic_pool):
        a, a_stream, a_init = self._run(synthetic_pool, warm_start="copula")
        b, b_stream, b_init = self._run(synthetic_pool, warm_start="copula")
        assert np.array_equal(a_init, b_init)
        assert a_stream == b_stream

    def test_copula_without_sources_falls_back_to_random(
        self, synthetic_pool
    ):
        X, Y, _, _ = synthetic_pool

        def run(**kw):
            cfg = PPATunerConfig(max_iterations=10, seed=5, **kw)
            tuner = PPATuner(cfg)
            tuner.tune(X, PoolOracle(Y))
            return tuner.session_.init_indices

        assert np.array_equal(run(), run(warm_start="copula"))

    def test_snapshot_round_trip_preserves_warm_start(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool
        cfg = PPATunerConfig(max_iterations=10, seed=2, warm_start="copula")
        session = TuningSession(
            cfg, X, Y.shape[1], sources=[(Xs, Ys)]
        )
        ref_init = session.init_indices.copy()
        oracle = PoolOracle(Y)
        ref = drive(
            TuningSession.restore(session.snapshot()), oracle
        )

        resumed = TuningSession.restore(session.snapshot())
        assert resumed.config.warm_start == "copula"
        assert np.array_equal(resumed.init_indices, ref_init)
        got = drive(resumed, PoolOracle(Y))
        assert np.array_equal(ref.evaluated_indices, got.evaluated_indices)
