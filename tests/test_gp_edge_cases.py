"""Edge-case and robustness tests for the GP substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gp import (
    GPRegressor,
    Matern52Kernel,
    RBFKernel,
    TransferGP,
    gaussian_log_marginal,
)

rng = np.random.default_rng(11)


class TestDuplicateAndDegenerateData:
    def test_duplicate_inputs_different_targets(self):
        """Contradictory observations force learned noise, not a crash."""
        X = np.vstack([np.full((2, 2), 0.5), rng.uniform(size=(8, 2))])
        y = np.concatenate([[0.0, 1.0], rng.normal(size=8)])
        gp = GPRegressor(seed=0).fit(X, y)
        mean, var = gp.predict(np.full((1, 2), 0.5))
        assert np.isfinite(mean).all()
        # The model must be uncertain (or noisy) at the contradiction.
        assert gp.noise_variance > 1e-6 or var[0] > 1e-6

    def test_single_training_point(self):
        gp = GPRegressor().fit(np.array([[0.5, 0.5]]), np.array([2.0]))
        mean, var = gp.predict(np.array([[0.5, 0.5]]))
        assert mean[0] == pytest.approx(2.0, abs=0.2)

    def test_collinear_inputs(self):
        t = np.linspace(0, 1, 12)
        X = np.column_stack([t, 2 * t])  # rank-1 input matrix
        y = np.sin(4 * t)
        gp = GPRegressor(seed=0).fit(X, y)
        mean, _ = gp.predict(X)
        assert np.sqrt(np.mean((mean - y) ** 2)) < 0.2

    def test_extreme_target_magnitudes(self):
        X = rng.uniform(size=(12, 2))
        y = 1e9 * np.sin(3 * X[:, 0])
        gp = GPRegressor(seed=0).fit(X, y)
        mean, var = gp.predict(X[:3])
        assert np.isfinite(mean).all() and np.isfinite(var).all()

    def test_tiny_target_magnitudes(self):
        X = rng.uniform(size=(12, 2))
        y = 1e-9 * np.sin(3 * X[:, 0])
        gp = GPRegressor(seed=0).fit(X, y)
        mean, _ = gp.predict(X[:3])
        assert np.isfinite(mean).all()


class TestTransferGPEdgeCases:
    def test_single_target_point_with_source(self):
        Xs = rng.uniform(size=(30, 2))
        ys = Xs.sum(axis=1)
        model = TransferGP(seed=0).fit(
            Xs, ys, np.array([[0.5, 0.5]]), np.array([1.0])
        )
        mean, var = model.predict(rng.uniform(size=(5, 2)))
        assert np.isfinite(mean).all()
        assert np.all(var >= 0)

    def test_source_much_larger_than_target(self):
        Xs = rng.uniform(size=(200, 2))
        ys = np.sin(3 * Xs.sum(axis=1))
        Xt = rng.uniform(size=(3, 2))
        yt = np.sin(3 * Xt.sum(axis=1))
        model = TransferGP(seed=0).fit(Xs, ys, Xt, yt)
        Xq = rng.uniform(size=(40, 2))
        mean, _ = model.predict(Xq)
        true = np.sin(3 * Xq.sum(axis=1))
        assert np.sqrt(np.mean((mean - true) ** 2)) < 0.2

    def test_constant_source_targets(self):
        Xs = rng.uniform(size=(20, 2))
        model = TransferGP(seed=0).fit(
            Xs, np.full(20, 5.0),
            rng.uniform(size=(6, 2)), rng.normal(size=6),
        )
        mean, _ = model.predict(rng.uniform(size=(4, 2)))
        assert np.isfinite(mean).all()

    def test_refit_keeps_hyperparameters_without_optimize(self):
        Xs = rng.uniform(size=(40, 2))
        ys = np.sin(3 * Xs.sum(axis=1))
        Xt = rng.uniform(size=(8, 2))
        yt = np.sin(3 * Xt.sum(axis=1))
        model = TransferGP(seed=0).fit(Xs, ys, Xt, yt)
        lam_before = model.lam
        model.optimize = False
        # Refit with one more target point; lambda must persist.
        Xt2 = np.vstack([Xt, rng.uniform(size=(1, 2))])
        yt2 = np.append(yt, 0.0)
        model.fit(Xs, ys, Xt2, yt2)
        assert model.lam == pytest.approx(lam_before)


class TestMarginalLikelihood:
    def test_matches_closed_form_1d(self):
        K = np.array([[2.0]])
        y = np.array([1.5])
        lml, _, alpha = gaussian_log_marginal(K, y)
        expected = (
            -0.5 * 1.5**2 / 2.0 - 0.5 * np.log(2.0)
            - 0.5 * np.log(2 * np.pi)
        )
        assert lml == pytest.approx(expected)
        assert alpha[0] == pytest.approx(1.5 / 2.0)

    def test_higher_noise_flattens_likelihood(self):
        X = rng.uniform(size=(10, 2))
        kernel = RBFKernel(np.full(2, 0.4))
        K = kernel.eval(X)
        y = rng.normal(size=10) * 3.0
        lml_tight, _, _ = gaussian_log_marginal(K + 1e-4 * np.eye(10), y)
        lml_loose, _, _ = gaussian_log_marginal(K + 10.0 * np.eye(10), y)
        # With targets far larger than the prior, more noise explains
        # the data better.
        assert lml_loose > lml_tight

    @pytest.mark.parametrize("cls", [RBFKernel, Matern52Kernel])
    def test_kernel_cross_eval_consistency(self, cls):
        k = cls(np.full(3, 0.5), 1.7)
        X = rng.uniform(size=(6, 3))
        K_sym = k.eval(X)
        K_cross = k.eval(X, X)
        assert np.allclose(K_sym, K_cross)
