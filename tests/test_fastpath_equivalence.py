"""Equivalence harness for the hot-path fast implementations.

Every raw-speed path added by the hot-path PR — the blocked vectorized
non-dominated sweep, the blocked δ-domination reduction, the batched
rectangle intersection/collapse, the shared Cholesky factor across the
per-metric GPs, and the float32 pool prediction caches — is locked to
the retained reference implementations here:

- vectorized δ-dominance / intersection / collapse return *identical*
  index sets to the scalar per-point oracles in
  :mod:`repro.core.reference`, across random pools, degenerate
  (zero-width) rectangles, exact ties, and NaN-imputed rows;
- shared-factor posteriors equal fully independent per-GP fits to
  <= 1e-10 (they are bit-identical by construction: sharing only
  deduplicates computations that would produce the same bits);
- the float32 cache stays within its documented tolerance and never
  changes the selected/Pareto index sets on seeded golden trajectories;
- a shared border update that hits a non-positive-definite Schur
  complement falls back to per-GP refactorization without crashing,
  flagged via ``last_update_fallback``;
- the default configuration produces the same trace-event stream as
  the pre-PR per-model path (wall-clock fields excluded).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PoolOracle, PPATuner, PPATunerConfig
from repro.core.calibration import CalibrationEngine
from repro.core.decision import _DOM_BLOCK, _dominated_by_any, apply_decision_rules
from repro.core.reference import (
    dominated_by_any_reference,
    dominated_by_any_scalar,
    intersect_scalar,
    non_dominated_mask_scalar,
)
from repro.core.uncertainty import UncertaintyRegions
from repro.gp import (
    MultiSourceTransferGP,
    NotPositiveDefiniteError,
    RBFKernel,
    TransferGP,
)
from repro.obs import MemorySink, TraceRecorder
from repro.pareto import non_dominated_mask, non_dominated_mask_reference

pytestmark = pytest.mark.fastpath

TOL_SHARED = 1e-10

moderate = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------


@st.composite
def objective_pools(draw):
    """Random objective matrices with ties, duplicates and NaN rows."""
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(0, 40))
    m = draw(st.integers(1, 4))
    quantize = draw(st.booleans())
    with_nans = draw(st.booleans())
    rng = np.random.default_rng(seed)
    pts = rng.normal(size=(n, m))
    if quantize:
        # Coarse rounding manufactures exact ties and duplicate rows.
        pts = np.round(pts, 1)
    if with_nans and n:
        pts[rng.random(n) < 0.2] = np.nan
    return pts


@st.composite
def domination_cases(draw):
    """Random (front, queries, slack) triples with overlapping ids."""
    seed = draw(st.integers(0, 10_000))
    nf = draw(st.integers(0, 25))
    nq = draw(st.integers(0, 25))
    m = draw(st.integers(1, 3))
    quantize = draw(st.booleans())
    rng = np.random.default_rng(seed)
    front = rng.normal(size=(nf, m))
    queries = rng.normal(size=(nq, m))
    if quantize:
        front, queries = np.round(front, 1), np.round(queries, 1)
    # Ids drawn from a small range so self-exclusion genuinely bites.
    front_ids = rng.integers(0, max(nf + nq, 1), size=nf)
    query_ids = rng.integers(0, max(nf + nq, 1), size=nq)
    slack = rng.uniform(0.0, 0.5, size=m)
    return front, front_ids, queries, query_ids, slack


@st.composite
def region_cases(draw):
    """Random uncertainty boxes: collapsed, unbounded, tied corners."""
    seed = draw(st.integers(0, 10_000))
    n = draw(st.integers(1, 30))
    m = draw(st.integers(1, 3))
    rng = np.random.default_rng(seed)
    lo = np.round(rng.normal(size=(n, m)), 1)
    width = rng.uniform(0.0, 1.0, size=(n, m))
    width[rng.random(n) < 0.3] = 0.0  # degenerate (collapsed) boxes
    hi = lo + width
    unbounded = rng.random(n) < 0.2
    lo[unbounded], hi[unbounded] = -np.inf, np.inf
    undecided = rng.random(n) < 0.6
    pareto = ~undecided & (rng.random(n) < 0.3)
    delta = rng.uniform(0.0, 0.3, size=m)
    return lo, hi, undecided, pareto, delta


# ---------------------------------------------------------------------
# vectorized dominance == reference == scalar oracle
# ---------------------------------------------------------------------


class TestNonDominatedMask:
    @given(objective_pools())
    @moderate
    def test_matches_reference_and_scalar(self, pts):
        fast = non_dominated_mask(pts)
        np.testing.assert_array_equal(
            fast, non_dominated_mask_reference(pts)
        )
        np.testing.assert_array_equal(
            fast, non_dominated_mask_scalar(pts)
        )

    @given(objective_pools(), st.integers(1, 7))
    @moderate
    def test_block_size_irrelevant(self, pts, block):
        """Tiny blocks force many cross-block survivor checks."""
        np.testing.assert_array_equal(
            non_dominated_mask(pts, block=block),
            non_dominated_mask_reference(pts),
        )

    def test_all_nan_and_empty(self):
        assert non_dominated_mask(np.empty((0, 2))).shape == (0,)
        pts = np.full((4, 2), np.nan)
        # NaN rows neither dominate nor are dominated: all kept.
        assert non_dominated_mask(pts).all()
        assert non_dominated_mask_scalar(pts).all()

    def test_exact_duplicates_all_kept(self):
        pts = np.array([[1.0, 2.0]] * 5 + [[0.5, 3.0]])
        np.testing.assert_array_equal(
            non_dominated_mask(pts), non_dominated_mask_scalar(pts)
        )
        assert non_dominated_mask(pts).all()


class TestDeltaDomination:
    @given(domination_cases())
    @moderate
    def test_matches_reference_and_scalar(self, case):
        front, fids, queries, qids, slack = case
        fast = _dominated_by_any(front, fids, queries, qids, slack)
        np.testing.assert_array_equal(
            fast,
            dominated_by_any_reference(front, fids, queries, qids, slack),
        )
        np.testing.assert_array_equal(
            fast,
            dominated_by_any_scalar(front, fids, queries, qids, slack),
        )

    @given(domination_cases(), st.integers(1, 5))
    @moderate
    def test_block_size_irrelevant(self, case, block):
        front, fids, queries, qids, slack = case
        np.testing.assert_array_equal(
            _dominated_by_any(
                front, fids, queries, qids, slack, block=block
            ),
            _dominated_by_any(
                front, fids, queries, qids, slack, block=_DOM_BLOCK
            ),
        )


class TestDecisionBackends:
    @given(region_cases())
    @moderate
    def test_identical_index_sets(self, case):
        lo, hi, undecided, pareto, delta = case
        regions_v = UncertaintyRegions(lo.copy(), hi.copy())
        regions_r = UncertaintyRegions(lo.copy(), hi.copy())
        drop_v, par_v = apply_decision_rules(
            regions_v, undecided, pareto, delta,
            pareto_delta=3.0 * delta, backend="vectorized",
        )
        drop_r, par_r = apply_decision_rules(
            regions_r, undecided, pareto, delta,
            pareto_delta=3.0 * delta, backend="reference",
        )
        np.testing.assert_array_equal(drop_v, drop_r)
        np.testing.assert_array_equal(par_v, par_r)

    def test_unknown_backend_rejected(self):
        regions = UncertaintyRegions(np.zeros((2, 2)), np.ones((2, 2)))
        with pytest.raises(ValueError, match="backend"):
            apply_decision_rules(
                regions, np.ones(2, dtype=bool), np.zeros(2, dtype=bool),
                np.zeros(2), backend="nope",
            )


# ---------------------------------------------------------------------
# batched rectangle updates == per-point oracles
# ---------------------------------------------------------------------


class TestRectangleBatches:
    @given(st.integers(0, 10_000), st.booleans())
    @moderate
    def test_intersect_matches_scalar(self, seed, force_disjoint):
        rng = np.random.default_rng(seed)
        n, m = 20, 3
        lo = rng.normal(size=(n, m))
        hi = lo + rng.uniform(0.1, 1.0, size=(n, m))
        idx = rng.choice(n, size=8, replace=False)
        new_lo = rng.normal(size=(8, m))
        new_hi = new_lo + rng.uniform(0.0, 1.0, size=(8, m))
        if force_disjoint:
            # Push some rectangles entirely outside the accumulated box
            # so the degenerate clip-to-previous fallback fires.
            new_lo[:4] += 10.0
            new_hi[:4] += 10.0
        vec = UncertaintyRegions(lo.copy(), hi.copy())
        ref = UncertaintyRegions(lo.copy(), hi.copy())
        vec.intersect(idx, new_lo, new_hi)
        intersect_scalar(ref, idx, new_lo, new_hi)
        np.testing.assert_array_equal(vec.lo, ref.lo)
        np.testing.assert_array_equal(vec.hi, ref.hi)

    @given(st.integers(0, 10_000))
    @moderate
    def test_collapse_batch_matches_loop(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 15, 2
        lo = rng.normal(size=(n, m))
        hi = lo + 1.0
        idx = rng.choice(n, size=6, replace=False)
        values = rng.normal(size=(6, m))
        batch = UncertaintyRegions(lo.copy(), hi.copy())
        loop = UncertaintyRegions(lo.copy(), hi.copy())
        batch.collapse_batch(idx, values)
        for r, i in enumerate(idx):
            loop.collapse(int(i), values[r])
        np.testing.assert_array_equal(batch.lo, loop.lo)
        np.testing.assert_array_equal(batch.hi, loop.hi)

    @given(st.integers(0, 10_000))
    @moderate
    def test_collapse_partial_batch_matches_loop(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 15, 3
        lo = rng.normal(size=(n, m))
        hi = lo + 1.0
        idx = rng.choice(n, size=6, replace=False)
        values = rng.normal(size=(6, m))
        values[rng.random((6, m)) < 0.4] = np.nan  # NaN-imputed metrics
        batch = UncertaintyRegions(lo.copy(), hi.copy())
        loop = UncertaintyRegions(lo.copy(), hi.copy())
        batch.collapse_partial_batch(idx, values)
        for r, i in enumerate(idx):
            loop.collapse_partial(int(i), values[r])
        np.testing.assert_array_equal(batch.lo, loop.lo)
        np.testing.assert_array_equal(batch.hi, loop.hi)

    def test_batch_shape_validation(self):
        regions = UncertaintyRegions(np.zeros((4, 2)), np.ones((4, 2)))
        with pytest.raises(ValueError, match="expected"):
            regions.collapse_batch(np.array([0, 1]), np.zeros((2, 3)))
        with pytest.raises(ValueError, match="expected"):
            regions.collapse_partial_batch(np.array([0]), np.zeros((2, 2)))


# ---------------------------------------------------------------------
# shared Cholesky factor == independent per-GP fits
# ---------------------------------------------------------------------


def _make_engine(m=3, d=3, shared=True, seed=0, n_pool=30, **cfg_kw):
    """A two-task engine over a synthetic pool; pool row 10 duplicates
    row 3 so later evaluations can append exact-duplicate configs."""
    rng = np.random.default_rng(seed)
    X_pool = rng.uniform(size=(n_pool, d))
    X_pool[10] = X_pool[3]
    Y_pool = rng.normal(size=(n_pool, m))
    Xs = rng.uniform(size=(20, d))
    Ys = rng.normal(size=(20, m))
    cfg = PPATunerConfig(
        reopt_every=0, n_restarts=0, shared_factor=shared, **cfg_kw
    )
    models = [
        TransferGP(kernel=RBFKernel(np.full(d, 0.4)), optimize=False)
        for _ in range(m)
    ]
    engine = CalibrationEngine(
        models, cfg, multi=False, sources=[], X_source=Xs, Y_source=Ys
    )
    engine.register_pool(X_pool)
    return engine, X_pool, Y_pool


def _calibrate_init(engine, X_pool, Y_pool, init=(0, 1, 2, 3, 4, 5)):
    n, m = len(X_pool), Y_pool.shape[1]
    sampled = np.zeros(n, dtype=bool)
    sampled[list(init)] = True
    y_obs = np.full((n, m), np.nan)
    y_obs[sampled] = Y_pool[sampled]
    engine.calibrate(0, X_pool, sampled, y_obs, list(init))
    return sampled, y_obs


class TestSharedFactor:
    def _pair(self, **cfg_kw):
        eng_s, X_pool, Y_pool = _make_engine(shared=True, **cfg_kw)
        eng_i, _, _ = _make_engine(shared=False, **cfg_kw)
        return eng_s, eng_i, X_pool, Y_pool

    def test_shared_fit_matches_independent(self):
        eng_s, eng_i, X_pool, Y_pool = self._pair()
        for eng in (eng_s, eng_i):
            _calibrate_init(eng, X_pool, Y_pool)
        assert eng_s.stats.n_shared_fits == len(eng_s.models) - 1
        assert eng_i.stats.n_shared_fits == 0
        idx = np.arange(len(X_pool))
        mean_s, std_s = eng_s.predict(idx)
        mean_i, std_i = eng_i.predict(idx)
        np.testing.assert_allclose(mean_s, mean_i, atol=TOL_SHARED, rtol=0)
        np.testing.assert_allclose(std_s, std_i, atol=TOL_SHARED, rtol=0)

    def test_shared_update_matches_independent(self):
        eng_s, eng_i, X_pool, Y_pool = self._pair()
        for eng in (eng_s, eng_i):
            sampled, y_obs = _calibrate_init(eng, X_pool, Y_pool)
            for t, new in enumerate(([6, 7], [8], [9]), start=1):
                sampled[new] = True
                y_obs[new] = Y_pool[new]
                eng.calibrate(t, X_pool, sampled, y_obs, new)
        assert eng_s.stats.n_shared_updates == 3 * (
            len(eng_s.models) - 1
        )
        idx = np.arange(len(X_pool))
        mean_s, std_s = eng_s.predict(idx)
        mean_i, std_i = eng_i.predict(idx)
        np.testing.assert_allclose(mean_s, mean_i, atol=TOL_SHARED, rtol=0)
        np.testing.assert_allclose(std_s, std_i, atol=TOL_SHARED, rtol=0)

    def test_adopt_fit_bit_identical(self):
        """Follower adoption redoes only the RHS solve: the posterior
        equals an independent fit on the same inputs bit for bit."""
        rng = np.random.default_rng(1)
        d = 3
        Xs, Xt = rng.uniform(size=(15, d)), rng.uniform(size=(8, d))
        ys0, ys1 = rng.normal(size=15), rng.normal(size=15)
        yt0, yt1 = rng.normal(size=8), rng.normal(size=8)
        Xq = rng.uniform(size=(12, d))

        def make():
            return TransferGP(
                kernel=RBFKernel(np.full(d, 0.4)), optimize=False
            )

        lead = make().fit(Xs, ys0, Xt, yt0)
        follower = make()
        follower.adopt_fit(lead, np.concatenate([ys1, yt1]))
        ref = make().fit(Xs, ys1, Xt, yt1)
        mf, vf = follower.predict(Xq)
        mr, vr = ref.predict(Xq)
        np.testing.assert_array_equal(mf, mr)
        np.testing.assert_array_equal(vf, vr)

    def test_adopt_fit_multisource(self):
        rng = np.random.default_rng(2)
        d = 2
        sources0 = [
            (rng.uniform(size=(10, d)), rng.normal(size=10))
            for _ in range(2)
        ]
        sources1 = [(X, rng.normal(size=len(X))) for X, _ in sources0]
        Xt = rng.uniform(size=(6, d))
        yt0, yt1 = rng.normal(size=6), rng.normal(size=6)
        Xq = rng.uniform(size=(9, d))

        def make():
            return MultiSourceTransferGP(
                kernel=RBFKernel(np.full(d, 0.4)), optimize=False
            )

        lead = make().fit(sources0, Xt, yt0)
        follower = make()
        follower.adopt_fit(
            lead,
            np.concatenate([y for _, y in sources1] + [yt1]),
        )
        ref = make().fit(sources1, Xt, yt1)
        mf, vf = follower.predict(Xq)
        mr, vr = ref.predict(Xq)
        np.testing.assert_array_equal(mf, mr)
        np.testing.assert_array_equal(vf, vr)

    def test_signature_divergence_disables_sharing(self):
        eng, X_pool, Y_pool = _make_engine(shared=True)
        _calibrate_init(eng, X_pool, Y_pool)
        assert eng._shared_active
        # Re-optimization moves one metric's hyperparameters: the next
        # calibration must drop to the independent path.
        kern = eng.models[1].transfer_kernel
        kern.theta = kern.theta + 0.5
        assert not eng._sharing_possible()

    def test_golden_trajectory_shared_vs_independent(self, synthetic_pool):
        X, Y, Xs, Ys = synthetic_pool

        def run(shared):
            cfg = PPATunerConfig(
                max_iterations=30, seed=3, reopt_every=0,
                shared_factor=shared,
            )
            tuner = PPATuner(cfg)
            result = tuner.tune(X, PoolOracle(Y), Xs, Ys)
            return tuner, result

        tuner_s, res_s = run(True)
        tuner_i, res_i = run(False)
        assert tuner_s.calibration_.stats.n_shared_updates > 0
        assert tuner_i.calibration_.stats.n_shared_updates == 0
        np.testing.assert_array_equal(
            res_s.evaluated_indices, res_i.evaluated_indices
        )
        np.testing.assert_array_equal(
            res_s.pareto_indices, res_i.pareto_indices
        )
        assert [h.selected for h in res_s.history] == [
            h.selected for h in res_i.history
        ]


# ---------------------------------------------------------------------
# duplicate rows and the shared-update fallback (jitter regression)
# ---------------------------------------------------------------------


class TestSharedFallback:
    def test_exact_duplicate_rows_do_not_crash(self):
        """Pool row 10 equals row 3; absorbing it appends an exact
        duplicate of a training config.  The shared path must survive
        (with or without jitter fallback) and match a from-scratch
        independent refit."""
        eng, X_pool, Y_pool = _make_engine(shared=True)
        sampled, y_obs = _calibrate_init(eng, X_pool, Y_pool)
        sampled[10] = True
        y_obs[10] = Y_pool[10]
        eng.calibrate(1, X_pool, sampled, y_obs, [10])

        ref, _, _ = _make_engine(shared=False)
        ref.calibrate(0, X_pool, sampled, y_obs, list(np.nonzero(sampled)[0]))
        idx = np.arange(len(X_pool))
        mean_f, std_f = eng.predict(idx)
        mean_r, std_r = ref.predict(idx)
        np.testing.assert_allclose(mean_f, mean_r, atol=1e-6)
        np.testing.assert_allclose(std_f, std_r, atol=1e-6)

    def test_forced_fallback_goes_per_gp(self, monkeypatch):
        """When the shared border update is rejected (non-PD Schur
        complement), every model refactorizes independently, the flags
        propagate, and the posterior still matches the exact refit."""
        import repro.gp.incremental as incremental

        eng, X_pool, Y_pool = _make_engine(shared=True)
        sampled, y_obs = _calibrate_init(eng, X_pool, Y_pool)

        def boom(*args, **kwargs):
            raise NotPositiveDefiniteError("forced")

        monkeypatch.setattr(incremental, "cholesky_append_rows", boom)
        sampled[[6, 7]] = True
        y_obs[[6, 7]] = Y_pool[[6, 7]]
        eng.calibrate(1, X_pool, sampled, y_obs, [6, 7])

        assert all(m.last_update_fallback for m in eng.models)
        assert eng.stats.n_fallbacks == len(eng.models)
        assert eng.stats.n_shared_updates == 0
        monkeypatch.undo()

        ref, _, _ = _make_engine(shared=False)
        ref.calibrate(0, X_pool, sampled, y_obs, list(np.nonzero(sampled)[0]))
        idx = np.arange(len(X_pool))
        mean_f, std_f = eng.predict(idx)
        mean_r, std_r = ref.predict(idx)
        np.testing.assert_allclose(mean_f, mean_r, atol=1e-8)
        np.testing.assert_allclose(std_f, std_r, atol=1e-8)

    def test_partial_report_blocks_shared_updates(self):
        """After a partial (NaN) calibration the metrics train on
        different row subsets; the engine must not share a factor until
        a non-partial full fit re-aligns them."""
        eng, X_pool, Y_pool = _make_engine(shared=True)
        sampled, y_obs = _calibrate_init(eng, X_pool, Y_pool)
        before = eng.stats.n_shared_updates
        sampled[6] = True
        y_obs[6] = Y_pool[6]
        y_obs[6, 1] = np.nan  # metric 1 missed this report
        eng.calibrate(1, X_pool, sampled, y_obs, [6])
        assert eng.stats.n_shared_updates == before
        assert not eng._shared_active
        # Rows now differ across metrics: later clean updates must stay
        # per-GP even though the signatures still agree.
        sampled[7] = True
        y_obs[7] = Y_pool[7]
        eng.calibrate(2, X_pool, sampled, y_obs, [7])
        assert eng.stats.n_shared_updates == before
        assert not eng._shared_active


# ---------------------------------------------------------------------
# float32 pool caches: documented tolerance, unchanged trajectories
# ---------------------------------------------------------------------


class TestFloat32Pool:
    def test_pool_predictions_within_tolerance(self):
        rng = np.random.default_rng(4)
        d = 3
        Xs, Xt = rng.uniform(size=(20, d)), rng.uniform(size=(10, d))
        pool = rng.uniform(size=(200, d))

        def fitted(seed):
            r = np.random.default_rng(seed)
            return TransferGP(
                kernel=RBFKernel(np.full(d, 0.4)), optimize=False
            ).fit(Xs, r.normal(size=20), Xt, r.normal(size=10))

        f64, f32 = fitted(4), fitted(4)
        f64.register_pool(pool)
        f32.register_pool(pool, block=64, dtype=np.float32)
        idx = np.arange(len(pool))
        m64, v64 = f64.predict_pool(idx)
        m32, v32 = f32.predict_pool(idx)
        np.testing.assert_allclose(m32, m64, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(v32, v64, rtol=1e-3, atol=1e-4)

    def test_blocked_f64_cache_bit_identical(self):
        """Blocking only partitions the solve columns; with float64
        storage the cache must equal the single-shot build exactly."""
        rng = np.random.default_rng(5)
        d = 3
        Xs, Xt = rng.uniform(size=(20, d)), rng.uniform(size=(10, d))
        pool = rng.uniform(size=(100, d))

        def fitted(seed):
            r = np.random.default_rng(seed)
            return TransferGP(
                kernel=RBFKernel(np.full(d, 0.4)), optimize=False
            ).fit(Xs, r.normal(size=20), Xt, r.normal(size=10))

        one_shot, blocked = fitted(5), fitted(5)
        one_shot.register_pool(pool)
        blocked.register_pool(pool, block=17)
        idx = np.arange(len(pool))
        m1, v1 = one_shot.predict_pool(idx)
        m2, v2 = blocked.predict_pool(idx)
        np.testing.assert_array_equal(m1, m2)
        np.testing.assert_array_equal(v1, v2)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_golden_trajectory_unchanged(self, seed):
        """The float32 cache perturbs posteriors by ~1e-5 relative —
        far below the decision margins on these seeded runs, so the
        selected and Pareto index sets must not move."""
        rng = np.random.default_rng(seed)
        X = rng.uniform(size=(60, 3))
        Y = rng.uniform(0.5, 2.0, size=(60, 2))

        def run(**kw):
            cfg = PPATunerConfig(max_iterations=15, seed=seed, **kw)
            return PPATuner(cfg).tune(X, PoolOracle(Y))

        ref = run()
        fast = run(float32_pool=True, pool_block=16)
        np.testing.assert_array_equal(
            ref.evaluated_indices, fast.evaluated_indices
        )
        np.testing.assert_array_equal(
            ref.pareto_indices, fast.pareto_indices
        )
        assert [h.selected for h in ref.history] == [
            h.selected for h in fast.history
        ]


# ---------------------------------------------------------------------
# default config: trace-event stream identical to the pre-PR path
# ---------------------------------------------------------------------


def _stripped(sink: MemorySink) -> list[dict]:
    out = []
    for ev in sink.events:
        d = ev.to_json()
        d.pop("seconds", None)
        out.append(d)
    return out


class TestTraceStreamUnchanged:
    def test_default_config_matches_pre_pr_stream(self, synthetic_pool):
        """Defaults (shared factor + vectorized decisions + blocked
        caches) emit the exact event stream of the pre-PR per-model
        path (incremental on, everything else off)."""
        X, Y, Xs, Ys = synthetic_pool

        def run(**kw):
            sink = MemorySink()
            cfg = PPATunerConfig(max_iterations=25, seed=3, **kw)
            PPATuner(
                cfg, recorder=TraceRecorder(sinks=[sink])
            ).tune(X, PoolOracle(Y), Xs, Ys)
            return _stripped(sink)

        default_stream = run()
        pre_pr_stream = run(
            shared_factor=False,
            decision_backend="reference",
            pool_block=0,
        )
        assert default_stream == pre_pr_stream
