"""Tests for kernels, linear algebra, marginal likelihood, and GPs."""

from __future__ import annotations

import numpy as np
import pytest
from scipy.optimize import approx_fprime

from repro.gp import (
    GPRegressor,
    Matern52Kernel,
    NotPositiveDefiniteError,
    RBFKernel,
    cholesky_solve,
    gaussian_log_marginal,
    log_det_from_cholesky,
    make_kernel,
    maximize_objective,
    robust_cholesky,
    solve_psd,
)

rng = np.random.default_rng(0)


class TestLinalg:
    def test_cholesky_roundtrip(self):
        A = rng.normal(size=(6, 6))
        K = A @ A.T + 1e-3 * np.eye(6)
        L, jitter = robust_cholesky(K)
        assert jitter == 0.0
        assert np.allclose(L @ L.T, K)

    def test_jitter_escalation(self):
        K = np.zeros((4, 4))  # singular
        L, jitter = robust_cholesky(K)
        assert jitter > 0
        assert np.allclose(L @ L.T, jitter * np.eye(4), atol=1e-12)

    def test_not_pd_raises(self):
        K = -np.eye(3) * 100
        with pytest.raises(NotPositiveDefiniteError):
            robust_cholesky(K, jitter=1e-12)

    def test_cholesky_solve(self):
        A = rng.normal(size=(5, 5))
        K = A @ A.T + np.eye(5)
        b = rng.normal(size=5)
        L, _ = robust_cholesky(K)
        assert np.allclose(K @ cholesky_solve(L, b), b)

    def test_solve_psd(self):
        A = rng.normal(size=(5, 5))
        K = A @ A.T + np.eye(5)
        b = rng.normal(size=5)
        assert np.allclose(K @ solve_psd(K, b), b)

    def test_log_det(self):
        A = rng.normal(size=(5, 5))
        K = A @ A.T + np.eye(5)
        L, _ = robust_cholesky(K)
        assert log_det_from_cholesky(L) == pytest.approx(
            np.linalg.slogdet(K)[1]
        )


class TestKernels:
    @pytest.mark.parametrize("cls", [RBFKernel, Matern52Kernel])
    def test_diagonal_is_variance(self, cls):
        k = cls(np.full(3, 0.5), variance=2.0)
        X = rng.uniform(size=(8, 3))
        K = k.eval(X)
        assert np.allclose(np.diag(K), 2.0)

    @pytest.mark.parametrize("cls", [RBFKernel, Matern52Kernel])
    def test_symmetry_and_psd(self, cls):
        k = cls(np.full(3, 0.5))
        X = rng.uniform(size=(10, 3))
        K = k.eval(X)
        assert np.allclose(K, K.T)
        eigs = np.linalg.eigvalsh(K)
        assert eigs.min() > -1e-8

    @pytest.mark.parametrize("cls", [RBFKernel, Matern52Kernel])
    def test_decay_with_distance(self, cls):
        k = cls(np.full(1, 0.5))
        near = k.eval(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = k.eval(np.array([[0.0]]), np.array([[2.0]]))[0, 0]
        assert near > far

    @pytest.mark.parametrize("cls", [RBFKernel, Matern52Kernel])
    def test_gradients_match_finite_differences(self, cls):
        X = rng.uniform(size=(12, 3))
        y = np.sin(3 * X.sum(axis=1))
        kernel = cls(np.full(3, 0.4), 1.3)

        def lml(theta):
            kernel.theta = theta
            K, _ = kernel.eval_with_grads(X)
            value, _, _ = gaussian_log_marginal(
                K + 0.01 * np.eye(12), y
            )
            return value

        def grad(theta):
            kernel.theta = theta
            K, grads = kernel.eval_with_grads(X)
            _, g, _ = gaussian_log_marginal(
                K + 0.01 * np.eye(12), y, grads
            )
            return g

        theta0 = kernel.theta + rng.normal(scale=0.05, size=4)
        numeric = approx_fprime(theta0, lml, 1e-6)
        assert np.allclose(grad(theta0), numeric, atol=1e-4)

    def test_theta_roundtrip(self):
        k = RBFKernel(np.array([0.2, 0.7]), 1.5)
        theta = k.theta
        k.theta = theta + 0.1
        assert np.allclose(k.theta, theta + 0.1)

    def test_theta_wrong_length(self):
        k = RBFKernel(np.array([0.2, 0.7]))
        with pytest.raises(ValueError):
            k.theta = np.zeros(5)

    def test_negative_lengthscale_rejected(self):
        with pytest.raises(ValueError):
            RBFKernel(np.array([-1.0]))

    def test_make_kernel(self):
        assert isinstance(make_kernel("rbf", 3), RBFKernel)
        assert isinstance(make_kernel("matern52", 3), Matern52Kernel)
        with pytest.raises(ValueError):
            make_kernel("exp", 3)

    def test_clone_independent(self):
        k = RBFKernel(np.array([0.5]))
        c = k.clone()
        c.theta = c.theta + 1.0
        assert not np.allclose(k.theta, c.theta)

    def test_ard_lengthscales_matter(self):
        k = RBFKernel(np.array([0.1, 10.0]))
        a = np.array([[0.0, 0.0]])
        move_fast_dim = np.array([[0.3, 0.0]])
        move_slow_dim = np.array([[0.0, 0.3]])
        assert (
            k.eval(a, move_fast_dim)[0, 0]
            < k.eval(a, move_slow_dim)[0, 0]
        )


class TestMaximizeObjective:
    def test_finds_quadratic_max(self):
        def objective(theta):
            value = float(np.sum((theta - 1.0) ** 2))
            return value, 2.0 * (theta - 1.0)

        best = maximize_objective(
            objective, np.zeros(3), [(-5, 5)] * 3, n_restarts=1, seed=0
        )
        assert np.allclose(best, 1.0, atol=1e-4)

    def test_respects_bounds(self):
        def objective(theta):
            return float(-theta[0]), np.array([-1.0])

        best = maximize_objective(
            objective, np.zeros(1), [(-2.0, 2.0)], n_restarts=0
        )
        assert best[0] <= 2.0 + 1e-9

    def test_pinned_bounds_ok(self):
        def objective(theta):
            return float(theta[0] ** 2), np.array([2 * theta[0], 0.0])

        best = maximize_objective(
            objective, np.array([1.0, 4.0]),
            [(-5.0, 5.0), (4.0, 4.0)], n_restarts=2, seed=1,
        )
        assert best[1] == 4.0


class TestGPRegressor:
    def test_interpolates_training_data(self):
        X = rng.uniform(size=(20, 2))
        y = np.cos(4 * X[:, 0]) + X[:, 1]
        gp = GPRegressor(noise_variance=1e-5).fit(X, y)
        mean, var = gp.predict(X)
        assert np.abs(mean - y).max() < 0.05
        assert var.max() < 0.05

    def test_uncertainty_grows_off_data(self):
        X = rng.uniform(size=(15, 2)) * 0.3
        y = X.sum(axis=1)
        gp = GPRegressor().fit(X, y)
        _, var_near = gp.predict(X[:3])
        _, var_far = gp.predict(np.full((1, 2), 0.95))
        assert var_far[0] > var_near.max()

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GPRegressor().predict(np.zeros((1, 2)))

    def test_misaligned_raises(self):
        with pytest.raises(ValueError):
            GPRegressor().fit(np.zeros((3, 2)), np.zeros(4))

    def test_include_noise_adds_variance(self):
        X = rng.uniform(size=(10, 2))
        y = X.sum(axis=1) + rng.normal(scale=0.1, size=10)
        gp = GPRegressor().fit(X, y)
        _, v0 = gp.predict(X[:2], include_noise=False)
        _, v1 = gp.predict(X[:2], include_noise=True)
        assert np.all(v1 > v0)

    def test_target_scale_invariance(self):
        X = rng.uniform(size=(15, 2))
        y = np.sin(3 * X[:, 0])
        gp1 = GPRegressor(seed=0).fit(X, y)
        gp2 = GPRegressor(seed=0).fit(X, 1000.0 * y + 5.0)
        m1, _ = gp1.predict(X[:4])
        m2, _ = gp2.predict(X[:4])
        assert np.allclose(m2, 1000.0 * m1 + 5.0, rtol=1e-3, atol=1e-2)

    def test_optimize_improves_lml(self):
        X = rng.uniform(size=(25, 2))
        y = np.sin(6 * X[:, 0])
        fixed = GPRegressor(optimize=False).fit(X, y)
        tuned = GPRegressor(optimize=True, seed=0).fit(X, y)
        assert (
            tuned.log_marginal_likelihood()
            >= fixed.log_marginal_likelihood() - 1e-6
        )

    def test_constant_targets_handled(self):
        X = rng.uniform(size=(8, 2))
        gp = GPRegressor().fit(X, np.full(8, 3.0))
        mean, _ = gp.predict(X[:2])
        assert np.allclose(mean, 3.0, atol=1e-6)

    def test_default_kernel_sized_at_fit(self):
        X = rng.uniform(size=(10, 5))
        gp = GPRegressor().fit(X, X.sum(axis=1))
        assert gp.kernel is not None
        assert gp.kernel.dim == 5  # type: ignore[attr-defined]
