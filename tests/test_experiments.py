"""Integration tests for the experiment harness (scenarios, reports,
figures) on reduced-scale pools."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import PPATunerConfig
from repro.experiments import (
    PAPER_BUDGET_FRACTIONS,
    PAPER_METHODS,
    evaluate_outcome,
    export_scenario_csv,
    export_scenario_json,
    figure2_uncertainty_shrinkage,
    figure3_frontiers,
    format_benchmark_table,
    format_scenario_table,
    make_method,
    run_scenario,
    scenario_to_records,
)
from repro.experiments.scenarios import ScenarioResult


@pytest.fixture(scope="module")
def mini_scenario(request):
    """A reduced scenario over the tiny benchmark as source and target."""
    tiny = request.getfixturevalue("tiny_benchmark")
    return run_scenario(
        tiny, tiny.subsample(40, seed=0), "mini", "target2",
        methods=("MLCAD'19", "PPATuner"),
        objective_spaces={"power-delay": ("power", "delay")},
        n_source=30,
        seed=0,
        ppa_config=PPATunerConfig(max_iterations=12, seed=0),
    )


# getfixturevalue needs the fixture visible here.
@pytest.fixture(scope="module")
def tiny_benchmark(request):
    from tests.conftest import TINY_MAC  # noqa: F401
    return request.getfixturevalue("tiny_benchmark")


class TestMakeMethod:
    @pytest.mark.parametrize("name", PAPER_METHODS + ("Random",))
    def test_constructs_every_method(self, name):
        tuner = make_method(name, budget=30, pool_size=100, seed=0)
        assert hasattr(tuner, "tune")

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            make_method("SOTA'99", 30, 100, 0)

    def test_budget_fractions_match_paper(self):
        assert PAPER_BUDGET_FRACTIONS["MLCAD'19"]["target1"] == pytest.approx(
            400 / 5000
        )
        assert PAPER_BUDGET_FRACTIONS["DAC'19"]["target2"] == pytest.approx(
            131 / 727
        )


class TestRunScenario:
    def test_outcomes_per_cell(self, mini_scenario):
        assert len(mini_scenario.outcomes) == 2  # 2 methods x 1 space

    def test_metrics_finite(self, mini_scenario):
        for o in mini_scenario.outcomes:
            assert np.isfinite(o.hv_error)
            assert np.isfinite(o.adrs)
            assert o.runs > 0

    def test_get_cell(self, mini_scenario):
        o = mini_scenario.get("PPATuner", "power-delay")
        assert o.method == "PPATuner"
        with pytest.raises(KeyError):
            mini_scenario.get("PPATuner", "nonexistent")

    def test_averages(self, mini_scenario):
        avgs = mini_scenario.averages()
        assert set(avgs) == {"MLCAD'19", "PPATuner"}


class TestReporting:
    def test_table_renders(self, mini_scenario):
        table = format_scenario_table(
            mini_scenario, methods=("MLCAD'19", "PPATuner")
        )
        assert "Power-Delay" in table
        assert "Ratio" in table
        assert "PPATuner" in table

    def test_records(self, mini_scenario):
        records = scenario_to_records(mini_scenario)
        assert len(records) == 2
        assert {r["method"] for r in records} == {"MLCAD'19", "PPATuner"}

    def test_json_export(self, mini_scenario, tmp_path):
        path = tmp_path / "scenario.json"
        export_scenario_json(mini_scenario, path)
        data = json.loads(path.read_text())
        assert len(data) == 2

    def test_csv_export(self, mini_scenario, tmp_path):
        path = tmp_path / "scenario.csv"
        export_scenario_csv(mini_scenario, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 3  # header + 2 rows

    def test_empty_scenario_csv(self, tmp_path):
        empty = ScenarioResult("e", "s", "t", [], 0)
        path = tmp_path / "empty.csv"
        export_scenario_csv(empty, path)
        assert path.read_text() == ""

    def test_benchmark_table(self, tiny_benchmark):
        table = format_benchmark_table([tiny_benchmark.summary()])
        assert "tiny" in table
        assert "Points" in table


class TestEvaluateOutcome:
    def test_perfect_result_zero_error(self, tiny_benchmark):
        from repro.core.result import TuningResult

        names = ("power", "delay")
        idx = tiny_benchmark.golden_indices(names)
        result = TuningResult(
            pareto_indices=idx,
            pareto_points=tiny_benchmark.objectives(names)[idx],
            n_evaluations=10,
            n_iterations=1,
        )
        o = evaluate_outcome("X", "power-delay", result,
                             tiny_benchmark, names)
        assert o.hv_error == pytest.approx(0.0, abs=1e-12)
        assert o.adrs == pytest.approx(0.0, abs=1e-12)


class TestFigures:
    def test_figure2_series(self, tiny_benchmark):
        data = figure2_uncertainty_shrinkage(
            tiny_benchmark, scale=40, seed=0,
            config=PPATunerConfig(max_iterations=10, seed=0),
        )
        assert len(data.iterations) == len(data.max_diameters)
        assert len(data.golden_front) >= 1
        assert len(data.found_front) >= 1
        # Diameter trace must shrink overall.
        finite = [d for d in data.max_diameters if np.isfinite(d)]
        if len(finite) >= 2:
            assert finite[-1] <= finite[0] * 1.5

    def test_figure3_series(self, mini_scenario, tiny_benchmark):
        series = figure3_frontiers(
            mini_scenario, tiny_benchmark.subsample(40, seed=0)
        )
        assert "golden" in series
        assert "PPATuner" in series
        for pts in series.values():
            assert pts.ndim == 2 and pts.shape[1] == 2
