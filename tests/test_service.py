"""Tests for the multi-session tuning service (HTTP + snapshots).

The server runs in-thread (``TuningServiceHTTP`` on an ephemeral port,
store under ``tmp_path``) so these tests exercise the real wire
protocol end to end: remote runs must be bit-identical to in-process
``PPATuner.tune``, a killed server must recover every session from its
snapshot store, and the error mapping must hold (404 unknown session,
400 bad input, 409 wrong state).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import PoolOracle, PPATuner, PPATunerConfig
from repro.obs import replay_trace
from repro.pareto import non_dominated_mask
from repro.reliability import FaultInjectingOracle, FaultPlan, FaultPolicy
from repro.service import (
    RemoteTuner,
    ServiceClient,
    ServiceError,
    SessionStore,
    TuningService,
    TuningServiceHTTP,
)


def random_pool(seed: int, n: int = 40, d: int = 3, m: int = 2):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n, d))
    Y = rng.uniform(0.5, 2.0, size=(n, m))
    return X, Y


@pytest.fixture()
def http(tmp_path):
    """An in-thread service over a tmp store; yields (server, client)."""
    server = TuningServiceHTTP(root=tmp_path / "store", port=0)
    server.start()
    try:
        yield server, ServiceClient(server.url)
    finally:
        server.shutdown()


class TestRemoteIdentity:
    def test_remote_matches_inprocess(self, http):
        _, client = http
        X, Y = random_pool(2)
        cfg = PPATunerConfig(max_iterations=15, seed=2)
        ref = PPATuner(cfg).tune(X, PoolOracle(Y))

        remote = RemoteTuner(client, config=cfg)
        got = remote.tune(X, PoolOracle(Y))

        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert np.allclose(ref.pareto_points, got.pareto_points)
        assert np.array_equal(
            ref.evaluated_indices, got.evaluated_indices
        )
        assert ref.n_evaluations == got.n_evaluations
        assert ref.stop_reason == got.stop_reason
        assert ref.history == got.history
        assert non_dominated_mask(got.pareto_points).all()

    def test_remote_matches_inprocess_under_faults(self, http):
        _, client = http
        X, Y = random_pool(9, n=50)
        plan = FaultPlan.seeded(
            9, len(X), rate=0.3,
            kinds=("transient", "partial", "persistent"),
        )
        cfg = PPATunerConfig(
            max_iterations=12, seed=9,
            fault_policy=FaultPolicy(max_retries=2),
        )
        ref = PPATuner(cfg).tune(
            X, FaultInjectingOracle(PoolOracle(Y), plan, latency_s=0.0)
        )
        got = RemoteTuner(client, config=cfg).tune(
            X, FaultInjectingOracle(PoolOracle(Y), plan, latency_s=0.0)
        )
        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert np.array_equal(
            ref.quarantined_indices, got.quarantined_indices
        )
        assert ref.n_failed_evaluations == got.n_failed_evaluations
        assert non_dominated_mask(got.pareto_points).all()

    def test_server_side_trace_replays_to_result(self, http, tmp_path):
        server, client = http
        X, Y = random_pool(4)
        cfg = PPATunerConfig(max_iterations=15, seed=4)
        remote = RemoteTuner(client, config=cfg, trace=True)
        got = remote.tune(X, PoolOracle(Y))

        trace = server.service.store.trace_path(remote.session_id)
        assert trace.exists()
        replayed = replay_trace(trace).to_result()
        assert np.array_equal(
            got.pareto_indices, replayed.pareto_indices
        )
        assert got.stop_reason == replayed.stop_reason


class TestRestartSurvival:
    def test_kill_and_restart_resumes_bit_identical(self, tmp_path):
        X, Y = random_pool(5)
        cfg = PPATunerConfig(max_iterations=15, seed=5)
        ref = PPATuner(cfg).tune(X, PoolOracle(Y))

        root = tmp_path / "store"
        oracle = PoolOracle(Y)

        # First server: create the session, feed nine tells, die.
        server = TuningServiceHTTP(root=root, port=0)
        server.start()
        client = ServiceClient(server.url)
        sid = client.create_session(cfg, X, Y.shape[1], session_id="job-a")
        told = 0
        while told < 9:
            pending = client.ask(sid)["pending"]
            assert pending
            for idx in pending:
                client.tell(
                    sid, idx, values=oracle.evaluate(idx),
                    n_evaluations=oracle.n_evaluations,
                )
                told += 1
                if told >= 9:
                    break
        server.shutdown()

        # Second server over the same store: session must be back.
        server = TuningServiceHTTP(root=root, port=0)
        server.start()
        try:
            client = ServiceClient(server.url)
            assert [s["session_id"] for s in client.sessions()] == [sid]
            while True:
                pending = client.ask(sid)["pending"]
                if not pending:
                    break
                for idx in pending:
                    client.tell(
                        sid, idx, values=oracle.evaluate(idx),
                        n_evaluations=oracle.n_evaluations,
                    )
            got = client.result(sid)
        finally:
            server.shutdown()

        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert np.allclose(ref.pareto_points, got.pareto_points)
        assert ref.n_evaluations == got.n_evaluations
        assert ref.stop_reason == got.stop_reason
        assert ref.history == got.history

    def test_corrupt_snapshot_dropped_on_recovery(self, tmp_path):
        root = tmp_path / "store"
        store = SessionStore(root)
        root.mkdir(parents=True, exist_ok=True)
        store.snapshot_path("broken").write_bytes(b"not an npz")

        service = TuningService(root=root)
        assert service.sessions() == []
        assert not store.snapshot_path("broken").exists()


class TestBudget:
    def test_budget_exhaustion_stops_session(self, http):
        _, client = http
        X, Y = random_pool(7)
        cfg = PPATunerConfig(max_iterations=30, seed=7)
        result = RemoteTuner(
            client, config=cfg, max_evaluations=8
        ).tune(X, PoolOracle(Y))
        assert result.stop_reason == "budget_exhausted"
        assert result.n_evaluations <= 8
        assert non_dominated_mask(result.pareto_points).all()


class TestProtocolErrors:
    def test_unknown_session_is_404(self, http):
        _, client = http
        with pytest.raises(ServiceError) as exc:
            client.ask("no-such-session")
        assert exc.value.status == 404

    def test_bad_session_id_is_400(self, http):
        _, client = http
        X, Y = random_pool(0)
        with pytest.raises(ServiceError) as exc:
            client.create_session(
                PPATunerConfig(), X, Y.shape[1],
                session_id="../escape",
            )
        assert exc.value.status == 400

    def test_duplicate_session_id_is_400(self, http):
        _, client = http
        X, Y = random_pool(0)
        cfg = PPATunerConfig(max_iterations=5, seed=0)
        client.create_session(cfg, X, Y.shape[1], session_id="dup")
        with pytest.raises(ServiceError) as exc:
            client.create_session(cfg, X, Y.shape[1], session_id="dup")
        assert exc.value.status == 400

    def test_result_before_done_is_409(self, http):
        _, client = http
        X, Y = random_pool(0)
        sid = client.create_session(
            PPATunerConfig(max_iterations=5, seed=0), X, Y.shape[1]
        )
        with pytest.raises(ServiceError) as exc:
            client.result(sid)
        assert exc.value.status == 409

    def test_out_of_order_tell_is_400(self, http):
        _, client = http
        X, Y = random_pool(0)
        sid = client.create_session(
            PPATunerConfig(max_iterations=5, seed=0), X, Y.shape[1]
        )
        pending = client.ask(sid)["pending"]
        wrong = next(i for i in range(len(X)) if i not in pending)
        with pytest.raises(ServiceError) as exc:
            client.tell(sid, wrong, values=Y[wrong])
        assert exc.value.status == 400

    def test_delete_removes_session_and_snapshot(self, http):
        server, client = http
        X, Y = random_pool(0)
        sid = client.create_session(
            PPATunerConfig(max_iterations=5, seed=0), X, Y.shape[1]
        )
        assert server.service.store.snapshot_path(sid).exists()
        client.delete(sid)
        assert not server.service.store.snapshot_path(sid).exists()
        with pytest.raises(ServiceError) as exc:
            client.status(sid)
        assert exc.value.status == 404

    def test_malformed_json_is_400(self, http):
        server, _ = http
        import urllib.error
        import urllib.request

        req = urllib.request.Request(
            f"{server.url}/sessions",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400


class TestStoreValidation:
    def test_session_id_rejects_traversal(self, tmp_path):
        from repro.service.store import validate_session_id

        for bad in ("../x", "a/b", "", "." , "-lead", "x" * 80):
            with pytest.raises(ValueError):
                validate_session_id(bad)
        for ok in ("job-a", "A1", "run_2.try-3"):
            validate_session_id(ok)

    def test_store_roundtrip_preserves_service_meta(self, tmp_path):
        from repro.core import TuningSession

        X, Y = random_pool(1)
        session = TuningSession(
            PPATunerConfig(max_iterations=5, seed=1), X, Y.shape[1]
        )
        session.ask()
        store = SessionStore(tmp_path / "s")
        store.save(
            "one", session.snapshot(),
            service_meta={"max_evaluations": 8, "traced": False},
        )
        loaded = store.load("one")
        assert loaded is not None
        snapshot, meta = loaded
        assert meta == {"max_evaluations": 8, "traced": False}
        restored = TuningSession.restore(snapshot)
        assert restored.phase == session.phase
        assert list(store.list_ids()) == ["one"]


class TestBatchEndpoints:
    def test_batched_remote_matches_inprocess(self, http):
        _, client = http
        X, Y = random_pool(12, n=44)
        cfg = PPATunerConfig(max_iterations=12, seed=3, q=4)
        ref = PPATuner(cfg).tune(X, PoolOracle(Y))
        got = RemoteTuner(client, config=cfg).tune(X, PoolOracle(Y))
        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert np.array_equal(
            ref.evaluated_indices, got.evaluated_indices
        )
        assert ref.n_evaluations == got.n_evaluations
        assert ref.history == got.history
        assert non_dominated_mask(got.pareto_points).all()

    def test_tell_batch_accepts_out_of_order(self, http):
        _, client = http
        X, Y = random_pool(13, n=40)
        cfg = PPATunerConfig(max_iterations=10, seed=1, q=4)
        sid = client.create_session(cfg, X, Y.shape[1])
        oracle = PoolOracle(Y)
        while True:
            reply = client.ask(sid)
            pending = reply["pending"]
            assert "n_pool" in reply
            if not pending:
                break
            rows = oracle.evaluate_batch(pending)
            tells = [
                {
                    "index": int(i),
                    "values": [float(v) for v in row],
                    "n_evaluations": oracle.n_evaluations,
                }
                for i, row in zip(pending, rows)
            ]
            # Reversed within the batch: the session re-sequences.
            out = client.tell_batch(sid, list(reversed(tells)))
            assert out["told"] == len(tells)
        got = client.result(sid)
        ref = PPATuner(cfg).tune(X, PoolOracle(Y))
        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert ref.n_evaluations == got.n_evaluations

    def test_pool_endpoint_serves_rows_and_validates_range(self, http):
        _, client = http
        X, Y = random_pool(14, n=30)
        cfg = PPATunerConfig(max_iterations=8, seed=0)
        sid = client.create_session(cfg, X, Y.shape[1])
        reply = client.pool(sid)
        assert reply["n_pool"] == 30
        assert reply["start"] == 0
        np.testing.assert_allclose(np.asarray(reply["X_pool"]), X)
        tail = client.pool(sid, start=28)
        np.testing.assert_allclose(np.asarray(tail["X_pool"]), X[28:])
        assert client.pool(sid, start=30)["X_pool"] == []
        with pytest.raises(ServiceError) as exc:
            client.pool(sid, start=31)
        assert exc.value.status == 400

    def test_refined_pool_flows_through_service(self, http):
        from repro.core import CallableOracle

        _, client = http
        rng = np.random.default_rng(7)
        X = rng.uniform(size=(30, 3))

        def f(x):
            return np.array([
                float(np.sum((x - 0.3) ** 2)),
                float(np.sum((x - 0.7) ** 2)),
            ])

        cfg = PPATunerConfig(
            max_iterations=14, seed=2, pool_refine_every=4,
            pool_refine_points=6, reopt_every=0, n_restarts=0,
        )
        ref_oracle = CallableOracle(f, X, 2)
        ref = PPATuner(cfg).tune(X, ref_oracle)
        assert ref_oracle.n_candidates > 30  # refinement fired

        oracle = CallableOracle(f, X, 2)
        got = RemoteTuner(client, config=cfg).tune(X, oracle)
        assert oracle.n_candidates == ref_oracle.n_candidates
        assert np.array_equal(ref.pareto_indices, got.pareto_indices)
        assert np.allclose(ref.pareto_points, got.pareto_points)
        assert ref.n_evaluations == got.n_evaluations
