"""Unit tests for the netlist representation and compilation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.pdtool.library import CellLibrary
from repro.pdtool.netlist import PRIMARY_INPUT, Netlist


@pytest.fixture()
def nl(library) -> Netlist:
    return Netlist("t", library)


def _chain(nl: Netlist, length: int) -> list[int]:
    """Build an inverter chain fed by one primary input."""
    nl.add_input()
    ids = [nl.add_cell("INV", [PRIMARY_INPUT])]
    for _ in range(length - 1):
        ids.append(nl.add_cell("INV", [ids[-1]]))
    return ids


class TestConstruction:
    def test_add_cell_returns_sequential_ids(self, nl):
        nl.add_input()
        a = nl.add_cell("INV", [PRIMARY_INPUT])
        b = nl.add_cell("INV", [a])
        assert (a, b) == (0, 1)

    def test_pin_count_enforced(self, nl):
        nl.add_input()
        with pytest.raises(ValueError, match="needs 2 fanins"):
            nl.add_cell("NAND2", [PRIMARY_INPUT])

    def test_forward_reference_rejected(self, nl):
        nl.add_input()
        with pytest.raises(ValueError, match="not an existing instance"):
            nl.add_cell("INV", [5])

    def test_default_names(self, nl):
        nl.add_input()
        idx = nl.add_cell("INV", [PRIMARY_INPUT])
        assert nl.instances[idx].name == "U0"

    def test_explicit_name(self, nl):
        nl.add_input()
        idx = nl.add_cell("INV", [PRIMARY_INPUT], name="my_inv")
        assert nl.instances[idx].name == "my_inv"

    def test_cell_area_sums(self, nl, library):
        _chain(nl, 3)
        assert nl.cell_area() == pytest.approx(
            3 * library.variant("INV", 1).area
        )

    def test_counts_by_function(self, nl):
        nl.add_input()
        nl.add_cell("INV", [PRIMARY_INPUT])
        nl.add_cell("INV", [0])
        nl.add_cell("NAND2", [0, 1])
        assert nl.counts_by_function() == {"INV": 2, "NAND2": 1}

    def test_validate_passes_on_good_netlist(self, nl):
        _chain(nl, 4)
        nl.validate()

    def test_validate_requires_inputs(self, nl):
        nl.instances.append(nl.instances)  # corrupt; never mind type
        nl.instances.clear()
        nl.add_input()
        nl.add_cell("INV", [PRIMARY_INPUT])
        nl.n_primary_inputs = 0
        with pytest.raises(ValueError, match="primary inputs"):
            nl.validate()


class TestCompile:
    def test_levels_of_chain(self, nl):
        ids = _chain(nl, 5)
        c = nl.compile()
        assert [int(c.level[i]) for i in ids] == [0, 1, 2, 3, 4]

    def test_levels_partition_cells(self, nl):
        _chain(nl, 5)
        c = nl.compile()
        all_ids = np.sort(np.concatenate(c.levels))
        assert np.array_equal(all_ids, np.arange(nl.n_cells))

    def test_fanout_counts(self, nl):
        nl.add_input()
        a = nl.add_cell("INV", [PRIMARY_INPUT])
        nl.add_cell("INV", [a])
        nl.add_cell("INV", [a])
        nl.add_cell("NAND2", [a, 1])
        c = nl.compile()
        assert c.fanout_count[a] == 3

    def test_sequential_cells_are_level_zero(self, nl):
        nl.add_input()
        a = nl.add_cell("INV", [PRIMARY_INPUT])
        b = nl.add_cell("INV", [a])
        dff = nl.add_cell("DFF", [b])
        after = nl.add_cell("INV", [dff])
        c = nl.compile()
        assert c.level[dff] == 0
        assert c.level[after] == 1

    def test_is_seq_mask(self, nl):
        nl.add_input()
        a = nl.add_cell("INV", [PRIMARY_INPUT])
        d = nl.add_cell("DFF", [a])
        c = nl.compile()
        assert not c.is_seq[a]
        assert c.is_seq[d]

    def test_csr_structure(self, nl):
        nl.add_input()
        a = nl.add_cell("INV", [PRIMARY_INPUT])
        b = nl.add_cell("NAND2", [a, a])
        c = nl.compile()
        assert c.fanin_ptr[-1] == 3  # 1 + 2 pins
        assert list(c.fanin_idx[c.fanin_ptr[b]:c.fanin_ptr[b + 1]]) == [a, a]

    def test_cell_attribute_arrays(self, nl, library):
        _chain(nl, 3)
        c = nl.compile()
        inv = library.variant("INV", 1)
        assert np.allclose(c.area, inv.area)
        assert np.allclose(c.drive_res, inv.drive_res)

    def test_sink_load_cap_chain(self, nl, library):
        ids = _chain(nl, 3)
        c = nl.compile()
        inv = library.variant("INV", 1)
        load = c.sink_load_cap()
        # Middle cell drives exactly one INV pin; last drives nothing.
        assert load[ids[0]] == pytest.approx(inv.input_cap)
        assert load[ids[-1]] == 0.0

    def test_sink_load_cap_multi_fanout(self, nl, library):
        nl.add_input()
        a = nl.add_cell("INV", [PRIMARY_INPUT])
        nl.add_cell("NAND2", [a, a])
        c = nl.compile()
        nand = library.variant("NAND2", 1)
        assert c.sink_load_cap()[a] == pytest.approx(2 * nand.input_cap)

    def test_refresh_after_master_change(self, nl, library):
        ids = _chain(nl, 2)
        c = nl.compile()
        old_area = c.area[ids[0]]
        nl.instances[ids[0]].cell = library.variant("INV", 8)
        c.refresh_cell_arrays()
        assert c.area[ids[0]] > old_area

    def test_n_cells_property(self, nl):
        _chain(nl, 7)
        assert nl.compile().n_cells == 7

    def test_empty_levels_absent(self, nl):
        _chain(nl, 4)
        c = nl.compile()
        for level_ids in c.levels:
            assert len(level_ids) > 0
