"""Additional edge-case coverage for uncertainty regions and selection,
plus end-to-end sanity of the per-iteration bookkeeping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    PoolOracle,
    PPATuner,
    PPATunerConfig,
    UncertaintyRegions,
    select_next,
)


class TestRegionsProperties:
    @settings(max_examples=40)
    @given(
        st.integers(1, 8), st.integers(1, 3),
        st.integers(0, 10_000),
    )
    def test_intersection_monotone(self, n, m, seed):
        """Any sequence of intersections never grows any region."""
        rng = np.random.default_rng(seed)
        regions = UncertaintyRegions.unbounded(n, m)
        idx = np.arange(n)
        prev_lo = regions.lo.copy()
        prev_hi = regions.hi.copy()
        for _ in range(4):
            center = rng.uniform(-2, 2, size=(n, m))
            half = rng.uniform(0, 2, size=(n, m))
            regions.intersect(idx, center - half, center + half)
            assert np.all(regions.lo >= prev_lo - 1e-12)
            assert np.all(regions.hi <= prev_hi + 1e-12)
            prev_lo = regions.lo.copy()
            prev_hi = regions.hi.copy()

    @settings(max_examples=40)
    @given(st.integers(2, 10), st.integers(0, 10_000))
    def test_diameters_match_manual(self, n, seed):
        rng = np.random.default_rng(seed)
        lo = rng.uniform(-1, 0, size=(n, 2))
        hi = lo + rng.uniform(0, 2, size=(n, 2))
        regions = UncertaintyRegions(lo=lo, hi=hi)
        manual = np.linalg.norm(hi - lo, axis=1)
        assert np.allclose(regions.diameters(), manual)

    def test_partial_intersection_indices(self):
        regions = UncertaintyRegions.unbounded(3, 2)
        regions.intersect(
            np.array([1]), np.zeros((1, 2)), np.ones((1, 2))
        )
        assert not regions.is_bounded()[0]
        assert regions.is_bounded()[1]
        assert not regions.is_bounded()[2]


class TestSelectionTies:
    def test_stable_tie_breaking(self):
        regions = UncertaintyRegions(
            lo=np.zeros((4, 2)),
            hi=np.ones((4, 2)),  # all identical diameters
        )
        chosen = select_next(regions, np.ones(4, bool), batch_size=2)
        assert list(chosen) == [0, 1]  # stable order on ties

    def test_batch_larger_than_eligible(self):
        regions = UncertaintyRegions(
            lo=np.zeros((2, 2)), hi=np.ones((2, 2))
        )
        chosen = select_next(regions, np.ones(2, bool), batch_size=10)
        assert len(chosen) == 2


class TestHistoryBookkeeping:
    @pytest.fixture(scope="class")
    def run(self, request):
        X, Y, Xs, Ys = request.getfixturevalue("synthetic_pool")
        oracle = PoolOracle(Y)
        result = PPATuner(
            PPATunerConfig(max_iterations=25, seed=2)
        ).tune(X, oracle, Xs, Ys)
        return result, len(X)

    def test_counts_partition_pool(self, run):
        result, n = run
        for record in result.history:
            assert (
                record.n_undecided + record.n_pareto + record.n_dropped
                == n
            )

    def test_evaluations_cumulative(self, run):
        result, _ = run
        evals = [h.n_evaluations for h in result.history]
        assert evals == sorted(evals)

    def test_dropped_monotone(self, run):
        result, _ = run
        dropped = [h.n_dropped for h in result.history]
        assert dropped == sorted(dropped)

    def test_selected_within_pool(self, run):
        result, n = run
        for record in result.history:
            for idx in record.selected:
                assert 0 <= idx < n

    def test_iteration_numbers_sequential(self, run):
        result, _ = run
        assert [h.iteration for h in result.history] == list(
            range(len(result.history))
        )
