"""Tests for the fault-tolerant evaluation layer.

Covers the FaultPolicy knob-set, the ResilientOracle retry / timeout /
circuit-breaker machinery (with its deterministic backoff schedule),
seeded fault injection, loop-level quarantine and partial-QoR
imputation in PPATuner, trace/replay round-trips of the new events, the
typed ``repro.env`` accessors, memo backward compatibility, the CLI
flags, and a subprocess chaos run that kills a pool worker mid-cell and
resumes from the memo.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro import env
from repro.core import FlowOracle, Oracle, PoolOracle, PPATuner, PPATunerConfig
from repro.obs import (
    JsonlSink,
    MemorySink,
    TraceRecorder,
    replay_trace,
    summarize_trace,
)
from repro.obs.events import (
    CircuitStateChange,
    EvaluationRetry,
    PointQuarantined,
)
from repro.reliability import (
    FAULT_KINDS,
    TRANSIENT_KINDS,
    CircuitOpenError,
    EvaluationTimeout,
    FaultInjectingOracle,
    FaultPlan,
    FaultPolicy,
    PermanentEvaluationError,
    ResilientOracle,
    TransientEvaluationError,
)

SRC_DIR = Path(__file__).resolve().parents[1] / "src"


def pool_oracle(n: int = 30, m: int = 2, seed: int = 0) -> PoolOracle:
    Y = np.random.default_rng(seed).random((n, m)) + 0.5
    return PoolOracle(Y)


def no_wait(policy: FaultPolicy | None = None, **kw) -> FaultPolicy:
    """A FaultPolicy with zero backoff (tests never sleep)."""
    base = policy or FaultPolicy(**{"backoff_base": 0.0, **kw})
    return base


# ----------------------------------------------------------------------
# FaultPolicy


class TestFaultPolicy:
    def test_defaults_valid(self):
        p = FaultPolicy()
        assert p.max_retries == 2
        assert p.timeout_s is None
        assert p.on_permanent_failure == "quarantine"

    @pytest.mark.parametrize("kw", [
        {"max_retries": -1},
        {"timeout_s": 0.0},
        {"timeout_s": -1.0},
        {"backoff_base": -0.1},
        {"breaker_threshold": 0},
        {"breaker_cooldown": 0},
        {"on_permanent_failure": "explode"},
    ])
    def test_validation(self, kw):
        with pytest.raises(ValueError):
            FaultPolicy(**kw)

    def test_json_round_trip(self):
        p = FaultPolicy(max_retries=5, timeout_s=1.5, backoff_base=0.01,
                        breaker_threshold=3, breaker_cooldown=4,
                        on_permanent_failure="raise")
        assert FaultPolicy.from_json(p.to_json()) == p
        # Transportable through actual JSON text (spec params, CLI).
        assert FaultPolicy.from_json(json.loads(json.dumps(p.to_json()))) == p

    def test_from_json_ignores_unknown_keys(self):
        payload = FaultPolicy().to_json()
        payload["added_in_a_future_version"] = 42
        assert FaultPolicy.from_json(payload) == FaultPolicy()

    def test_frozen(self):
        with pytest.raises(AttributeError):
            FaultPolicy().max_retries = 7  # type: ignore[misc]

    def test_carried_on_config(self):
        cfg = PPATunerConfig()
        assert cfg.fault_policy == FaultPolicy()
        cfg = PPATunerConfig(fault_policy={"max_retries": 9})
        assert cfg.fault_policy == FaultPolicy(max_retries=9)
        assert PPATunerConfig(fault_policy=None).fault_policy is None


# ----------------------------------------------------------------------
# FaultPlan / FaultInjectingOracle


class TestFaultPlan:
    def test_seeded_reproducible(self):
        a = FaultPlan.seeded(7, 200, rate=0.2)
        b = FaultPlan.seeded(7, 200, rate=0.2)
        assert a == b
        assert a != FaultPlan.seeded(8, 200, rate=0.2)
        assert all(k in FAULT_KINDS for _, ks in a.faults for k in ks)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(faults=((0, ("meteor",)),))

    def test_for_index(self):
        plan = FaultPlan(faults=((3, ("transient", "nan")),))
        assert plan.for_index(3) == ("transient", "nan")
        assert plan.for_index(4) == ()

    def test_transient_kinds_subset(self):
        assert set(TRANSIENT_KINDS) <= set(FAULT_KINDS)


class TestFaultInjectingOracle:
    def test_transient_fires_once(self):
        inner = pool_oracle()
        oracle = FaultInjectingOracle(
            inner, FaultPlan(faults=((2, ("transient",)),))
        )
        with pytest.raises(TransientEvaluationError):
            oracle.evaluate(2)
        np.testing.assert_array_equal(oracle.evaluate(2), inner.Y[2])
        assert oracle.injected["transient"] == 1

    def test_persistent_never_consumed(self):
        oracle = FaultInjectingOracle(
            pool_oracle(), FaultPlan(faults=((1, ("persistent",)),))
        )
        for _ in range(5):
            with pytest.raises(TransientEvaluationError):
                oracle.evaluate(1)
        assert oracle.injected["persistent"] == 5

    def test_nan_and_partial(self):
        inner = pool_oracle(m=3)
        oracle = FaultInjectingOracle(
            inner, FaultPlan(faults=((4, ("nan",)), (5, ("partial",))))
        )
        assert np.isnan(oracle.evaluate(4)).all()
        partial = oracle.evaluate(5)
        assert np.isnan(partial).sum() == 1
        finite = np.isfinite(partial)
        np.testing.assert_array_equal(partial[finite], inner.Y[5][finite])

    def test_reset_rearms(self):
        oracle = FaultInjectingOracle(
            pool_oracle(), FaultPlan(faults=((0, ("transient",)),))
        )
        with pytest.raises(TransientEvaluationError):
            oracle.evaluate(0)
        oracle.evaluate(0)
        oracle.reset()
        assert oracle.n_evaluations == 0
        assert sum(oracle.injected.values()) == 0
        with pytest.raises(TransientEvaluationError):
            oracle.evaluate(0)

    def test_satisfies_oracle_protocol(self):
        oracle = FaultInjectingOracle(pool_oracle(), FaultPlan())
        assert isinstance(oracle, Oracle)
        assert isinstance(ResilientOracle(oracle), Oracle)


# ----------------------------------------------------------------------
# ResilientOracle: retry, backoff, timeout


class TestResilientRetry:
    def test_no_fault_passthrough(self):
        inner = pool_oracle()
        oracle = ResilientOracle(PoolOracle(inner.Y), policy=no_wait())
        np.testing.assert_array_equal(oracle.evaluate(3), inner.Y[3])
        assert oracle.n_retries == 0
        assert oracle.n_failures == 0
        assert oracle.state == "closed"
        assert oracle.n_candidates == inner.n_candidates
        assert oracle.n_objectives == inner.n_objectives
        assert oracle.n_evaluations == 1

    def test_transient_retried_with_accounting(self):
        inner = pool_oracle()
        oracle = ResilientOracle(
            FaultInjectingOracle(
                PoolOracle(inner.Y),
                FaultPlan(faults=((6, ("transient", "transient")),)),
            ),
            policy=no_wait(),
        )
        np.testing.assert_array_equal(oracle.evaluate(6), inner.Y[6])
        assert oracle.n_retries == 2
        assert oracle.n_failures == 0
        assert [(i, a) for i, a, _ in oracle.backoff_log] == [(6, 1), (6, 2)]

    def test_retry_budget_exhausted(self):
        oracle = ResilientOracle(
            FaultInjectingOracle(
                pool_oracle(), FaultPlan(faults=((0, ("persistent",)),))
            ),
            policy=no_wait(max_retries=2),
        )
        with pytest.raises(PermanentEvaluationError) as err:
            oracle.evaluate(0)
        assert err.value.index == 0
        assert err.value.attempts == 3  # first try + 2 retries
        assert oracle.n_failures == 1

    def test_all_nan_vector_retried(self):
        inner = pool_oracle()
        oracle = ResilientOracle(
            FaultInjectingOracle(
                PoolOracle(inner.Y), FaultPlan(faults=((7, ("nan",)),))
            ),
            policy=no_wait(),
        )
        np.testing.assert_array_equal(oracle.evaluate(7), inner.Y[7])
        assert oracle.n_retries == 1

    def test_partial_nan_passes_through(self):
        oracle = ResilientOracle(
            FaultInjectingOracle(
                pool_oracle(m=3), FaultPlan(faults=((8, ("partial",)),))
            ),
            policy=no_wait(),
        )
        value = oracle.evaluate(8)
        assert np.isnan(value).sum() == 1
        assert oracle.n_retries == 0

    def test_non_retryable_propagates(self):
        oracle = ResilientOracle(pool_oracle(), policy=no_wait())
        with pytest.raises(IndexError):
            oracle.evaluate(10_000)
        assert oracle.n_retries == 0

    def test_backoff_schedule_deterministic(self):
        plan = FaultPlan(faults=((5, ("transient",) * 3),))
        policy = FaultPolicy(max_retries=3, backoff_base=0.1)

        def run(seed):
            waits: list[float] = []
            oracle = ResilientOracle(
                FaultInjectingOracle(pool_oracle(), plan),
                policy=policy, seed=seed, sleep=waits.append,
            )
            oracle.evaluate(5)
            return waits, list(oracle.backoff_log)

        waits_a, log_a = run(42)
        waits_b, log_b = run(42)
        assert waits_a == waits_b
        assert log_a == log_b
        waits_c, _ = run(43)
        assert waits_a != waits_c
        # Exponential envelope with jitter in [0.5, 1.0] * base * 2**k.
        for k, wait in enumerate(waits_a):
            base = 0.1 * 2.0 ** k
            assert 0.5 * base <= wait <= base

    def test_zero_backoff_never_sleeps(self):
        calls: list[float] = []
        oracle = ResilientOracle(
            FaultInjectingOracle(
                pool_oracle(), FaultPlan(faults=((1, ("transient",)),))
            ),
            policy=no_wait(), sleep=calls.append,
        )
        oracle.evaluate(1)
        assert calls == []

    def test_timeout_retried_then_permanent(self):
        class SlowOracle:
            n_candidates = 4
            n_objectives = 2
            n_evaluations = 0

            def evaluate(self, index):
                import time
                time.sleep(0.2)
                return np.zeros(2)

            def evaluate_batch(self, indices):
                return np.vstack([self.evaluate(i) for i in indices])

            def reset(self):
                pass

        oracle = ResilientOracle(
            SlowOracle(),
            policy=FaultPolicy(
                max_retries=1, timeout_s=0.02, backoff_base=0.0
            ),
        )
        with pytest.raises(PermanentEvaluationError) as err:
            oracle.evaluate(0)
        assert oracle.n_timeouts == 2
        assert isinstance(err.value.__cause__, EvaluationTimeout)

    def test_latency_without_timeout_just_succeeds(self):
        inner = pool_oracle()
        oracle = ResilientOracle(
            FaultInjectingOracle(
                PoolOracle(inner.Y),
                FaultPlan(faults=((2, ("latency",)),)),
                latency_s=0.001,
            ),
            policy=no_wait(),
        )
        np.testing.assert_array_equal(oracle.evaluate(2), inner.Y[2])
        assert oracle.n_retries == 0

    def test_evaluate_batch_under_faults(self):
        inner = pool_oracle()
        oracle = ResilientOracle(
            FaultInjectingOracle(
                PoolOracle(inner.Y),
                FaultPlan(faults=((1, ("transient",)), (3, ("nan",)))),
            ),
            policy=no_wait(),
        )
        got = oracle.evaluate_batch(np.array([0, 1, 3]))
        np.testing.assert_array_equal(got, inner.Y[[0, 1, 3]])
        assert oracle.n_retries == 2


# ----------------------------------------------------------------------
# ResilientOracle: circuit breaker


class TestCircuitBreaker:
    def make(self, failing=(0, 1, 2, 3), threshold=2, cooldown=3):
        plan = FaultPlan(faults=tuple(
            (i, ("persistent",)) for i in failing
        ))
        return ResilientOracle(
            FaultInjectingOracle(pool_oracle(), plan),
            policy=FaultPolicy(
                max_retries=0, backoff_base=0.0,
                breaker_threshold=threshold, breaker_cooldown=cooldown,
            ),
        )

    def test_trips_after_consecutive_failures(self):
        oracle = self.make()
        for i in (0, 1):
            with pytest.raises(PermanentEvaluationError):
                oracle.evaluate(i)
        assert oracle.state == "open"

    def test_open_fast_fails_without_tool_runs(self):
        oracle = self.make()
        for i in (0, 1):
            with pytest.raises(PermanentEvaluationError):
                oracle.evaluate(i)
        runs_before = oracle.n_evaluations
        with pytest.raises(CircuitOpenError):
            oracle.evaluate(10)
        assert oracle.n_evaluations == runs_before
        assert oracle.n_rejections == 1

    def test_success_probe_closes_after_cooldown(self):
        oracle = self.make(cooldown=3)
        for i in (0, 1):
            with pytest.raises(PermanentEvaluationError):
                oracle.evaluate(i)
        # Two rejections served, third admission half-opens the probe.
        for i in (10, 11):
            with pytest.raises(CircuitOpenError):
                oracle.evaluate(i)
        value = oracle.evaluate(12)  # probe: healthy candidate
        assert value.shape == (2,)
        assert oracle.state == "closed"
        oracle.evaluate(13)  # stays closed

    def test_failed_probe_reopens(self):
        oracle = self.make(failing=(0, 1, 2), cooldown=2)
        for i in (0, 1):
            with pytest.raises(PermanentEvaluationError):
                oracle.evaluate(i)
        with pytest.raises(CircuitOpenError):
            oracle.evaluate(10)
        with pytest.raises(PermanentEvaluationError):
            oracle.evaluate(2)  # probe hits another failing candidate
        assert oracle.state == "open"

    def test_success_resets_consecutive_count(self):
        oracle = self.make(failing=(0, 2), threshold=2)
        with pytest.raises(PermanentEvaluationError):
            oracle.evaluate(0)
        oracle.evaluate(1)  # healthy: resets the streak
        with pytest.raises(PermanentEvaluationError):
            oracle.evaluate(2)
        assert oracle.state == "closed"

    def test_reset_closes_breaker(self):
        oracle = self.make()
        for i in (0, 1):
            with pytest.raises(PermanentEvaluationError):
                oracle.evaluate(i)
        assert oracle.state == "open"
        oracle.reset()
        assert oracle.state == "closed"
        assert oracle.n_evaluations == 0

    def test_breaker_events_recorded(self):
        rec = TraceRecorder()
        oracle = self.make()
        oracle.recorder = rec
        for i in (0, 1):
            with pytest.raises(PermanentEvaluationError):
                oracle.evaluate(i)
        changes = [e for e in rec.events
                   if isinstance(e, CircuitStateChange)]
        assert [(c.old_state, c.new_state) for c in changes] == [
            ("closed", "open")
        ]
        retries = [e for e in rec.events if isinstance(e, EvaluationRetry)]
        assert retries == []  # max_retries=0: failures, not retries


# ----------------------------------------------------------------------
# FlowOracle under injected faults


class TestFlowOracleResilience:
    @pytest.fixture()
    def flow_oracle(self, tiny_flow, tiny_benchmark):
        return FlowOracle(
            tiny_flow, tiny_benchmark.configs[:8], ("power", "delay")
        )

    def test_values_survive_transient_faults(self, tiny_flow,
                                             tiny_benchmark, flow_oracle):
        reference = FlowOracle(
            tiny_flow, tiny_benchmark.configs[:8], ("power", "delay")
        )
        wrapped = ResilientOracle(
            FaultInjectingOracle(
                flow_oracle,
                FaultPlan(faults=((0, ("transient",)), (3, ("nan",)))),
            ),
            policy=no_wait(),
        )
        for i in range(5):
            np.testing.assert_allclose(
                wrapped.evaluate(i), reference.evaluate(i)
            )
        assert wrapped.n_retries == 2
        assert wrapped.n_evaluations == 5

    def test_reset_clears_cache_and_rearms(self, flow_oracle):
        wrapped = ResilientOracle(
            FaultInjectingOracle(
                flow_oracle, FaultPlan(faults=((1, ("transient",)),))
            ),
            policy=no_wait(),
        )
        wrapped.evaluate(1)
        assert wrapped.n_retries == 1
        assert wrapped.n_evaluations == 1
        wrapped.reset()
        assert wrapped.n_evaluations == 0
        wrapped.evaluate(1)  # fault re-armed: retried again
        assert wrapped.n_retries == 2

    def test_evaluate_batch_under_faults(self, tiny_flow, tiny_benchmark,
                                         flow_oracle):
        reference = FlowOracle(
            tiny_flow, tiny_benchmark.configs[:8], ("power", "delay")
        )
        wrapped = ResilientOracle(
            FaultInjectingOracle(
                flow_oracle, FaultPlan(faults=((2, ("transient",)),))
            ),
            policy=no_wait(),
        )
        idx = np.array([0, 2, 4])
        np.testing.assert_allclose(
            wrapped.evaluate_batch(idx), reference.evaluate_batch(idx)
        )


# ----------------------------------------------------------------------
# Tuning loop: quarantine, imputation, bit-identity


def tuned(Y_pool, synthetic_pool, *, plan=None, policy=..., recorder=None,
          iterations=8):
    X, _, Xs, Ys = synthetic_pool
    if policy is ...:
        policy = FaultPolicy(max_retries=1, backoff_base=0.0)
    cfg = PPATunerConfig(
        max_iterations=iterations, seed=3, fault_policy=policy
    )
    oracle = PoolOracle(Y_pool)
    if plan is not None:
        oracle = FaultInjectingOracle(oracle, plan, latency_s=0.0)
    tuner = (PPATuner(cfg) if recorder is None
             else PPATuner(cfg, recorder=recorder))
    init = np.array([3, 10, 20, 30, 40])
    return tuner.tune(
        X, oracle, X_source=Xs, Y_source=Ys, init_indices=init.copy()
    )


class TestTunerUnderFaults:
    def test_transient_faults_bit_identical(self, synthetic_pool):
        _, Y, _, _ = synthetic_pool
        clean = tuned(Y, synthetic_pool)
        plan = FaultPlan.seeded(11, len(Y), rate=0.3, kinds=("transient",))
        assert plan.faults  # non-vacuous
        chaotic = tuned(Y, synthetic_pool, plan=plan)
        assert list(clean.pareto_indices) == list(chaotic.pareto_indices)
        assert list(clean.evaluated_indices) == list(
            chaotic.evaluated_indices
        )
        assert chaotic.n_failed_evaluations == 0
        assert chaotic.quarantined_indices.size == 0

    def test_persistent_faults_quarantined(self, synthetic_pool):
        _, Y, _, _ = synthetic_pool
        plan = FaultPlan(faults=(
            (3, ("persistent",)), (10, ("persistent",)),
        ))
        result = tuned(Y, synthetic_pool, plan=plan)
        assert set(result.quarantined_indices) == {3, 10}
        assert result.n_failed_evaluations >= 2
        assert not set(result.quarantined_indices) & set(
            result.pareto_indices
        )
        assert not set(result.quarantined_indices) & set(
            result.evaluated_indices
        )

    def test_loop_survives_partial_vectors(self, synthetic_pool):
        _, Y, _, _ = synthetic_pool
        plan = FaultPlan(faults=((10, ("partial",)), (20, ("partial",))))
        result = tuned(Y, synthetic_pool, plan=plan)
        assert result.n_evaluations > 5
        assert np.isfinite(result.pareto_points).all()

    def test_on_permanent_failure_raise(self, synthetic_pool):
        _, Y, _, _ = synthetic_pool
        plan = FaultPlan(faults=((3, ("persistent",)),))
        policy = FaultPolicy(
            max_retries=0, backoff_base=0.0, on_permanent_failure="raise"
        )
        with pytest.raises(PermanentEvaluationError):
            tuned(Y, synthetic_pool, plan=plan, policy=policy)

    def test_result_defaults_backward_compatible(self):
        from repro.core.result import TuningResult

        result = TuningResult(
            pareto_indices=np.array([1]),
            pareto_points=np.ones((1, 2)),
            n_evaluations=1,
            n_iterations=1,
        )
        assert result.quarantined_indices.size == 0
        assert result.n_failed_evaluations == 0

    def test_trace_round_trip_under_faults(self, synthetic_pool, tmp_path):
        _, Y, _, _ = synthetic_pool
        path = tmp_path / "faulty.jsonl"
        rec = TraceRecorder(sinks=[JsonlSink(path), MemorySink()])
        plan = FaultPlan(faults=(
            (3, ("persistent",)), (15, ("transient",)),
        ))
        result = tuned(Y, synthetic_pool, plan=plan, recorder=rec)
        rec.close()

        retries = [e for e in rec.events if isinstance(e, EvaluationRetry)]
        quarantines = [e for e in rec.events
                       if isinstance(e, PointQuarantined)]
        assert retries
        assert [q.index for q in quarantines] == [3]

        replay = replay_trace(path)
        replayed = replay.to_result()
        assert list(replayed.quarantined_indices) == list(
            result.quarantined_indices
        )
        assert replayed.n_failed_evaluations == result.n_failed_evaluations
        assert list(replayed.pareto_indices) == list(result.pareto_indices)

        summary = summarize_trace(path)
        assert "reliability:" in summary
        assert "quarantined" in summary
        assert "[3]" in summary


# ----------------------------------------------------------------------
# repro.env


class TestEnvModule:
    def test_workers(self, monkeypatch):
        monkeypatch.delenv("PPATUNER_WORKERS", raising=False)
        assert env.workers(3) == 3
        assert env.workers(0) == 1  # clamped
        assert env.workers() >= 1
        monkeypatch.setenv("PPATUNER_WORKERS", "5")
        assert env.workers() == 5
        assert env.workers(2) == 2  # explicit wins

    def test_cache_dirs(self, monkeypatch, tmp_path):
        monkeypatch.delenv("PPATUNER_CACHE", raising=False)
        monkeypatch.delenv("PPATUNER_RUN_CACHE", raising=False)
        assert env.bench_cache_dir() == env.repo_root() / ".cache" / "benchmarks"
        assert env.run_cache_dir() == env.repo_root() / ".cache" / "runs"
        monkeypatch.setenv("PPATUNER_CACHE", str(tmp_path / "b"))
        monkeypatch.setenv("PPATUNER_RUN_CACHE", str(tmp_path / "r"))
        assert env.bench_cache_dir() == tmp_path / "b"
        assert env.run_cache_dir() == tmp_path / "r"

    def test_trace_dir(self, monkeypatch, tmp_path):
        monkeypatch.delenv("PPATUNER_TRACE_DIR", raising=False)
        assert env.trace_dir() is None
        assert env.default_trace_dir() == env.repo_root() / ".cache" / "traces"
        monkeypatch.setenv("PPATUNER_TRACE_DIR", str(tmp_path))
        assert env.trace_dir() == tmp_path
        assert env.default_trace_dir() == tmp_path

    def test_fault_seed(self, monkeypatch):
        monkeypatch.delenv("PPATUNER_FAULT_SEED", raising=False)
        assert env.fault_seed() is None
        monkeypatch.setenv("PPATUNER_FAULT_SEED", "42")
        assert env.fault_seed() == 42
        monkeypatch.setenv("PPATUNER_FAULT_SEED", "not-a-seed")
        with pytest.raises(ValueError, match="PPATUNER_FAULT_SEED"):
            env.fault_seed()

    def test_full_scale(self, monkeypatch):
        monkeypatch.delenv("PPATUNER_FULL", raising=False)
        assert env.full_scale() is False
        monkeypatch.setenv("PPATUNER_FULL", "1")
        assert env.full_scale() is True

    def test_registry_covers_every_variable(self):
        assert set(env.ENV_VARS) == {
            "PPATUNER_WORKERS", "PPATUNER_CACHE", "PPATUNER_RUN_CACHE",
            "PPATUNER_TRACE_DIR", "PPATUNER_FULL", "PPATUNER_FAULT_SEED",
        }

    def test_call_sites_delegate(self, monkeypatch, tmp_path):
        """The consolidated accessors drive the historical call sites."""
        from repro.bench.generate import cache_workers, full_scale
        from repro.runner.memo import default_memo_dir
        from repro.runner.runner import runner_workers

        monkeypatch.setenv("PPATUNER_WORKERS", "4")
        monkeypatch.setenv("PPATUNER_RUN_CACHE", str(tmp_path / "m"))
        monkeypatch.setenv("PPATUNER_FULL", "true")
        assert cache_workers() == 4
        assert runner_workers() == 4
        assert default_memo_dir() == tmp_path / "m"
        assert full_scale() is True


# ----------------------------------------------------------------------
# Scenario plumbing, CLI flags, public API


class TestPlumbing:
    def test_spec_hash_unchanged_without_policy(self, tiny_benchmark):
        from repro.experiments.scenarios import build_scenario_jobs

        default = build_scenario_jobs(
            tiny_benchmark, tiny_benchmark, "s", "target2",
            methods=("Random",), seed=1,
        )
        with_policy = build_scenario_jobs(
            tiny_benchmark, tiny_benchmark, "s", "target2",
            methods=("Random",), seed=1,
            fault_policy=FaultPolicy(max_retries=7),
        )
        assert default[0].spec.params == ()
        assert with_policy[0].spec.param("fault_policy") is not None
        assert (default[0].spec.spec_hash()
                != with_policy[0].spec.spec_hash())
        decoded = FaultPolicy.from_json(
            json.loads(with_policy[0].spec.param("fault_policy"))
        )
        assert decoded == FaultPolicy(max_retries=7)

    def test_make_method_applies_policy(self):
        from repro.experiments.scenarios import make_method

        tuner = make_method(
            "PPATuner", 30, 100, 0,
            fault_policy=FaultPolicy(max_retries=9),
        )
        assert tuner.config.fault_policy.max_retries == 9
        baseline = make_method(
            "Random", 30, 100, 0, fault_policy=FaultPolicy(max_retries=9)
        )
        assert baseline is not None  # baselines simply ignore it

    def test_cli_flags(self):
        from repro.cli import _fault_policy_from_args, build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["tune", "target2", "--max-retries", "4",
             "--eval-timeout", "1.5"]
        )
        policy = _fault_policy_from_args(args)
        assert policy == FaultPolicy(max_retries=4, timeout_s=1.5)
        args = parser.parse_args(["scenario", "one", "--eval-timeout", "2"])
        policy = _fault_policy_from_args(args)
        assert policy.timeout_s == 2.0
        assert policy.max_retries == FaultPolicy().max_retries
        args = parser.parse_args(["experiments", "all"])
        assert _fault_policy_from_args(args) is None

    def test_top_level_exports(self):
        import repro

        assert repro.FaultPolicy is FaultPolicy
        assert repro.ResilientOracle is ResilientOracle
        assert repro.FaultInjectingOracle is FaultInjectingOracle
        assert repro.FaultPlan is FaultPlan


# ----------------------------------------------------------------------
# Memo round-trip and backward compatibility


class TestMemoCompatibility:
    def make_record(self, quarantined):
        from repro.core.result import TuningResult
        from repro.experiments.scenarios import MethodOutcome
        from repro.runner import RunSpec
        from repro.runner.runner import RunRecord, RunTelemetry

        spec = RunSpec(
            kind="scenario", scenario="memo-compat", method="Random",
            objective_space="power-delay",
            objectives=("power", "delay"), seed=5,
        )
        result = TuningResult(
            pareto_indices=np.array([2, 4]),
            pareto_points=np.ones((2, 2)),
            n_evaluations=9,
            n_iterations=3,
            evaluated_indices=np.array([1, 2, 3, 4]),
            quarantined_indices=np.asarray(quarantined, dtype=int),
            n_failed_evaluations=len(quarantined),
        )
        outcome = MethodOutcome(
            method="Random", objective_space="power-delay",
            hv_error=0.1, adrs=0.2, runs=9, result=result,
        )
        return RunRecord(
            spec=spec, outcome=outcome, telemetry=RunTelemetry()
        )

    def test_round_trip(self, tmp_path):
        from repro.runner import RunMemo

        memo = RunMemo(tmp_path)
        record = self.make_record([7, 8])
        memo.save(record)
        loaded = memo.load(record.spec)
        assert loaded is not None
        got = loaded.outcome.result
        assert list(got.quarantined_indices) == [7, 8]
        assert got.n_failed_evaluations == 2

    def test_pre_reliability_entry_loads(self, tmp_path):
        """Entries written before the reliability fields still load."""
        from repro.runner import RunMemo

        memo = RunMemo(tmp_path)
        record = self.make_record([])
        path = memo.save(record)
        with np.load(path, allow_pickle=False) as data:
            arrays = {
                k: data[k] for k in data.files
                if k not in ("quarantined_indices", "meta")
            }
            meta = json.loads(bytes(data["meta"]).decode("utf-8"))
        meta.pop("n_failed_evaluations")
        arrays["meta"] = np.frombuffer(
            json.dumps(meta, sort_keys=True).encode("utf-8"),
            dtype=np.uint8,
        )
        with open(path, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        loaded = memo.load(record.spec)
        assert loaded is not None
        got = loaded.outcome.result
        assert got.quarantined_indices.size == 0
        assert got.n_failed_evaluations == 0


# ----------------------------------------------------------------------
# Chaos: kill a pool worker mid-cell, resume from the memo


CHAOS_SCRIPT = """
import os
import sys

import numpy as np

import repro.runner.cells as cells
from repro.bench.dataset import BenchmarkDataset
from repro.bench.spaces import SPACES
from repro.experiments.scenarios import build_scenario_jobs
from repro.runner import ExperimentRunner, RunMemo
from repro.space.sampling import latin_hypercube

memo_dir = sys.argv[1]
workers = int(sys.argv[2])
armed = os.environ.get("CHAOS_ARMED") == "1"

_orig = cells._EXECUTORS["scenario"]

def chaotic(spec, source, target, ppa_config, recorder=cells.NULL_RECORDER):
    if armed and spec.objective_space == "area-delay":
        os._exit(13)  # hard kill, mid-cell: no cleanup, no memo write
    return _orig(spec, source, target, ppa_config, recorder)

cells._EXECUTORS["scenario"] = chaotic

space = SPACES["target2"]()
configs = latin_hypercube(space, 40, seed=5)
X = space.encode_many(configs)

def dataset(name, seed):
    Y = np.random.default_rng(seed).random((40, 3)) + 0.5
    return BenchmarkDataset(name, space, configs, X, Y, "small")

jobs = build_scenario_jobs(
    dataset("chaos-src", 1), dataset("chaos-tgt", 2), "chaos", "target2",
    methods=("Random",),
    objective_spaces={
        "power-delay": ("power", "delay"),
        "area-delay": ("area", "delay"),
    },
    seed=9,
)
runner = ExperimentRunner(workers=workers, memo=RunMemo(memo_dir))
records = runner.run(jobs)
for record in records:
    print(f"CELL {record.spec.objective_space} "
          f"memoized={record.telemetry.memoized}")
"""


class TestChaosResume:
    def run_script(self, tmp_path, memo_dir, workers, armed):
        script = tmp_path / "chaos_run.py"
        script.write_text(textwrap.dedent(CHAOS_SCRIPT))
        chaos_env = dict(os.environ)
        chaos_env["PYTHONPATH"] = str(SRC_DIR)
        chaos_env.pop("PPATUNER_TRACE_DIR", None)
        if armed:
            chaos_env["CHAOS_ARMED"] = "1"
        else:
            chaos_env.pop("CHAOS_ARMED", None)
        return subprocess.run(
            [sys.executable, str(script), str(memo_dir), str(workers)],
            capture_output=True, text=True, env=chaos_env, timeout=300,
        )

    def test_worker_kill_then_resume(self, tmp_path):
        from repro.runner import RunMemo

        memo_dir = tmp_path / "memo"
        # Invocation 1: a pool worker is killed mid-cell.  The healthy
        # cell lands in the memo; the killed one leaves nothing behind
        # (the run itself dies with the injected exit code).
        crashed = self.run_script(tmp_path, memo_dir, workers=2,
                                  armed=True)
        assert crashed.returncode == 13, crashed.stderr
        assert len(RunMemo(memo_dir)) == 1

        # Invocation 2: resume.  The finished cell must be served from
        # the memo; only the unfinished cell re-executes.
        resumed = self.run_script(tmp_path, memo_dir, workers=1,
                                  armed=False)
        assert resumed.returncode == 0, resumed.stderr
        lines = sorted(
            line for line in resumed.stdout.splitlines()
            if line.startswith("CELL ")
        )
        assert lines == [
            "CELL area-delay memoized=False",
            "CELL power-delay memoized=True",
        ]
        assert len(RunMemo(memo_dir)) == 2
