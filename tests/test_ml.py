"""Tests for the from-scratch ML substrate (trees, boosting, ALS)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ml import FeatureALS, GradientBoostingRegressor, RegressionTree

rng = np.random.default_rng(0)


class TestRegressionTree:
    def test_fits_step_function_exactly(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_constant_target_single_leaf(self):
        X = rng.uniform(size=(20, 3))
        tree = RegressionTree().fit(X, np.full(20, 2.5))
        assert tree.depth == 0
        assert np.allclose(tree.predict(X), 2.5)

    def test_depth_limit_respected(self):
        X = rng.uniform(size=(200, 2))
        y = rng.normal(size=200)
        tree = RegressionTree(max_depth=3, min_samples_leaf=1).fit(X, y)
        assert tree.depth <= 3

    def test_min_samples_leaf(self):
        X = rng.uniform(size=(10, 1))
        y = rng.normal(size=10)
        tree = RegressionTree(max_depth=10, min_samples_leaf=5).fit(X, y)

        def leaf_sizes(node):
            if node.feature is None:
                return [node.n_samples]
            return leaf_sizes(node.left) + leaf_sizes(node.right)

        assert min(leaf_sizes(tree._root)) >= 5

    def test_importances_identify_relevant_feature(self):
        X = rng.uniform(size=(150, 4))
        y = 5.0 * X[:, 2] + 0.01 * rng.normal(size=150)
        tree = RegressionTree(max_depth=4).fit(X, y)
        assert tree.feature_importances_.argmax() == 2

    def test_importances_sum_to_one(self):
        X = rng.uniform(size=(80, 3))
        y = X[:, 0] + X[:, 1]
        tree = RegressionTree(max_depth=4).fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))

    def test_feature_count_mismatch(self):
        tree = RegressionTree().fit(rng.uniform(size=(10, 3)),
                                    rng.normal(size=10))
        with pytest.raises(ValueError):
            tree.predict(np.zeros((1, 2)))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            RegressionTree().fit(np.empty((0, 2)), np.empty(0))

    def test_reduces_training_error_vs_mean(self):
        X = rng.uniform(size=(100, 2))
        y = np.sin(5 * X[:, 0]) + X[:, 1]
        tree = RegressionTree(max_depth=5).fit(X, y)
        sse_tree = np.sum((tree.predict(X) - y) ** 2)
        sse_mean = np.sum((y - y.mean()) ** 2)
        assert sse_tree < 0.3 * sse_mean


class TestGradientBoosting:
    def test_improves_with_rounds(self):
        X = rng.uniform(size=(120, 3))
        y = np.sin(4 * X[:, 0]) + X[:, 1] ** 2
        model = GradientBoostingRegressor(
            n_estimators=60, seed=0
        ).fit(X, y)
        curve = model.staged_score(X, y)
        assert curve[-1] < curve[0]

    def test_training_fit_quality(self):
        X = rng.uniform(size=(150, 3))
        y = 2 * X[:, 0] - X[:, 1] + 0.5 * X[:, 2]
        model = GradientBoostingRegressor(
            n_estimators=80, seed=0
        ).fit(X, y)
        rmse = np.sqrt(np.mean((model.predict(X) - y) ** 2))
        assert rmse < 0.1 * y.std()

    def test_importances_identify_relevant(self):
        X = rng.uniform(size=(200, 5))
        y = 3.0 * X[:, 4] + 0.05 * rng.normal(size=200)
        model = GradientBoostingRegressor(
            n_estimators=30, seed=0
        ).fit(X, y)
        assert model.feature_importances_.argmax() == 4

    def test_subsample_mode(self):
        X = rng.uniform(size=(100, 2))
        y = X.sum(axis=1)
        model = GradientBoostingRegressor(
            n_estimators=30, subsample=0.6, seed=0
        ).fit(X, y)
        assert np.isfinite(model.predict(X)).all()

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GradientBoostingRegressor(n_estimators=0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValueError):
            GradientBoostingRegressor(subsample=1.5)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GradientBoostingRegressor().predict(np.zeros((1, 2)))

    def test_deterministic_under_seed(self):
        X = rng.uniform(size=(60, 2))
        y = X.sum(axis=1)
        a = GradientBoostingRegressor(n_estimators=20, seed=5).fit(X, y)
        b = GradientBoostingRegressor(n_estimators=20, seed=5).fit(X, y)
        assert np.array_equal(a.predict(X), b.predict(X))


class TestFeatureALS:
    def _toy(self, n=60, d=5, m=3):
        X = rng.uniform(size=(n, d))
        W_true = rng.normal(size=(2, d))
        V_true = rng.normal(size=(m, 2))
        Y = (X @ W_true.T) @ V_true.T
        return X, Y

    def test_recovers_bilinear_structure(self):
        X, Y = self._toy()
        rows = np.repeat(np.arange(40), 3)
        cols = np.tile(np.arange(3), 40)
        model = FeatureALS(rank=3, reg=1e-3, seed=0).fit(
            X, np.column_stack([rows, cols]), Y[rows, cols]
        )
        pred = model.predict_all(X[40:])
        resid = np.abs(pred - Y[40:]).mean()
        assert resid < 0.2 * np.abs(Y).mean()

    def test_partial_observations(self):
        X, Y = self._toy()
        obs = np.array([[i, i % 3] for i in range(50)])
        model = FeatureALS(rank=3, seed=0).fit(
            X, obs, Y[obs[:, 0], obs[:, 1]]
        )
        assert model.predict(X, 0).shape == (60,)

    def test_predict_unknown_metric(self):
        X, Y = self._toy()
        obs = np.array([[0, 0], [1, 1], [2, 2]])
        model = FeatureALS(seed=0).fit(X, obs, Y[[0, 1, 2], [0, 1, 2]])
        with pytest.raises(IndexError):
            model.predict(X, 7)

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            FeatureALS().predict(np.zeros((1, 2)), 0)

    def test_empty_observations_rejected(self):
        with pytest.raises(ValueError):
            FeatureALS().fit(
                np.zeros((3, 2)), np.empty((0, 2)), np.empty(0)
            )

    def test_scale_invariance_of_fit(self):
        X, Y = self._toy()
        rows = np.arange(50)
        cols = rows % 3
        obs = np.column_stack([rows, cols])
        a = FeatureALS(rank=2, seed=0).fit(X, obs, Y[rows, cols])
        b = FeatureALS(rank=2, seed=0).fit(
            X, obs, 100.0 * Y[rows, cols] + 7.0
        )
        pa = a.predict_all(X)
        pb = b.predict_all(X)
        assert np.allclose(pb, 100.0 * pa + 7.0, rtol=0.05,
                           atol=0.5)
