"""Unit + property tests for typed parameters and parameter spaces."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.space import (
    BoolParameter,
    EnumParameter,
    FloatParameter,
    IntParameter,
    ParameterSpace,
)


def small_space() -> ParameterSpace:
    return ParameterSpace((
        FloatParameter("f", 1.0, 3.0),
        IntParameter("i", 2, 9),
        BoolParameter("b"),
        EnumParameter("e", ("lo", "mid", "hi")),
    ))


class TestFloatParameter:
    def test_from_unit_endpoints(self):
        p = FloatParameter("x", 1.0, 3.0)
        assert p.from_unit(0.0) == 1.0
        assert p.from_unit(1.0) == 3.0

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            FloatParameter("x", 3.0, 3.0)

    def test_unit_out_of_range(self):
        with pytest.raises(ValueError):
            FloatParameter("x", 0.0, 1.0).from_unit(1.5)

    def test_feature_roundtrip(self):
        p = FloatParameter("x", 1.0, 3.0)
        assert p.from_feature(p.to_feature(2.2)) == pytest.approx(2.2)

    def test_from_feature_clamps(self):
        p = FloatParameter("x", 1.0, 3.0)
        assert p.from_feature(100.0) == 3.0
        assert p.from_feature(-100.0) == 1.0

    def test_contains(self):
        p = FloatParameter("x", 1.0, 3.0)
        assert p.contains(2.0) and p.contains(1.0)
        assert not p.contains(3.5) and not p.contains("a")

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_from_unit_in_domain(self, u):
        p = FloatParameter("x", -2.0, 5.0)
        assert p.contains(p.from_unit(u))


class TestIntParameter:
    def test_from_unit_covers_all_values(self):
        p = IntParameter("i", 0, 3)
        values = {p.from_unit(u) for u in np.linspace(0, 1, 100)}
        assert values == {0, 1, 2, 3}

    def test_from_feature_rounds(self):
        p = IntParameter("i", 0, 10)
        assert p.from_feature(4.4) == 4
        assert p.from_feature(4.6) == 5

    def test_contains_rejects_bool(self):
        assert not IntParameter("i", 0, 2).contains(True)

    def test_contains_rejects_float(self):
        assert not IntParameter("i", 0, 2).contains(1.0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_from_unit_in_domain(self, u):
        p = IntParameter("i", 3, 17)
        assert p.contains(p.from_unit(u))


class TestBoolParameter:
    def test_from_unit_threshold(self):
        p = BoolParameter("b")
        assert p.from_unit(0.4) is False
        assert p.from_unit(0.6) is True

    def test_feature_mapping(self):
        p = BoolParameter("b")
        assert p.to_feature(True) == 1.0
        assert p.from_feature(0.2) is False

    def test_contains(self):
        p = BoolParameter("b")
        assert p.contains(False)
        assert not p.contains(1)


class TestEnumParameter:
    def test_unit_covers_levels(self):
        p = EnumParameter("e", ("a", "b", "c"))
        values = {p.from_unit(u) for u in np.linspace(0, 1, 100)}
        assert values == {"a", "b", "c"}

    def test_ordinal_feature(self):
        p = EnumParameter("e", ("a", "b", "c"))
        assert p.to_feature("b") == 1.0
        assert p.from_feature(1.9) == "c"

    def test_duplicate_levels_rejected(self):
        with pytest.raises(ValueError):
            EnumParameter("e", ("a", "a"))

    def test_single_level_rejected(self):
        with pytest.raises(ValueError):
            EnumParameter("e", ("a",))

    def test_feature_bounds(self):
        assert EnumParameter("e", ("a", "b", "c")).feature_bounds() == (
            0.0, 2.0,
        )


class TestParameterSpace:
    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ParameterSpace((
                FloatParameter("x", 0, 1), FloatParameter("x", 0, 1),
            ))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace(())

    def test_names_and_dim(self):
        s = small_space()
        assert s.names == ["f", "i", "b", "e"]
        assert s.dim == len(s) == 4

    def test_getitem(self):
        s = small_space()
        assert s["i"].name == "i"
        with pytest.raises(KeyError):
            s["zzz"]

    def test_encode_decode_roundtrip(self):
        s = small_space()
        config = {"f": 2.5, "i": 7, "b": True, "e": "mid"}
        assert s.decode(s.encode(config)) == config

    def test_encode_many_shape(self):
        s = small_space()
        configs = [s.from_unit(np.full(4, u)) for u in (0.1, 0.5, 0.9)]
        assert s.encode_many(configs).shape == (3, 4)

    def test_validate_accepts_good(self):
        s = small_space()
        s.validate({"f": 1.5, "i": 2, "b": False, "e": "lo"})

    def test_validate_missing_key(self):
        s = small_space()
        with pytest.raises(ValueError, match="missing"):
            s.validate({"f": 1.5, "i": 2, "b": False})

    def test_validate_extra_key(self):
        s = small_space()
        with pytest.raises(ValueError, match="extra"):
            s.validate({
                "f": 1.5, "i": 2, "b": False, "e": "lo", "zz": 1,
            })

    def test_validate_out_of_domain(self):
        s = small_space()
        with pytest.raises(ValueError, match="outside"):
            s.validate({"f": 99.0, "i": 2, "b": False, "e": "lo"})

    def test_feature_bounds_shape(self):
        assert small_space().feature_bounds().shape == (4, 2)

    def test_normalize_unit_range(self):
        s = small_space()
        configs = [s.from_unit(np.full(4, u)) for u in np.linspace(0, 1, 9)]
        Xn = s.normalize(s.encode_many(configs))
        assert Xn.min() >= 0.0 and Xn.max() <= 1.0

    def test_decode_wrong_length(self):
        with pytest.raises(ValueError):
            small_space().decode(np.zeros(3))

    @settings(max_examples=30)
    @given(st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=4, max_size=4,
    ))
    def test_from_unit_always_valid(self, units):
        s = small_space()
        config = s.from_unit(np.array(units))
        s.validate(config)

    @settings(max_examples=30)
    @given(st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=4, max_size=4,
    ))
    def test_decode_encode_fixpoint(self, units):
        s = small_space()
        config = s.from_unit(np.array(units))
        features = s.encode(config)
        assert s.decode(features) == config
