#!/usr/bin/env python3
"""Quickstart: tune the PD tool's parameters on one benchmark.

Builds (or loads from cache) the Target2 offline benchmark — the larger
MAC design under the 9-parameter space of paper Table 1 — and runs
PPATuner in the power-delay objective space, reporting the found Pareto
set against the golden one.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import PoolOracle, PPATuner, PPATunerConfig
from repro.bench import generate_benchmark
from repro.experiments import format_benchmark_table
from repro.pareto import adrs, hypervolume_error, pareto_front


def main() -> None:
    # A reduced pool keeps the quickstart under a minute; drop the
    # subsample call to use the paper's full 727-point table.
    target = generate_benchmark("target2").subsample(300, seed=0)
    source = generate_benchmark("source2")

    print("Benchmark statistics (paper Table 1 flavour):")
    print(format_benchmark_table([source.summary(), target.summary()]))
    print()

    names = ("power", "delay")
    oracle = PoolOracle(target.objectives(names))

    # 200 historical source-task runs provide the transfer knowledge.
    rng = np.random.default_rng(0)
    src_idx = rng.choice(source.n, size=200, replace=False)

    tuner = PPATuner(PPATunerConfig(max_iterations=40, seed=0))
    result = tuner.tune(
        target.X,
        oracle,
        X_source=source.X[src_idx],
        Y_source=source.objectives(names)[src_idx],
    )

    golden = target.golden_front(names)
    found = pareto_front(result.pareto_points)

    print(f"Tool runs used:        {result.n_evaluations}")
    print(f"Iterations:            {result.n_iterations}")
    print(f"Stop reason:           {result.stop_reason}")
    print(f"Pareto configs found:  {len(result.pareto_indices)}")
    print(f"Hyper-volume error:    {hypervolume_error(found, golden):.4f}")
    print(f"ADRS:                  {adrs(golden, found):.4f}")
    print(f"Learned task similarity lambda per metric: "
          f"{[round(m.lam, 3) for m in tuner.models_]}")
    print()
    print("Found Pareto frontier (power mW, delay ns):")
    for p, d in found:
        print(f"  {p:8.3f}  {d:8.4f}")
    print("Golden Pareto frontier:")
    for p, d in golden:
        print(f"  {p:8.3f}  {d:8.4f}")

    # The best configurations themselves:
    print()
    print("Example recommended configuration:")
    best = result.pareto_indices[0]
    for key, value in target.configs[best].items():
        print(f"  {key:20s} = {value}")


if __name__ == "__main__":
    main()
