#!/usr/bin/env python3
"""Paper Scenario One (Table 2): same design, different parameter space.

Source1 and Target1 come from the same MAC design; a designer who
re-tunes with a different preference (new frequency range, different
uncertainty budget, wider DRV windows) wants to reuse the 200 historical
runs.  This example runs all five methods over a reduced Target1 pool and
prints the paper-style comparison table.

Run (about 5-10 minutes at the default reduced scale):
    python examples/scenario_one_same_design.py [pool_size]
"""

from __future__ import annotations

import sys
import time

from repro.experiments import format_scenario_table, scenario_one


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    print(f"Running Scenario One at pool scale {scale} "
          f"(paper scale: 5000; pass a size to change)...")
    start = time.time()
    result = scenario_one(scale=scale, seed=0)
    print(f"done in {time.time() - start:.0f}s\n")
    print(format_scenario_table(result))
    print()
    print("Paper Table 2 for reference (HV / ADRS / Runs averages):")
    print("  TCAD'19   0.188 / 0.122 / 508")
    print("  MLCAD'19  0.160 / 0.125 / 400")
    print("  DAC'19    0.195 / 0.147 / 600")
    print("  ASPDAC'20 0.173 / 0.109 / 400")
    print("  PPATuner  0.080 / 0.072 / 252")


if __name__ == "__main__":
    main()
