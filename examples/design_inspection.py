#!/usr/bin/env python3
"""Inspecting the simulated flow like a physical-design engineer would.

Exports the benchmark MAC as structural Verilog, runs the flow at two
effort points, prints the critical-path timing report, and closes with a
parameter-sensitivity table over an offline benchmark — the standard
"what is my tool actually doing" loop.

Run (~1 min):
    python examples/design_inspection.py
"""

from __future__ import annotations

from repro.bench import generate_benchmark
from repro.experiments.sensitivity import analyze_sensitivity
from repro.pdtool import (
    SMALL_MAC,
    PDFlow,
    ToolParameters,
    generate_mac_netlist,
    write_verilog,
)
from repro.pdtool.cts import synthesize_clock_tree
from repro.pdtool.drv import repair_drv
from repro.pdtool.paths import (
    extract_critical_paths,
    format_path_report,
    install_report_context,
)
from repro.pdtool.placement import place
from repro.pdtool.routing import route
from repro.pdtool.sta import analyze_timing


def main() -> None:
    netlist = generate_mac_netlist(SMALL_MAC)
    write_verilog(netlist, "/tmp/mac_small.v")
    print(f"Exported {netlist.n_cells}-cell MAC to /tmp/mac_small.v")
    print(f"Cell mix: {netlist.counts_by_function()}")
    print()

    flow = PDFlow(netlist)
    for effort in ("standard", "extreme"):
        r = flow.run(ToolParameters(flow_effort=effort))
        print(f"flowEffort={effort:<9s} area={r.area:8.1f} um^2  "
              f"power={r.power:6.3f} mW  delay={r.delay:6.4f} ns  "
              f"runtime~{r.runtime_hours:.1f} h")
    print()

    # Manual stage-by-stage run for the timing report.
    params = ToolParameters()
    compiled = flow.compiled
    placed = place(compiled, params)
    routed = route(compiled, placed, params)
    cts = synthesize_clock_tree(compiled, placed, params, flow.library)
    drv = repair_drv(compiled, routed, params, flow.library)
    timing = analyze_timing(
        compiled, drv, cts, params, routed.routed_edge_length
    )
    install_report_context(compiled, timing)
    paths = extract_critical_paths(compiled, timing, n_paths=2)
    print("Critical-path report (2 worst endpoints):")
    report = format_path_report(compiled, paths)
    # Long paths: show head and tail of each.
    for line in report.splitlines()[:12]:
        print(line)
    print(f"    ... ({paths[0].depth} cells on the worst path)")
    print()

    print("Parameter sensitivity on the Source2 benchmark:")
    dataset = generate_benchmark("source2")
    print(analyze_sensitivity(dataset, n_estimators=30).format())


if __name__ == "__main__":
    main()
