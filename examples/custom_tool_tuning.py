#!/usr/bin/env python3
"""Tuning a live tool with a custom parameter space (no offline table).

The benchmark protocol evaluates against precomputed tables, but the
library also drives the simulated PD tool *live* through a
:class:`FlowOracle`: you define the knobs you care about, sample a
candidate pool, and PPATuner invokes the tool only for the configurations
it selects — the workflow you would use against a real EDA tool.

Run (≈ 1 minute):
    python examples/custom_tool_tuning.py
"""

from __future__ import annotations

from repro import FlowOracle, PDFlow, PPATuner, PPATunerConfig
from repro.pareto import pareto_front
from repro.pdtool import SMALL_MAC
from repro.space import (
    EnumParameter,
    FloatParameter,
    IntParameter,
    ParameterSpace,
    latin_hypercube,
)


def main() -> None:
    # 1. Your design and tool.
    flow = PDFlow.for_mac(SMALL_MAC)

    # 2. The knobs you want tuned — any subset of ToolParameters fields.
    space = ParameterSpace((
        FloatParameter("freq", 950.0, 1250.0),
        EnumParameter("flow_effort", ("standard", "express", "extreme")),
        FloatParameter("max_density_util", 0.6, 0.95),
        IntParameter("max_fanout", 20, 48),
        FloatParameter("max_allowed_delay", 0.0, 0.2),
    ))

    # 3. A candidate pool (Latin hypercube over your space).
    configs = latin_hypercube(space, 250, seed=1)
    X_pool = space.encode_many(configs)

    # 4. A live oracle: area vs power here, any QoR fields work.
    oracle = FlowOracle(flow, configs, objective_names=("area", "power"))

    # 5. Tune.  (No source task here — PPATuner degrades gracefully to
    #    single-task Pareto active learning.)
    tuner = PPATuner(PPATunerConfig(max_iterations=30, seed=0))
    result = tuner.tune(X_pool, oracle)

    print(f"Tool invocations: {oracle.n_evaluations} of {len(configs)} "
          f"candidates")
    print(f"Pareto-optimal configurations found: "
          f"{len(result.pareto_indices)}")
    print()
    print("Frontier (area um^2, power mW) and the configs behind it:")
    front = pareto_front(result.pareto_points)
    shown = set()
    for idx in result.pareto_indices:
        qor = oracle.evaluate(int(idx))
        key = tuple(qor)
        if key in shown or not any(
            abs(qor[0] - a) < 1e-9 and abs(qor[1] - p) < 1e-9
            for a, p in front
        ):
            continue
        shown.add(key)
        cfg = configs[idx]
        print(f"  area={qor[0]:8.1f} power={qor[1]:6.3f}  "
              f"freq={cfg['freq']:.0f} effort={cfg['flow_effort']:<8s} "
              f"util={cfg['max_density_util']:.2f} "
              f"fanout={cfg['max_fanout']} "
              f"mad={cfg['max_allowed_delay']:.2f}")


if __name__ == "__main__":
    main()
