#!/usr/bin/env python3
"""Paper Scenario Two (Table 3 + Figure 3): transfer across designs.

Source2 is the smaller MAC; Target2 is the larger one.  Knowledge about
how the 9 shared tool parameters behave moves from the cheap design
(3 h/run in the paper) to the expensive one (2 days/run).  This example
runs the full 727-point Target2 scenario, prints the paper-style table,
and emits the Figure 3 frontier series in power-delay space.

Run (a couple of minutes):
    python examples/scenario_two_similar_designs.py
"""

from __future__ import annotations

import time

from repro.bench import generate_benchmark
from repro.experiments import (
    figure3_frontiers,
    format_scenario_table,
    scenario_two,
)


def main() -> None:
    print("Running Scenario Two on the full 727-point Target2 pool...")
    start = time.time()
    result = scenario_two(scale=None, seed=0)
    print(f"done in {time.time() - start:.0f}s\n")
    print(format_scenario_table(result))

    print()
    print("Figure 3 — Pareto frontiers in power (mW) vs delay (ns):")
    target = generate_benchmark("target2")
    series = figure3_frontiers(result, target)
    for name, pts in series.items():
        print(f"  {name}:")
        for p, d in pts:
            print(f"    {p:8.3f}  {d:8.4f}")


if __name__ == "__main__":
    main()
