#!/usr/bin/env python3
"""Extension: transferring from *multiple* historical tuning tasks.

The paper transfers from one source task; a real tuning archive holds
several.  ``MultiSourceTransferGP`` generalizes the Eq. (7) transfer
kernel to K sources with a learned per-source similarity — useful when
some archives are relevant and some are not, because the model discovers
which is which.

This example models Target2's power from (a) the related Source2 archive
and (b) a deliberately misleading archive (Source2's power negated), and
shows the learned per-source similarities plus the accuracy gain over a
target-only GP.

Run (~30 s):
    python examples/multi_source_transfer.py
"""

from __future__ import annotations

import numpy as np

from repro.bench import generate_benchmark
from repro.gp import GPRegressor, MultiSourceTransferGP


def main() -> None:
    source = generate_benchmark("source2")
    target = generate_benchmark("target2")

    rng = np.random.default_rng(0)

    def normalize(X, lo, span):
        return (X - lo) / span

    stacked = np.vstack([source.X, target.X])
    lo, hi = stacked.min(axis=0), stacked.max(axis=0)
    span = np.where(hi > lo, hi - lo, 1.0)

    src_idx = rng.choice(source.n, 150, replace=False)
    Xs = normalize(source.X[src_idx], lo, span)
    ys_good = source.metric_column("power")[src_idx]
    # A hostile archive: same inputs, anti-correlated responses.
    ys_bad = ys_good.max() + ys_good.min() - ys_good

    tgt_idx = rng.choice(target.n, 25, replace=False)
    Xt = normalize(target.X[tgt_idx], lo, span)
    yt = target.metric_column("power")[tgt_idx]

    holdout = np.setdiff1d(np.arange(target.n), tgt_idx)[:300]
    Xq = normalize(target.X[holdout], lo, span)
    yq = target.metric_column("power")[holdout]

    multi = MultiSourceTransferGP(seed=0).fit(
        [(Xs, ys_good), (Xs, ys_bad)], Xt, yt
    )
    solo = GPRegressor(seed=0).fit(Xt, yt)

    rmse_multi = float(np.sqrt(np.mean((multi.predict(Xq)[0] - yq) ** 2)))
    rmse_solo = float(np.sqrt(np.mean((solo.predict(Xq)[0] - yq) ** 2)))

    lams = multi.lambdas
    print("Learned per-source similarity (lambda):")
    print(f"  related archive (Source2 power):   {lams[0]:+.3f}")
    print(f"  hostile archive (negated power):   {lams[1]:+.3f}")
    print()
    print(f"Hold-out RMSE, multi-source transfer: {rmse_multi:.4f} mW")
    print(f"Hold-out RMSE, target-only GP:        {rmse_solo:.4f} mW")
    print(f"Improvement: {100 * (1 - rmse_multi / rmse_solo):.1f}%")


if __name__ == "__main__":
    main()
