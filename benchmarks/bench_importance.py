"""Knob-importance pruning benchmark: few-shot convergence on a
cross-design transfer scenario.

The scenario is the registry's MAC -> fabric pair: the source archive
is the small MAC evaluated over the fabric knob set (``source3``), the
target pool the structured-ASIC fabric (``fabric1``).  Two PPATuner
arms run identically seeded sessions — one over the full 8-knob fabric
space, one over the FIST-style pruned space (dead knobs dropped by
source-table importance, exactly what ``--prune-space`` does in the
CLI) — under a small tool-run cap, the few-shot regime pruning exists
for.

The gate is the ISSUE's acceptance criterion: at the hyper-volume error
the full-space arms end at (mean over repeats), the pruned-space arms
must get there in >= 1.3x fewer tool runs.

Usage:
    pytest benchmarks/bench_importance.py          # via pytest-benchmark
    PYTHONPATH=src python benchmarks/bench_importance.py --smoke

``--smoke`` is the CI tier: one fewer repeat, same pools and the same
>= 1.3x tool-run gate.  Both tiers are fully deterministic — seeded
tables, seeded sessions, a table-lookup oracle — so a pass is exact,
not statistical.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.bench import generate_benchmark
from repro.core import PPATunerConfig, PoolOracle, TuningSession
from repro.ml import prune_space
from repro.pareto import hypervolume_error, pareto_front

#: Tool-run advantage the pruned-space arm must deliver (ISSUE gate).
MIN_RUN_RATIO = 1.3

#: Cross-design pair and objective space under test.
SOURCE, TARGET = "source3", "fabric1"
OBJECTIVES = ("power", "delay")


#: Importance cutoff for the pruned arm (drops the four dead fabric
#: knobs on the 300-point source table; see ``repro importance``).
PRUNE_THRESHOLD = 0.08


def _make_problem(n_source: int, n_pool: int):
    """Source/target tables plus the pruned view of both."""
    source = generate_benchmark(SOURCE, n_points=n_source, cache=False)
    target = generate_benchmark(TARGET, n_points=n_pool, cache=False)
    Y_src = source.objectives(OBJECTIVES)
    Y_tgt = target.objectives(OBJECTIVES)
    pruned = prune_space(
        target.space, source.X, source.Y,
        threshold=PRUNE_THRESHOLD, seed=0,
    )
    return {
        "full": (source.X, Y_src, target.X, Y_tgt),
        "pruned": (
            pruned.slice(source.X), Y_src,
            pruned.slice(target.X), Y_tgt,
        ),
        "golden": pareto_front(Y_tgt),
        "dropped": list(pruned.dropped),
    }


def run_arm(
    X_src: np.ndarray,
    Y_src: np.ndarray,
    X_tgt: np.ndarray,
    Y_tgt: np.ndarray,
    golden: np.ndarray,
    seed: int,
    budget: int,
) -> list[float]:
    """Drive one capped ask/tell session; best-so-far HV error per run."""
    cfg = PPATunerConfig(
        max_iterations=60, seed=seed, init_fraction=0.04,
    )
    session = TuningSession(
        cfg, X_tgt, Y_tgt.shape[1], sources=[(X_src, Y_src)]
    )
    oracle = PoolOracle(Y_tgt)
    rows: list[np.ndarray] = []
    curve: list[float] = []
    done = False
    while not done:
        pending = session.ask()
        if not pending:
            break
        for idx in pending:
            row = oracle.evaluate(int(idx))
            rows.append(np.asarray(row))
            session.tell(
                int(idx), row, n_evaluations=oracle.n_evaluations
            )
            curve.append(
                float(hypervolume_error(
                    pareto_front(np.vstack(rows)), golden
                ))
            )
            if len(curve) >= budget:
                done = True
                break
    return curve


def _runs_to(curve: list[float], target: float) -> int | None:
    for i, err in enumerate(curve):
        if err <= target + 1e-12:
            return i + 1
    return None


def compare(*, n_source: int, n_pool: int, budget: int, repeats: int):
    problem = _make_problem(n_source, n_pool)
    golden = problem["golden"]
    full_curves = [
        run_arm(*problem["full"], golden, seed, budget)
        for seed in range(repeats)
    ]
    pruned_curves = [
        run_arm(*problem["pruned"], golden, seed, budget)
        for seed in range(repeats)
    ]
    # Tool runs to the HV error the full-space arms end at (mean final
    # over the repeats); an arm that never reaches it is charged the
    # full budget.
    target = float(np.mean([c[-1] for c in full_curves]))
    runs_full = [_runs_to(c, target) or budget for c in full_curves]
    runs_pruned = [_runs_to(c, target) or budget for c in pruned_curves]
    return {
        "n_source": n_source,
        "n_pool": n_pool,
        "budget": budget,
        "repeats": repeats,
        "pruned_knobs": problem["dropped"],
        "target_hv_error": target,
        "runs_full": runs_full,
        "runs_pruned": runs_pruned,
        "run_ratio": float(np.mean(runs_full) / np.mean(runs_pruned)),
        "hv_final_full": [float(c[-1]) for c in full_curves],
        "hv_final_pruned": [float(c[-1]) for c in pruned_curves],
        "hv_curves_full": [[float(e) for e in c] for c in full_curves],
        "hv_curves_pruned": [
            [float(e) for e in c] for c in pruned_curves
        ],
    }


def _report(tag: str, res: dict) -> None:
    print(f"\n=== Knob-importance pruning ({tag}) ===")
    print(f"pools   : {res['n_source']} source / {res['n_pool']} target, "
          f"budget {res['budget']} tool runs x {res['repeats']} repeats")
    print(f"pruned  : dropped {', '.join(res['pruned_knobs'])}")
    print(f"full    : runs-to-target {res['runs_full']}, "
          f"final hv_error "
          f"{[round(e, 4) for e in res['hv_final_full']]}")
    print(f"pruned  : runs-to-target {res['runs_pruned']}, "
          f"final hv_error "
          f"{[round(e, 4) for e in res['hv_final_pruned']]}")
    print(f"tool-run ratio : {res['run_ratio']:.2f}x "
          f"(target hv_error={res['target_hv_error']:.4f})")


FULL = dict(n_source=300, n_pool=220, budget=30, repeats=5)
SMOKE = dict(n_source=300, n_pool=220, budget=30, repeats=4)


def test_pruned_space_reaches_target_faster(benchmark):
    res = benchmark.pedantic(
        lambda: compare(**FULL), rounds=1, iterations=1, warmup_rounds=0
    )
    _report("full", res)
    assert res["run_ratio"] >= MIN_RUN_RATIO


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced repeats for CI (same >= 1.3x tool-run gate)",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=MIN_RUN_RATIO,
        help="override the required tool-run ratio",
    )
    args = parser.parse_args()
    from _util import write_bench_json

    params = SMOKE if args.smoke else FULL
    res = compare(**params)
    _report("smoke" if args.smoke else "full", res)
    passed = res["run_ratio"] >= args.min_ratio
    payload = {k: v for k, v in res.items()
               if not k.startswith("hv_curves")}
    write_bench_json(
        "importance",
        {"gate": args.min_ratio, "passed": passed, **payload,
         "hv_curves_full": res["hv_curves_full"],
         "hv_curves_pruned": res["hv_curves_pruned"]},
    )
    if not passed:
        print(f"FAIL: tool-run ratio {res['run_ratio']:.2f}x < "
              f"required {args.min_ratio}x")
        return 1
    print(f"OK: the pruned space reaches the full-space arms' final "
          f"hv_error in {res['run_ratio']:.2f}x fewer tool runs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
