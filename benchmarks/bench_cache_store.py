"""Benchmark the crash-safe cache store hot paths.

Measures the verified load (zip check + SHA-256 + decompress) of a
paper-sized 5000-point table, the atomic save, and a full
``verify`` sweep — the costs every ``tune``/``generate`` run pays at
startup.  Run with ``pytest benchmarks/bench_cache_store.py
--benchmark-only -s``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.store import BenchmarkStore

#: Paper-scale table shape (source1/target1: 5000 x 12 features, 3 QoR).
_N, _D = 5000, 12


@pytest.fixture()
def store(tmp_path):
    return BenchmarkStore(tmp_path)


@pytest.fixture()
def arrays():
    rng = np.random.default_rng(0)
    return {
        "X": rng.uniform(size=(_N, _D)),
        "Y": rng.uniform(0.5, 2.0, size=(_N, 3)),
    }


def test_atomic_save(benchmark, store, arrays):
    benchmark(store.save, "bench-reduced-n5000-v1.npz", arrays)


def test_verified_load(benchmark, store, arrays):
    store.save("bench-reduced-n5000-v1.npz", arrays)
    out = benchmark(
        store.load, "bench-reduced-n5000-v1.npz", ("X", "Y")
    )
    assert np.array_equal(out["X"], arrays["X"])


def test_verify_sweep(benchmark, store, arrays):
    for i in range(4):
        store.save(f"bench{i}-reduced-n5000-v1.npz", arrays)
    reports = benchmark(store.verify)
    assert all(r.status == "ok" for r in reports)
