"""Paper Table 3: Scenario Two (similar designs), Source2 -> Target2.

Runs all five methods on the full 727-point Target2 pool (the paper's
size) across the three objective spaces.

Expected shape (paper): PPATuner uses the fewest tool runs (62 vs
70-131) while attaining the best average HV error and ADRS; our
reproduction preserves the run advantage and keeps PPATuner within the
leading group on quality (see EXPERIMENTS.md for the measured gap
discussion).
"""

from __future__ import annotations

from repro.experiments import format_scenario_table, scenario_two

from _util import bench_workers, run_once


def test_table3_scenario_two(benchmark):
    result = run_once(
        benchmark,
        lambda: scenario_two(scale=None, seed=0, workers=bench_workers()),
    )

    print(f"\n=== Table 3: Scenario Two (pool={result.pool_size}) ===")
    print(format_scenario_table(result))
    print("\nPaper averages: TCAD'19 0.108/0.092/92, "
          "MLCAD'19 0.120/0.091/70, DAC'19 0.122/0.091/131, "
          "ASPDAC'20 0.125/0.107/70, PPATuner 0.050/0.047/62")

    avgs = result.averages()
    ours = avgs["PPATuner"]
    # PPATuner must consume the fewest tool runs, as in the paper.
    assert ours[2] <= min(a[2] for a in avgs.values()) + 1
    # And stay within the leading group on quality.
    assert ours[0] <= 2.5 * min(a[0] for a in avgs.values())
