"""Observability overhead gate: tracing must cost <= 5% wall time.

Runs the identical PPATuner loop (same pool, same seed, same
iterations) twice per round — once with the null recorder, once with a
live ``TraceRecorder`` writing a JSONL sink — and bounds the overhead
with two estimators that only ever over-state it under noise: the
ratio of best-of-N wall times (both arms share the same GP-math floor,
so the minimum strips scheduler noise) and the median of per-round
back-to-back overheads (each pair sees near-identical machine load, so
the median strips slow drift).  The gate takes the smaller of the two.

Each traced round is also verified for correctness: the JSONL file must
replay to the exact ``IterationRecord`` history and final Pareto set of
the live result, so the gate cannot pass by silently dropping events.

Usage:
    pytest benchmarks/bench_obs.py                # via pytest-benchmark
    PYTHONPATH=src python benchmarks/bench_obs.py --smoke
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

import numpy as np

from repro.core import PoolOracle, PPATuner, PPATunerConfig
from repro.obs import (
    JsonlSink,
    TraceRecorder,
    records_equal,
    replay_trace,
)

FULL = dict(n_pool=200, iters=35, rounds=7)
SMOKE = dict(n_pool=120, iters=20, rounds=4)

#: Maximum tracing-enabled overhead (fraction of null-recorder time).
MAX_OVERHEAD = 0.05


def make_pool(n_pool: int, seed: int = 0):
    """Deterministic synthetic bi-objective pool with a real trade-off."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n_pool, 4))
    f1 = X[:, 0] + 0.5 * X[:, 1] ** 2 + 0.05 * rng.normal(size=n_pool)
    f2 = (1 - X[:, 0]) + 0.5 * X[:, 2] ** 2 + 0.05 * rng.normal(
        size=n_pool
    )
    Y = np.column_stack([f1, f2])
    Xs = rng.uniform(size=(80, 4))
    Ys = np.column_stack([
        Xs[:, 0] + 0.5 * Xs[:, 1] ** 2,
        (1 - Xs[:, 0]) + 0.5 * Xs[:, 2] ** 2,
    ])
    return X, Y, Xs, Ys


def run_tune(n_pool: int, iters: int, recorder=None):
    """One tuning run; returns (elapsed_seconds, result)."""
    X, Y, Xs, Ys = make_pool(n_pool)
    config = PPATunerConfig(max_iterations=iters, seed=7)
    tuner = (
        PPATuner(config) if recorder is None
        else PPATuner(config, recorder=recorder)
    )
    oracle = PoolOracle(Y)
    start = time.perf_counter()
    result = tuner.tune(X, oracle, X_source=Xs, Y_source=Ys)
    return time.perf_counter() - start, result


def compare(*, n_pool: int, iters: int, rounds: int) -> dict:
    """Paired timing, null recorder vs JSONL tracing, with a
    replay-correctness check on every traced round."""
    t_null: list[float] = []
    t_traced: list[float] = []
    n_events = 0
    run_tune(n_pool, iters)  # warmup: imports, numpy caches
    with tempfile.TemporaryDirectory() as tmp:
        for r in range(rounds):
            # Alternate arm order so drift hits both arms equally.
            arms = ("null", "traced") if r % 2 == 0 else ("traced", "null")
            for arm in arms:
                if arm == "null":
                    elapsed, _ = run_tune(n_pool, iters)
                    t_null.append(elapsed)
                    continue
                path = os.path.join(tmp, f"round-{r}.jsonl")
                recorder = TraceRecorder(sinks=[JsonlSink(path)])
                elapsed, result = run_tune(n_pool, iters, recorder)
                recorder.close()
                t_traced.append(elapsed)
                n_events = recorder.n_emitted
                replay = replay_trace(path)
                assert records_equal(replay.history, result.history), (
                    "trace does not replay the live history"
                )
                assert list(replay.pareto_indices) == [
                    int(i) for i in result.pareto_indices
                ], "trace does not replay the final Pareto set"
    best_null = min(t_null)
    best_traced = min(t_traced)
    best_of = (best_traced - best_null) / best_null
    pair_overheads = sorted(
        (tr - nu) / nu for tr, nu in zip(t_traced, t_null)
    )
    paired_median = pair_overheads[len(pair_overheads) // 2]
    return {
        "rounds": rounds,
        "n_events": n_events,
        "best_null": best_null,
        "best_traced": best_traced,
        "best_of": best_of,
        "paired_median": paired_median,
        "overhead": min(best_of, paired_median),
    }


def _report(tag: str, res: dict) -> None:
    print(f"\n=== Observability overhead ({tag}) ===")
    print(f"null recorder : {res['best_null']:8.3f} s (best of "
          f"{res['rounds']})")
    print(f"jsonl tracing : {res['best_traced']:8.3f} s "
          f"({res['n_events']} events)")
    print(f"overhead      : {res['overhead'] * 100:8.2f} %  "
          f"(best-of {res['best_of'] * 100:.2f}%, paired median "
          f"{res['paired_median'] * 100:.2f}%; gate: <= "
          f"{MAX_OVERHEAD * 100:.0f}%, replay verified)")


def test_tracing_overhead(benchmark):
    res = benchmark.pedantic(
        lambda: compare(**FULL), rounds=1, iterations=1, warmup_rounds=0
    )
    _report("full", res)
    assert res["overhead"] <= MAX_OVERHEAD


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced pool for CI (same gate)",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=MAX_OVERHEAD,
        help="override the overhead gate (fraction, default 0.05)",
    )
    args = parser.parse_args()
    from _util import write_bench_json

    params = SMOKE if args.smoke else FULL
    res = compare(**params)
    _report("smoke" if args.smoke else "full", res)
    passed = res["overhead"] <= args.max_overhead
    write_bench_json(
        "obs", {"gate": args.max_overhead, "passed": passed, **res}
    )
    if not passed:
        print(f"FAIL: tracing overhead {res['overhead'] * 100:.2f}% > "
              f"{args.max_overhead * 100:.0f}%")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
