"""Calibration/selection hot-path benchmark: fast paths vs pre-PR baseline.

Runs the same tuning loop twice on identical data and seeds — once with
every fast path enabled (incremental border updates, shared Cholesky
factor across the per-metric GPs, blocked vectorized decision pass) and
once forcing the full pre-PR baseline (from-scratch refits, independent
per-GP factorizations, the retained ``decision_backend="reference"``
pass) — and reports the wall-time ratio.  Trajectory equality is
asserted on every run: the speedup must come for free.

Usage:
    pytest benchmarks/bench_calibration.py            # via pytest-benchmark
    PYTHONPATH=src python benchmarks/bench_calibration.py --smoke
    PYTHONPATH=src python benchmarks/bench_calibration.py --smoke --large-pool

The ``--smoke`` mode is the CI gate: a reduced problem that still
requires the fast path to win by a configurable factor (>=1.5x in CI,
where timer noise on shared runners makes the local >=3x unreliable).
``--large-pool`` adds the pool>=50k tier where the blocked float32
prediction caches and whole-pool vectorized decisions matter; its gate
stays at >=3x — at that scale the win is structural (cached vs rebuilt
cross-covariance), not timer-limited.  Hyperparameter re-optimization
is disabled (``reopt_every=0``) so the measurement isolates calibration
cost — with re-optimization on a cadence both arms pay the same
optimizer bill and the ratio only shrinks toward it.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import PoolOracle, PPATuner, PPATunerConfig

#: Every fast path on (the library defaults, minus the float32 opt-in
#: which the large tier adds explicitly).
FAST = dict(
    incremental=True,
    shared_factor=True,
    decision_backend="vectorized",
)

#: The full pre-PR configuration: from-scratch refits, independent
#: per-metric factorizations, unblocked float64 pool caches and the
#: retained reference decision pass.
BASELINE = dict(
    incremental=False,
    shared_factor=False,
    decision_backend="reference",
    float32_pool=False,
    pool_block=0,
)


def _make_problem(n_pool: int, n_source: int, d: int, seed: int):
    """Synthetic bi-objective pool with a transferable source archive."""
    rng = np.random.default_rng(seed)
    X_pool = rng.uniform(size=(n_pool, d))
    X_src = rng.uniform(size=(n_source, d))

    def qor(X, shift):
        f1 = np.sum((X - 0.3 - shift) ** 2, axis=1)
        f2 = np.sum((X - 0.7 + shift) ** 2, axis=1)
        noise = 0.01 * rng.normal(size=(len(X), 2))
        return np.column_stack([f1, f2]) + noise

    return X_pool, qor(X_pool, 0.0), X_src, qor(X_src, 0.05)


def _run(arm: dict, *, n_pool: int, n_source: int, d: int,
         max_iterations: int, seed: int = 0, **cfg_extra):
    X_pool, Y_pool, X_src, Y_src = _make_problem(n_pool, n_source, d, seed)
    cfg = PPATunerConfig(
        max_iterations=max_iterations,
        batch_size=1,
        seed=seed,
        reopt_every=0,
        n_restarts=0,
        **{**cfg_extra, **arm},
    )
    tuner = PPATuner(cfg)
    start = time.perf_counter()
    result = tuner.tune(X_pool, PoolOracle(Y_pool), X_src, Y_src)
    elapsed = time.perf_counter() - start
    return elapsed, result, tuner.calibration_.stats


def compare(*, n_pool: int, n_source: int, d: int, max_iterations: int,
            seed: int = 0, fast_extra: dict | None = None,
            **cfg_extra) -> dict:
    fast_arm = {**FAST, **(fast_extra or {})}
    t_fast, r_fast, stats = _run(
        fast_arm, n_pool=n_pool, n_source=n_source, d=d,
        max_iterations=max_iterations, seed=seed, **cfg_extra,
    )
    t_slow, r_slow, _ = _run(
        BASELINE, n_pool=n_pool, n_source=n_source, d=d,
        max_iterations=max_iterations, seed=seed, **cfg_extra,
    )
    # Equivalence is part of the benchmark contract, not a separate test.
    np.testing.assert_array_equal(
        r_fast.evaluated_indices, r_slow.evaluated_indices
    )
    np.testing.assert_array_equal(
        r_fast.pareto_indices, r_slow.pareto_indices
    )
    assert [h.selected for h in r_fast.history] == [
        h.selected for h in r_slow.history
    ]
    return {
        "t_fast": t_fast,
        "t_baseline": t_slow,
        "speedup": t_slow / t_fast,
        "n_incremental": stats.n_incremental,
        "n_shared_fits": stats.n_shared_fits,
        "n_shared_updates": stats.n_shared_updates,
        "n_fallbacks": stats.n_fallbacks,
        "n_iterations": r_fast.n_iterations,
        "n_evaluations": r_fast.n_evaluations,
    }


def _report(tag: str, res: dict) -> None:
    print(f"\n=== Calibration engine ({tag}) ===")
    print(f"pre-PR baseline : {res['t_baseline']:8.3f} s")
    print(f"fast paths      : {res['t_fast']:8.3f} s")
    print(f"speedup         : {res['speedup']:8.2f}x  "
          f"({res['n_incremental']} incremental updates, "
          f"{res['n_shared_fits']} shared fits, "
          f"{res['n_shared_updates']} shared updates, "
          f"{res['n_fallbacks']} fallbacks, "
          f"{res['n_iterations']} iterations, "
          f"{res['n_evaluations']} tool runs)")


FULL = dict(n_pool=240, n_source=320, d=6, max_iterations=60)
SMOKE = dict(n_pool=120, n_source=160, d=4, max_iterations=25)

#: The pool>=50k tier of the ISSUE: blocked float32 prediction caches
#: plus the shared factor against the pre-PR unblocked float64 rebuild.
#: ``init_fraction`` is tiny so ``min_init`` governs — the default 2%
#: would spend 1000 tool runs on initialization alone.
LARGE = dict(n_pool=50_000, n_source=200, d=6, max_iterations=8)
LARGE_EXTRA = dict(init_fraction=1e-4, min_init=5)
LARGE_FAST = dict(float32_pool=True)


def test_incremental_speedup(benchmark):
    res = benchmark.pedantic(
        lambda: compare(**FULL), rounds=1, iterations=1, warmup_rounds=0
    )
    _report("pool=240", res)
    # ISSUE acceptance: >=3x at pool >= 200 with identical trajectories.
    assert res["speedup"] >= 3.0


def test_large_pool_speedup(benchmark):
    res = benchmark.pedantic(
        lambda: compare(**LARGE, fast_extra=LARGE_FAST, **LARGE_EXTRA),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    _report("pool=50k", res)
    # ISSUE acceptance: >=3x on the large-pool tier, identical indices.
    assert res["speedup"] >= 3.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced problem with a relaxed (noise-tolerant) gate",
    )
    parser.add_argument(
        "--large-pool", action="store_true",
        help="also run the pool>=50k tier (gate >=3x regardless of "
             "--smoke: the win there is structural, not timer-limited)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="override the required speedup factor of the standard tier",
    )
    args = parser.parse_args()
    from _util import write_bench_json

    params = SMOKE if args.smoke else FULL
    gate = args.min_speedup if args.min_speedup is not None else (
        1.5 if args.smoke else 3.0
    )
    res = compare(**params)
    _report("smoke" if args.smoke else f"pool={params['n_pool']}", res)
    artifact = {
        "gate": gate,
        "standard": res,
        "passed": True,
    }
    failed = False
    if res["speedup"] < gate:
        print(f"FAIL: speedup {res['speedup']:.2f}x < required {gate}x")
        failed = True
    else:
        print(f"OK: speedup {res['speedup']:.2f}x >= {gate}x, "
              "trajectories identical")
    if args.large_pool:
        res = compare(**LARGE, fast_extra=LARGE_FAST, **LARGE_EXTRA)
        _report("pool=50k", res)
        artifact["large_pool"] = res
        if res["speedup"] < 3.0:
            print(f"FAIL: large-pool speedup {res['speedup']:.2f}x < 3x")
            failed = True
        else:
            print(f"OK: large-pool speedup {res['speedup']:.2f}x >= 3x, "
                  "trajectories identical")
    artifact["passed"] = not failed
    write_bench_json("calibration", artifact)
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
