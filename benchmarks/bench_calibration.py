"""Calibration-engine benchmark: incremental fast path vs from-scratch.

Runs the same tuning loop twice — once with the incremental engine
(rank-1 border updates + cached pool cross-covariance) and once forcing
a from-scratch refit every iteration — on identical data and seeds, and
reports the wall-time ratio.  Trajectory equality is asserted on every
run: the speedup must come for free.

Usage:
    pytest benchmarks/bench_calibration.py            # via pytest-benchmark
    PYTHONPATH=src python benchmarks/bench_calibration.py --smoke

The ``--smoke`` mode is the CI gate: a reduced problem that still
requires the fast path to win by a configurable factor (>=1.5x in CI,
where timer noise on shared runners makes the local >=3x unreliable).
Hyperparameter re-optimization is disabled (``reopt_every=0``) so the
measurement isolates calibration cost — with re-optimization on a
cadence both arms pay the same optimizer bill and the ratio only
shrinks toward it.
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import PoolOracle, PPATuner, PPATunerConfig


def _make_problem(n_pool: int, n_source: int, d: int, seed: int):
    """Synthetic bi-objective pool with a transferable source archive."""
    rng = np.random.default_rng(seed)
    X_pool = rng.uniform(size=(n_pool, d))
    X_src = rng.uniform(size=(n_source, d))

    def qor(X, shift):
        f1 = np.sum((X - 0.3 - shift) ** 2, axis=1)
        f2 = np.sum((X - 0.7 + shift) ** 2, axis=1)
        noise = 0.01 * rng.normal(size=(len(X), 2))
        return np.column_stack([f1, f2]) + noise

    return X_pool, qor(X_pool, 0.0), X_src, qor(X_src, 0.05)


def _run(incremental: bool, *, n_pool: int, n_source: int, d: int,
         max_iterations: int, seed: int = 0):
    X_pool, Y_pool, X_src, Y_src = _make_problem(n_pool, n_source, d, seed)
    cfg = PPATunerConfig(
        max_iterations=max_iterations,
        batch_size=1,
        seed=seed,
        incremental=incremental,
        reopt_every=0,
        n_restarts=0,
    )
    tuner = PPATuner(cfg)
    start = time.perf_counter()
    result = tuner.tune(X_pool, PoolOracle(Y_pool), X_src, Y_src)
    elapsed = time.perf_counter() - start
    return elapsed, result, tuner.calibration_.stats


def compare(*, n_pool: int, n_source: int, d: int, max_iterations: int,
            seed: int = 0) -> dict:
    t_fast, r_fast, stats = _run(
        True, n_pool=n_pool, n_source=n_source, d=d,
        max_iterations=max_iterations, seed=seed,
    )
    t_slow, r_slow, _ = _run(
        False, n_pool=n_pool, n_source=n_source, d=d,
        max_iterations=max_iterations, seed=seed,
    )
    # Equivalence is part of the benchmark contract, not a separate test.
    np.testing.assert_array_equal(
        r_fast.evaluated_indices, r_slow.evaluated_indices
    )
    np.testing.assert_array_equal(
        r_fast.pareto_indices, r_slow.pareto_indices
    )
    assert [h.selected for h in r_fast.history] == [
        h.selected for h in r_slow.history
    ]
    return {
        "t_incremental": t_fast,
        "t_scratch": t_slow,
        "speedup": t_slow / t_fast,
        "n_incremental": stats.n_incremental,
        "n_fallbacks": stats.n_fallbacks,
        "n_iterations": r_fast.n_iterations,
        "n_evaluations": r_fast.n_evaluations,
    }


def _report(tag: str, res: dict) -> None:
    print(f"\n=== Calibration engine ({tag}) ===")
    print(f"from-scratch : {res['t_scratch']:8.3f} s")
    print(f"incremental  : {res['t_incremental']:8.3f} s")
    print(f"speedup      : {res['speedup']:8.2f}x  "
          f"({res['n_incremental']} incremental updates, "
          f"{res['n_fallbacks']} fallbacks, "
          f"{res['n_iterations']} iterations, "
          f"{res['n_evaluations']} tool runs)")


FULL = dict(n_pool=240, n_source=320, d=6, max_iterations=60)
SMOKE = dict(n_pool=120, n_source=160, d=4, max_iterations=25)


def test_incremental_speedup(benchmark):
    res = benchmark.pedantic(
        lambda: compare(**FULL), rounds=1, iterations=1, warmup_rounds=0
    )
    _report("pool=240", res)
    # ISSUE acceptance: >=3x at pool >= 200 with identical trajectories.
    assert res["speedup"] >= 3.0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced problem with a relaxed (noise-tolerant) gate",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="override the required speedup factor",
    )
    args = parser.parse_args()
    params = SMOKE if args.smoke else FULL
    gate = args.min_speedup if args.min_speedup is not None else (
        1.5 if args.smoke else 3.0
    )
    res = compare(**params)
    _report("smoke" if args.smoke else f"pool={params['n_pool']}", res)
    if res["speedup"] < gate:
        print(f"FAIL: speedup {res['speedup']:.2f}x < required {gate}x")
        return 1
    print(f"OK: speedup {res['speedup']:.2f}x >= {gate}x, "
          "trajectories identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
