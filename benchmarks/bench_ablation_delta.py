"""Ablation: the δ relaxation (Eq. (11)-(12) precision controller).

δ trades final-front precision against tool runs: a loose δ decides
quickly (few runs, coarser front), a tight δ keeps sampling.  This bench
sweeps δ_rel on Target2 power-delay and prints the trade-off curve.
"""

from __future__ import annotations

from repro.core import PPATunerConfig

from _util import bench_workers, ppatuner_outcomes, run_once, tune_job

DELTAS = (0.002, 0.01, 0.03, 0.08)


def test_ablation_delta_sweep(benchmark):
    names = ("power", "delay")

    def sweep():
        jobs = [
            tune_job(
                "target2", "source2", names,
                PPATunerConfig(max_iterations=50, seed=0, delta_rel=dr),
            )
            for dr in DELTAS
        ]
        outs = ppatuner_outcomes(jobs, workers=bench_workers())
        return dict(zip(DELTAS, outs))

    rows = run_once(benchmark, sweep)

    print("\n=== Ablation: delta_rel sweep (Target2 power-delay) ===")
    print(f"{'delta_rel':>10} {'HV':>8} {'ADRS':>8} {'Runs':>8}")
    for dr, o in rows.items():
        print(f"{dr:>10} {o.hv_error:8.3f} {o.adrs:8.3f} {o.runs:8d}")

    # The loosest delta must not use more runs than the tightest.
    assert rows[DELTAS[-1]].runs <= rows[DELTAS[0]].runs + 5
