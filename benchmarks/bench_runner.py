"""Experiment-runner benchmark: fan-out speedup, identity, resume.

Runs a reduced-scale Scenario One — all seven methods (the paper's five
plus Random and the no-transfer PPATuner ablation) over the three
objective spaces, 21 independent cells — three ways:

1. serial (``workers=1``),
2. process-pool fan-out (``workers=4`` or the core count),
3. memoized resume (a second pass over a warm run cache).

The parallel ``ScenarioResult`` must be **bit-identical** to the serial
one (per-cell seed derivation makes completion order irrelevant), and
the memoized pass must skip every cell.  The speedup gate scales with
the cores actually available: the ISSUE's >=3x target applies on hosts
with >=4 usable cores (CI); smaller hosts assert no regression instead,
since a pool cannot beat the loop without spare cores.

Usage:
    pytest benchmarks/bench_runner.py             # via pytest-benchmark
    PYTHONPATH=src python benchmarks/bench_runner.py --smoke
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time

import numpy as np

from repro.experiments import ALL_METHODS, scenario_one
from repro.runner import ExperimentRunner, RunMemo

FULL = dict(n_points=600, scale=240)
SMOKE = dict(n_points=150, scale=80)
PARALLEL_WORKERS = 4


def usable_workers() -> int:
    return min(PARALLEL_WORKERS, os.cpu_count() or 1)


def speedup_gate(override: float | None = None) -> float:
    """Required parallel speedup, scaled to the host.

    >=3x needs >=4 cores actually running cells; with two cores a 1.3x
    floor still proves the pool works; on one core only "no blow-up"
    is testable (pool + pickling overhead bounded).
    """
    if override is not None:
        return override
    cores = usable_workers()
    if cores >= 4:
        return 3.0
    if cores >= 2:
        return 1.3
    return 0.8


def assert_identical(a, b) -> None:
    """Serial/parallel ``ScenarioResult``s must match bit for bit."""
    assert len(a.outcomes) == len(b.outcomes)
    for oa, ob in zip(a.outcomes, b.outcomes):
        key = (oa.method, oa.objective_space, oa.repeat)
        assert key == (ob.method, ob.objective_space, ob.repeat)
        assert oa.hv_error == ob.hv_error, key
        assert oa.adrs == ob.adrs, key
        assert oa.runs == ob.runs, key
        np.testing.assert_array_equal(
            oa.result.evaluated_indices, ob.result.evaluated_indices
        )
        np.testing.assert_array_equal(
            oa.result.pareto_indices, ob.result.pareto_indices
        )


def compare(*, n_points: int, scale: int, seed: int = 0) -> dict:
    """Time serial vs parallel vs memoized-resume on one grid."""
    kwargs = dict(
        scale=scale, seed=seed, methods=ALL_METHODS, n_points=n_points,
    )

    start = time.perf_counter()
    serial = scenario_one(workers=1, **kwargs)
    t_serial = time.perf_counter() - start

    workers = usable_workers()
    start = time.perf_counter()
    parallel = scenario_one(workers=workers, **kwargs)
    t_parallel = time.perf_counter() - start

    assert_identical(serial, parallel)

    with tempfile.TemporaryDirectory() as memo_dir:
        warm = ExperimentRunner(workers=workers, memo=RunMemo(memo_dir))
        scenario_one(runner=warm, **kwargs)
        resumed = ExperimentRunner(
            workers=workers, memo=RunMemo(memo_dir)
        )
        start = time.perf_counter()
        memoized = scenario_one(runner=resumed, **kwargs)
        t_resume = time.perf_counter() - start
        hits = sum(
            r.telemetry.memoized for r in resumed.history
        )
        assert hits == len(memoized.outcomes), (
            f"resume executed {len(memoized.outcomes) - hits} cell(s)"
        )
    assert_identical(serial, memoized)

    return {
        "cells": len(serial.outcomes),
        "workers": workers,
        "t_serial": t_serial,
        "t_parallel": t_parallel,
        "t_resume": t_resume,
        "speedup": t_serial / t_parallel,
        "resume_speedup": t_serial / max(t_resume, 1e-9),
    }


def _report(tag: str, res: dict) -> None:
    print(f"\n=== Experiment runner ({tag}, {res['cells']} cells) ===")
    print(f"serial        : {res['t_serial']:8.2f} s")
    print(f"parallel (x{res['workers']}) : {res['t_parallel']:8.2f} s  "
          f"-> {res['speedup']:.2f}x, bit-identical")
    print(f"memo resume   : {res['t_resume']:8.2f} s  "
          f"-> {res['resume_speedup']:.1f}x, all cells served from disk")


def test_runner_speedup_and_identity(benchmark):
    res = benchmark.pedantic(
        lambda: compare(**FULL), rounds=1, iterations=1, warmup_rounds=0
    )
    _report("full", res)
    assert res["speedup"] >= speedup_gate()
    # Resume must be near-free regardless of core count.
    assert res["t_resume"] < res["t_serial"] / 3


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced grid for CI (same identity/resume contracts)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=None,
        help="override the core-scaled speedup gate",
    )
    args = parser.parse_args()
    from _util import write_bench_json

    params = SMOKE if args.smoke else FULL
    gate = speedup_gate(args.min_speedup)
    res = compare(**params)
    _report("smoke" if args.smoke else "full", res)
    passed = (
        res["speedup"] >= gate and res["t_resume"] < res["t_serial"] / 3
    )
    write_bench_json(
        "runner", {"gate": gate, "passed": passed, **res}
    )
    if res["speedup"] < gate:
        print(f"FAIL: speedup {res['speedup']:.2f}x < required "
              f"{gate}x ({res['workers']} workers)")
        return 1
    if res["t_resume"] >= res["t_serial"] / 3:
        print(f"FAIL: memoized resume took {res['t_resume']:.2f}s, "
              f"not clearly faster than serial {res['t_serial']:.2f}s")
        return 1
    print(f"OK: speedup {res['speedup']:.2f}x >= {gate}x, "
          f"resume {res['resume_speedup']:.1f}x, results bit-identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
