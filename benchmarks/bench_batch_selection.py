"""Batched q-point selection benchmark: q=4 vs the serial loop.

Simulates the paper's parallel tool licenses: the oracle is a
latency-injected objective function (every fresh evaluation sleeps for a
fixed tool-runtime), evaluated through
:class:`~repro.core.oracle.CallableOracle` whose thread pool overlaps the
sleeps of one batch.  Both arms run the same seeded
:class:`~repro.core.session.TuningSession`; the q=4 arm selects with the
fantasy-collapse diversity rule (``select_batch``) and dispatches up to
four candidates per synchronous round, the q=1 arm is the paper's serial
Eq. (13) loop.

The gate is the ISSUE's acceptance criterion: at the hyper-volume error
the *worse* arm ends at, the batched arm must get there in >= 2.5x fewer
synchronous rounds AND less wall-clock than the serial arm.  Every round
additionally asserts that the front of the evaluations so far is
internally non-dominated.

Usage:
    pytest benchmarks/bench_batch_selection.py        # via pytest-benchmark
    PYTHONPATH=src python benchmarks/bench_batch_selection.py --smoke

``--smoke`` is the CI tier: a reduced pool and shorter injected latency
with the same >= 2.5x rounds gate (the ratio is structural — a batch of
four covers four rounds' worth of evaluations — so it holds at any
scale; only wall-clock shrinks).
"""

from __future__ import annotations

import argparse
import time

import numpy as np

from repro.core import CallableOracle, PPATunerConfig, TuningSession
from repro.pareto import hypervolume_error, non_dominated_mask, pareto_front

#: Rounds-to-target advantage the batched arm must deliver (ISSUE gate).
MIN_ROUND_RATIO = 2.5


def _make_problem(n_pool: int, d: int, seed: int):
    """Synthetic bi-objective pool with a curved trade-off front."""
    rng = np.random.default_rng(seed)
    X_pool = rng.uniform(size=(n_pool, d))

    def objectives(x: np.ndarray) -> np.ndarray:
        f1 = float(np.sum((x - 0.3) ** 2))
        f2 = float(np.sum((x - 0.7) ** 2))
        return np.array([f1, f2])

    Y_all = np.vstack([objectives(row) for row in X_pool])
    return X_pool, objectives, pareto_front(Y_all)


def run_arm(
    X_pool: np.ndarray,
    objectives,
    golden: np.ndarray,
    q: int,
    workers: int,
    latency_s: float,
    max_iterations: int,
    seed: int = 0,
) -> dict:
    """Drive one arm to completion, scoring HV error per round.

    A *round* is one synchronous dispatch: the q=1 arm pays one tool
    latency per candidate, the batched arm overlaps up to ``q`` fresh
    evaluations on the oracle's thread pool.  Pending candidates beyond
    ``q`` (initialization, verification) are chunked ``q`` at a time —
    the license count binds every phase equally.
    """

    def with_latency(x: np.ndarray) -> np.ndarray:
        time.sleep(latency_s)
        return objectives(x)

    cfg = PPATunerConfig(
        max_iterations=max_iterations, seed=seed, q=q,
        reopt_every=0, n_restarts=0,
    )
    session = TuningSession(cfg, X_pool, 2)
    oracle = CallableOracle(
        with_latency, X_pool, 2, workers=workers
    )
    seen_rows: list[np.ndarray] = []
    hv_curve: list[float] = []
    wall_curve: list[float] = []
    rounds = 0
    start = time.perf_counter()
    while True:
        pending = session.ask()
        if not pending:
            break
        for k in range(0, len(pending), q):
            chunk = [int(i) for i in pending[k:k + q]]
            rows = oracle.evaluate_batch(chunk)
            n_eval = oracle.n_evaluations
            for idx, row in zip(chunk, rows):
                session.tell(idx, row, n_evaluations=n_eval)
            rounds += 1
            seen_rows.extend(np.asarray(rows))
            front = pareto_front(np.vstack(seen_rows))
            # The running front must be internally non-dominated every
            # round — batching must never let a dominated point linger.
            assert non_dominated_mask(front).all(), (
                f"dominated point in round-{rounds} front (q={q})"
            )
            hv_curve.append(float(hypervolume_error(front, golden)))
            wall_curve.append(time.perf_counter() - start)
    wall = time.perf_counter() - start
    result = session.result()
    front = pareto_front(result.pareto_points)
    assert non_dominated_mask(front).all()
    return {
        "q": q,
        "rounds": rounds,
        "wall_s": wall,
        "n_evaluations": result.n_evaluations,
        "hv_error": hv_curve[-1] if hv_curve else float("inf"),
        "hv_curve": hv_curve,
        "wall_curve": wall_curve,
        "pareto_indices": [int(i) for i in result.pareto_indices],
    }


def _rounds_to(hv_curve: list[float], target: float) -> int:
    for i, hv in enumerate(hv_curve):
        if hv <= target:
            return i + 1
    return len(hv_curve)


def compare(
    *, n_pool: int, d: int, q: int, latency_s: float,
    max_iterations: int, seed: int = 0,
) -> dict:
    X_pool, objectives, golden = _make_problem(n_pool, d, seed)
    serial = run_arm(
        X_pool, objectives, golden, q=1, workers=1,
        latency_s=latency_s, max_iterations=max_iterations, seed=seed,
    )
    batched = run_arm(
        X_pool, objectives, golden, q=q, workers=q,
        latency_s=latency_s, max_iterations=max_iterations, seed=seed,
    )
    # Rounds to the HV error the *worse* arm ends at — both arms are
    # guaranteed to reach it, so the ratio is well-defined.
    target = max(serial["hv_error"], batched["hv_error"])
    r_serial = _rounds_to(serial["hv_curve"], target)
    r_batched = _rounds_to(batched["hv_curve"], target)
    wall_serial = serial["wall_curve"][r_serial - 1]
    wall_batched = batched["wall_curve"][r_batched - 1]
    return {
        "q": q,
        "latency_s": latency_s,
        "target_hv_error": target,
        "rounds_serial": r_serial,
        "rounds_batched": r_batched,
        "round_ratio": r_serial / max(r_batched, 1),
        "wall_serial_s": wall_serial,
        "wall_batched_s": wall_batched,
        "wall_speedup": wall_serial / wall_batched,
        "wall_total_serial_s": serial["wall_s"],
        "wall_total_batched_s": batched["wall_s"],
        "hv_error_serial": serial["hv_error"],
        "hv_error_batched": batched["hv_error"],
        "evals_serial": serial["n_evaluations"],
        "evals_batched": batched["n_evaluations"],
    }


def _report(tag: str, res: dict) -> None:
    print(f"\n=== Batched selection (q={res['q']}, {tag}) ===")
    print(f"serial  : {res['rounds_serial']:4d} rounds-to-target, "
          f"{res['wall_serial_s']:7.2f}s wall-to-target, "
          f"hv_error={res['hv_error_serial']:.4f} "
          f"({res['evals_serial']} tool runs, "
          f"{res['wall_total_serial_s']:.2f}s total)")
    print(f"batched : {res['rounds_batched']:4d} rounds-to-target, "
          f"{res['wall_batched_s']:7.2f}s wall-to-target, "
          f"hv_error={res['hv_error_batched']:.4f} "
          f"({res['evals_batched']} tool runs, "
          f"{res['wall_total_batched_s']:.2f}s total)")
    print(f"rounds-to-target ratio : {res['round_ratio']:.2f}x "
          f"(target hv_error={res['target_hv_error']:.4f})")
    print(f"wall-clock speedup     : {res['wall_speedup']:.2f}x")


FULL = dict(n_pool=200, d=5, q=4, latency_s=0.04, max_iterations=45)
SMOKE = dict(n_pool=140, d=4, q=4, latency_s=0.015, max_iterations=30)


def test_batched_rounds_and_wall_clock(benchmark):
    res = benchmark.pedantic(
        lambda: compare(**FULL), rounds=1, iterations=1, warmup_rounds=0
    )
    _report("full", res)
    assert res["round_ratio"] >= MIN_ROUND_RATIO
    assert res["wall_batched_s"] < res["wall_serial_s"]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced pool/latency for CI (same >= 2.5x rounds gate)",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=MIN_ROUND_RATIO,
        help="override the required rounds-to-target ratio",
    )
    args = parser.parse_args()
    from _util import write_bench_json

    params = SMOKE if args.smoke else FULL
    res = compare(**params)
    _report("smoke" if args.smoke else "full", res)
    passed = (
        res["round_ratio"] >= args.min_ratio
        and res["wall_batched_s"] < res["wall_serial_s"]
    )
    write_bench_json(
        "batch_selection",
        {"gate": args.min_ratio, "passed": passed, **res},
    )
    if res["round_ratio"] < args.min_ratio:
        print(f"FAIL: rounds ratio {res['round_ratio']:.2f}x < "
              f"required {args.min_ratio}x")
        return 1
    if res["wall_batched_s"] >= res["wall_serial_s"]:
        print(f"FAIL: batched wall {res['wall_batched_s']:.2f}s not "
              f"below serial {res['wall_serial_s']:.2f}s")
        return 1
    print(f"OK: {res['round_ratio']:.2f}x fewer rounds, "
          f"{res['wall_speedup']:.2f}x wall-clock, non-dominance held "
          "every round")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
