"""Paper Figure 3: Pareto frontiers in power-delay space on Target2.

Runs every method in the power-delay objective space of Scenario Two and
emits each method's frontier point series together with the golden one —
exactly the scatter series of the paper's plot.

Expected shape (paper): PPATuner's points hug the golden frontier more
closely than any baseline's.
"""

from __future__ import annotations

from repro.bench import generate_benchmark
from repro.experiments import figure3_frontiers, run_scenario
from repro.pareto import adrs

from _util import run_once


def test_figure3_power_delay_frontiers(benchmark):
    source = generate_benchmark("source2")
    target = generate_benchmark("target2")

    result = run_once(benchmark, lambda: run_scenario(
        source, target, "figure3", "target2",
        objective_spaces={"power-delay": ("power", "delay")},
        seed=0,
    ))

    series = figure3_frontiers(result, target)
    print("\n=== Figure 3: power (mW) vs delay (ns) frontiers ===")
    golden = series["golden"]
    for name, pts in series.items():
        tag = ""
        if name != "golden":
            tag = f"   (ADRS vs golden: {adrs(golden, pts):.4f})"
        print(f"{name}:{tag}")
        for p, d in pts:
            print(f"  {p:8.3f}  {d:8.4f}")

    assert "PPATuner" in series
    # Shape check: PPATuner's frontier must sit close to the golden one
    # (within 2.5x of the best method and absolutely close).
    distances = {
        name: adrs(golden, pts)
        for name, pts in series.items() if name != "golden"
    }
    best = min(distances.values())
    assert distances["PPATuner"] <= max(2.5 * best, 0.08), distances
