"""Supplementary analysis: parameter sensitivity of the benchmarks.

Not a paper table, but the analysis behind the paper's parameter
pruning (Section 4.1: "several vital parameters ... which impact final
design quality are considered").  Regenerates the per-parameter
importance tables for both target benchmarks.
"""

from __future__ import annotations

from repro.bench import generate_benchmark
from repro.experiments.sensitivity import analyze_sensitivity

from _util import run_once


def test_sensitivity_reports(benchmark):
    def analyze_both():
        return {
            name: analyze_sensitivity(generate_benchmark(name))
            for name in ("target1", "target2")
        }

    reports = run_once(benchmark, analyze_both)

    for name, report in reports.items():
        print(f"\n=== Parameter sensitivity: {name} ===")
        print(report.format())
        for metric in report.metric_names:
            print(f"top-3 for {metric}: "
                  f"{', '.join(report.top_parameters(metric, 3))}")

    # Physical sanity: utilization dominates area on both benchmarks;
    # on target1, frequency is a top power knob.
    for name, report in reports.items():
        assert report.top_parameters("area", 1)[0] == "max_density_util"
    assert "freq" in reports["target1"].top_parameters("power", 3)
