"""Ablation: base-kernel family of the transfer GP (RBF vs Matérn-5/2).

The paper does not commit to one base kernel; both are standard choices.
This bench compares them on Target2 power-delay.
"""

from __future__ import annotations

from repro.core import PPATunerConfig

from _util import bench_workers, ppatuner_outcomes, run_once, tune_job

KERNELS = ("rbf", "matern52")


def test_ablation_kernel_family(benchmark):
    names = ("power", "delay")

    def sweep():
        jobs = [
            tune_job(
                "target2", "source2", names,
                PPATunerConfig(max_iterations=50, seed=0, kernel=k),
            )
            for k in KERNELS
        ]
        outs = ppatuner_outcomes(jobs, workers=bench_workers())
        return dict(zip(KERNELS, outs))

    rows = run_once(benchmark, sweep)

    print("\n=== Ablation: base kernel (Target2 power-delay) ===")
    print(f"{'kernel':>10} {'HV':>8} {'ADRS':>8} {'Runs':>8}")
    for k, o in rows.items():
        print(f"{k:>10} {o.hv_error:8.3f} {o.adrs:8.3f} {o.runs:8d}")

    for o in rows.values():
        assert o.hv_error < 0.5
