"""Paper Table 1: the four offline benchmarks and their statistics.

Regenerates (or loads from cache) Source1/Target1/Source2/Target2 with
the paper's pool sizes and parameter ranges, and prints the benchmark
statistics table alongside the golden-front sizes per objective space.
"""

from __future__ import annotations

from repro.bench import OBJECTIVE_SPACES, PAPER_POOL_SIZES, generate_all
from repro.experiments import format_benchmark_table

from _util import run_once


def test_table1_benchmark_statistics(benchmark):
    benches = run_once(benchmark, generate_all)

    print("\n=== Table 1: benchmark statistics ===")
    print(format_benchmark_table([b.summary() for b in benches.values()]))
    print("\nPaper pool sizes:", PAPER_POOL_SIZES)
    print("\nGolden Pareto-front sizes per objective space:")
    for name, dataset in benches.items():
        sizes = {
            space: len(dataset.golden_front(names))
            for space, names in OBJECTIVE_SPACES.items()
        }
        print(f"  {name}: {sizes}")

    for name, n in PAPER_POOL_SIZES.items():
        assert benches[name].n == n
        assert benches[name].Y.min() > 0
