"""Paper Figure 2: uncertainty regions and the δ-accurate frontier.

Panel (a): the uncertainty-region diameter of the live candidates shrinks
monotonically as the tuner samples (Eq. (9)-(10) intersections).  Panel
(b): the found frontier is δ-accurate w.r.t. the golden one.  This bench
emits both series.
"""

from __future__ import annotations

import numpy as np

from repro.bench import generate_benchmark
from repro.core import PPATunerConfig
from repro.experiments import figure2_uncertainty_shrinkage
from repro.pareto import adrs

from _util import run_once


def test_figure2_uncertainty_shrinkage(benchmark):
    target = generate_benchmark("target2")
    source = generate_benchmark("source2")

    data = run_once(benchmark, lambda: figure2_uncertainty_shrinkage(
        target, source=source,
        objective_names=("power", "delay"),
        scale=400, seed=0,
        config=PPATunerConfig(max_iterations=45, seed=0),
    ))

    print("\n=== Figure 2(a): max uncertainty-region diameter per "
          "iteration ===")
    print("iter  diameter  undecided  pareto")
    for i, d, u, p in zip(
        data.iterations, data.max_diameters,
        data.n_undecided, data.n_pareto,
    ):
        print(f"{i:4d}  {d:9.4f}  {u:9d}  {p:6d}")

    print("\n=== Figure 2(b): delta-accurate frontier vs golden ===")
    print("found frontier (power, delay):")
    for p, d in data.found_front:
        print(f"  {p:8.3f}  {d:8.4f}")
    print("golden frontier:")
    for p, d in data.golden_front:
        print(f"  {p:8.3f}  {d:8.4f}")
    print(f"ADRS of found vs golden: "
          f"{adrs(data.golden_front, data.found_front):.4f}")

    # Shape assertions: diameters shrink; undecided count reaches zero
    # or near-zero by the end; the frontier is delta-accurate-ish.
    finite = [d for d in data.max_diameters if np.isfinite(d)]
    assert finite[-1] < finite[0]
    assert data.n_undecided[-1] <= data.n_undecided[0]
    assert adrs(data.golden_front, data.found_front) < 0.25
