"""Extension scenario: tuning with a mixed-quality archive.

Not a paper table — this exercises the multi-source transfer extension
end-to-end: PPATuner given both a related archive and a shuffled decoy
must match the related-only run and expose the decoy via a near-zero
learned similarity.
"""

from __future__ import annotations

from repro.experiments.scenario_three import (
    format_scenario_three,
    scenario_three,
)

from _util import bench_workers, run_once


def test_scenario_three_mixed_archives(benchmark):
    outcomes = run_once(
        benchmark,
        lambda: scenario_three(seed=0, workers=bench_workers()),
    )

    print("\n=== Scenario Three: mixed-quality archives "
          "(Target2 power-delay) ===")
    print(format_scenario_three(outcomes))

    by_name = {o.variant: o for o in outcomes}
    related = by_name["related-only"]
    mixed = by_name["multi-source"]
    # The decoy must not ruin multi-source tuning.
    assert mixed.hv_error <= related.hv_error + 0.12
    # The decoy archive's similarity must be small relative to the
    # related archive's, for every objective model.
    for per_obj in mixed.lambdas:
        assert abs(per_obj[1]) <= abs(per_obj[0]) + 0.25
