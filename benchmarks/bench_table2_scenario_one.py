"""Paper Table 2: Scenario One (same design), Source1 -> Target1.

Runs all five methods over the paper's three objective spaces and prints
the table in the paper's layout (HV error / ADRS / Runs per method, with
Average and PPATuner-normalized Ratio rows).

Default scale subsamples the Target1 pool (``PPATUNER_BENCH_SCALE``,
default 600) so the bench finishes in minutes; set it to ``full`` for
the paper's 5000-point pool.

Expected shape (paper): PPATuner attains the lowest HV error and ADRS;
baselines' ratios fall roughly in the 1.5-2.5x band.
"""

from __future__ import annotations

from repro.experiments import format_scenario_table, scenario_one

from _util import bench_workers, run_once, scenario_one_scale


def test_table2_scenario_one(benchmark):
    scale = scenario_one_scale()
    result = run_once(
        benchmark,
        lambda: scenario_one(scale=scale, seed=0, workers=bench_workers()),
    )

    print(f"\n=== Table 2: Scenario One (pool={result.pool_size}) ===")
    print(format_scenario_table(result))
    print("\nPaper averages: TCAD'19 0.188/0.122/508, "
          "MLCAD'19 0.160/0.125/400, DAC'19 0.195/0.147/600, "
          "ASPDAC'20 0.173/0.109/400, PPATuner 0.080/0.072/252")

    avgs = result.averages()
    ours = avgs["PPATuner"]
    # Shape checks: PPATuner must be at least competitive on quality and
    # strictly cheapest-or-close on tool runs.
    assert ours[0] <= min(a[0] for a in avgs.values()) * 1.6
    assert ours[2] <= max(a[2] for a in avgs.values())
