"""Ablation: transfer GP on vs off (the paper's central claim).

Runs PPATuner on Target2 (power-delay) with and without the 200
source-task points.  With transfer the tuner should need fewer tool runs
and/or land closer to the golden frontier — the knowledge-reuse effect
Section 3.1 is built for.
"""

from __future__ import annotations

import numpy as np

from repro.core import PPATunerConfig

from _util import ppatuner_outcome, run_once


def test_ablation_transfer_on_off(benchmark):
    names = ("power", "delay")

    def run_both():
        rows = {}
        for label, transfer in (("transfer", True), ("no-transfer", False)):
            outcomes = [
                ppatuner_outcome(
                    "target2", "source2", names,
                    PPATunerConfig(
                        max_iterations=50, seed=seed, transfer=transfer
                    ),
                    seed=seed,
                )
                for seed in (0, 1, 2)
            ]
            rows[label] = (
                float(np.mean([o.hv_error for o in outcomes])),
                float(np.mean([o.adrs for o in outcomes])),
                float(np.mean([o.runs for o in outcomes])),
            )
        return rows

    rows = run_once(benchmark, run_both)

    print("\n=== Ablation: transfer GP on/off (3-seed mean) ===")
    print(f"{'variant':<14} {'HV':>8} {'ADRS':>8} {'Runs':>8}")
    for label, (hv, ad, runs) in rows.items():
        print(f"{label:<14} {hv:8.3f} {ad:8.3f} {runs:8.1f}")

    hv_t, ad_t, runs_t = rows["transfer"]
    hv_n, ad_n, runs_n = rows["no-transfer"]
    # Transfer must win on at least one axis without losing the others
    # by more than noise.
    improved = (hv_t < hv_n) + (ad_t < ad_n) + (runs_t < runs_n)
    assert improved >= 2, rows
