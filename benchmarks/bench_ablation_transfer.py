"""Ablation: transfer GP on vs off (the paper's central claim).

Runs PPATuner on Target2 (power-delay) with and without the 200
source-task points.  With transfer the tuner should need fewer tool runs
and/or land closer to the golden frontier — the knowledge-reuse effect
Section 3.1 is built for.
"""

from __future__ import annotations

import numpy as np

from repro.core import PPATunerConfig

from _util import bench_workers, ppatuner_outcomes, run_once, tune_job


def test_ablation_transfer_on_off(benchmark):
    names = ("power", "delay")
    variants = (("transfer", True), ("no-transfer", False))
    seeds = (0, 1, 2)

    def run_both():
        jobs = [
            tune_job(
                "target2", "source2", names,
                PPATunerConfig(
                    max_iterations=50, seed=seed, transfer=transfer
                ),
                seed=seed,
            )
            for _, transfer in variants
            for seed in seeds
        ]
        outs = ppatuner_outcomes(jobs, workers=bench_workers())
        rows = {}
        for v, (label, _) in enumerate(variants):
            group = outs[v * len(seeds):(v + 1) * len(seeds)]
            rows[label] = (
                float(np.mean([o.hv_error for o in group])),
                float(np.mean([o.adrs for o in group])),
                float(np.mean([o.runs for o in group])),
            )
        return rows

    rows = run_once(benchmark, run_both)

    print("\n=== Ablation: transfer GP on/off (3-seed mean) ===")
    print(f"{'variant':<14} {'HV':>8} {'ADRS':>8} {'Runs':>8}")
    for label, (hv, ad, runs) in rows.items():
        print(f"{label:<14} {hv:8.3f} {ad:8.3f} {runs:8.1f}")

    hv_t, ad_t, runs_t = rows["transfer"]
    hv_n, ad_n, runs_n = rows["no-transfer"]
    # Transfer must win on at least one axis without losing the others
    # by more than noise.
    improved = (hv_t < hv_n) + (ad_t < ad_n) + (runs_t < runs_n)
    assert improved >= 2, rows
