"""Ablation: τ (uncertainty scaling, Eq. (9)) and batch trials.

τ controls how conservative the uncertainty boxes are — small τ decides
early from narrow boxes, large τ samples more before deciding.  Batch
mode models the paper's parallel tool licenses: larger batches finish in
fewer iterations at a modest run-count premium.
"""

from __future__ import annotations

from repro.core import PPATunerConfig

from _util import bench_workers, ppatuner_outcomes, run_once, tune_job

TAUS = (1.0, 4.0, 16.0, 36.0)
BATCHES = (1, 2, 4)


def test_ablation_tau_sweep(benchmark):
    names = ("power", "delay")

    def sweep():
        jobs = [
            tune_job(
                "target2", "source2", names,
                PPATunerConfig(max_iterations=50, seed=0, tau=tau),
            )
            for tau in TAUS
        ]
        outs = ppatuner_outcomes(jobs, workers=bench_workers())
        return dict(zip(TAUS, outs))

    rows = run_once(benchmark, sweep)

    print("\n=== Ablation: tau sweep (Target2 power-delay) ===")
    print(f"{'tau':>6} {'HV':>8} {'ADRS':>8} {'Runs':>8}")
    for tau, o in rows.items():
        print(f"{tau:>6} {o.hv_error:8.3f} {o.adrs:8.3f} {o.runs:8d}")

    # Wider boxes must not *reduce* sampling.
    assert rows[TAUS[-1]].runs >= rows[TAUS[0]].runs - 5


def test_ablation_batch_trials(benchmark):
    names = ("power", "delay")

    def sweep():
        jobs = [
            tune_job(
                "target2", "source2", names,
                PPATunerConfig(
                    max_iterations=50, seed=0, batch_size=batch
                ),
            )
            for batch in BATCHES
        ]
        outs = ppatuner_outcomes(jobs, workers=bench_workers())
        return {
            batch: (o, o.result.n_iterations)
            for batch, o in zip(BATCHES, outs)
        }

    rows = run_once(benchmark, sweep)

    print("\n=== Ablation: batch trials (parallel licenses) ===")
    print(f"{'batch':>6} {'HV':>8} {'ADRS':>8} {'Runs':>8} {'Iters':>6}")
    for batch, (o, iters) in rows.items():
        print(f"{batch:>6} {o.hv_error:8.3f} {o.adrs:8.3f} "
              f"{o.runs:8d} {iters:6d}")

    # Batching shrinks wall-clock iterations.
    assert rows[BATCHES[-1]][1] <= rows[BATCHES[0]][1]
