"""Supplementary analysis: anytime convergence on Target2 power-delay.

Replays every method's evaluation order and reports the hyper-volume
error of the best-found front after each tool run — showing when each
method gets good, not only where it ends (the crossover view the paper's
tables imply but do not plot).

The per-method traces are independent cells executed through the
experiment runner (``PPATUNER_WORKERS`` fans them out); curves are
rebuilt from each cell's extras, so serial and parallel runs agree.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import convergence_suite, format_convergence_table
from repro.runner import DatasetRef

from _util import bench_workers, run_once

METHODS = ("TCAD'19", "MLCAD'19", "DAC'19", "ASPDAC'20", "PPATuner",
           "Random")


def test_convergence_curves(benchmark):
    names = ("power", "delay")

    def run_all():
        source_ref = DatasetRef("source2")
        target_ref = DatasetRef("target2")
        return convergence_suite(
            source_ref.resolve(), target_ref.resolve(), names, METHODS,
            seed=0, workers=bench_workers(),
            source_ref=source_ref, target_ref=target_ref,
        )

    curves = run_once(benchmark, run_all)

    print("\n=== Anytime convergence (Target2 power-delay): tool runs "
          "to reach an HV-error level ===")
    print(format_convergence_table(curves))

    by_name = {c.method: c for c in curves}
    # Guided methods must dominate random search at its own budget.
    random_final = by_name["Random"].hv_error[-1]
    assert by_name["PPATuner"].hv_error[-1] <= random_final + 0.05
    # Every curve is monotone non-increasing by construction.
    for c in curves:
        assert np.all(np.diff(c.hv_error) <= 1e-12)
