"""Supplementary analysis: anytime convergence on Target2 power-delay.

Replays every method's evaluation order and reports the hyper-volume
error of the best-found front after each tool run — showing when each
method gets good, not only where it ends (the crossover view the paper's
tables imply but do not plot).
"""

from __future__ import annotations

import numpy as np

from repro.bench import generate_benchmark
from repro.core import PoolOracle
from repro.experiments import make_method
from repro.experiments.convergence import (
    convergence_curve,
    format_convergence_table,
)
from repro.experiments.scenarios import PAPER_BUDGET_FRACTIONS

from _util import run_once

METHODS = ("TCAD'19", "MLCAD'19", "DAC'19", "ASPDAC'20", "PPATuner",
           "Random")


def test_convergence_curves(benchmark):
    names = ("power", "delay")

    def run_all():
        source = generate_benchmark("source2")
        target = generate_benchmark("target2")
        rng = np.random.default_rng(0)
        src_idx = rng.choice(source.n, 200, replace=False)
        init = rng.choice(target.n, 15, replace=False)
        curves = []
        for i, method in enumerate(METHODS):
            frac = PAPER_BUDGET_FRACTIONS.get(method, {}).get(
                "target2", 0.1
            )
            tuner = make_method(
                method, max(20, int(frac * target.n)), target.n,
                seed=97 * i,
            )
            oracle = PoolOracle(target.objectives(names))
            result = tuner.tune(
                target.X, oracle,
                X_source=source.X[src_idx],
                Y_source=source.objectives(names)[src_idx],
                init_indices=init.copy(),
            )
            curves.append(
                convergence_curve(method, result, target, names)
            )
        return curves

    curves = run_once(benchmark, run_all)

    print("\n=== Anytime convergence (Target2 power-delay): tool runs "
          "to reach an HV-error level ===")
    print(format_convergence_table(curves))

    by_name = {c.method: c for c in curves}
    # Guided methods must dominate random search at its own budget.
    random_final = by_name["Random"].hv_error[-1]
    assert by_name["PPATuner"].hv_error[-1] <= random_final + 0.05
    # Every curve is monotone non-increasing by construction.
    for c in curves:
        assert np.all(np.diff(c.hv_error) <= 1e-12)
