"""Tuning-service gates: remote identity and kill/restart survival.

Two gates, both against a **real** ``repro serve`` subprocess (fresh
interpreter, ephemeral port, tmp snapshot store) — the same deployment
shape as production, not an in-thread shortcut:

1. **Remote identity** — :class:`~repro.service.RemoteTuner` against
   the live server must return the bit-identical result (Pareto
   indices, evaluated set, history, stop reason) of an in-process
   :meth:`PPATuner.tune` on the same pool, config and seed.  The
   service adds transport, never behavior.

2. **Kill/restart survival** — a session is fed part-way, the server
   is killed with SIGKILL (no shutdown hook runs), a new server
   process is started over the same store, and the session completes.
   The final result must match the uninterrupted in-process run
   exactly: every state transition was atomically snapshotted.

Usage:
    pytest benchmarks/bench_service.py             # via pytest-benchmark
    PYTHONPATH=src python benchmarks/bench_service.py --smoke
"""

from __future__ import annotations

import argparse
import os
import re
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import PoolOracle, PPATuner, PPATunerConfig
from repro.pareto import non_dominated_mask
from repro.service import RemoteTuner, ServiceClient

FULL = dict(n_pool=60, iters=20)
SMOKE = dict(n_pool=40, iters=15)

#: How long to wait for the server subprocess to report its URL.
STARTUP_TIMEOUT_S = 30.0


def make_pool(n_pool: int, seed: int = 2):
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n_pool, 3))
    Y = rng.uniform(0.5, 2.0, size=(n_pool, 2))
    return X, Y


class ServerProcess:
    """A ``repro serve`` subprocess on an ephemeral port."""

    def __init__(self, store: str) -> None:
        self.store = store
        env = dict(os.environ)
        src = Path(__file__).resolve().parent.parent / "src"
        env["PYTHONPATH"] = str(src)
        env["PYTHONUNBUFFERED"] = "1"
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", "0", "--store", store],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        self.url = self._await_url()

    def _await_url(self) -> str:
        deadline = time.monotonic() + STARTUP_TIMEOUT_S
        assert self.proc.stdout is not None
        while time.monotonic() < deadline:
            line = self.proc.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"server exited early (rc={self.proc.poll()})"
                )
            m = re.search(r"tuning service on (http://\S+)", line)
            if m:
                return m.group(1)
        raise RuntimeError("server did not report its URL in time")

    def kill(self) -> None:
        """SIGKILL — no shutdown handler, no final flush."""
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGKILL)
            self.proc.wait(timeout=10)

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                self.proc.kill()
                self.proc.wait(timeout=10)


def remote_identity(n_pool: int, iters: int) -> dict:
    """Gate 1: remote run bit-identical to in-process."""
    X, Y = make_pool(n_pool)
    cfg = PPATunerConfig(max_iterations=iters, seed=2)
    ref = PPATuner(cfg).tune(X, PoolOracle(Y))

    with tempfile.TemporaryDirectory() as store:
        server = ServerProcess(store)
        try:
            client = ServiceClient(server.url)
            got = RemoteTuner(client, config=cfg).tune(X, PoolOracle(Y))
        finally:
            server.terminate()

    assert list(ref.pareto_indices) == list(got.pareto_indices), (
        "remote Pareto indices diverged from in-process run"
    )
    assert np.allclose(ref.pareto_points, got.pareto_points)
    assert list(ref.evaluated_indices) == list(got.evaluated_indices)
    assert ref.n_evaluations == got.n_evaluations
    assert ref.stop_reason == got.stop_reason
    assert ref.history == got.history
    assert non_dominated_mask(got.pareto_points).all()
    return {"n_evaluations": ref.n_evaluations,
            "front": len(ref.pareto_indices)}


def restart_survival(n_pool: int, iters: int, cut: int = 9) -> dict:
    """Gate 2: SIGKILL mid-session, restart, identical completion."""
    X, Y = make_pool(n_pool)
    cfg = PPATunerConfig(max_iterations=iters, seed=2)
    ref = PPATuner(cfg).tune(X, PoolOracle(Y))
    oracle = PoolOracle(Y)

    with tempfile.TemporaryDirectory() as store:
        server = ServerProcess(store)
        try:
            client = ServiceClient(server.url)
            sid = client.create_session(
                cfg, X, Y.shape[1], session_id="bench-survival"
            )
            told = 0
            while told < cut:
                pending = client.ask(sid)["pending"]
                assert pending, "session finished before the cut"
                for idx in pending:
                    client.tell(
                        sid, idx, values=oracle.evaluate(idx),
                        n_evaluations=oracle.n_evaluations,
                    )
                    told += 1
                    if told >= cut:
                        break
        finally:
            server.kill()

        server = ServerProcess(store)
        try:
            client = ServiceClient(server.url)
            recovered = [s["session_id"] for s in client.sessions()]
            assert recovered == [sid], (
                f"expected [{sid!r}] recovered, got {recovered}"
            )
            while True:
                pending = client.ask(sid)["pending"]
                if not pending:
                    break
                for idx in pending:
                    client.tell(
                        sid, idx, values=oracle.evaluate(idx),
                        n_evaluations=oracle.n_evaluations,
                    )
            got = client.result(sid)
        finally:
            server.terminate()

    assert list(ref.pareto_indices) == list(got.pareto_indices), (
        "resumed session diverged from the uninterrupted run"
    )
    assert np.allclose(ref.pareto_points, got.pareto_points)
    assert ref.n_evaluations == got.n_evaluations
    assert ref.stop_reason == got.stop_reason
    assert ref.history == got.history
    return {"cut": cut, "n_evaluations": ref.n_evaluations}


def test_remote_identity(benchmark):
    res = benchmark.pedantic(
        lambda: remote_identity(**FULL),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print(f"\nremote identity: {res['n_evaluations']} evaluations, "
          f"front of {res['front']}, bit-identical")


def test_restart_survival(benchmark):
    res = benchmark.pedantic(
        lambda: restart_survival(**FULL),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print(f"\nrestart survival: killed after {res['cut']} tells, "
          f"resumed to the identical result")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced pool for CI (same identity contracts)",
    )
    args = parser.parse_args()
    from _util import write_bench_json

    params = SMOKE if args.smoke else FULL

    identity = remote_identity(**params)
    print(f"remote identity OK: {identity['n_evaluations']} evaluations, "
          f"front of {identity['front']}, bit-identical to in-process")
    survival = restart_survival(**params)
    print(f"restart survival OK: SIGKILL after {survival['cut']} tells, "
          f"recovered and finished bit-identically")
    write_bench_json("service", {
        "passed": True,
        "identity": identity,
        "restart": survival,
    })
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
