"""Copula warm-start benchmark: few-shot convergence on cross-design
transfer.

The scenario is a cross-design archive reuse: the source archive is a
wider two-lane MAC, the target pool a smaller single-lane MAC over the
same tool-parameter space, both evaluated through the repo's PD flow.
Two PPATuner arms run the identical seeded session — one with the
default random initial design (``warm_start="random"``), one seeded by
the Gaussian-copula warm start (``warm_start="copula"``, copula-anchored
seeds blended with a uniform fill) — under a small tool-run cap, the
few-shot regime the warm start exists for.

The gate is the ISSUE's acceptance criterion: at the hyper-volume error
the random-init arms end at (mean over repeats), the warm-started arms
must get there in >= 1.5x fewer tool runs.

Usage:
    pytest benchmarks/bench_copula.py              # via pytest-benchmark
    PYTHONPATH=src python benchmarks/bench_copula.py --smoke

``--smoke`` is the CI tier: one fewer repeat, same pools and the same
>= 1.5x tool-run gate.  Both tiers are fully deterministic — seeded
pools, seeded sessions, a table-lookup oracle — so a pass is exact, not
statistical.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.bench.generate import evaluate_configs
from repro.bench.spaces import target2_space
from repro.core import PPATunerConfig, PoolOracle, TuningSession
from repro.pareto import hypervolume_error, pareto_front
from repro.pdtool.flow import FlowConfig, PDFlow
from repro.pdtool.mac import MacSpec, generate_mac_netlist
from repro.space.sampling import latin_hypercube

#: Tool-run advantage the warm-started arm must deliver (ISSUE gate).
MIN_RUN_RATIO = 1.5

#: Source (archive) and target designs — different MACs, same space.
SOURCE_MAC = MacSpec(width=6, lanes=2, acc_bits=14, name="mac_src")
TARGET_MAC = MacSpec(width=4, lanes=1, acc_bits=10, name="mac_tgt")


def _make_problem(n_source: int, n_pool: int):
    """Cross-design transfer pools over the target2 parameter space."""
    space = target2_space()
    flow_src = PDFlow(
        generate_mac_netlist(SOURCE_MAC), FlowConfig(qor_noise=0.01)
    )
    flow_tgt = PDFlow(
        generate_mac_netlist(TARGET_MAC), FlowConfig(qor_noise=0.01)
    )
    configs_src = latin_hypercube(space, n_source, seed=1)
    configs_tgt = latin_hypercube(space, n_pool, seed=2)
    Y_src = evaluate_configs(flow_src, configs_src, {"freq": 700.0})
    Y_tgt = evaluate_configs(flow_tgt, configs_tgt, {"freq": 700.0})
    X_src = space.encode_many(configs_src)
    X_tgt = space.encode_many(configs_tgt)
    return X_src, Y_src, X_tgt, Y_tgt, pareto_front(Y_tgt)


def run_arm(
    X_src: np.ndarray,
    Y_src: np.ndarray,
    X_tgt: np.ndarray,
    Y_tgt: np.ndarray,
    golden: np.ndarray,
    warm_start: str,
    seed: int,
    budget: int,
) -> list[float]:
    """Drive one capped ask/tell session; best-so-far HV error per run."""
    cfg = PPATunerConfig(
        max_iterations=60, seed=seed,
        warm_start=warm_start, init_fraction=0.04,
    )
    session = TuningSession(
        cfg, X_tgt, Y_tgt.shape[1], sources=[(X_src, Y_src)]
    )
    oracle = PoolOracle(Y_tgt)
    rows: list[np.ndarray] = []
    curve: list[float] = []
    done = False
    while not done:
        pending = session.ask()
        if not pending:
            break
        for idx in pending:
            row = oracle.evaluate(int(idx))
            rows.append(np.asarray(row))
            session.tell(
                int(idx), row, n_evaluations=oracle.n_evaluations
            )
            curve.append(
                float(hypervolume_error(
                    pareto_front(np.vstack(rows)), golden
                ))
            )
            if len(curve) >= budget:
                done = True
                break
    return curve


def _runs_to(curve: list[float], target: float) -> int | None:
    for i, err in enumerate(curve):
        if err <= target + 1e-12:
            return i + 1
    return None


def compare(*, n_source: int, n_pool: int, budget: int, repeats: int):
    problem = _make_problem(n_source, n_pool)
    random_curves = [
        run_arm(*problem, "random", seed, budget)
        for seed in range(repeats)
    ]
    warm_curves = [
        run_arm(*problem, "copula", seed, budget)
        for seed in range(repeats)
    ]
    # Tool runs to the HV error the random arms end at (mean final over
    # the repeats); an arm that never reaches it is charged the full
    # budget.
    target = float(np.mean([c[-1] for c in random_curves]))
    runs_random = [_runs_to(c, target) or budget for c in random_curves]
    runs_warm = [_runs_to(c, target) or budget for c in warm_curves]
    return {
        "n_source": n_source,
        "n_pool": n_pool,
        "budget": budget,
        "repeats": repeats,
        "target_hv_error": target,
        "runs_random": runs_random,
        "runs_warm": runs_warm,
        "run_ratio": float(np.mean(runs_random) / np.mean(runs_warm)),
        "hv_final_random": [float(c[-1]) for c in random_curves],
        "hv_final_warm": [float(c[-1]) for c in warm_curves],
        "hv_curves_random": [[float(e) for e in c] for c in random_curves],
        "hv_curves_warm": [[float(e) for e in c] for c in warm_curves],
    }


def _report(tag: str, res: dict) -> None:
    print(f"\n=== Copula warm start ({tag}) ===")
    print(f"pools   : {res['n_source']} source / {res['n_pool']} target, "
          f"budget {res['budget']} tool runs x {res['repeats']} repeats")
    print(f"random  : runs-to-target {res['runs_random']}, "
          f"final hv_error "
          f"{[round(e, 4) for e in res['hv_final_random']]}")
    print(f"copula  : runs-to-target {res['runs_warm']}, "
          f"final hv_error "
          f"{[round(e, 4) for e in res['hv_final_warm']]}")
    print(f"tool-run ratio : {res['run_ratio']:.2f}x "
          f"(target hv_error={res['target_hv_error']:.4f})")


FULL = dict(n_source=120, n_pool=200, budget=18, repeats=5)
SMOKE = dict(n_source=120, n_pool=200, budget=18, repeats=4)


def test_warm_start_reaches_target_faster(benchmark):
    res = benchmark.pedantic(
        lambda: compare(**FULL), rounds=1, iterations=1, warmup_rounds=0
    )
    _report("full", res)
    assert res["run_ratio"] >= MIN_RUN_RATIO


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced repeats for CI (same >= 1.5x tool-run gate)",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=MIN_RUN_RATIO,
        help="override the required tool-run ratio",
    )
    args = parser.parse_args()
    from _util import write_bench_json

    params = SMOKE if args.smoke else FULL
    res = compare(**params)
    _report("smoke" if args.smoke else "full", res)
    passed = res["run_ratio"] >= args.min_ratio
    payload = {k: v for k, v in res.items()
               if not k.startswith("hv_curves")}
    write_bench_json(
        "copula",
        {"gate": args.min_ratio, "passed": passed, **payload,
         "hv_curves_random": res["hv_curves_random"],
         "hv_curves_warm": res["hv_curves_warm"]},
    )
    if not passed:
        print(f"FAIL: tool-run ratio {res['run_ratio']:.2f}x < "
              f"required {args.min_ratio}x")
        return 1
    print(f"OK: warm start reaches the random arms' final hv_error in "
          f"{res['run_ratio']:.2f}x fewer tool runs")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
