"""Ablation (extension): multi-source vs single-source transfer models.

Compares surrogate accuracy on Target2 power with 25 target samples:
target-only GP, the paper's two-task transfer GP, and the multi-source
extension fed one related and one hostile archive.  The multi-source
model should match or beat two-task transfer while isolating the hostile
archive (lambda near -1 exploits anti-correlation rather than suffering
from it).
"""

from __future__ import annotations

import numpy as np

from repro.bench import generate_benchmark
from repro.gp import GPRegressor, MultiSourceTransferGP, TransferGP

from _util import run_once


def test_ablation_multisource_transfer(benchmark):
    def run():
        source = generate_benchmark("source2")
        target = generate_benchmark("target2")
        rng = np.random.default_rng(0)

        stacked = np.vstack([source.X, target.X])
        lo, hi = stacked.min(axis=0), stacked.max(axis=0)
        span = np.where(hi > lo, hi - lo, 1.0)

        src_idx = rng.choice(source.n, 150, replace=False)
        Xs = (source.X[src_idx] - lo) / span
        ys = source.metric_column("power")[src_idx]
        ys_bad = ys.max() + ys.min() - ys

        tgt_idx = rng.choice(target.n, 25, replace=False)
        Xt = (target.X[tgt_idx] - lo) / span
        yt = target.metric_column("power")[tgt_idx]
        hold = np.setdiff1d(np.arange(target.n), tgt_idx)[:300]
        Xq = (target.X[hold] - lo) / span
        yq = target.metric_column("power")[hold]

        def rmse(model_mean):
            return float(np.sqrt(np.mean((model_mean - yq) ** 2)))

        solo = GPRegressor(seed=0).fit(Xt, yt)
        two = TransferGP(seed=0).fit(Xs, ys, Xt, yt)
        multi = MultiSourceTransferGP(seed=0).fit(
            [(Xs, ys), (Xs, ys_bad)], Xt, yt
        )
        return {
            "target-only": (rmse(solo.predict(Xq)[0]), None),
            "two-task": (rmse(two.predict(Xq)[0]), [two.lam]),
            "multi-source": (
                rmse(multi.predict(Xq)[0]), list(multi.lambdas),
            ),
        }

    rows = run_once(benchmark, run)

    print("\n=== Ablation: multi-source transfer (Target2 power) ===")
    for name, (rmse, lams) in rows.items():
        lam_text = (
            "  lambdas=" + ", ".join(f"{v:+.3f}" for v in lams)
            if lams else ""
        )
        print(f"{name:<14} RMSE={rmse:.4f}{lam_text}")

    assert rows["two-task"][0] <= rows["target-only"][0] * 1.05
    assert rows["multi-source"][0] <= rows["target-only"][0] * 1.05
    # The hostile archive must be detected (negative lambda).
    assert rows["multi-source"][1][1] < 0
