"""Shared helpers for the paper-reproduction benchmarks.

Scale control
-------------
The benches default to reduced scale so the whole suite regenerates every
table and figure in minutes:

- ``PPATUNER_BENCH_SCALE``: target-pool subsample for the Scenario One
  bench (default 600; ``full`` = the paper's 5000 points).
- ``PPATUNER_FULL=1``: paper-scale MAC designs (see DESIGN.md §2).

Every bench prints the regenerated table/series to stdout (run pytest
with ``-s`` to see them) and records wall-time via pytest-benchmark.
"""

from __future__ import annotations

import os

import numpy as np

from repro.bench import generate_benchmark
from repro.core import PoolOracle, PPATuner, PPATunerConfig
from repro.experiments import evaluate_outcome


def scenario_one_scale() -> int | None:
    """Pool scale for Scenario One benches (None = paper 5000)."""
    raw = os.environ.get("PPATUNER_BENCH_SCALE", "600")
    if raw.strip().lower() == "full":
        return None
    return int(raw)


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def ppatuner_outcome(
    target_name: str,
    source_name: str,
    names: tuple[str, ...],
    config: PPATunerConfig,
    scale: int | None = None,
    seed: int = 0,
    n_source: int = 200,
):
    """Run PPATuner once on a benchmark pair and score it."""
    source = generate_benchmark(source_name)
    target = generate_benchmark(target_name)
    if scale is not None:
        target = target.subsample(scale, seed=seed)
    rng = np.random.default_rng(seed)
    src_idx = rng.choice(source.n, min(n_source, source.n), replace=False)
    oracle = PoolOracle(target.objectives(names))
    result = PPATuner(config).tune(
        target.X, oracle,
        X_source=source.X[src_idx],
        Y_source=source.objectives(names)[src_idx],
    )
    return evaluate_outcome(
        "PPATuner", "-".join(names), result, target, names
    )
