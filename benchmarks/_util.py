"""Shared helpers for the paper-reproduction benchmarks.

Scale control
-------------
The benches default to reduced scale so the whole suite regenerates every
table and figure in minutes:

- ``PPATUNER_BENCH_SCALE``: target-pool subsample for the Scenario One
  bench (default 600; ``full`` = the paper's 5000 points).
- ``PPATUNER_FULL=1``: paper-scale MAC designs (see DESIGN.md §2).
- ``PPATUNER_WORKERS``: process count for cell fan-out (benches pass it
  through :func:`bench_workers` into the experiment runner).

Every bench prints the regenerated table/series to stdout (run pytest
with ``-s`` to see them) and records wall-time via pytest-benchmark.
All tuning cells execute through :class:`repro.runner.ExperimentRunner`,
the same code path as the CLI, so serial and parallel runs agree
bit-for-bit.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from repro.core import PPATunerConfig
from repro.runner import (
    DatasetRef,
    ExperimentRunner,
    RunJob,
    RunSpec,
    config_fingerprint,
    runner_workers,
)


def scenario_one_scale() -> int | None:
    """Pool scale for Scenario One benches (None = paper 5000)."""
    raw = os.environ.get("PPATUNER_BENCH_SCALE", "600")
    if raw.strip().lower() == "full":
        return None
    return int(raw)


def bench_workers() -> int:
    """Worker count for bench fan-out (``PPATUNER_WORKERS`` convention)."""
    return runner_workers(None)


def write_bench_json(name: str, payload: dict) -> Path:
    """Emit the machine-readable CI artifact ``BENCH_<name>.json``.

    Every CI-gated benchmark writes one of these next to its stdout
    report (speedup, rounds-to-target, wall-clock — whatever the gate
    measured), and the workflow uploads them so regressions can be
    charted across runs without scraping logs.  The output directory
    follows ``PPATUNER_BENCH_JSON_DIR`` (default: the working dir).
    """
    out_dir = Path(os.environ.get("PPATUNER_BENCH_JSON_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=float)
        + "\n"
    )
    print(f"bench artifact: {path}")
    return path


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def tune_job(
    target_name: str,
    source_name: str | None,
    names: tuple[str, ...],
    config: PPATunerConfig,
    scale: int | None = None,
    seed: int = 0,
    n_source: int = 200,
) -> RunJob:
    """Build one runner ``tune`` cell for a configured PPATuner run.

    Datasets travel as :class:`DatasetRef`s, so parallel workers load
    them from the benchmark cache by name instead of unpickling arrays.
    """
    target_ref = DatasetRef(
        target_name, subsample=scale, subsample_seed=seed
    )
    source_ref = DatasetRef(source_name) if source_name else None
    spec = RunSpec(
        kind="tune",
        scenario="bench_tune",
        method="PPATuner",
        objective_space="-".join(names),
        objectives=tuple(names),
        n_source=n_source if source_ref is not None else 0,
        seed=seed,
        source_id=source_ref.label if source_ref else "",
        target_id=target_ref.label,
        config_fingerprint=config_fingerprint(config),
    )
    return RunJob(
        spec=spec, source=source_ref, target=target_ref, ppa_config=config
    )


def ppatuner_outcomes(jobs, workers: int | None = None):
    """Execute ``tune`` cells through the experiment runner, fanned out.

    Results come back in submission order; ``workers=None`` follows the
    ``PPATUNER_WORKERS`` convention.
    """
    runner = ExperimentRunner(workers=workers, memo=None)
    return [record.outcome for record in runner.run(list(jobs))]


def ppatuner_outcome(
    target_name: str,
    source_name: str,
    names: tuple[str, ...],
    config: PPATunerConfig,
    scale: int | None = None,
    seed: int = 0,
    n_source: int = 200,
):
    """Run PPATuner once on a benchmark pair and score it."""
    job = tune_job(
        target_name, source_name, names, config,
        scale=scale, seed=seed, n_source=n_source,
    )
    return ppatuner_outcomes([job], workers=1)[0]
