"""Reliability-layer gates: overhead, bit-identity, and chaos replay.

Two gates, both runnable standalone or under pytest-benchmark:

1. **No-fault overhead** — the identical PPATuner loop runs twice per
   round, once with the resilience layer disabled
   (``fault_policy=None``: the oracle is never wrapped) and once behind
   a :class:`~repro.reliability.ResilientOracle` with the default
   :class:`~repro.reliability.FaultPolicy`.  The wrapped arm must cost
   <= 5% extra wall time, estimated exactly like ``bench_obs``: the
   smaller of the best-of-N ratio and the paired per-round median, so
   noise can only over-state the overhead.  Every wrapped round must
   also return the bit-identical Pareto set — the gate cannot pass by
   skipping work.

2. **Chaos bit-identity** (``--chaos``) — one scenario cell runs
   fault-free, then again with ``PPATUNER_FAULT_SEED`` set so every
   evaluation may raise deterministic transient faults (memoization
   disabled, so nothing is served from cache).  The retried run must
   reproduce the fault-free run's Pareto indices exactly: transient
   faults are invisible in the results, visible only in the event
   stream.

Usage:
    pytest benchmarks/bench_reliability.py         # via pytest-benchmark
    PYTHONPATH=src python benchmarks/bench_reliability.py --smoke
    PYTHONPATH=src python benchmarks/bench_reliability.py --chaos
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from repro.core import PoolOracle, PPATuner, PPATunerConfig
from repro.pareto import non_dominated_mask
from repro.reliability import (
    TRANSIENT_KINDS,
    FaultInjectingOracle,
    FaultPlan,
    FaultPolicy,
)

FULL = dict(n_pool=200, iters=35, rounds=7)
SMOKE = dict(n_pool=120, iters=20, rounds=4)

#: Maximum resilience-layer overhead (fraction of bare-oracle time).
MAX_OVERHEAD = 0.05

#: Fault seed for the chaos gate (any value works; fixed for repro).
CHAOS_SEED = 97


def make_pool(n_pool: int, seed: int = 0):
    """Deterministic synthetic bi-objective pool with a real trade-off
    (same generator as ``bench_obs``)."""
    rng = np.random.default_rng(seed)
    X = rng.uniform(size=(n_pool, 4))
    f1 = X[:, 0] + 0.5 * X[:, 1] ** 2 + 0.05 * rng.normal(size=n_pool)
    f2 = (1 - X[:, 0]) + 0.5 * X[:, 2] ** 2 + 0.05 * rng.normal(
        size=n_pool
    )
    Y = np.column_stack([f1, f2])
    Xs = rng.uniform(size=(80, 4))
    Ys = np.column_stack([
        Xs[:, 0] + 0.5 * Xs[:, 1] ** 2,
        (1 - Xs[:, 0]) + 0.5 * Xs[:, 2] ** 2,
    ])
    return X, Y, Xs, Ys


def run_tune(n_pool: int, iters: int, policy: FaultPolicy | None):
    """One tuning run; returns (elapsed_seconds, result)."""
    X, Y, Xs, Ys = make_pool(n_pool)
    config = PPATunerConfig(
        max_iterations=iters, seed=7, fault_policy=policy
    )
    tuner = PPATuner(config)
    oracle = PoolOracle(Y)
    start = time.perf_counter()
    result = tuner.tune(X, oracle, X_source=Xs, Y_source=Ys)
    return time.perf_counter() - start, result


def compare(*, n_pool: int, iters: int, rounds: int) -> dict:
    """Paired timing, bare oracle vs ResilientOracle, with a
    bit-identity check on every wrapped round."""
    t_bare: list[float] = []
    t_wrapped: list[float] = []
    policy = FaultPolicy()
    run_tune(n_pool, iters, None)  # warmup: imports, numpy caches
    _, baseline = run_tune(n_pool, iters, None)
    for r in range(rounds):
        # Alternate arm order so drift hits both arms equally.
        arms = ("bare", "wrapped") if r % 2 == 0 else ("wrapped", "bare")
        for arm in arms:
            if arm == "bare":
                elapsed, _ = run_tune(n_pool, iters, None)
                t_bare.append(elapsed)
                continue
            elapsed, result = run_tune(n_pool, iters, policy)
            t_wrapped.append(elapsed)
            assert list(result.pareto_indices) == list(
                baseline.pareto_indices
            ), "resilience layer changed the Pareto set without faults"
            assert result.n_failed_evaluations == 0
            assert result.quarantined_indices.size == 0
    best_bare = min(t_bare)
    best_wrapped = min(t_wrapped)
    best_of = (best_wrapped - best_bare) / best_bare
    pair_overheads = sorted(
        (w - b) / b for w, b in zip(t_wrapped, t_bare)
    )
    paired_median = pair_overheads[len(pair_overheads) // 2]
    return {
        "rounds": rounds,
        "best_bare": best_bare,
        "best_wrapped": best_wrapped,
        "best_of": best_of,
        "paired_median": paired_median,
        "overhead": min(best_of, paired_median),
    }


def chaos_check(n_pool: int = 140, seed: int = 11) -> dict:
    """Seeded transient faults must not change the outcome.

    Runs the same pool twice through a scenario cell — fault-free, then
    with ``PPATUNER_FAULT_SEED`` exported so the cell oracle injects a
    deterministic transient/latency fault schedule — and asserts the
    Pareto indices and evaluation sets match exactly.  Memoization is
    off, so the second run cannot trivially pass via the memo store.
    """
    from repro.bench.dataset import BenchmarkDataset
    from repro.bench.spaces import SPACES
    from repro.experiments.scenarios import run_scenario
    from repro.runner import ExperimentRunner
    from repro.space.sampling import latin_hypercube

    def synth(name: str, pool_seed: int) -> BenchmarkDataset:
        space = SPACES["target2"]()
        configs = latin_hypercube(space, n_pool, seed=pool_seed)
        X = space.encode_many(configs)
        rng = np.random.default_rng(pool_seed)
        Y = rng.random((n_pool, 3)) + 0.5
        return BenchmarkDataset(name, space, configs, X, Y, "small")

    source = synth("chaos-src", 1)
    target = synth("chaos-tgt", 2)
    spaces = {"power-delay": ("power", "delay")}

    def run(fault_seed: int | None):
        prev = os.environ.pop("PPATUNER_FAULT_SEED", None)
        if fault_seed is not None:
            os.environ["PPATUNER_FAULT_SEED"] = str(fault_seed)
        try:
            return run_scenario(
                source, target, "chaos-smoke", "target2",
                methods=("PPATuner",), objective_spaces=spaces,
                seed=seed, runner=ExperimentRunner(workers=1, memo=None),
            )
        finally:
            os.environ.pop("PPATUNER_FAULT_SEED", None)
            if prev is not None:
                os.environ["PPATUNER_FAULT_SEED"] = prev

    clean = run(None)
    chaotic = run(CHAOS_SEED)
    cells = 0
    for a, b in zip(clean.outcomes, chaotic.outcomes):
        assert list(a.result.pareto_indices) == list(
            b.result.pareto_indices
        ), f"chaos run diverged on {a.method}/{a.objective_space}"
        assert list(a.result.evaluated_indices) == list(
            b.result.evaluated_indices
        )
        assert b.result.quarantined_indices.size == 0
        # The verified front must be mutually non-dominated every
        # round, faulted or not — dominated survivors of golden
        # verification are a bug, not noise.
        for outcome in (a, b):
            assert non_dominated_mask(
                outcome.result.pareto_points
            ).all(), (
                f"dominated point in reported front on "
                f"{outcome.method}/{outcome.objective_space}"
            )
        cells += 1

    # The schedule must actually contain faults at this pool size, or
    # the identity above is vacuous.  Check the plan directly.
    plan = FaultPlan.seeded(
        CHAOS_SEED, n_pool, rate=0.05, kinds=TRANSIENT_KINDS
    )
    n_planned = len(plan.faults)
    assert n_planned > 0, "chaos plan injected nothing; raise the rate"
    oracle = FaultInjectingOracle(
        PoolOracle(np.ones((n_pool, 2))), plan, latency_s=0.0
    )
    for idx, _ in plan.faults:
        try:
            oracle.evaluate(idx)
        except Exception:
            pass
    n_fired = sum(oracle.injected.values())
    assert n_fired > 0, "no fault fired despite a non-empty plan"
    return {"cells": cells, "planned": n_planned, "fired": n_fired}


def _report(tag: str, res: dict) -> None:
    print(f"\n=== Resilience overhead ({tag}) ===")
    print(f"bare oracle     : {res['best_bare']:8.3f} s (best of "
          f"{res['rounds']})")
    print(f"resilient oracle: {res['best_wrapped']:8.3f} s")
    print(f"overhead        : {res['overhead'] * 100:8.2f} %  "
          f"(best-of {res['best_of'] * 100:.2f}%, paired median "
          f"{res['paired_median'] * 100:.2f}%; gate: <= "
          f"{MAX_OVERHEAD * 100:.0f}%, bit-identity verified)")


def test_resilience_overhead(benchmark):
    res = benchmark.pedantic(
        lambda: compare(**FULL), rounds=1, iterations=1, warmup_rounds=0
    )
    _report("full", res)
    assert res["overhead"] <= MAX_OVERHEAD


def test_chaos_bit_identity(benchmark):
    res = benchmark.pedantic(
        chaos_check, rounds=1, iterations=1, warmup_rounds=0
    )
    print(f"\nchaos: {res['cells']} cell(s) identical under "
          f"{res['planned']} planned / {res['fired']} fired faults")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced pool for CI (same gate)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="run only the seeded-fault bit-identity check",
    )
    parser.add_argument(
        "--max-overhead", type=float, default=MAX_OVERHEAD,
        help="override the overhead gate (fraction, default 0.05)",
    )
    args = parser.parse_args()
    from _util import write_bench_json

    if args.chaos:
        res = chaos_check()
        print(f"chaos: {res['cells']} cell(s) identical under "
              f"{res['planned']} planned / {res['fired']} fired faults")
        write_bench_json(
            "reliability_chaos", {"passed": True, **res}
        )
        print("PASS")
        return 0
    params = SMOKE if args.smoke else FULL
    res = compare(**params)
    _report("smoke" if args.smoke else "full", res)
    passed = res["overhead"] <= args.max_overhead
    write_bench_json(
        "reliability",
        {"gate": args.max_overhead, "passed": passed, **res},
    )
    if not passed:
        print(f"FAIL: resilience overhead {res['overhead'] * 100:.2f}% > "
              f"{args.max_overhead * 100:.0f}%")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
