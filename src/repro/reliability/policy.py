"""The one resilience knob-set: :class:`FaultPolicy`.

Every layer that tolerates evaluation faults — the
:class:`~repro.reliability.ResilientOracle` wrapper, the tuning loop's
quarantine/fallback logic, the CLI flags, the experiment cells — is
configured by this single frozen dataclass carried on
:class:`~repro.core.config.PPATunerConfig`.  There are deliberately no
per-module retry knobs or ad-hoc kwargs; change the policy, and every
layer follows.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields

__all__ = ["FaultPolicy"]


@dataclass(frozen=True)
class FaultPolicy:
    """How the evaluation layer treats tool failures.

    Attributes:
        max_retries: Retries per ``evaluate`` call after the first
            attempt (0 = fail on the first transient error).
        timeout_s: Per-call wall-clock timeout in seconds; ``None``
            disables the timeout entirely (no watcher thread is
            started, keeping the no-fault path allocation-free).
        backoff_base: First-retry backoff in seconds; retry ``k`` waits
            ``backoff_base * 2**k`` scaled by deterministic jitter in
            ``[0.5, 1.0]`` derived from the run seed (never wall-clock).
        breaker_threshold: Consecutive *permanent* failures that trip
            the circuit breaker open.
        breaker_cooldown: Fast-fail rejections served while open before
            the breaker half-opens and lets one probe call through.
            Call-count based (not time based) so breaker behavior is
            deterministic and replayable.
        on_permanent_failure: ``"quarantine"`` removes the failed
            candidate from the tuning loop and falls back to the
            next-largest-diameter point; ``"raise"`` propagates the
            :class:`~repro.reliability.errors.PermanentEvaluationError`.
    """

    max_retries: int = 2
    timeout_s: float | None = None
    backoff_base: float = 0.05
    breaker_threshold: int = 5
    breaker_cooldown: int = 8
    on_permanent_failure: str = "quarantine"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive (or None)")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be >= 0")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown < 1:
            raise ValueError("breaker_cooldown must be >= 1")
        if self.on_permanent_failure not in ("quarantine", "raise"):
            raise ValueError(
                "on_permanent_failure must be 'quarantine' or 'raise'"
            )

    def to_json(self) -> dict:
        """Flat JSON-serializable dict (CLI/spec transport)."""
        return asdict(self)

    @classmethod
    def from_json(cls, payload: dict) -> "FaultPolicy":
        """Rebuild from :meth:`to_json` output (unknown keys ignored)."""
        names = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in names})
