"""Failure taxonomy of the evaluation layer.

Every failure the resilience machinery reasons about is an
:class:`EvaluationError`.  The split that matters operationally is
*transient* vs. *permanent*:

- :class:`TransientEvaluationError` (and its :class:`EvaluationTimeout`
  subclass) marks a failure worth retrying — a dropped license, a hung
  job, a garbage QoR report.  :class:`~repro.reliability.ResilientOracle`
  retries these with deterministic backoff.
- :class:`PermanentEvaluationError` means the retry budget is exhausted
  (or the failure is known unrecoverable); it carries the candidate
  index and the attempt count so the tuning loop can quarantine the
  point and fall back to the next-largest-diameter candidate.
- :class:`CircuitOpenError` is the breaker's fast-fail: *systemic*
  rather than per-candidate, so the loop skips the call without blaming
  (quarantining) the candidate.
"""

from __future__ import annotations

__all__ = [
    "CircuitOpenError",
    "EvaluationError",
    "EvaluationTimeout",
    "PermanentEvaluationError",
    "TransientEvaluationError",
]


class EvaluationError(RuntimeError):
    """Base class of every evaluation-layer failure."""


class TransientEvaluationError(EvaluationError):
    """A retryable failure (dropped license, flaky report, ...)."""


class EvaluationTimeout(TransientEvaluationError):
    """The per-call timeout elapsed before the tool returned."""


class PermanentEvaluationError(EvaluationError):
    """A candidate's evaluation failed beyond recovery.

    Attributes:
        index: Pool candidate index that failed.
        attempts: Evaluation attempts consumed (1 + retries).
    """

    def __init__(
        self, message: str, index: int = -1, attempts: int = 0
    ) -> None:
        super().__init__(message)
        self.index = int(index)
        self.attempts = int(attempts)


class CircuitOpenError(PermanentEvaluationError):
    """Fast-fail: the circuit breaker is open, no call was attempted.

    Subclasses :class:`PermanentEvaluationError` so callers that only
    distinguish retryable/fatal keep working, but the tuning loop treats
    it as systemic — the rejected candidate is *not* quarantined.
    """
