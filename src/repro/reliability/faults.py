"""Deterministic fault injection for chaos-testing the tuning stack.

:class:`FaultInjectingOracle` wraps a real oracle and injects failures
according to a :class:`FaultPlan` — a seeded, immutable schedule mapping
candidate indices to fault sequences.  Because the plan is derived from
a seed (never wall-clock or global RNG state), a chaos run is exactly
reproducible: the same seed yields the same faults at the same indices,
which is what lets CI assert that a fault-injected tuning run recovers
to *bit-identical* Pareto indices versus the fault-free run.

Fault kinds:

- ``"transient"`` — raise :class:`TransientEvaluationError` once, then
  succeed (a dropped license / flaky report).
- ``"persistent"`` — raise on *every* attempt, exhausting the retry
  budget into a :class:`~repro.reliability.errors.PermanentEvaluationError`.
- ``"nan"`` — return an all-NaN QoR vector once (failed run wearing a
  return value; :class:`~repro.reliability.ResilientOracle` retries it).
- ``"partial"`` — return the true QoR with one metric NaN'd out (a
  partially parsed report; the loop imputes it).
- ``"latency"`` — sleep ``latency_s`` then delegate (a slow job; trips
  the timeout when one is configured, otherwise just adds wall time).
- ``"crash"`` — ``os._exit(13)``: kill the worker process outright
  (pool-worker chaos; only ever use inside a sacrificial subprocess).

``TRANSIENT_KINDS`` holds the value-preserving kinds — the ones a
:class:`~repro.reliability.ResilientOracle` fully absorbs, so injected
runs still produce bit-identical results.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from .errors import TransientEvaluationError

__all__ = [
    "FAULT_KINDS",
    "TRANSIENT_KINDS",
    "FaultInjectingOracle",
    "FaultPlan",
]

#: Every fault kind the injector understands.
FAULT_KINDS: tuple[str, ...] = (
    "transient",
    "persistent",
    "nan",
    "partial",
    "latency",
    "crash",
)

#: Value-preserving kinds a ResilientOracle absorbs without changing
#: any observed QoR — safe for bit-identity chaos checks.
TRANSIENT_KINDS: tuple[str, ...] = ("transient", "latency")


@dataclass(frozen=True)
class FaultPlan:
    """Immutable schedule: which candidates fail, how, in what order.

    Attributes:
        faults: ``((index, (kind, ...)), ...)`` — for each listed
            candidate, the fault kinds consumed left-to-right across its
            successive evaluation attempts.
    """

    faults: tuple[tuple[int, tuple[str, ...]], ...] = ()

    def __post_init__(self) -> None:
        for index, kinds in self.faults:
            for kind in kinds:
                if kind not in FAULT_KINDS:
                    raise ValueError(
                        f"unknown fault kind {kind!r} for index {index}"
                    )

    @classmethod
    def seeded(
        cls,
        seed: int,
        n_candidates: int,
        rate: float = 0.1,
        kinds: tuple[str, ...] = ("transient",),
    ) -> "FaultPlan":
        """Sample a reproducible plan from ``seed``.

        Each candidate independently faults with probability ``rate``;
        a faulting candidate is assigned one kind drawn uniformly from
        ``kinds``.

        Args:
            seed: Plan seed (same seed -> same plan, always).
            n_candidates: Pool size to sample over.
            rate: Per-candidate fault probability.
            kinds: Fault kinds to draw from.
        """
        rng = np.random.default_rng(np.random.SeedSequence(int(seed)))
        faults = []
        for index in range(int(n_candidates)):
            if rng.random() < rate:
                kind = kinds[int(rng.integers(len(kinds)))]
                faults.append((index, (kind,)))
        return cls(faults=tuple(faults))

    def for_index(self, index: int) -> tuple[str, ...]:
        """Fault kinds scheduled for ``index`` (empty if none)."""
        for idx, kinds in self.faults:
            if idx == index:
                return kinds
        return ()


class FaultInjectingOracle:
    """Oracle decorator that injects the faults scheduled in a plan.

    Satisfies the Oracle protocol; stack it *inside* a
    :class:`~repro.reliability.ResilientOracle` so the resilience layer
    is what gets exercised.

    Attributes:
        inner: The wrapped oracle.
        plan: The governing :class:`FaultPlan`.
        latency_s: Sleep injected by ``"latency"`` faults.
        injected: Per-kind count of faults actually fired so far.
    """

    def __init__(
        self,
        oracle,
        plan: FaultPlan,
        latency_s: float = 0.05,
    ) -> None:
        self.inner = oracle
        self.plan = plan
        self.latency_s = float(latency_s)
        self.injected: dict[str, int] = {k: 0 for k in FAULT_KINDS}
        self._queues: dict[int, list[str]] = {}
        self._arm()

    def _arm(self) -> None:
        self._queues = {
            idx: list(kinds) for idx, kinds in self.plan.faults
        }

    # ------------------------------------------------------------------
    # Oracle protocol

    @property
    def n_candidates(self) -> int:
        """Pool size of the wrapped oracle."""
        return self.inner.n_candidates

    @property
    def n_objectives(self) -> int:
        """QoR metric count of the wrapped oracle."""
        return self.inner.n_objectives

    @property
    def n_evaluations(self) -> int:
        """Distinct tool runs of the wrapped oracle."""
        return self.inner.n_evaluations

    @property
    def recorder(self):
        """The wrapped oracle's recorder (proxied verbatim)."""
        return getattr(self.inner, "recorder", None)

    @recorder.setter
    def recorder(self, rec) -> None:
        if hasattr(self.inner, "recorder"):
            self.inner.recorder = rec

    def reset(self) -> None:
        """Reset the wrapped oracle and re-arm the full fault plan."""
        self.inner.reset()
        self.injected = {k: 0 for k in FAULT_KINDS}
        self._arm()

    def evaluate(self, index: int) -> np.ndarray:
        """Evaluate ``index``, firing any scheduled fault first."""
        index = int(index)
        queue = self._queues.get(index)
        if not queue:
            return np.asarray(self.inner.evaluate(index), dtype=float)
        kind = queue[0]
        if kind == "persistent":
            # Never consumed: fails every attempt until the caller's
            # retry budget runs out.
            self.injected[kind] += 1
            raise TransientEvaluationError(
                f"injected persistent fault at candidate {index}"
            )
        queue.pop(0)
        self.injected[kind] += 1
        if kind == "transient":
            raise TransientEvaluationError(
                f"injected transient fault at candidate {index}"
            )
        if kind == "crash":
            os._exit(13)
        if kind == "latency":
            time.sleep(self.latency_s)
            return np.asarray(self.inner.evaluate(index), dtype=float)
        value = np.asarray(self.inner.evaluate(index), dtype=float)
        if kind == "nan":
            return np.full_like(value, np.nan)
        # kind == "partial": NaN out one metric, keep the rest.
        value = value.copy()
        value[index % max(1, value.size)] = np.nan
        return value

    def evaluate_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate`; rows follow ``indices`` order."""
        return np.vstack([self.evaluate(int(i)) for i in indices])
