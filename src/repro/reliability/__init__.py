"""Fault-tolerant evaluation layer (retry, breaker, fault injection).

Public surface:

- :class:`FaultPolicy` — the single knob-set, carried on
  :class:`~repro.core.config.PPATunerConfig` and exposed as CLI flags.
- :class:`ResilientOracle` — retry/timeout/circuit-breaker decorator
  over any oracle.
- :class:`FaultPlan` / :class:`FaultInjectingOracle` — seeded,
  reproducible chaos injection for tests, benchmarks and CI.
- The :mod:`~repro.reliability.errors` taxonomy.

See DESIGN.md §10 for the failure taxonomy and how quarantine interacts
with the paper's δ-decision rules (Eq. (11)–(12)).
"""

from .errors import (
    CircuitOpenError,
    EvaluationError,
    EvaluationTimeout,
    PermanentEvaluationError,
    TransientEvaluationError,
)
from .faults import (
    FAULT_KINDS,
    TRANSIENT_KINDS,
    FaultInjectingOracle,
    FaultPlan,
)
from .policy import FaultPolicy
from .resilient import ResilientOracle

__all__ = [
    "FAULT_KINDS",
    "TRANSIENT_KINDS",
    "CircuitOpenError",
    "EvaluationError",
    "EvaluationTimeout",
    "FaultInjectingOracle",
    "FaultPlan",
    "FaultPolicy",
    "PermanentEvaluationError",
    "ResilientOracle",
    "TransientEvaluationError",
]
