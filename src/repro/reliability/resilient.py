"""Fault-tolerant decorator around any :class:`~repro.core.oracle.Oracle`.

:class:`ResilientOracle` adds three production behaviors to an oracle
without touching its contract:

- **Bounded retry with deterministic backoff.**  Transient failures
  (anything in ``retryable``, plus an all-NaN QoR vector, plus per-call
  timeouts) are retried up to ``policy.max_retries`` times.  Backoff is
  exponential with jitter drawn from
  ``SeedSequence(seed, spawn_key=(index, attempt))`` — *never* from
  wall-clock or a shared RNG — so the wait schedule for a given run
  seed is reproducible across processes (and asserted so in tests).
- **Per-call timeout.**  When ``policy.timeout_s`` is set, each inner
  call runs on a watcher thread and is abandoned (daemon) once the
  deadline passes, surfacing as a retryable
  :class:`~repro.reliability.errors.EvaluationTimeout`.  Unset, no
  thread is ever created — the no-fault path stays allocation-free.
- **A circuit breaker.**  ``policy.breaker_threshold`` *consecutive*
  permanent failures open the circuit; while open, calls fast-fail with
  :class:`~repro.reliability.errors.CircuitOpenError` (no tool
  invocation).  After ``policy.breaker_cooldown`` rejections the
  breaker half-opens and lets one probe through: success closes it,
  failure re-opens.  Cooldown is call-count based, keeping the state
  machine deterministic and replayable.

Every retry, breaker transition and wait lands in the
:mod:`repro.obs` event stream (:class:`EvaluationRetry`,
:class:`CircuitStateChange`) when a recorder is attached.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..obs.events import CircuitStateChange, EvaluationRetry
from ..obs.recorder import NULL_RECORDER
from .errors import (
    CircuitOpenError,
    EvaluationTimeout,
    PermanentEvaluationError,
    TransientEvaluationError,
)
from .policy import FaultPolicy

__all__ = ["ResilientOracle"]

_SEED_MASK = 0xFFFFFFFFFFFFFFFF


class ResilientOracle:
    """Retry + timeout + circuit-breaker wrapper over any oracle.

    Satisfies the :class:`~repro.core.oracle.Oracle` protocol itself, so
    it drops into ``PPATuner.tune`` and every baseline unchanged.

    Attributes:
        inner: The wrapped oracle.
        policy: The governing :class:`FaultPolicy`.
        seed: Base seed of the deterministic backoff jitter.
        state: Breaker state (``"closed"``/``"open"``/``"half_open"``).
        n_retries: Retries performed so far.
        n_failures: Permanent (retry-exhausted) failures so far.
        n_timeouts: Timed-out attempts so far.
        n_rejections: Fast-fail rejections served while open.
        backoff_log: ``(index, attempt, wait_s)`` of every backoff — the
            deterministic schedule tests assert on.
    """

    def __init__(
        self,
        oracle,
        policy: FaultPolicy | None = None,
        seed: int = 0,
        recorder=None,
        sleep=time.sleep,
        retryable: tuple[type[BaseException], ...] = (
            TransientEvaluationError,
        ),
    ) -> None:
        """Wrap ``oracle``.

        Args:
            oracle: Any object satisfying the Oracle protocol.
            policy: Resilience knobs; defaults to ``FaultPolicy()``.
            seed: Base seed for backoff jitter (use the run seed).
            recorder: Optional trace recorder for retry/breaker events;
                defaults to the wrapped oracle's recorder so reliability
                events join the same stream as its tool evaluations.
            sleep: Backoff sleep function (injectable for tests).
            retryable: Exception types treated as transient.  Timeouts
                and all-NaN QoR vectors are always retryable.
        """
        self.inner = oracle
        self.policy = policy if policy is not None else FaultPolicy()
        self.seed = int(seed)
        self._sleep = sleep
        self._retryable = tuple(retryable)
        self.state = "closed"
        self.n_retries = 0
        self.n_failures = 0
        self.n_timeouts = 0
        self.n_rejections = 0
        self.backoff_log: list[tuple[int, int, float]] = []
        self._consecutive = 0
        self._open_rejections = 0
        self._recorder = NULL_RECORDER
        if recorder is not None:
            self.recorder = recorder
        else:
            inherited = getattr(oracle, "recorder", None)
            if inherited:
                self._recorder = inherited

    # ------------------------------------------------------------------
    # Oracle protocol (proxied)

    @property
    def n_candidates(self) -> int:
        """Pool size of the wrapped oracle."""
        return self.inner.n_candidates

    @property
    def n_objectives(self) -> int:
        """QoR metric count of the wrapped oracle."""
        return self.inner.n_objectives

    @property
    def n_evaluations(self) -> int:
        """Distinct tool runs of the wrapped oracle."""
        return self.inner.n_evaluations

    @property
    def recorder(self):
        """Trace recorder for retry/breaker events.

        Setting it also adopts the recorder into the wrapped oracle when
        that oracle has no live stream of its own (mirroring
        ``PPATuner.tune``'s adoption), so one trace file carries the
        evaluations *and* their retries.
        """
        return self._recorder

    @recorder.setter
    def recorder(self, rec) -> None:
        rec = rec if rec is not None else NULL_RECORDER
        if hasattr(self.inner, "recorder"):
            inner_rec = self.inner.recorder
            if not inner_rec or inner_rec is self._recorder:
                self.inner.recorder = rec
        self._recorder = rec

    def reset(self) -> None:
        """Reset the wrapped oracle and the breaker/fault counters."""
        self.inner.reset()
        self.state = "closed"
        self._consecutive = 0
        self._open_rejections = 0

    def evaluate(self, index: int) -> np.ndarray:
        """Evaluate ``index`` with retry/timeout/breaker protection.

        Raises:
            CircuitOpenError: Fast-fail while the breaker is open.
            PermanentEvaluationError: Retry budget exhausted.
        """
        index = int(index)
        self._admit(index)
        attempt = 0
        while True:
            try:
                value = self._attempt(index)
            except self._retryable as exc:
                attempt += 1
                if isinstance(exc, EvaluationTimeout):
                    self.n_timeouts += 1
                if attempt > self.policy.max_retries:
                    self._record_failure(index)
                    raise PermanentEvaluationError(
                        f"candidate {index} failed after {attempt} "
                        f"attempt(s): {exc}",
                        index=index,
                        attempts=attempt,
                    ) from exc
                wait = self._backoff(index, attempt - 1)
                self.n_retries += 1
                self.backoff_log.append((index, attempt, wait))
                if self._recorder:
                    self._recorder.emit(EvaluationRetry(
                        index=index,
                        attempt=attempt,
                        wait_s=wait,
                        error=type(exc).__name__,
                    ))
                if wait > 0:
                    self._sleep(wait)
                continue
            self._record_success()
            return value

    @property
    def supports_parallel_batch(self) -> bool:
        """Whether the wrapped oracle runs batch members concurrently."""
        return bool(getattr(self.inner, "supports_parallel_batch", False))

    def evaluate_batch(self, indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`evaluate`; rows follow ``indices`` order.

        When the wrapped oracle advertises ``supports_parallel_batch``
        and the breaker is closed, the whole batch is first prefetched
        through the inner oracle's concurrent path; a healthy batch
        (no all-NaN row, no exception) returns directly and counts as
        one success for the breaker.  Any trouble falls back to the
        per-point serial path, whose retry schedule, breaker bookkeeping
        and quarantine semantics are byte-identical to calling
        :meth:`evaluate` in a loop — oracles without the attribute
        (every fault injector in the test-suite) always take that path.
        """
        idx = [int(i) for i in indices]
        if not idx:
            return np.empty((0, self.n_objectives))
        if (
            self.state == "closed"
            and getattr(self.inner, "supports_parallel_batch", False)
        ):
            try:
                rows = np.atleast_2d(np.asarray(
                    self.inner.evaluate_batch(idx), dtype=float
                ))
            except self._retryable:
                pass  # fall through to the serial retry path
            else:
                if (
                    rows.shape[0] == len(idx)
                    and not (
                        rows.size
                        and (~np.isfinite(rows)).all(axis=1).any()
                    )
                ):
                    self._record_success()
                    return rows
                # A bad row means some member needs the retry machinery;
                # the serial pass below re-serves healthy members from
                # the inner oracle's cache.
        return np.vstack([self.evaluate(i) for i in idx])

    def extend(self, X_new: np.ndarray) -> None:
        """Forward a pool extension to the wrapped oracle.

        Raises:
            RuntimeError: If the wrapped oracle cannot extend its pool.
        """
        extend = getattr(self.inner, "extend", None)
        if extend is None:
            raise RuntimeError(
                f"{type(self.inner).__name__} does not support pool "
                "extension"
            )
        extend(X_new)

    # ------------------------------------------------------------------
    # one attempt

    def _attempt(self, index: int) -> np.ndarray:
        if self.policy.timeout_s is None:
            value = self.inner.evaluate(index)
        else:
            value = self._attempt_with_timeout(index)
        value = np.asarray(value, dtype=float)
        if value.size and not np.isfinite(value).any():
            # A fully-NaN report is a failed tool run wearing a return
            # value; per-metric partial NaN passes through (the loop
            # imputes by keeping the rectangle open on those metrics).
            raise TransientEvaluationError(
                f"all-NaN QoR vector for candidate {index}"
            )
        return value

    def _attempt_with_timeout(self, index: int) -> np.ndarray:
        box: dict = {}

        def call() -> None:
            try:
                box["value"] = self.inner.evaluate(index)
            except BaseException as exc:  # re-raised on the caller
                box["error"] = exc

        worker = threading.Thread(target=call, daemon=True)
        worker.start()
        worker.join(self.policy.timeout_s)
        if worker.is_alive():
            # Abandon the hung call; the daemon thread dies with the
            # process.  A pool/flow oracle may still complete and cache
            # the value — the retry will then serve it instantly.
            raise EvaluationTimeout(
                f"candidate {index} exceeded "
                f"{self.policy.timeout_s:g}s timeout"
            )
        if "error" in box:
            raise box["error"]
        return box["value"]

    def _backoff(self, index: int, attempt: int) -> float:
        """Exponential backoff with deterministic seeded jitter."""
        base = self.policy.backoff_base * (2.0 ** attempt)
        seq = np.random.SeedSequence(
            self.seed, spawn_key=(index & _SEED_MASK, attempt)
        )
        u = float(np.random.default_rng(seq).random())
        return base * (0.5 + 0.5 * u)

    # ------------------------------------------------------------------
    # circuit breaker

    def _admit(self, index: int) -> None:
        if self.state != "open":
            return
        self._open_rejections += 1
        if self._open_rejections >= self.policy.breaker_cooldown:
            # Cooldown served: half-open and let this call probe.
            self._open_rejections = 0
            self._transition("half_open", index)
            return
        self.n_rejections += 1
        raise CircuitOpenError(
            f"circuit open; rejecting candidate {index} "
            f"({self._open_rejections}/{self.policy.breaker_cooldown} "
            f"of cooldown served)",
            index=index,
        )

    def _record_success(self) -> None:
        self._consecutive = 0
        if self.state == "half_open":
            self._transition("closed")

    def _record_failure(self, index: int) -> None:
        self.n_failures += 1
        self._consecutive += 1
        if self.state == "half_open":
            self._open_rejections = 0
            self._transition("open", index)
        elif (
            self.state == "closed"
            and self._consecutive >= self.policy.breaker_threshold
        ):
            self._open_rejections = 0
            self._transition("open", index)

    def _transition(self, new_state: str, index: int = -1) -> None:
        old = self.state
        self.state = new_state
        if self._recorder:
            self._recorder.emit(CircuitStateChange(
                old_state=old,
                new_state=new_state,
                consecutive_failures=self._consecutive,
                index=int(index),
            ))
