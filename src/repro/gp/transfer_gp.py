"""Transfer Gaussian process (paper Section 3.1, Eq. (4)-(8)).

One model per QoR metric.  Source-task and target-task observations are
stacked; the joint prior covariance is the :class:`TransferKernel` and the
noise is heteroskedastic per task (``beta_s^-1`` on source rows,
``beta_t^-1`` on target rows — the ``Lambda`` of Eq. (8)).  All
hyperparameters (base kernel, Gamma transfer parameters, both noises) are
learned by maximizing the joint log marginal likelihood.

Prediction at a target-task input follows Eq. (8):

    mu(x)      = k(x, X)^T (K~ + Lambda)^-1 y
    sigma^2(x) = k(x, x) + beta_t^-1 - k(x, X)^T (K~ + Lambda)^-1 k(x, X)

where ``k(x, X)`` itself is the transfer kernel (source columns damped by
``lambda``).
"""

from __future__ import annotations

import numpy as np

from .incremental import IncrementalGPMixin
from .kernels import Kernel, RBFKernel
from .likelihood import gaussian_log_marginal, maximize_objective
from .linalg import cholesky_solve, robust_cholesky
from .transfer_kernel import TransferKernel

#: Log-space bounds for the two task noise variances.
_NOISE_BOUNDS = (-12.0, 2.0)
#: Task label of source rows.
SOURCE_TASK = 0
#: Task label of target rows.
TARGET_TASK = 1


def _resolve_source_kwargs(
    X_source, y_source, sources, Xs, ys
) -> tuple[np.ndarray, np.ndarray]:
    """Normalize the three ways of passing source data to one pair.

    Canonical forms are ``X_source``/``y_source`` arrays or the
    ``sources`` list of ``(X_k, y_k)`` pairs (shared with the
    multi-source model; pairs are stacked into a single source task).
    ``Xs``/``ys`` are deprecated aliases for ``X_source``/``y_source``.

    Raises:
        ValueError: When more than one form is used at once, or a pair
            is half-specified.
    """
    if Xs is not None or ys is not None:
        import warnings

        warnings.warn(
            "the Xs/ys keywords of TransferGP.fit are deprecated; "
            "pass X_source/y_source or sources=[(X, y), ...]",
            DeprecationWarning,
            stacklevel=3,
        )
        if X_source is not None or y_source is not None:
            raise ValueError("pass either X_source/y_source or Xs/ys")
        X_source, y_source = Xs, ys
    if sources is not None:
        if X_source is not None or y_source is not None:
            raise ValueError(
                "pass either X_source/y_source or sources, not both"
            )
        pairs = [
            (np.atleast_2d(np.asarray(X, dtype=float)),
             np.asarray(y, dtype=float).ravel())
            for X, y in sources
        ]
        pairs = [(X, y) for X, y in pairs if X.size]
        if pairs:
            X_source = np.vstack([X for X, _ in pairs])
            y_source = np.concatenate([y for _, y in pairs])
        else:
            X_source, y_source = np.empty((0, 0)), np.empty(0)
    if (X_source is None) != (y_source is None):
        raise ValueError("X_source and y_source must be passed together")
    if X_source is None:
        X_source, y_source = np.empty((0, 0)), np.empty(0)
    return X_source, y_source


class TransferGP(IncrementalGPMixin):
    """Two-task transfer GP regressor.

    Example:
        >>> model = TransferGP()
        >>> model.fit(Xs, ys, Xt, yt)          # doctest: +SKIP
        >>> mean, var = model.predict(X_new)   # doctest: +SKIP
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        a: float = 1.0,
        b: float = 1.0,
        noise_source: float = 1e-2,
        noise_target: float = 1e-2,
        optimize: bool = True,
        n_restarts: int = 2,
        seed: int | None = 0,
    ) -> None:
        """Create the model.

        Args:
            kernel: Base within-task kernel (ARD RBF by default, sized at
                fit time).
            a: Initial Gamma scale of the transfer prior.
            b: Initial Gamma shape of the transfer prior.
            noise_source: Initial source-noise variance (``beta_s^-1``).
            noise_target: Initial target-noise variance (``beta_t^-1``).
            optimize: Whether :meth:`fit` tunes hyperparameters.
            n_restarts: Optimizer restarts.
            seed: Seed for restarts.
        """
        if noise_source <= 0 or noise_target <= 0:
            raise ValueError("noise variances must be positive")
        self._base_kernel = kernel
        self._init_a = a
        self._init_b = b
        self.transfer_kernel: TransferKernel | None = None
        self._log_noise_s = float(np.log(noise_source))
        self._log_noise_t = float(np.log(noise_target))
        self.optimize = optimize
        self.n_restarts = n_restarts
        self.seed = seed
        self._X: np.ndarray | None = None
        self._tasks: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._L: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._opt_theta: np.ndarray | None = None

    @property
    def noise_source(self) -> float:
        """Source observation-noise variance (standardized scale)."""
        return float(np.exp(self._log_noise_s))

    @property
    def noise_target(self) -> float:
        """Target observation-noise variance (standardized scale)."""
        return float(np.exp(self._log_noise_t))

    @property
    def lam(self) -> float:
        """Learned cross-task correlation factor ``lambda``."""
        if self.transfer_kernel is None:
            raise RuntimeError("model not fitted")
        return self.transfer_kernel.lam

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._alpha is not None

    def fit(
        self,
        X_source: np.ndarray | None = None,
        y_source: np.ndarray | None = None,
        X_target: np.ndarray | None = None,
        y_target: np.ndarray | None = None,
        *,
        sources: list[tuple[np.ndarray, np.ndarray]] | None = None,
        Xs: np.ndarray | None = None,
        ys: np.ndarray | None = None,
    ) -> "TransferGP":
        """Fit the joint model on stacked source + target data.

        Source data may be supplied either as explicit
        ``X_source``/``y_source`` arrays or — the keyword shared with
        :class:`~repro.gp.multisource.MultiSourceTransferGP` — as
        ``sources``, a list of ``(X_k, y_k)`` pairs (stacked into one
        source task here; empty list means no transfer).

        Args:
            X_source: ``(N, d)`` source inputs (may be empty).
            y_source: Length-``N`` source targets.
            X_target: ``(M, d)`` target inputs (``M >= 1``).
            y_target: Length-``M`` target targets.
            sources: ``(X_k, y_k)`` source archives; mutually exclusive
                with ``X_source``/``y_source``.
            Xs: Deprecated alias for ``X_source``.
            ys: Deprecated alias for ``y_source``.

        Returns:
            ``self``.

        Raises:
            ValueError: On shape mismatch, empty target data, or
                conflicting source arguments.
        """
        X_source, y_source = _resolve_source_kwargs(
            X_source, y_source, sources, Xs, ys
        )
        if X_target is None or y_target is None:
            raise ValueError("X_target and y_target are required")
        Xs = np.atleast_2d(np.asarray(X_source, dtype=float))
        Xt = np.atleast_2d(np.asarray(X_target, dtype=float))
        ys = np.asarray(y_source, dtype=float).ravel()
        yt = np.asarray(y_target, dtype=float).ravel()
        if Xs.size == 0:
            Xs = np.empty((0, Xt.shape[1]))
        if len(Xs) != len(ys) or len(Xt) != len(yt):
            raise ValueError("X/y misaligned")
        if len(yt) == 0:
            raise ValueError("need at least one target observation")
        if Xs.size and Xs.shape[1] != Xt.shape[1]:
            raise ValueError("source/target dimensionality mismatch")

        X = np.vstack([Xs, Xt])
        y = np.concatenate([ys, yt])
        tasks = np.concatenate([
            np.full(len(ys), SOURCE_TASK, dtype=int),
            np.full(len(yt), TARGET_TASK, dtype=int),
        ])

        if self._base_kernel is None:
            self._base_kernel = RBFKernel(np.full(X.shape[1], 0.3))
        if self.transfer_kernel is None:
            self.transfer_kernel = TransferKernel(
                self._base_kernel, self._init_a, self._init_b
            )

        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        z = (y - self._y_mean) / self._y_std

        if self.optimize and len(X) >= 3:
            self._optimize_hyperparameters(X, tasks, z)

        K = self.transfer_kernel.eval(X, tasks) + self._noise_diag(tasks)
        self._L, self._jitter = robust_cholesky(K)
        self._alpha = cholesky_solve(self._L, z)
        self._X = X
        self._tasks = tasks
        self._y_raw = y.copy()
        self._invalidate_pool_cache()
        return self

    # ---- incremental hooks (see IncrementalGPMixin) -------------------

    def _cross_cov(
        self, X_query: np.ndarray, rows: slice | None = None
    ) -> np.ndarray:
        assert self.transfer_kernel is not None
        assert self._X is not None and self._tasks is not None
        X_query = np.atleast_2d(X_query)
        q_tasks = np.full(len(X_query), TARGET_TASK, dtype=int)
        X2 = self._X if rows is None else self._X[rows]
        tasks2 = self._tasks if rows is None else self._tasks[rows]
        return self.transfer_kernel.eval(X_query, q_tasks, X2, tasks2)

    def _cov_new_block(self, X_new: np.ndarray) -> np.ndarray:
        assert self.transfer_kernel is not None
        # New rows are all target-task: the transfer factor is 1, so the
        # within-task base kernel plus the target noise applies.
        return self.transfer_kernel.base.eval(
            X_new
        ) + self.noise_target * np.eye(len(X_new))

    def _cov_full(self) -> np.ndarray:
        assert self.transfer_kernel is not None
        assert self._X is not None and self._tasks is not None
        return self.transfer_kernel.eval(
            self._X, self._tasks
        ) + self._noise_diag(self._tasks)

    def _prior_diag(self, X_query: np.ndarray) -> np.ndarray:
        assert self.transfer_kernel is not None
        return self.transfer_kernel.base.diag(np.atleast_2d(X_query))

    def _predict_noise(self) -> float:
        return self.noise_target

    def _append_data(self, X_new: np.ndarray, y_new: np.ndarray) -> None:
        assert self._X is not None and self._tasks is not None
        assert self._y_raw is not None
        self._X = np.vstack([self._X, X_new])
        self._tasks = np.concatenate([
            self._tasks, np.full(len(y_new), TARGET_TASK, dtype=int)
        ])
        self._y_raw = np.concatenate([self._y_raw, y_new])

    def _cov_params(self) -> tuple:
        if self.transfer_kernel is not None:
            kernel_sig = (
                "built",
                tuple(
                    float(v)
                    for v in np.asarray(self.transfer_kernel.theta).ravel()
                ),
            )
        else:
            base_sig = (
                None if self._base_kernel is None
                else (
                    type(self._base_kernel).__name__,
                    tuple(
                        float(v)
                        for v in np.asarray(self._base_kernel.theta).ravel()
                    ),
                )
            )
            kernel_sig = (
                "unbuilt", base_sig,
                float(self._init_a), float(self._init_b),
            )
        return (
            kernel_sig,
            float(self._log_noise_s),
            float(self._log_noise_t),
        )

    def _adopt_structure(self, lead: "TransferGP") -> None:
        assert lead._X is not None
        if self._base_kernel is None:
            self._base_kernel = RBFKernel(
                np.full(lead._X.shape[1], 0.3)
            )
        if self.transfer_kernel is None:
            self.transfer_kernel = TransferKernel(
                self._base_kernel, self._init_a, self._init_b
            )
        self._X = lead._X
        self._tasks = lead._tasks

    def _noise_diag(self, tasks: np.ndarray) -> np.ndarray:
        noise = np.where(
            tasks == SOURCE_TASK, self.noise_source, self.noise_target
        )
        return np.diag(noise)

    def _optimize_hyperparameters(
        self, X: np.ndarray, tasks: np.ndarray, z: np.ndarray
    ) -> None:
        tk = self.transfer_kernel
        assert tk is not None
        src_diag = np.diag((tasks == SOURCE_TASK).astype(float))
        tgt_diag = np.diag((tasks == TARGET_TASK).astype(float))
        has_source = bool((tasks == SOURCE_TASK).any())

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            tk.theta = theta[:-2]
            noise_s = float(np.exp(theta[-2]))
            noise_t = float(np.exp(theta[-1]))
            K, grads = tk.eval_with_grads(X, tasks)
            K = K + noise_s * src_diag + noise_t * tgt_diag
            grads = grads + [noise_s * src_diag, noise_t * tgt_diag]
            lml, g, _ = gaussian_log_marginal(K, z, grads)
            assert g is not None
            return -lml, -g

        # Warm-start mid-loop refits from the previously *optimized*
        # hyperparameters rather than whatever the live kernel currently
        # holds — objective evaluations mutate ``tk.theta`` in place, so
        # after an aborted or externally perturbed optimization the live
        # value is not the default init the refit should resume from.
        theta0 = np.concatenate(
            [tk.theta, [self._log_noise_s, self._log_noise_t]]
        )
        if (
            self._opt_theta is not None
            and len(self._opt_theta) == len(theta0)
        ):
            theta0 = self._opt_theta
        bounds = tk.bounds() + [_NOISE_BOUNDS, _NOISE_BOUNDS]
        if not has_source:
            # Without source rows the transfer/source-noise parameters are
            # unidentifiable; pin them to their current values.
            idx_a = len(tk.bounds()) - 2
            for i in (idx_a, idx_a + 1, len(theta0) - 2):
                bounds[i] = (theta0[i], theta0[i])
        best = maximize_objective(
            objective, theta0, bounds,
            n_restarts=self.n_restarts, seed=self.seed,
        )
        tk.theta = best[:-2]
        self._log_noise_s = float(best[-2])
        self._log_noise_t = float(best[-1])
        self._opt_theta = np.asarray(best, dtype=float).copy()

    def predict(
        self, X_new: np.ndarray, include_noise: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Predict at target-task inputs (paper Eq. (8)).

        Args:
            X_new: ``(m, d)`` target-task query inputs.
            include_noise: Add ``beta_t^-1`` to the variance (the ``c``
                term of Eq. (8) includes it; default off for the tuner's
                epistemic-uncertainty regions).

        Returns:
            ``(mean, variance)`` in the original target scale.

        Raises:
            RuntimeError: If called before :meth:`fit`.
        """
        if not self.is_fitted:
            raise RuntimeError("predict() before fit()")
        assert self._X is not None and self._tasks is not None
        assert self._L is not None and self._alpha is not None
        assert self.transfer_kernel is not None
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        new_tasks = np.full(len(X_new), TARGET_TASK, dtype=int)
        K_star = self.transfer_kernel.eval(
            X_new, new_tasks, self._X, self._tasks
        )
        mean_z = K_star @ self._alpha
        v = np.linalg.solve(self._L, K_star.T)
        prior_diag = self.transfer_kernel.base.diag(X_new)
        var_z = prior_diag - np.sum(v * v, axis=0)
        var_z = np.maximum(var_z, 1e-12)
        if include_noise:
            var_z = var_z + self.noise_target
        mean = mean_z * self._y_std + self._y_mean
        var = var_z * self._y_std**2
        return mean, var

    def log_marginal_likelihood(self) -> float:
        """Joint LML of the fitted model."""
        if not self.is_fitted:
            raise RuntimeError("log_marginal_likelihood() before fit()")
        assert self._L is not None and self._alpha is not None
        L, alpha = self._L, self._alpha
        z = L @ (L.T @ alpha)
        return float(
            -0.5 * z @ alpha
            - np.sum(np.log(np.diag(L)))
            - 0.5 * len(z) * np.log(2 * np.pi)
        )
