"""Standard (single-task) Gaussian-process regression.

Implements paper Eq. (1): posterior mean and variance under a Gaussian
noise model, with hyperparameters fitted by maximizing the log marginal
likelihood.  Targets are standardized internally, inputs are expected
pre-normalized (the tuners normalize to the unit cube).
"""

from __future__ import annotations

import numpy as np

from .incremental import IncrementalGPMixin
from .kernels import Kernel, RBFKernel
from .likelihood import gaussian_log_marginal, maximize_objective
from .linalg import cholesky_solve, robust_cholesky

#: Log-space bounds for the observation-noise variance.
_NOISE_BOUNDS = (-12.0, 2.0)


class GPRegressor(IncrementalGPMixin):
    """Exact GP regression with marginal-likelihood hyperparameter fit.

    Example:
        >>> X = np.random.rand(20, 3); y = X.sum(axis=1)
        >>> gp = GPRegressor(RBFKernel(np.ones(3))).fit(X, y)
        >>> mean, var = gp.predict(X[:5])
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        noise_variance: float = 1e-2,
        optimize: bool = True,
        n_restarts: int = 2,
        seed: int | None = 0,
    ) -> None:
        """Create the regressor.

        Args:
            kernel: Covariance kernel; defaults to an ARD RBF sized at
                fit time.
            noise_variance: Initial observation-noise variance (in the
                standardized-target scale).
            optimize: Whether :meth:`fit` tunes hyperparameters.
            n_restarts: Optimizer restarts.
            seed: Seed for the restarts.
        """
        if noise_variance <= 0:
            raise ValueError("noise_variance must be positive")
        self.kernel = kernel
        self._log_noise = float(np.log(noise_variance))
        self.optimize = optimize
        self.n_restarts = n_restarts
        self.seed = seed
        self._X: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._L: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._opt_theta: np.ndarray | None = None

    @property
    def noise_variance(self) -> float:
        """Observation-noise variance (standardized scale)."""
        return float(np.exp(self._log_noise))

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._alpha is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GPRegressor":
        """Fit hyperparameters (optionally) and the posterior state.

        Args:
            X: ``(n, d)`` inputs.
            y: Length-``n`` targets.

        Returns:
            ``self``.

        Raises:
            ValueError: On shape mismatch or empty data.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y) or len(y) == 0:
            raise ValueError("X and y must be non-empty and aligned")
        if self.kernel is None:
            self.kernel = RBFKernel(np.full(X.shape[1], 0.3))

        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        z = (y - self._y_mean) / self._y_std

        if self.optimize and len(X) >= 3:
            self._optimize_hyperparameters(X, z)

        K = self.kernel.eval(X) + self.noise_variance * np.eye(len(X))
        self._L, self._jitter = robust_cholesky(K)
        self._alpha = cholesky_solve(self._L, z)
        self._X = X
        self._y_raw = y.copy()
        self._invalidate_pool_cache()
        return self

    # ---- incremental hooks (see IncrementalGPMixin) -------------------

    def _cross_cov(
        self, X_query: np.ndarray, rows: slice | None = None
    ) -> np.ndarray:
        assert self.kernel is not None and self._X is not None
        X2 = self._X if rows is None else self._X[rows]
        return self.kernel.eval(np.atleast_2d(X_query), X2)

    def _cov_new_block(self, X_new: np.ndarray) -> np.ndarray:
        assert self.kernel is not None
        return self.kernel.eval(X_new) + self.noise_variance * np.eye(
            len(X_new)
        )

    def _cov_full(self) -> np.ndarray:
        assert self.kernel is not None and self._X is not None
        return self.kernel.eval(self._X) + self.noise_variance * np.eye(
            len(self._X)
        )

    def _prior_diag(self, X_query: np.ndarray) -> np.ndarray:
        assert self.kernel is not None
        return self.kernel.diag(X_query)

    def _predict_noise(self) -> float:
        return self.noise_variance

    def _append_data(self, X_new: np.ndarray, y_new: np.ndarray) -> None:
        assert self._X is not None and self._y_raw is not None
        self._X = np.vstack([self._X, X_new])
        self._y_raw = np.concatenate([self._y_raw, y_new])

    def _cov_params(self) -> tuple:
        kernel_sig = (
            None if self.kernel is None
            else (
                type(self.kernel).__name__,
                tuple(
                    float(v)
                    for v in np.asarray(self.kernel.theta).ravel()
                ),
            )
        )
        return (kernel_sig, float(self._log_noise))

    def _adopt_structure(self, lead: "GPRegressor") -> None:
        assert lead._X is not None
        if self.kernel is None:
            self.kernel = RBFKernel(np.full(lead._X.shape[1], 0.3))
        self._X = lead._X

    def _optimize_hyperparameters(self, X: np.ndarray, z: np.ndarray) -> None:
        kernel = self.kernel
        assert kernel is not None
        n = len(X)

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            kernel.theta = theta[:-1]
            noise = float(np.exp(theta[-1]))
            K, grads = kernel.eval_with_grads(X)
            K = K + noise * np.eye(n)
            grads = grads + [noise * np.eye(n)]  # d/dlog noise
            lml, g, _ = gaussian_log_marginal(K, z, grads)
            assert g is not None
            return -lml, -g

        # Warm-start refits from the previously found optimum; the live
        # kernel theta may have been perturbed between fits (objective
        # evaluations mutate it in place).
        theta0 = np.append(kernel.theta, self._log_noise)
        if (
            self._opt_theta is not None
            and len(self._opt_theta) == len(theta0)
        ):
            theta0 = self._opt_theta
        bounds = kernel.bounds() + [_NOISE_BOUNDS]
        best = maximize_objective(
            objective, theta0, bounds,
            n_restarts=self.n_restarts, seed=self.seed,
        )
        kernel.theta = best[:-1]
        self._log_noise = float(best[-1])
        self._opt_theta = np.asarray(best, dtype=float).copy()

    def predict(
        self, X_new: np.ndarray, include_noise: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at ``X_new`` (paper Eq. (1)).

        Args:
            X_new: ``(m, d)`` query inputs.
            include_noise: Add the observation-noise variance to the
                predictive variance.

        Returns:
            ``(mean, variance)`` arrays of length ``m`` in the original
            target scale.

        Raises:
            RuntimeError: If called before :meth:`fit`.
        """
        if not self.is_fitted:
            raise RuntimeError("predict() before fit()")
        assert self._X is not None and self.kernel is not None
        assert self._L is not None and self._alpha is not None
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        K_star = self.kernel.eval(X_new, self._X)
        mean_z = K_star @ self._alpha
        v = np.linalg.solve(self._L, K_star.T)
        var_z = self.kernel.diag(X_new) - np.sum(v * v, axis=0)
        var_z = np.maximum(var_z, 1e-12)
        if include_noise:
            var_z = var_z + self.noise_variance
        mean = mean_z * self._y_std + self._y_mean
        var = var_z * self._y_std**2
        return mean, var

    def log_marginal_likelihood(self) -> float:
        """LML of the fitted model on its training data."""
        if not self.is_fitted:
            raise RuntimeError("log_marginal_likelihood() before fit()")
        assert self._L is not None and self._alpha is not None
        z_alpha = self._alpha
        L = self._L
        n = len(z_alpha)
        # Recover z from alpha: z = K alpha = L L^T alpha.
        z = L @ (L.T @ z_alpha)
        return float(
            -0.5 * z @ z_alpha
            - np.sum(np.log(np.diag(L)))
            - 0.5 * n * np.log(2 * np.pi)
        )
