"""Shared incremental-calibration machinery for the GP models.

The tuning loop (Algorithm 1) refits every surrogate each iteration on
data that only ever *grows* by the freshly evaluated target points.  A
from-scratch refit re-evaluates the full kernel and refactorizes the
``(n_src + n_tgt)`` covariance — O(n^2 d + n^3) per metric per iteration.
This mixin gives every GP model an exact O(k n^2) fast path:

- :meth:`update` border-extends the cached Cholesky factor with the new
  target rows (:func:`~repro.gp.linalg.cholesky_append_rows`) and
  recomputes the standardization constants and ``alpha`` — the posterior
  is *identical* (to floating-point roundoff) to a from-scratch refit
  with the same hyperparameters.
- :meth:`register_pool` / :meth:`predict_pool` cache the pool-vs-train
  cross-covariance ``K*`` and the whitened block ``V = L^-1 K*^T``;
  updates extend both by the new columns/rows only, so a pool prediction
  costs O(n·p) instead of a fresh kernel evaluation plus an O(n^2 p)
  triangular solve.

Numerical safety: the initial fit's escalated jitter is carried onto the
appended diagonal so the extended factor matches the fitted covariance,
and whenever the Schur complement of an append is not positive definite
the model transparently falls back to an exact jittered refactorization
(``last_update_fallback`` is set so callers can count these).  Because
hyperparameter refits rebuild everything from scratch anyway, error from
long append chains cannot accumulate past one re-optimization cadence.

Subclasses must maintain ``_X``, ``_L``, ``_alpha``, ``_y_mean``,
``_y_std`` (the existing fit state) plus ``_y_raw`` and ``_jitter``, and
implement the small covariance hooks below.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from .linalg import (
    NotPositiveDefiniteError,
    cholesky_append_rows,
    cholesky_solve,
    robust_cholesky,
)


class IncrementalGPMixin:
    """Exact incremental updates + cached pool prediction for GP models."""

    # Incremental bookkeeping (instance attributes shadow these).
    _y_raw: np.ndarray | None = None
    _jitter: float = 0.0
    _pool_X: np.ndarray | None = None
    _pool_K: np.ndarray | None = None
    _pool_V: np.ndarray | None = None
    _pool_block: int = 0
    _pool_dtype: type | None = None
    #: Whether the last :meth:`update` call had to fall back to an exact
    #: from-scratch refactorization (jitter escalation).
    last_update_fallback: bool = False

    # ---- hooks implemented by each model -----------------------------

    def _cross_cov(
        self, X_query: np.ndarray, rows: slice | None = None
    ) -> np.ndarray:
        """Covariance of target-task queries vs training ``rows``."""
        raise NotImplementedError

    def _cov_new_block(self, X_new: np.ndarray) -> np.ndarray:
        """Covariance among new target rows, noise included."""
        raise NotImplementedError

    def _cov_full(self) -> np.ndarray:
        """Full training covariance (noise included), for refits."""
        raise NotImplementedError

    def _prior_diag(self, X_query: np.ndarray) -> np.ndarray:
        """Prior variance at target-task queries."""
        raise NotImplementedError

    def _predict_noise(self) -> float:
        """Target-task observation-noise variance."""
        raise NotImplementedError

    def _append_data(self, X_new: np.ndarray, y_new: np.ndarray) -> None:
        """Append new target rows to the stored training data."""
        raise NotImplementedError

    def _cov_params(self) -> tuple:
        """Hashable digest of every covariance-defining hyperparameter."""
        raise NotImplementedError

    def _adopt_structure(self, lead: "IncrementalGPMixin") -> None:
        """Adopt a lead model's training-data structure (X, tasks, ...)."""
        raise NotImplementedError

    # ---- shared-factor support ---------------------------------------

    def covariance_signature(self) -> tuple | None:
        """Signature deciding whether two models share one covariance.

        Two models of the same class with equal signatures fitted on the
        same training inputs build the *same* ``K`` matrix — one
        Cholesky factorization serves both, only the per-model RHS
        solves (``alpha``) differ.  Returns ``None`` when the model
        cannot state its covariance (sharing is then disabled).
        """
        try:
            return (type(self).__name__, self._cov_params())
        except NotImplementedError:
            return None

    def adopt_fit(
        self, lead: "IncrementalGPMixin", y: np.ndarray
    ) -> "IncrementalGPMixin":
        """Refit by adopting a lead model's factorization (shared factor).

        Equivalent to calling ``fit`` with ``optimize`` off on the same
        stacked inputs and this model's own ``y`` — but the covariance
        and its Cholesky factor are taken from ``lead`` instead of being
        recomputed, so only the standardization and the ``alpha`` solve
        run per model.  Bit-identical to an independent fit because it
        deduplicates computations that would produce the same bits; the
        caller must have checked :meth:`covariance_signature` equality.

        Args:
            lead: A freshly fitted model with an identical covariance.
            y: This model's stacked raw targets (sources-then-target
                order, exactly what its own ``fit`` would see).

        Returns:
            ``self``.

        Raises:
            RuntimeError: If ``lead`` is not fitted.
            ValueError: If ``y`` does not match the lead's row count.
        """
        if not lead.is_fitted:  # type: ignore[attr-defined]
            raise RuntimeError("adopt_fit() from an unfitted lead")
        assert lead._y_raw is not None
        y = np.asarray(y, dtype=float).ravel()
        if len(y) != len(lead._y_raw):
            raise ValueError(
                f"y has {len(y)} rows, lead was fitted on "
                f"{len(lead._y_raw)}"
            )
        self._adopt_structure(lead)
        self._L = lead._L
        self._jitter = lead._jitter
        self._y_raw = y.copy()
        self._restandardize()
        self._invalidate_pool_cache()
        self.last_update_fallback = False
        return self

    def adopt_update(
        self,
        lead: "IncrementalGPMixin",
        X_new: np.ndarray,
        y_new: np.ndarray,
    ) -> "IncrementalGPMixin":
        """Absorb new observations by adopting a lead model's update.

        The border-extended factor and the extended pool caches depend
        only on the (shared) covariance, never on ``y`` — alias them
        from ``lead`` and redo just the per-model bookkeeping: append
        the data, refresh standardization and ``alpha``.  Only valid
        right after a *successful* ``lead.update`` with an identical
        covariance signature.

        Args:
            lead: The model whose ``update`` just absorbed ``X_new``.
            X_new: ``(k, d)`` new target inputs (same rows the lead
                absorbed).
            y_new: Length-``k`` new observations for *this* metric.

        Returns:
            ``self``.

        Raises:
            RuntimeError: If called before ``fit``.
        """
        if not self.is_fitted:  # type: ignore[attr-defined]
            raise RuntimeError("adopt_update() before fit()")
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).ravel()
        self.last_update_fallback = bool(lead.last_update_fallback)
        if len(y_new) == 0:
            return self
        self._append_data(X_new, y_new)
        self._L = lead._L
        self._jitter = lead._jitter
        self._restandardize()
        self._pool_K = lead._pool_K
        self._pool_V = lead._pool_V
        return self

    # ---- incremental update ------------------------------------------

    def update(self, X_new: np.ndarray, y_new: np.ndarray):
        """Absorb new *target-task* observations without refitting.

        Extends the Cholesky factor by a border update and refreshes the
        standardization constants and ``alpha``; hyperparameters are
        left untouched.  The result is numerically equivalent to calling
        ``fit`` on the concatenated data with ``optimize=False``.

        Args:
            X_new: ``(k, d)`` new target inputs.
            y_new: Length-``k`` new target observations (original
                scale).

        Returns:
            ``self``.

        Raises:
            RuntimeError: If called before ``fit``.
            ValueError: On shape mismatch.
        """
        if not self.is_fitted:  # type: ignore[attr-defined]
            raise RuntimeError("update() before fit()")
        assert self._X is not None and self._L is not None
        assert self._y_raw is not None
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        y_new = np.asarray(y_new, dtype=float).ravel()
        if len(X_new) != len(y_new):
            raise ValueError("X_new and y_new misaligned")
        self.last_update_fallback = False
        if len(y_new) == 0:
            return self
        if X_new.shape[1] != self._X.shape[1]:
            raise ValueError("dimensionality mismatch")

        n_old = len(self._L)
        k = len(y_new)
        K_cross = self._cross_cov(X_new).T  # (n_old, k)
        K_block = self._cov_new_block(X_new)
        if self._jitter:
            K_block = K_block + self._jitter * np.eye(k)
        try:
            L_ext = cholesky_append_rows(self._L, K_cross, K_block)
        except NotPositiveDefiniteError:
            # Jitter escalation: rebuild the exact factorization so the
            # posterior never silently drifts.
            self._append_data(X_new, y_new)
            self._refit_state()
            self.last_update_fallback = True
            return self

        self._append_data(X_new, y_new)
        self._L = L_ext
        self._restandardize()
        if self._pool_K is not None and self._pool_V is not None:
            rows = slice(n_old, n_old + k)
            C = L_ext[n_old:, :n_old]
            L22 = L_ext[n_old:, n_old:]
            p = len(self._pool_X)
            block = self._pool_block
            if not block or p <= block:
                Kp_new = self._cross_cov(self._pool_X, rows)  # (p, k)
                V_new = solve_triangular(
                    L22, Kp_new.T - C @ self._pool_V, lower=True
                )
            else:
                # Large pools: extend the caches block-by-block so the
                # kernel's (pool, new, dim) broadcast intermediate and
                # any float32→float64 promotion stay block-sized.
                Kp_new = np.empty((p, k))
                V_new = np.empty((k, p))
                for s in range(0, p, block):
                    e = min(s + block, p)
                    Kb = self._cross_cov(self._pool_X[s:e], rows)
                    Kp_new[s:e] = Kb
                    Vb = np.asarray(
                        self._pool_V[:, s:e], dtype=np.float64
                    )
                    V_new[:, s:e] = solve_triangular(
                        L22, Kb.T - C @ Vb, lower=True
                    )
            if self._pool_dtype is not None:
                Kp_new = Kp_new.astype(self._pool_dtype)
                V_new = V_new.astype(self._pool_dtype)
            self._pool_K = np.hstack([self._pool_K, Kp_new])
            self._pool_V = np.vstack([self._pool_V, V_new])
        return self

    def _restandardize(self) -> None:
        """Refresh standardization constants and ``alpha`` from raw y."""
        assert self._y_raw is not None and self._L is not None
        y = self._y_raw
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        z = (y - self._y_mean) / self._y_std
        self._alpha = cholesky_solve(self._L, z)

    def _refit_state(self) -> None:
        """Exact posterior refresh from the current hyperparameters."""
        K = self._cov_full()
        self._L, self._jitter = robust_cholesky(K)
        self._restandardize()
        self._invalidate_pool_cache()

    # ---- cached pool prediction --------------------------------------

    def register_pool(
        self,
        X_pool: np.ndarray,
        block: int = 0,
        dtype: type | None = None,
    ) -> None:
        """Attach a fixed candidate pool for cached prediction.

        Args:
            X_pool: ``(p, d)`` target-task candidate features; rows are
                addressed by index in :meth:`predict_pool`.
            block: Row-chunk size for building/extending the caches;
                pools at or below the block (or ``block=0``) use the
                exact single-shot path.
            dtype: Optional storage dtype for the caches (e.g.
                ``np.float32``); all solves stay float64, only the
                stored blocks are narrowed.
        """
        self._pool_X = np.atleast_2d(np.asarray(X_pool, dtype=float))
        self._pool_block = int(block)
        self._pool_dtype = dtype
        self._invalidate_pool_cache()

    def extend_pool(self, X_new: np.ndarray, cache: bool = True) -> None:
        """Append candidate rows to the registered pool (append path).

        The adaptive-refinement counterpart of :meth:`update`: where
        ``update`` extends the caches by new *training* columns, this
        extends them by new *pool* rows.  Only the appended rows' cross-
        covariance (``(k, n)``) and whitened columns (``(n, k)``) are
        computed — the existing caches are never rebuilt, so growing the
        pool costs O(k·n²) instead of O(p·n²).

        Args:
            X_new: ``(k, d)`` new target-task candidate features,
                appended after the existing pool rows (indices continue
                from ``len(pool)``).
            cache: Extend the prediction caches in place when they are
                materialized.  ``False`` extends only the pool features
                and invalidates the caches — used by the shared-factor
                path, where followers adopt the lead model's extended
                caches instead of recomputing identical blocks.

        Raises:
            RuntimeError: If no pool is registered.
            ValueError: On dimensionality mismatch.
        """
        if self._pool_X is None:
            raise RuntimeError("extend_pool() before register_pool()")
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        if X_new.size == 0:
            return
        if X_new.shape[1] != self._pool_X.shape[1]:
            raise ValueError("dimensionality mismatch")
        have_cache = (
            cache
            and self._pool_K is not None
            and self._pool_V is not None
            and self._L is not None
        )
        self._pool_X = np.vstack([self._pool_X, X_new])
        if not have_cache:
            # No live caches to extend (pre-first-prediction, or a
            # follower about to adopt the lead's): rebuild lazily.
            self._invalidate_pool_cache()
            return
        k = len(X_new)
        n = len(self._L)
        block = self._pool_block
        if not block or k <= block:
            K_new = self._cross_cov(X_new)
            V_new = solve_triangular(self._L, K_new.T, lower=True)
        else:
            K_new = np.empty((k, n))
            V_new = np.empty((n, k))
            for s in range(0, k, block):
                e = min(s + block, k)
                Kb = self._cross_cov(X_new[s:e])
                K_new[s:e] = Kb
                V_new[:, s:e] = solve_triangular(
                    self._L, Kb.T, lower=True
                )
        if self._pool_dtype is not None:
            K_new = K_new.astype(self._pool_dtype)
            V_new = V_new.astype(self._pool_dtype)
        self._pool_K = np.vstack([
            self._pool_K,
            K_new.astype(self._pool_K.dtype, copy=False),
        ])
        self._pool_V = np.hstack([
            self._pool_V,
            V_new.astype(self._pool_V.dtype, copy=False),
        ])

    def _invalidate_pool_cache(self) -> None:
        self._pool_K = None
        self._pool_V = None

    def _ensure_pool_cache(self) -> None:
        """Materialize the pool cross-covariance / whitened caches."""
        if self._pool_K is not None and self._pool_V is not None:
            return
        assert self._pool_X is not None and self._L is not None
        p = len(self._pool_X)
        block = self._pool_block
        if not block or p <= block:
            # The exact single-shot path (bit-identical to the
            # pre-blocking behavior for every small pool).
            K = self._cross_cov(self._pool_X)
            V = solve_triangular(self._L, K.T, lower=True)
            if self._pool_dtype is not None:
                K = K.astype(self._pool_dtype)
                V = V.astype(self._pool_dtype)
        else:
            n = len(self._L)
            dtype = self._pool_dtype or np.float64
            K = np.empty((p, n), dtype=dtype)
            V = np.empty((n, p), dtype=dtype)
            for s in range(0, p, block):
                e = min(s + block, p)
                Kb = self._cross_cov(self._pool_X[s:e])
                K[s:e] = Kb
                V[:, s:e] = solve_triangular(
                    self._L, Kb.T, lower=True
                )
        self._pool_K = K
        self._pool_V = V

    def predict_pool(
        self, indices: np.ndarray, include_noise: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean/variance at registered pool rows ``indices``.

        Numerically equivalent to ``predict(X_pool[indices])`` but served
        from the cached cross-covariance and whitened blocks: after each
        incremental update only the new columns are computed, so the
        per-iteration cost is O(n·p) rather than a fresh kernel
        evaluation plus an O(n^2 p) solve.

        Args:
            indices: Integer row indices (or boolean mask) into the
                registered pool.
            include_noise: Add the target observation-noise variance.

        Returns:
            ``(mean, variance)`` in the original target scale.

        Raises:
            RuntimeError: If the model is unfitted or no pool is
                registered.
        """
        if not self.is_fitted:  # type: ignore[attr-defined]
            raise RuntimeError("predict_pool() before fit()")
        if self._pool_X is None:
            raise RuntimeError("predict_pool() before register_pool()")
        assert self._L is not None and self._alpha is not None
        self._ensure_pool_cache()
        idx = np.asarray(indices)
        if idx.dtype == bool:
            idx = np.nonzero(idx)[0]
        K_rows = self._pool_K[idx]
        V_cols = self._pool_V[:, idx]
        if V_cols.dtype == np.float64:
            mean_z = K_rows @ self._alpha
            var_z = self._prior_diag(self._pool_X[idx]) - np.sum(
                V_cols * V_cols, axis=0
            )
        else:
            # float32 caches: accumulate the quadratic forms in float64
            # so the posterior variance stays stable near zero.
            mean_z = K_rows @ self._alpha
            var_z = self._prior_diag(self._pool_X[idx]) - np.einsum(
                "ij,ij->j", V_cols, V_cols, dtype=np.float64
            )
        var_z = np.maximum(var_z, 1e-12)
        if include_noise:
            var_z = var_z + self._predict_noise()
        return (
            mean_z * self._y_std + self._y_mean,
            var_z * self._y_std**2,
        )


def predict_pool_multi(
    models: list,
    indices: np.ndarray,
    include_noise: bool = False,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Pool predictions for models sharing one covariance structure.

    The first model's caches are materialized once and aliased onto the
    followers — valid only when every model's
    :meth:`IncrementalGPMixin.covariance_signature` is identical (the
    calibration engine checks this before enabling sharing).  With
    equal signatures the aliased arrays hold exactly the values each
    follower would have computed itself, so results are bit-identical
    to per-model :meth:`IncrementalGPMixin.predict_pool` calls.

    Args:
        models: Fitted models; the first is the cache lead.
        indices: Integer pool indices (or boolean mask).
        include_noise: Add each model's observation-noise variance.

    Returns:
        One ``(mean, variance)`` pair per model.
    """
    lead = models[0]
    if not lead.is_fitted:
        raise RuntimeError("predict_pool_multi() before fit()")
    if lead._pool_X is None:
        raise RuntimeError("predict_pool_multi() before register_pool()")
    lead._ensure_pool_cache()
    for follower in models[1:]:
        follower._pool_K = lead._pool_K
        follower._pool_V = lead._pool_V
    return [
        model.predict_pool(indices, include_noise=include_noise)
        for model in models
    ]


__all__ = ["IncrementalGPMixin", "predict_pool_multi"]
