"""Numerically robust linear algebra for GP inference."""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular

#: Initial diagonal jitter added when a covariance factorization fails.
DEFAULT_JITTER = 1e-8
#: Factor by which jitter grows between attempts.
_JITTER_GROWTH = 10.0
#: Maximum factorization attempts before giving up.
_MAX_TRIES = 8


class NotPositiveDefiniteError(np.linalg.LinAlgError):
    """Covariance matrix could not be factorized even with jitter."""


def robust_cholesky(
    matrix: np.ndarray, jitter: float = DEFAULT_JITTER
) -> tuple[np.ndarray, float]:
    """Lower-Cholesky factor of ``matrix`` with adaptive jitter.

    Args:
        matrix: Symmetric matrix to factorize.
        jitter: Starting diagonal boost used when the plain factorization
            fails.

    Returns:
        ``(L, used_jitter)`` where ``L @ L.T ≈ matrix + used_jitter * I``.

    Raises:
        NotPositiveDefiniteError: If the matrix stays indefinite after
            ``_MAX_TRIES`` jitter escalations.
    """
    matrix = np.asarray(matrix, dtype=float)
    scale = float(np.mean(np.diag(matrix))) or 1.0
    try:
        return np.linalg.cholesky(matrix), 0.0
    except np.linalg.LinAlgError:
        pass
    current = jitter * scale
    for _ in range(_MAX_TRIES):
        try:
            L = np.linalg.cholesky(
                matrix + current * np.eye(len(matrix))
            )
            return L, current
        except np.linalg.LinAlgError:
            current *= _JITTER_GROWTH
    raise NotPositiveDefiniteError(
        f"matrix not PD after jitter up to {current:.3g}"
    )


def cholesky_solve(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``(L @ L.T) x = b`` given the lower factor ``L``."""
    return cho_solve((L, True), b)


def triangular_solve(
    L: np.ndarray, b: np.ndarray, lower: bool = True
) -> np.ndarray:
    """Solve ``L x = b`` for triangular ``L``."""
    return solve_triangular(L, b, lower=lower)


def log_det_from_cholesky(L: np.ndarray) -> float:
    """``log |A|`` for ``A = L @ L.T``."""
    return float(2.0 * np.sum(np.log(np.diag(L))))


def solve_psd(matrix: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve a PSD system with jitter fallback (convenience wrapper)."""
    L, _ = robust_cholesky(matrix)
    return cholesky_solve(L, b)


__all__ = [
    "DEFAULT_JITTER",
    "NotPositiveDefiniteError",
    "cho_factor",
    "cholesky_solve",
    "log_det_from_cholesky",
    "robust_cholesky",
    "solve_psd",
    "triangular_solve",
]
