"""Numerically robust linear algebra for GP inference."""

from __future__ import annotations

import numpy as np
from scipy.linalg import cho_factor, cho_solve, solve_triangular

#: Initial diagonal jitter added when a covariance factorization fails.
DEFAULT_JITTER = 1e-8
#: Factor by which jitter grows between attempts.
_JITTER_GROWTH = 10.0
#: Maximum factorization attempts before giving up.
_MAX_TRIES = 8


class NotPositiveDefiniteError(np.linalg.LinAlgError):
    """Covariance matrix could not be factorized even with jitter."""


def robust_cholesky(
    matrix: np.ndarray, jitter: float = DEFAULT_JITTER
) -> tuple[np.ndarray, float]:
    """Lower-Cholesky factor of ``matrix`` with adaptive jitter.

    Args:
        matrix: Symmetric matrix to factorize.
        jitter: Starting diagonal boost used when the plain factorization
            fails.

    Returns:
        ``(L, used_jitter)`` where ``L @ L.T ≈ matrix + used_jitter * I``.

    Raises:
        NotPositiveDefiniteError: If the matrix stays indefinite after
            ``_MAX_TRIES`` jitter escalations.
    """
    matrix = np.asarray(matrix, dtype=float)
    scale = float(np.mean(np.diag(matrix))) or 1.0
    try:
        return np.linalg.cholesky(matrix), 0.0
    except np.linalg.LinAlgError:
        pass
    current = jitter * scale
    for _ in range(_MAX_TRIES):
        try:
            L = np.linalg.cholesky(
                matrix + current * np.eye(len(matrix))
            )
            return L, current
        except np.linalg.LinAlgError:
            current *= _JITTER_GROWTH
    raise NotPositiveDefiniteError(
        f"matrix not PD after jitter up to {current:.3g}"
    )


def cholesky_solve(L: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``(L @ L.T) x = b`` given the lower factor ``L``."""
    return cho_solve((L, True), b)


def triangular_solve(
    L: np.ndarray, b: np.ndarray, lower: bool = True
) -> np.ndarray:
    """Solve ``L x = b`` for triangular ``L``."""
    return solve_triangular(L, b, lower=lower)


def log_det_from_cholesky(L: np.ndarray) -> float:
    """``log |A|`` for ``A = L @ L.T``."""
    return float(2.0 * np.sum(np.log(np.diag(L))))


def solve_psd(matrix: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve a PSD system with jitter fallback (convenience wrapper)."""
    L, _ = robust_cholesky(matrix)
    return cholesky_solve(L, b)


def factor_once_solve_many(
    matrix: np.ndarray,
    rhs_columns: list[np.ndarray] | np.ndarray,
    jitter: float = DEFAULT_JITTER,
) -> tuple[np.ndarray, float, list[np.ndarray]]:
    """Factor one covariance and solve several right-hand sides.

    The per-metric GPs of the tuning loop share the training inputs and
    (until re-optimization diverges them) the covariance hyperparameters,
    so their ``K`` matrices are identical — factor once, solve one RHS
    per metric.  Each column is solved independently so every solution
    is bit-identical to what a per-model ``robust_cholesky`` +
    ``cholesky_solve`` would produce.

    Args:
        matrix: Shared ``(n, n)`` covariance (noise included).
        rhs_columns: The per-model right-hand sides (each length ``n``).
        jitter: Starting jitter for :func:`robust_cholesky`.

    Returns:
        ``(L, used_jitter, solutions)`` with one solution per RHS.
    """
    L, used = robust_cholesky(matrix, jitter)
    solutions = [cholesky_solve(L, np.asarray(b)) for b in rhs_columns]
    return L, used, solutions


def blocked_triangular_solve(
    L: np.ndarray,
    B: np.ndarray,
    block: int = 0,
    out_dtype: np.dtype | type | None = None,
) -> np.ndarray:
    """Solve ``L V = B`` processing the RHS in column blocks.

    Column blocks keep the working set cache-sized for very wide RHS
    matrices (pool whitening with 10^5-10^6 candidates) and allow the
    result to be stored in a narrower dtype while every solve still runs
    in float64.  With ``block=0`` (or a RHS no wider than ``block``) the
    single-shot :func:`scipy.linalg.solve_triangular` path is used
    unchanged.

    Args:
        L: ``(n, n)`` lower-triangular factor.
        B: ``(n, p)`` right-hand side.
        block: Column-chunk width; ``0`` disables blocking.
        out_dtype: Optional output dtype (e.g. ``np.float32``); solves
            stay float64 and only the stored result is cast.

    Returns:
        The ``(n, p)`` solution, in ``out_dtype`` when given.
    """
    B = np.asarray(B)
    p = B.shape[1] if B.ndim == 2 else 0
    if not block or p <= block:
        V = solve_triangular(L, B, lower=True)
        return V.astype(out_dtype, copy=False) if out_dtype else V
    out = np.empty(B.shape, dtype=out_dtype or B.dtype)
    for start in range(0, p, block):
        stop = min(start + block, p)
        out[:, start:stop] = solve_triangular(
            L, B[:, start:stop], lower=True
        )
    return out


def cholesky_append_rows(
    L: np.ndarray, K_cross: np.ndarray, K_new: np.ndarray
) -> np.ndarray:
    """Border-extend a lower-Cholesky factor by ``k`` new rows.

    Given ``L`` with ``L @ L.T = A`` and the blocks of the bordered matrix

        A_ext = [[A,          K_cross],
                 [K_cross.T,  K_new  ]]

    returns the lower factor ``L_ext`` of ``A_ext`` in O(k n^2) instead of
    the O((n+k)^3) full refactorization:

        L_ext = [[L,    0  ],
                 [B.T,  L22]],   B = L^-1 K_cross,
                                 L22 = chol(K_new - B.T B).

    Args:
        L: ``(n, n)`` lower-triangular factor of the existing block.
        K_cross: ``(n, k)`` covariance between existing and new rows.
        K_new: ``(k, k)`` covariance (plus any noise/jitter diagonal)
            among the new rows.

    Returns:
        The ``(n + k, n + k)`` extended lower factor.

    Raises:
        NotPositiveDefiniteError: If the Schur complement
            ``K_new - B.T B`` is not positive definite — the caller
            should fall back to a full (jittered) refactorization.
    """
    L = np.asarray(L, dtype=float)
    K_cross = np.atleast_2d(np.asarray(K_cross, dtype=float))
    K_new = np.atleast_2d(np.asarray(K_new, dtype=float))
    n = len(L)
    k = K_new.shape[0]
    if K_cross.shape != (n, k) or K_new.shape != (k, k):
        raise ValueError(
            f"block shapes mismatch: L {L.shape}, K_cross {K_cross.shape},"
            f" K_new {K_new.shape}"
        )
    B = solve_triangular(L, K_cross, lower=True) if n else K_cross
    S = K_new - B.T @ B
    try:
        L22 = np.linalg.cholesky(S)
    except np.linalg.LinAlgError as exc:
        raise NotPositiveDefiniteError(
            "Schur complement of appended rows is not PD"
        ) from exc
    L_ext = np.zeros((n + k, n + k))
    L_ext[:n, :n] = L
    L_ext[n:, :n] = B.T
    L_ext[n:, n:] = L22
    return L_ext


def cholesky_append_row(
    L: np.ndarray, k_cross: np.ndarray, k_new: float
) -> np.ndarray:
    """Rank-1 border update: extend ``L`` by a single new row.

    Convenience wrapper over :func:`cholesky_append_rows` for the common
    one-observation-per-iteration case.

    Args:
        L: ``(n, n)`` lower factor.
        k_cross: Length-``n`` covariance vector against existing rows.
        k_new: Variance of the new row (plus noise/jitter).

    Returns:
        The ``(n + 1, n + 1)`` extended lower factor.

    Raises:
        NotPositiveDefiniteError: If the new diagonal pivot is not
            positive.
    """
    k_cross = np.asarray(k_cross, dtype=float).reshape(-1, 1)
    return cholesky_append_rows(L, k_cross, np.array([[float(k_new)]]))


def cholesky_rank1_update(L: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Factor of ``L @ L.T + v v^T`` in O(n^2) (hyperbolic rotations).

    Args:
        L: ``(n, n)`` lower factor.
        v: Length-``n`` update vector.

    Returns:
        A new lower factor (inputs are not mutated).
    """
    L = np.array(L, dtype=float)
    v = np.array(v, dtype=float).ravel()
    n = len(v)
    if L.shape != (n, n):
        raise ValueError("L and v size mismatch")
    for i in range(n):
        r = float(np.hypot(L[i, i], v[i]))
        c = r / L[i, i]
        s = v[i] / L[i, i]
        L[i, i] = r
        if i + 1 < n:
            L[i + 1:, i] = (L[i + 1:, i] + s * v[i + 1:]) / c
            v[i + 1:] = c * v[i + 1:] - s * L[i + 1:, i]
    return L


def cholesky_rank1_downdate(L: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Factor of ``L @ L.T - v v^T`` in O(n^2) (low-rank downdate).

    Used to retract an observation's contribution without refactorizing
    (e.g. outlier rejection or sliding-window forgetting).

    Args:
        L: ``(n, n)`` lower factor.
        v: Length-``n`` downdate vector.

    Returns:
        A new lower factor (inputs are not mutated).

    Raises:
        NotPositiveDefiniteError: If the downdated matrix is not
            positive definite.
    """
    L = np.array(L, dtype=float)
    v = np.array(v, dtype=float).ravel()
    n = len(v)
    if L.shape != (n, n):
        raise ValueError("L and v size mismatch")
    for i in range(n):
        r2 = L[i, i] ** 2 - v[i] ** 2
        if r2 <= 0.0:
            raise NotPositiveDefiniteError(
                "rank-1 downdate makes the matrix indefinite"
            )
        r = float(np.sqrt(r2))
        c = r / L[i, i]
        s = v[i] / L[i, i]
        L[i, i] = r
        if i + 1 < n:
            L[i + 1:, i] = (L[i + 1:, i] - s * v[i + 1:]) / c
            v[i + 1:] = c * v[i + 1:] - s * L[i + 1:, i]
    return L


__all__ = [
    "DEFAULT_JITTER",
    "NotPositiveDefiniteError",
    "blocked_triangular_solve",
    "cho_factor",
    "cholesky_append_row",
    "cholesky_append_rows",
    "cholesky_rank1_downdate",
    "cholesky_rank1_update",
    "cholesky_solve",
    "factor_once_solve_many",
    "log_det_from_cholesky",
    "robust_cholesky",
    "solve_psd",
    "triangular_solve",
]
