"""Multi-source transfer GP — an extension beyond the paper's two tasks.

The paper transfers from *one* historical tuning task; real tuning
archives hold many.  This module generalizes the Eq. (7) transfer kernel
to K source tasks with a rank-1-plus-diagonal task-correlation matrix:

    B[i, j] = c_i * c_j   (i != j),     B[i, i] = 1

with ``c_target = 1`` and ``c_s = lambda_s = 2 (1 + a_s)^-b_s - 1`` per
source — so each target-source correlation reproduces the paper's
two-task factor, source-source correlations follow as products, and
``B = diag(1 - c^2) + c c^T`` is positive semi-definite by construction
(hence the Schur product with the base kernel stays a valid covariance).

Each task also carries its own noise variance (the paper's
``beta_s/beta_t`` generalized).  All hyperparameters are fitted by joint
marginal likelihood with analytic gradients.
"""

from __future__ import annotations

import numpy as np

from .incremental import IncrementalGPMixin
from .kernels import Kernel, RBFKernel
from .likelihood import gaussian_log_marginal, maximize_objective
from .linalg import cholesky_solve, robust_cholesky

#: Log-space bounds for Gamma parameters and noise variances.
_GAMMA_BOUNDS = (-5.0, 4.0)
_NOISE_BOUNDS = (-12.0, 2.0)


class MultiSourceTransferGP(IncrementalGPMixin):
    """Transfer GP over K source tasks and one target task.

    Example:
        >>> model = MultiSourceTransferGP()
        >>> model.fit([(Xs1, ys1), (Xs2, ys2)], Xt, yt)  # doctest: +SKIP
        >>> mean, var = model.predict(Xq)                # doctest: +SKIP
    """

    def __init__(
        self,
        kernel: Kernel | None = None,
        a: float = 1.0,
        b: float = 1.0,
        noise: float = 1e-2,
        optimize: bool = True,
        n_restarts: int = 1,
        seed: int | None = 0,
    ) -> None:
        """Create the model.

        Args:
            kernel: Base within-task kernel (ARD RBF by default).
            a: Initial Gamma scale shared by all sources.
            b: Initial Gamma shape shared by all sources.
            noise: Initial per-task noise variance.
            optimize: Whether :meth:`fit` tunes hyperparameters.
            n_restarts: Optimizer restarts.
            seed: Seed for restarts.
        """
        if a <= 0 or b <= 0 or noise <= 0:
            raise ValueError("a, b and noise must be positive")
        self._kernel = kernel
        self._init = (float(np.log(a)), float(np.log(b)),
                      float(np.log(noise)))
        self.optimize = optimize
        self.n_restarts = n_restarts
        self.seed = seed
        self._n_sources = 0
        self._log_a: np.ndarray | None = None
        self._log_b: np.ndarray | None = None
        self._log_noise: np.ndarray | None = None  # per task, target last
        self._X: np.ndarray | None = None
        self._tasks: np.ndarray | None = None
        self._L: np.ndarray | None = None
        self._alpha: np.ndarray | None = None
        self._y_mean = 0.0
        self._y_std = 1.0
        self._opt_theta: np.ndarray | None = None

    # ---- task-correlation helpers -------------------------------------

    def _lambdas(self) -> np.ndarray:
        """Per-source correlation coefficients ``c_s`` in (-1, 1]."""
        assert self._log_a is not None and self._log_b is not None
        a = np.exp(self._log_a)
        b = np.exp(self._log_b)
        return 2.0 * (1.0 + a) ** (-b) - 1.0

    @property
    def lambdas(self) -> np.ndarray:
        """Learned target-source correlation per source task."""
        if self._log_a is None:
            raise RuntimeError("model not fitted")
        return self._lambdas()

    def _coeffs(self) -> np.ndarray:
        """Per-task coefficients ``c`` with the target pinned at 1."""
        return np.append(self._lambdas(), 1.0)

    def _task_matrix(self, coeffs: np.ndarray) -> np.ndarray:
        """The PSD task-correlation matrix B."""
        B = np.outer(coeffs, coeffs)
        np.fill_diagonal(B, 1.0)
        return B

    # ---- fitting -------------------------------------------------------

    def fit(
        self,
        sources: list[tuple[np.ndarray, np.ndarray]] | None = None,
        X_target: np.ndarray | None = None,
        y_target: np.ndarray | None = None,
        *,
        Xs: list[tuple[np.ndarray, np.ndarray]] | None = None,
    ) -> "MultiSourceTransferGP":
        """Fit on K source datasets plus the target data.

        Args:
            sources: List of ``(X_s, y_s)`` pairs (may be empty) — the
                keyword shared with :class:`~repro.gp.transfer_gp.TransferGP`.
            X_target: ``(M, d)`` target inputs.
            y_target: Length-``M`` target values.
            Xs: Deprecated alias for ``sources``.

        Returns:
            ``self``.

        Raises:
            ValueError: On shape problems, empty target data, or
                conflicting source arguments.
        """
        if Xs is not None:
            import warnings

            warnings.warn(
                "the Xs keyword of MultiSourceTransferGP.fit is "
                "deprecated; pass sources=[(X, y), ...]",
                DeprecationWarning,
                stacklevel=2,
            )
            if sources is not None:
                raise ValueError("pass either sources or Xs, not both")
            sources = Xs
        if sources is None:
            sources = []
        if X_target is None or y_target is None:
            raise ValueError("X_target and y_target are required")
        Xt = np.atleast_2d(np.asarray(X_target, dtype=float))
        yt = np.asarray(y_target, dtype=float).ravel()
        if len(Xt) != len(yt) or len(yt) == 0:
            raise ValueError("target X/y misaligned or empty")
        cleaned: list[tuple[np.ndarray, np.ndarray]] = []
        for Xs, ys in sources:
            Xs = np.atleast_2d(np.asarray(Xs, dtype=float))
            ys = np.asarray(ys, dtype=float).ravel()
            if len(Xs) != len(ys):
                raise ValueError("source X/y misaligned")
            if Xs.size and Xs.shape[1] != Xt.shape[1]:
                raise ValueError("source dimensionality mismatch")
            if len(ys):
                cleaned.append((Xs, ys))
        self._n_sources = len(cleaned)

        X = np.vstack([Xs for Xs, _ in cleaned] + [Xt])
        y = np.concatenate([ys for _, ys in cleaned] + [yt])
        tasks = np.concatenate([
            np.full(len(ys), k, dtype=int)
            for k, (_, ys) in enumerate(cleaned)
        ] + [np.full(len(yt), self._n_sources, dtype=int)])

        if self._kernel is None:
            self._kernel = RBFKernel(np.full(X.shape[1], 0.3))
        # Initialize hyperparameters once (or when the archive count
        # changes); refits without optimization must keep learned values.
        if (
            self._log_a is None
            or len(self._log_a) != self._n_sources
        ):
            log_a0, log_b0, log_n0 = self._init
            self._log_a = np.full(self._n_sources, log_a0)
            self._log_b = np.full(self._n_sources, log_b0)
            self._log_noise = np.full(self._n_sources + 1, log_n0)

        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        z = (y - self._y_mean) / self._y_std

        if self.optimize and len(X) >= 3:
            self._optimize_hyperparameters(X, tasks, z)

        K = self._full_kernel(X, tasks) + np.diag(
            np.exp(self._log_noise)[tasks]
        )
        self._L, self._jitter = robust_cholesky(K)
        self._alpha = cholesky_solve(self._L, z)
        self._X = X
        self._tasks = tasks
        self._y_raw = y.copy()
        self._invalidate_pool_cache()
        return self

    # ---- incremental hooks (see IncrementalGPMixin) -------------------

    def _cross_cov(
        self, X_query: np.ndarray, rows: slice | None = None
    ) -> np.ndarray:
        assert self._kernel is not None
        assert self._X is not None and self._tasks is not None
        X_query = np.atleast_2d(X_query)
        X2 = self._X if rows is None else self._X[rows]
        tasks2 = self._tasks if rows is None else self._tasks[rows]
        coeffs = self._coeffs()
        factors = coeffs[tasks2] * coeffs[-1]
        factors = np.where(tasks2 == self._n_sources, 1.0, factors)
        return self._kernel.eval(X_query, X2) * factors[None, :]

    def _cov_new_block(self, X_new: np.ndarray) -> np.ndarray:
        assert self._kernel is not None and self._log_noise is not None
        return self._kernel.eval(X_new) + float(
            np.exp(self._log_noise[-1])
        ) * np.eye(len(X_new))

    def _cov_full(self) -> np.ndarray:
        assert self._X is not None and self._tasks is not None
        assert self._log_noise is not None
        return self._full_kernel(self._X, self._tasks) + np.diag(
            np.exp(self._log_noise)[self._tasks]
        )

    def _prior_diag(self, X_query: np.ndarray) -> np.ndarray:
        assert self._kernel is not None
        return self._kernel.diag(np.atleast_2d(X_query))

    def _predict_noise(self) -> float:
        assert self._log_noise is not None
        return float(np.exp(self._log_noise[-1]))

    def _append_data(self, X_new: np.ndarray, y_new: np.ndarray) -> None:
        assert self._X is not None and self._tasks is not None
        assert self._y_raw is not None
        self._X = np.vstack([self._X, X_new])
        self._tasks = np.concatenate([
            self._tasks,
            np.full(len(y_new), self._n_sources, dtype=int),
        ])
        self._y_raw = np.concatenate([self._y_raw, y_new])

    def _cov_params(self) -> tuple:
        kernel_sig = (
            None if self._kernel is None
            else (
                type(self._kernel).__name__,
                tuple(
                    float(v)
                    for v in np.asarray(self._kernel.theta).ravel()
                ),
            )
        )
        if self._log_a is None:
            transfer_sig = ("init",) + self._init
        else:
            assert self._log_b is not None and self._log_noise is not None
            transfer_sig = (
                tuple(float(v) for v in self._log_a),
                tuple(float(v) for v in self._log_b),
                tuple(float(v) for v in self._log_noise),
            )
        return (kernel_sig, transfer_sig)

    def _adopt_structure(self, lead: "MultiSourceTransferGP") -> None:
        assert lead._X is not None
        if self._kernel is None:
            self._kernel = RBFKernel(np.full(lead._X.shape[1], 0.3))
        self._n_sources = lead._n_sources
        if (
            self._log_a is None
            or len(self._log_a) != self._n_sources
        ):
            log_a0, log_b0, log_n0 = self._init
            self._log_a = np.full(self._n_sources, log_a0)
            self._log_b = np.full(self._n_sources, log_b0)
            self._log_noise = np.full(self._n_sources + 1, log_n0)
        self._X = lead._X
        self._tasks = lead._tasks

    def _full_kernel(self, X: np.ndarray, tasks: np.ndarray) -> np.ndarray:
        assert self._kernel is not None
        B = self._task_matrix(self._coeffs())
        return self._kernel.eval(X) * B[np.ix_(tasks, tasks)]

    def _optimize_hyperparameters(
        self, X: np.ndarray, tasks: np.ndarray, z: np.ndarray
    ) -> None:
        kernel = self._kernel
        assert kernel is not None
        n_src = self._n_sources
        n_kernel = kernel.n_params
        task_masks = [tasks == k for k in range(n_src + 1)]

        def unpack(theta):
            kernel.theta = theta[:n_kernel]
            log_a = theta[n_kernel:n_kernel + n_src]
            log_b = theta[n_kernel + n_src:n_kernel + 2 * n_src]
            log_noise = theta[n_kernel + 2 * n_src:]
            return log_a, log_b, log_noise

        def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
            log_a, log_b, log_noise = unpack(theta)
            self._log_a, self._log_b = log_a, log_b
            a = np.exp(log_a)
            b = np.exp(log_b)
            coeffs = self._coeffs()
            B = self._task_matrix(coeffs)
            K_base, base_grads = kernel.eval_with_grads(X)
            B_exp = B[np.ix_(tasks, tasks)]
            K = K_base * B_exp
            noise = np.exp(log_noise)[tasks]
            K = K + np.diag(noise)

            grads: list[np.ndarray] = [g * B_exp for g in base_grads]
            # d lambda_s / d log a_s and / d log b_s (see transfer_kernel).
            dlam_da = -2.0 * b * a * (1.0 + a) ** (-b - 1.0)
            dlam_db = -2.0 * b * np.log1p(a) * (1.0 + a) ** (-b)
            for s in range(n_src):
                # dB/dc_s: row/col s become the other coeffs; diagonal
                # stays 1.
                dB = np.zeros_like(B)
                dB[s, :] = coeffs
                dB[:, s] = coeffs
                dB[s, s] = 0.0
                dB_exp = dB[np.ix_(tasks, tasks)]
                grads.append(K_base * dB_exp * dlam_da[s])
            for s in range(n_src):
                dB = np.zeros_like(B)
                dB[s, :] = coeffs
                dB[:, s] = coeffs
                dB[s, s] = 0.0
                dB_exp = dB[np.ix_(tasks, tasks)]
                grads.append(K_base * dB_exp * dlam_db[s])
            for k in range(n_src + 1):
                grads.append(np.diag(
                    np.exp(log_noise[k]) * task_masks[k].astype(float)
                ))

            lml, g, _ = gaussian_log_marginal(K, z, grads)
            assert g is not None
            return -lml, -g

        # Warm-start refits from the previously optimized vector (the
        # objective mutates the live parameters during evaluation).
        theta0 = np.concatenate([
            kernel.theta, self._log_a, self._log_b, self._log_noise,
        ])
        if (
            self._opt_theta is not None
            and len(self._opt_theta) == len(theta0)
        ):
            theta0 = self._opt_theta
        bounds = (
            kernel.bounds()
            + [_GAMMA_BOUNDS] * (2 * n_src)
            + [_NOISE_BOUNDS] * (n_src + 1)
        )
        best = maximize_objective(
            objective, theta0, bounds,
            n_restarts=self.n_restarts, seed=self.seed,
        )
        kernel.theta = best[:n_kernel]
        self._log_a = best[n_kernel:n_kernel + n_src].copy()
        self._log_b = best[n_kernel + n_src:n_kernel + 2 * n_src].copy()
        self._log_noise = best[n_kernel + 2 * n_src:].copy()
        self._opt_theta = np.asarray(best, dtype=float).copy()

    # ---- prediction ----------------------------------------------------

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._alpha is not None

    def predict(
        self, X_new: np.ndarray, include_noise: bool = False
    ) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean/variance at target-task inputs.

        Args:
            X_new: ``(m, d)`` query inputs.
            include_noise: Add the target-task noise variance.

        Returns:
            ``(mean, variance)`` in the original target scale.

        Raises:
            RuntimeError: If not fitted.
        """
        if not self.is_fitted:
            raise RuntimeError("predict() before fit()")
        assert self._X is not None and self._tasks is not None
        assert self._L is not None and self._alpha is not None
        assert self._kernel is not None and self._log_noise is not None
        X_new = np.atleast_2d(np.asarray(X_new, dtype=float))
        coeffs = self._coeffs()
        # Cross-covariance: target rows against all training tasks.
        factors = coeffs[self._tasks] * coeffs[-1]
        same_task = self._tasks == self._n_sources
        factors = np.where(same_task, 1.0, factors)
        K_star = self._kernel.eval(X_new, self._X) * factors[None, :]
        mean_z = K_star @ self._alpha
        v = np.linalg.solve(self._L, K_star.T)
        var_z = self._kernel.diag(X_new) - np.sum(v * v, axis=0)
        var_z = np.maximum(var_z, 1e-12)
        if include_noise:
            var_z = var_z + float(np.exp(self._log_noise[-1]))
        return (
            mean_z * self._y_std + self._y_mean,
            var_z * self._y_std**2,
        )
