"""The transfer kernel of paper Section 3.1 (Eq. (5)-(7)).

Cross-task covariance is the base kernel damped by a task-similarity
factor.  The paper places a Gamma(b, a) prior on the task dissimilarity
``phi`` in ``2 exp(-phi) - 1`` and integrates it out analytically, giving

    lambda = 2 * (1 / (1 + a)) ** b - 1            (Eq. (7))

so ``K~[n, m] = k(x_n, x_m) * lambda`` when ``x_n`` and ``x_m`` come from
different tasks and ``k(x_n, x_m)`` otherwise.  ``lambda`` lives in
``(-1, 1]``: positive transfer, no transfer (0), or *negative* correlation
between tasks — the "stronger expression ability" the paper highlights.
"""

from __future__ import annotations

import numpy as np

from .kernels import Kernel

#: Log-space bounds for the Gamma hyperparameters a and b.
_GAMMA_BOUNDS = (-5.0, 4.0)


def transfer_factor(a: float, b: float) -> float:
    """The integrated cross-task damping ``lambda`` of Eq. (7).

    Args:
        a: Gamma scale parameter (> 0).
        b: Gamma shape parameter (> 0).

    Returns:
        ``2 * (1 + a) ** -b - 1`` in ``(-1, 1]``.

    Raises:
        ValueError: If ``a`` or ``b`` is not positive.
    """
    if a <= 0 or b <= 0:
        raise ValueError("Gamma parameters a, b must be positive")
    return float(2.0 * (1.0 + a) ** (-b) - 1.0)


class TransferKernel:
    """Base kernel wrapped with the Eq. (7) cross-task factor.

    Hyperparameters: the base kernel's theta followed by
    ``[log a, log b]``.

    Attributes:
        base: The within-task kernel ``k``.
    """

    def __init__(
        self, base: Kernel, a: float = 1.0, b: float = 1.0
    ) -> None:
        """Create the transfer kernel.

        Args:
            base: Within-task kernel.
            a: Initial Gamma scale (> 0).
            b: Initial Gamma shape (> 0).
        """
        if a <= 0 or b <= 0:
            raise ValueError("Gamma parameters a, b must be positive")
        self.base = base
        self._log_a = float(np.log(a))
        self._log_b = float(np.log(b))

    @property
    def a(self) -> float:
        """Gamma scale parameter."""
        return float(np.exp(self._log_a))

    @property
    def b(self) -> float:
        """Gamma shape parameter."""
        return float(np.exp(self._log_b))

    @property
    def lam(self) -> float:
        """Current cross-task factor ``lambda``."""
        return transfer_factor(self.a, self.b)

    @property
    def theta(self) -> np.ndarray:
        """Log hyperparameters: base theta + [log a, log b]."""
        return np.concatenate(
            [self.base.theta, [self._log_a, self._log_b]]
        )

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float).ravel()
        if len(value) != self.base.n_params + 2:
            raise ValueError(
                f"expected {self.base.n_params + 2} params, "
                f"got {len(value)}"
            )
        self.base.theta = value[:-2]
        self._log_a = float(value[-2])
        self._log_b = float(value[-1])

    def bounds(self) -> list[tuple[float, float]]:
        """Optimization bounds: base bounds + Gamma bounds."""
        return self.base.bounds() + [_GAMMA_BOUNDS, _GAMMA_BOUNDS]

    def _cross_mask(
        self, tasks1: np.ndarray, tasks2: np.ndarray
    ) -> np.ndarray:
        """1.0 where the pair is cross-task, 0.0 within-task."""
        return (
            np.asarray(tasks1).reshape(-1, 1)
            != np.asarray(tasks2).reshape(1, -1)
        ).astype(float)

    def eval(
        self,
        X1: np.ndarray,
        tasks1: np.ndarray,
        X2: np.ndarray | None = None,
        tasks2: np.ndarray | None = None,
    ) -> np.ndarray:
        """Transfer covariance between task-labelled inputs.

        Args:
            X1: ``(n1, d)`` inputs.
            tasks1: Length-``n1`` integer task labels.
            X2: ``(n2, d)`` inputs (defaults to ``X1``).
            tasks2: Labels for ``X2`` (defaults to ``tasks1``).

        Returns:
            The ``(n1, n2)`` covariance ``K~`` of Eq. (7).
        """
        if X2 is None:
            X2, tasks2 = X1, tasks1
        assert tasks2 is not None
        K = self.base.eval(X1, X2)
        cross = self._cross_mask(tasks1, tasks2)
        factor = 1.0 + cross * (self.lam - 1.0)
        return K * factor

    def eval_with_grads(
        self, X: np.ndarray, tasks: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Symmetric transfer covariance and hyperparameter gradients.

        Returns:
            ``(K~, grads)`` with one gradient matrix per entry of
            :attr:`theta`.
        """
        K_base, base_grads = self.base.eval_with_grads(X)
        cross = self._cross_mask(tasks, tasks)
        lam = self.lam
        factor = 1.0 + cross * (lam - 1.0)
        K = K_base * factor
        grads = [g * factor for g in base_grads]
        # d lambda / d log a = -2 b a (1+a)^(-b-1)
        a, b = self.a, self.b
        dlam_dloga = -2.0 * b * a * (1.0 + a) ** (-b - 1.0)
        # d lambda / d log b = -2 b log(1+a) (1+a)^(-b)
        dlam_dlogb = -2.0 * b * np.log1p(a) * (1.0 + a) ** (-b)
        grads.append(K_base * cross * dlam_dloga)
        grads.append(K_base * cross * dlam_dlogb)
        return K, grads
