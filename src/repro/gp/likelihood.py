"""Marginal-likelihood evaluation and hyperparameter optimization."""

from __future__ import annotations

from collections.abc import Callable

import numpy as np
from scipy.optimize import minimize

from .linalg import (
    cholesky_solve,
    log_det_from_cholesky,
    robust_cholesky,
)

#: Objective = callable(theta) -> (negative log marginal likelihood, grad).
Objective = Callable[[np.ndarray], tuple[float, np.ndarray]]


def gaussian_log_marginal(
    K: np.ndarray,
    y: np.ndarray,
    K_grads: list[np.ndarray] | None = None,
) -> tuple[float, np.ndarray | None, np.ndarray]:
    """Log marginal likelihood of ``y ~ N(0, K)`` and optional gradients.

    Args:
        K: Covariance (including noise on the diagonal).
        y: Observations (zero-mean).
        K_grads: Optional ``dK/dtheta_i`` matrices.

    Returns:
        ``(lml, grads_or_None, alpha)`` where ``alpha = K^-1 y``.  The
        gradient of the LML w.r.t. each hyperparameter is
        ``0.5 * tr((alpha alpha^T - K^-1) dK/dtheta)``.
    """
    L, _ = robust_cholesky(K)
    alpha = cholesky_solve(L, y)
    lml = float(
        -0.5 * y @ alpha
        - 0.5 * log_det_from_cholesky(L)
        - 0.5 * len(y) * np.log(2.0 * np.pi)
    )
    if K_grads is None:
        return lml, None, alpha
    K_inv = cholesky_solve(L, np.eye(len(y)))
    inner = np.outer(alpha, alpha) - K_inv
    grads = np.array(
        [0.5 * np.sum(inner * dK) for dK in K_grads]
    )
    return lml, grads, alpha


def maximize_objective(
    objective: Objective,
    theta0: np.ndarray,
    bounds: list[tuple[float, float]],
    n_restarts: int = 2,
    seed: int | None = None,
    maxiter: int = 120,
) -> np.ndarray:
    """L-BFGS-B maximization with random restarts.

    ``objective`` returns the *negative* LML and its gradient, so this is
    a minimization under the hood.

    Args:
        objective: Function of the log-hyperparameter vector.
        theta0: Starting point (first restart starts here).
        bounds: Box constraints per hyperparameter.
        n_restarts: Additional uniform-random restarts inside ``bounds``.
        seed: RNG seed for the restart draws.
        maxiter: L-BFGS iteration budget per restart.

    Returns:
        The best hyperparameter vector found (falls back to ``theta0``
        if every restart fails numerically).
    """
    rng = np.random.default_rng(seed)
    lo = np.array([b[0] for b in bounds])
    hi = np.array([b[1] for b in bounds])
    starts = [np.clip(theta0, lo, hi)]
    # Restarts draw from a moderate sub-box; full-range draws often start
    # in flat likelihood plateaus.  Pinned parameters (lo == hi, possibly
    # outside the sub-box) keep their pinned value.
    draw_lo = np.maximum(lo, -3.0)
    draw_hi = np.minimum(hi, 3.0)
    inverted = draw_lo > draw_hi
    draw_lo[inverted] = lo[inverted]
    draw_hi[inverted] = hi[inverted]
    for _ in range(max(n_restarts, 0)):
        starts.append(rng.uniform(draw_lo, draw_hi))

    best_theta = starts[0]
    best_value = np.inf
    for start in starts:
        try:
            result = minimize(
                objective,
                start,
                jac=True,
                method="L-BFGS-B",
                bounds=bounds,
                options={"maxiter": maxiter},
            )
        except (np.linalg.LinAlgError, FloatingPointError):
            continue
        if np.isfinite(result.fun) and result.fun < best_value:
            best_value = float(result.fun)
            best_theta = np.asarray(result.x)
    return best_theta
