"""Stationary covariance kernels with ARD lengthscales and analytic
hyperparameter gradients.

Hyperparameters live in log space (positivity for free, better-conditioned
optimization).  Every kernel exposes:

- ``theta`` — the log-hyperparameter vector (settable);
- ``eval(X1, X2)`` — cross-covariance matrix;
- ``eval_with_grads(X)`` — symmetric covariance plus ``dK/dtheta_i`` for
  each hyperparameter, used by marginal-likelihood training.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

#: Default log-space box constraints for lengthscales and variances.
_LOG_BOUNDS = (-6.0, 6.0)


def _sq_dists_per_dim(X1: np.ndarray, X2: np.ndarray) -> np.ndarray:
    """Per-dimension squared differences, shape ``(n1, n2, d)``."""
    diff = X1[:, None, :] - X2[None, :, :]
    return diff * diff


class Kernel(ABC):
    """Abstract stationary kernel over R^d."""

    @property
    @abstractmethod
    def theta(self) -> np.ndarray:
        """Log-space hyperparameter vector (copy)."""

    @theta.setter
    @abstractmethod
    def theta(self, value: np.ndarray) -> None:
        """Set the log-space hyperparameters."""

    @property
    def n_params(self) -> int:
        """Number of hyperparameters."""
        return len(self.theta)

    @abstractmethod
    def bounds(self) -> list[tuple[float, float]]:
        """Per-hyperparameter log-space optimization bounds."""

    @abstractmethod
    def eval(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        """Covariance matrix between ``X1`` and ``X2`` (or ``X1`` itself)."""

    @abstractmethod
    def eval_with_grads(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Symmetric covariance of ``X`` and per-hyperparameter gradients."""

    def diag(self, X: np.ndarray) -> np.ndarray:
        """Diagonal of ``eval(X, X)`` without forming the matrix."""
        return np.full(len(X), float(self.variance))

    @property
    @abstractmethod
    def variance(self) -> float:
        """Signal variance (the kernel's value at zero distance)."""

    def clone(self) -> "Kernel":
        """Deep copy (same class and hyperparameters)."""
        new = self.__class__.__new__(self.__class__)
        new.__dict__.update(
            {k: np.copy(v) if isinstance(v, np.ndarray) else v
             for k, v in self.__dict__.items()}
        )
        return new


class _ArdKernel(Kernel):
    """Shared machinery for ARD kernels: theta = [log ls_1..d, log var]."""

    def __init__(
        self, lengthscales: np.ndarray | list[float], variance: float = 1.0
    ) -> None:
        """Create the kernel.

        Args:
            lengthscales: Per-dimension positive lengthscales.
            variance: Positive signal variance.
        """
        ls = np.asarray(lengthscales, dtype=float).ravel()
        if np.any(ls <= 0) or variance <= 0:
            raise ValueError("lengthscales and variance must be positive")
        self._log_ls = np.log(ls)
        self._log_var = float(np.log(variance))

    @property
    def lengthscales(self) -> np.ndarray:
        """Per-dimension lengthscales (natural space)."""
        return np.exp(self._log_ls)

    @property
    def variance(self) -> float:
        return float(np.exp(self._log_var))

    @property
    def dim(self) -> int:
        """Input dimensionality."""
        return len(self._log_ls)

    @property
    def theta(self) -> np.ndarray:
        return np.append(self._log_ls, self._log_var)

    @theta.setter
    def theta(self, value: np.ndarray) -> None:
        value = np.asarray(value, dtype=float).ravel()
        if len(value) != len(self._log_ls) + 1:
            raise ValueError(
                f"expected {len(self._log_ls) + 1} params, got {len(value)}"
            )
        self._log_ls = value[:-1].copy()
        self._log_var = float(value[-1])

    def bounds(self) -> list[tuple[float, float]]:
        return [_LOG_BOUNDS] * (self.dim + 1)

    def _scaled_sq_dists(
        self, X1: np.ndarray, X2: np.ndarray
    ) -> np.ndarray:
        ls = self.lengthscales
        return _sq_dists_per_dim(X1 / ls, X2 / ls)


class RBFKernel(_ArdKernel):
    """Squared-exponential kernel with ARD lengthscales.

    ``k(x, x') = variance * exp(-0.5 * sum_j ((x_j - x'_j) / ls_j)^2)``
    """

    def eval(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        X1 = np.atleast_2d(X1)
        X2 = X1 if X2 is None else np.atleast_2d(X2)
        sq = self._scaled_sq_dists(X1, X2).sum(axis=2)
        return self.variance * np.exp(-0.5 * sq)

    def eval_with_grads(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        X = np.atleast_2d(X)
        sq_dims = self._scaled_sq_dists(X, X)
        K = self.variance * np.exp(-0.5 * sq_dims.sum(axis=2))
        grads: list[np.ndarray] = [
            K * sq_dims[:, :, j] for j in range(self.dim)
        ]
        grads.append(K.copy())  # d/dlog var
        return K, grads


class Matern52Kernel(_ArdKernel):
    """Matérn-5/2 kernel with ARD lengthscales.

    ``k = variance * (1 + sqrt(5) r + 5/3 r^2) * exp(-sqrt(5) r)`` where
    ``r`` is the ARD-scaled Euclidean distance.
    """

    def eval(self, X1: np.ndarray, X2: np.ndarray | None = None) -> np.ndarray:
        X1 = np.atleast_2d(X1)
        X2 = X1 if X2 is None else np.atleast_2d(X2)
        r2 = self._scaled_sq_dists(X1, X2).sum(axis=2)
        r = np.sqrt(np.maximum(r2, 0.0))
        s5r = np.sqrt(5.0) * r
        return self.variance * (1.0 + s5r + 5.0 / 3.0 * r2) * np.exp(-s5r)

    def eval_with_grads(
        self, X: np.ndarray
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        X = np.atleast_2d(X)
        sq_dims = self._scaled_sq_dists(X, X)
        r2 = sq_dims.sum(axis=2)
        r = np.sqrt(np.maximum(r2, 0.0))
        s5r = np.sqrt(5.0) * r
        expo = np.exp(-s5r)
        K = self.variance * (1.0 + s5r + 5.0 / 3.0 * r2) * expo
        # dk/d(r^2) = -(5/6) * variance * (1 + sqrt(5) r) * exp(-sqrt5 r)
        dk_dr2 = -(5.0 / 6.0) * self.variance * (1.0 + s5r) * expo
        grads: list[np.ndarray] = []
        for j in range(self.dim):
            # d(r^2)/d(log ls_j) = -2 * scaled_sq_dist_j
            grads.append(dk_dr2 * (-2.0 * sq_dims[:, :, j]))
        grads.append(K.copy())  # d/dlog var
        return K, grads


def make_kernel(
    name: str, dim: int, lengthscale: float = 1.0, variance: float = 1.0
) -> Kernel:
    """Kernel factory by name (``"rbf"`` or ``"matern52"``).

    Args:
        name: Kernel family.
        dim: Input dimensionality (one ARD lengthscale per dim).
        lengthscale: Initial lengthscale for every dimension.
        variance: Initial signal variance.

    Raises:
        ValueError: For an unknown kernel name.
    """
    families = {"rbf": RBFKernel, "matern52": Matern52Kernel}
    if name not in families:
        raise ValueError(
            f"unknown kernel {name!r}; choose from {sorted(families)}"
        )
    return families[name](np.full(dim, lengthscale), variance)
