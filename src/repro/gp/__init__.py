"""Gaussian-process substrate (from scratch on numpy/scipy).

Standard GP regression (paper Eq. (1)), the transfer kernel (Eq. (5)-(7)),
and the two-task transfer GP (Eq. (8)).
"""

from .gp_regression import GPRegressor
from .incremental import IncrementalGPMixin, predict_pool_multi
from .kernels import Kernel, Matern52Kernel, RBFKernel, make_kernel
from .likelihood import gaussian_log_marginal, maximize_objective
from .multisource import MultiSourceTransferGP
from .linalg import (
    NotPositiveDefiniteError,
    blocked_triangular_solve,
    cholesky_append_row,
    cholesky_append_rows,
    cholesky_rank1_downdate,
    cholesky_rank1_update,
    cholesky_solve,
    factor_once_solve_many,
    log_det_from_cholesky,
    robust_cholesky,
    solve_psd,
)
from .transfer_gp import SOURCE_TASK, TARGET_TASK, TransferGP
from .transfer_kernel import TransferKernel, transfer_factor

__all__ = [
    "SOURCE_TASK",
    "TARGET_TASK",
    "GPRegressor",
    "IncrementalGPMixin",
    "Kernel",
    "Matern52Kernel",
    "MultiSourceTransferGP",
    "NotPositiveDefiniteError",
    "RBFKernel",
    "TransferGP",
    "TransferKernel",
    "blocked_triangular_solve",
    "cholesky_append_row",
    "cholesky_append_rows",
    "cholesky_rank1_downdate",
    "cholesky_rank1_update",
    "cholesky_solve",
    "factor_once_solve_many",
    "gaussian_log_marginal",
    "log_det_from_cholesky",
    "make_kernel",
    "maximize_objective",
    "predict_pool_multi",
    "robust_cholesky",
    "solve_psd",
    "transfer_factor",
]
