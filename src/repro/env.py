"""Typed process-environment configuration (single source of truth).

Every ``PPATUNER_*`` environment variable the package honours is read
through one accessor here, with its default documented next to the
parser.  Call sites (the benchmark generator, the cache store, the
experiment runner, the trace sinks, the fault-injection harness) must
not call ``os.environ`` themselves — routing everything through this
module keeps names, parsing and defaults from drifting apart per
subsystem.

Variables:

``PPATUNER_WORKERS``
    Worker-process count for benchmark cold builds and experiment cell
    fan-out.  Default: the CPU count capped at 8 (the individual jobs
    are short, so more workers only add fork cost).
``PPATUNER_CACHE``
    Benchmark cache directory.  Default: ``<repo>/.cache/benchmarks``.
``PPATUNER_RUN_CACHE``
    Run-memo directory for resumable experiment cells.  Default:
    ``<repo>/.cache/runs``.
``PPATUNER_TRACE_DIR``
    Trace directory.  For experiment cells this is also the *switch*:
    cells record their event stream only when it is set.  Default
    directory when a path is needed anyway: ``<repo>/.cache/traces``.
``PPATUNER_FULL``
    ``1``/``true`` selects paper-scale MAC designs (see DESIGN.md §2).
    Default: reduced designs.
``PPATUNER_FAULT_SEED``
    When set to an integer, experiment cells wrap their oracle in a
    seeded :class:`~repro.reliability.FaultInjectingOracle` (transient,
    value-preserving faults) behind a
    :class:`~repro.reliability.ResilientOracle` — the chaos-testing
    switch.  Default: unset, no injection.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = [
    "ENV_VARS",
    "bench_cache_dir",
    "default_trace_dir",
    "fault_seed",
    "full_scale",
    "repo_root",
    "run_cache_dir",
    "trace_dir",
    "workers",
]

#: Every honoured variable -> one-line description (README/docs source).
ENV_VARS: dict[str, str] = {
    "PPATUNER_WORKERS": "worker processes for cache builds and cell "
                        "fan-out (default: CPU count, capped at 8)",
    "PPATUNER_CACHE": "benchmark cache directory "
                      "(default: <repo>/.cache/benchmarks)",
    "PPATUNER_RUN_CACHE": "run-memo directory for resumable cells "
                          "(default: <repo>/.cache/runs)",
    "PPATUNER_TRACE_DIR": "record cell traces under this directory "
                          "(unset: cell tracing off)",
    "PPATUNER_FULL": "1/true selects paper-scale MAC designs "
                     "(default: reduced)",
    "PPATUNER_FAULT_SEED": "integer seed enabling deterministic "
                           "transient fault injection in experiment "
                           "cells (unset: no injection)",
}


def repo_root() -> Path:
    """Repository root (anchor for the default cache directories)."""
    return Path(__file__).resolve().parents[2]


def workers(explicit: int | None = None) -> int:
    """Effective worker-process count (``PPATUNER_WORKERS``).

    An explicit argument wins; otherwise the environment variable, then
    the CPU count capped at 8.  Always at least 1.
    """
    if explicit is not None:
        return max(1, int(explicit))
    raw = os.environ.get("PPATUNER_WORKERS", "").strip()
    if raw:
        return max(1, int(raw))
    return min(os.cpu_count() or 1, 8)


def bench_cache_dir() -> Path:
    """Benchmark cache directory (``PPATUNER_CACHE``)."""
    override = os.environ.get("PPATUNER_CACHE")
    if override:
        return Path(override)
    return repo_root() / ".cache" / "benchmarks"


def run_cache_dir() -> Path:
    """Run-memo directory (``PPATUNER_RUN_CACHE``)."""
    override = os.environ.get("PPATUNER_RUN_CACHE")
    if override:
        return Path(override)
    return repo_root() / ".cache" / "runs"


def trace_dir() -> Path | None:
    """Trace-directory *override* (``PPATUNER_TRACE_DIR``), or ``None``.

    ``None`` means "cell tracing off" — experiment cells only record
    when the variable is set.  Use :func:`default_trace_dir` when a
    concrete directory is needed regardless.
    """
    override = os.environ.get("PPATUNER_TRACE_DIR")
    return Path(override) if override else None


def default_trace_dir() -> Path:
    """Trace directory with the repo fallback (``PPATUNER_TRACE_DIR``)."""
    return trace_dir() or (repo_root() / ".cache" / "traces")


def full_scale() -> bool:
    """Whether paper-scale designs were requested (``PPATUNER_FULL``)."""
    return os.environ.get("PPATUNER_FULL", "").strip() in {"1", "true"}


def fault_seed() -> int | None:
    """Deterministic fault-injection seed (``PPATUNER_FAULT_SEED``).

    Returns:
        The integer seed, or ``None`` when injection is off.

    Raises:
        ValueError: If the variable is set but not an integer.
    """
    raw = os.environ.get("PPATUNER_FAULT_SEED", "").strip()
    if not raw:
        return None
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"PPATUNER_FAULT_SEED must be an integer, got {raw!r}"
        ) from None
