"""Experiment harness: scenario runners, figures, paper-style reports."""

from .cross_design import (
    CROSS_DESIGN_METHODS,
    CROSS_DESIGN_SCENARIOS,
    cross_design_scenario,
)
from .convergence import (
    ConvergenceCurve,
    convergence_curve,
    convergence_suite,
    format_convergence_table,
)
from .figures import (
    Figure2Data,
    figure2_uncertainty_shrinkage,
    figure3_frontiers,
)
from .reporting import (
    export_scenario_csv,
    export_scenario_json,
    format_benchmark_table,
    format_scenario_table,
    scenario_to_records,
)
from .sensitivity import SensitivityReport, analyze_sensitivity
from .scenario_three import (
    SCENARIO_THREE_VARIANTS,
    ScenarioThreeOutcome,
    format_scenario_three,
    scenario_three,
)
from .scenarios import (
    ALL_METHODS,
    PAPER_BUDGET_FRACTIONS,
    PAPER_METHODS,
    MethodOutcome,
    ScenarioResult,
    build_scenario_jobs,
    evaluate_outcome,
    make_method,
    register_method,
    registered_methods,
    run_scenario,
    scenario_one,
    scenario_two,
)

__all__ = [
    "ALL_METHODS",
    "CROSS_DESIGN_METHODS",
    "CROSS_DESIGN_SCENARIOS",
    "cross_design_scenario",
    "SCENARIO_THREE_VARIANTS",
    "ScenarioThreeOutcome",
    "build_scenario_jobs",
    "convergence_suite",
    "format_scenario_three",
    "scenario_three",
    "ConvergenceCurve",
    "SensitivityReport",
    "analyze_sensitivity",
    "convergence_curve",
    "format_convergence_table",
    "PAPER_BUDGET_FRACTIONS",
    "PAPER_METHODS",
    "Figure2Data",
    "MethodOutcome",
    "ScenarioResult",
    "evaluate_outcome",
    "export_scenario_csv",
    "export_scenario_json",
    "figure2_uncertainty_shrinkage",
    "figure3_frontiers",
    "format_benchmark_table",
    "format_scenario_table",
    "make_method",
    "register_method",
    "registered_methods",
    "run_scenario",
    "scenario_one",
    "scenario_two",
]
