"""Parameter-sensitivity analysis over the offline benchmarks.

Answers the designer question behind the paper's Table 1 pruning
("several vital parameters ... are considered"): which knobs actually
move each QoR metric, and by how much.  Two complementary estimators:

- **Correlation screening**: rank-correlation of each encoded parameter
  with each metric (fast, main-effects only).
- **Tree importances**: impurity importances of a gradient-boosted model
  (captures interactions).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bench.dataset import QOR_METRICS, BenchmarkDataset
from ..ml.boosting import GradientBoostingRegressor


@dataclass
class SensitivityReport:
    """Per-parameter, per-metric sensitivity estimates.

    Attributes:
        parameter_names: Row labels.
        metric_names: Column labels.
        rank_correlation: ``(d, m)`` Spearman rank correlations.
        tree_importance: ``(d, m)`` normalized boosted-tree importances.
        effect_span: ``(d, m)`` relative QoR span attributable to each
            parameter (difference of the top/bottom-quartile means,
            normalized by the metric's mean).
    """

    parameter_names: list[str]
    metric_names: list[str]
    rank_correlation: np.ndarray
    tree_importance: np.ndarray
    effect_span: np.ndarray

    def top_parameters(self, metric: str, k: int = 5) -> list[str]:
        """The ``k`` most important parameters for ``metric`` (by tree
        importance)."""
        j = self.metric_names.index(metric)
        order = np.argsort(-self.tree_importance[:, j])[:k]
        return [self.parameter_names[i] for i in order]

    def format(self) -> str:
        """Human-readable table."""
        lines = [
            f"{'parameter':<20}"
            + "".join(
                f" | {m:^22}" for m in self.metric_names
            ),
            f"{'':<20}"
            + " |  corr   tree   span " * len(self.metric_names),
        ]
        for i, name in enumerate(self.parameter_names):
            row = f"{name:<20}"
            for j in range(len(self.metric_names)):
                row += (
                    f" | {self.rank_correlation[i, j]:+6.2f}"
                    f" {self.tree_importance[i, j]:6.3f}"
                    f" {self.effect_span[i, j]:6.3f}"
                )
            lines.append(row)
        return "\n".join(lines)


def _spearman(x: np.ndarray, y: np.ndarray) -> float:
    from scipy.stats import rankdata

    rx = rankdata(x, method="average")
    ry = rankdata(y, method="average")
    if rx.std() == 0 or ry.std() == 0:
        return 0.0
    return float(np.corrcoef(rx, ry)[0, 1])


def _metric_sensitivity(
    args: tuple[np.ndarray, np.ndarray, int, int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One metric's (corr, importance, span) columns.

    Top-level so the per-metric analyses can fan out over the
    experiment runner's process pool.
    """
    X, y, n_estimators, seed = args
    d = X.shape[1]
    corr = np.zeros(d)
    imp = GradientBoostingRegressor(
        n_estimators=n_estimators, seed=seed
    ).fit(X, y).feature_importances_
    span = np.zeros(d)
    for i in range(d):
        corr[i] = _spearman(X[:, i], y)
        lo_q, hi_q = np.quantile(X[:, i], [0.25, 0.75])
        low = y[X[:, i] <= lo_q]
        high = y[X[:, i] >= hi_q]
        if len(low) and len(high) and y.mean():
            span[i] = abs(high.mean() - low.mean()) / abs(y.mean())
    return corr, imp, span


def analyze_sensitivity(
    dataset: BenchmarkDataset,
    metrics: tuple[str, ...] = QOR_METRICS,
    n_estimators: int = 60,
    seed: int = 0,
    workers: int | None = 1,
) -> SensitivityReport:
    """Compute the sensitivity report for one benchmark.

    The per-metric estimators are independent; with ``workers > 1``
    they fan out over the experiment runner's process pool (results
    identical to the serial loop).

    Args:
        dataset: Offline benchmark to analyse.
        metrics: QoR metrics to include.
        n_estimators: Boosting rounds for the importance model.
        seed: RNG seed for the boosted model.
        workers: Process count (1 = serial; ``None`` = the
            ``PPATUNER_WORKERS`` convention).

    Returns:
        A :class:`SensitivityReport`.
    """
    from ..runner import ExperimentRunner

    X = dataset.X
    d = X.shape[1]
    m = len(metrics)
    corr = np.zeros((d, m))
    imp = np.zeros((d, m))
    span = np.zeros((d, m))

    columns = ExperimentRunner(workers=workers, memo=None).map(
        _metric_sensitivity,
        [
            (X, dataset.metric_column(metric), n_estimators, seed)
            for metric in metrics
        ],
    )
    for j, (corr_j, imp_j, span_j) in enumerate(columns):
        corr[:, j] = corr_j
        imp[:, j] = imp_j
        span[:, j] = span_j
    return SensitivityReport(
        parameter_names=dataset.space.names,
        metric_names=list(metrics),
        rank_correlation=corr,
        tree_importance=imp,
        effect_span=span,
    )
