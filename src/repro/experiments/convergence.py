"""Anytime convergence curves: front quality vs. tool runs.

The paper's tables report each method's *final* operating point; this
module traces the whole trajectory — after every tool run, the
hyper-volume error of the best front found so far — which shows *when*
each method gets good, not just where it ends (the crossovers the tables
hide).

For evaluated-set methods (all baselines) the curve is exact: the front
after k runs is the non-dominated subset of the first k evaluations.
For PPATuner the same evaluated-set curve is a conservative lower bound
on its reported (classified) front, making the comparison fair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bench.dataset import BenchmarkDataset
from ..core.result import TuningResult
from ..pareto.dominance import non_dominated_mask
from ..pareto.hypervolume import hypervolume


@dataclass
class ConvergenceCurve:
    """One method's anytime trajectory.

    Attributes:
        method: Method name.
        runs: Tool-run counts (x-axis), 1-based.
        hv_error: Hyper-volume error of the best-so-far front after each
            run.
    """

    method: str
    runs: np.ndarray
    hv_error: np.ndarray

    def runs_to_reach(self, threshold: float) -> int | None:
        """First run count at which ``hv_error <= threshold`` (None if
        never reached)."""
        hits = np.nonzero(self.hv_error <= threshold)[0]
        if len(hits) == 0:
            return None
        return int(self.runs[hits[0]])


def evaluation_order(result: TuningResult) -> np.ndarray:
    """Pool indices in evaluation order.

    Uses the per-iteration history when available (PPATuner); falls back
    to ``evaluated_indices`` order (baselines append in order).  The
    history dedup is a vectorized first-occurrence pass
    (``np.unique(..., return_index=True)`` + index sort), preserving the
    original order semantics.
    """
    if result.history:
        selected = [
            np.asarray(record.selected, dtype=int)
            for record in result.history
            if len(record.selected)
        ]
        if selected:
            flat = np.concatenate(selected)
            _, first = np.unique(flat, return_index=True)
            ordered = flat[np.sort(first)]
        else:
            ordered = np.empty(0, dtype=int)
        # Initialization samples are not in history records; prepend
        # whatever is missing, preserving evaluated_indices order.
        evaluated = np.asarray(result.evaluated_indices, dtype=int)
        init = evaluated[~np.isin(evaluated, ordered)]
        return np.concatenate([init, ordered])
    return np.asarray(result.evaluated_indices, dtype=int)


def convergence_curve(
    method: str,
    result: TuningResult,
    dataset: BenchmarkDataset,
    names: tuple[str, ...],
) -> ConvergenceCurve:
    """Compute the anytime HV-error curve for one tuning result.

    Args:
        method: Label for the curve.
        result: The tuning result (its evaluation order is replayed).
        dataset: Benchmark supplying golden values and the reference.
        names: Objective names.

    Returns:
        A :class:`ConvergenceCurve`.
    """
    Y_all = dataset.objectives(names)
    golden = dataset.golden_front(names)
    worst = Y_all.max(axis=0)
    best = Y_all.min(axis=0)
    reference = worst + 0.1 * np.maximum(worst - best, 1e-12)
    h_golden = hypervolume(golden, reference)
    if h_golden <= 0:
        raise ValueError("degenerate golden front")

    order = evaluation_order(result)
    Y_seen = Y_all[order]
    runs = np.arange(1, len(order) + 1)
    errors = np.empty(len(order))
    # Incremental front maintenance: keep the running non-dominated set.
    front: np.ndarray | None = None
    for k in range(len(order)):
        point = Y_seen[k:k + 1]
        if front is None:
            front = point
        else:
            stacked = np.vstack([front, point])
            front = stacked[non_dominated_mask(stacked)]
        errors[k] = (h_golden - hypervolume(front, reference)) / h_golden
    return ConvergenceCurve(method=method, runs=runs, hv_error=errors)


def convergence_suite(
    source,
    target,
    names: tuple[str, ...],
    methods: tuple[str, ...],
    budget_key: str = "target2",
    min_budget: int = 20,
    seed: int = 0,
    workers: int | None = 1,
    runner=None,
    source_ref=None,
    target_ref=None,
) -> list[ConvergenceCurve]:
    """Trace every method's anytime curve, one runner cell per method.

    Each cell runs its tuner and computes the curve in the worker (the
    curve rides back in the record extras), so methods trace in
    parallel under ``workers > 1`` with bit-identical output to the
    serial order.

    Args:
        source: Source benchmark.
        target: Target benchmark pool.
        names: Objective names.
        methods: Methods to trace.
        budget_key: Paper budget-fraction key.
        min_budget: Floor on each method's tool-run budget.
        seed: Base seed (order-independent per-cell derivation).
        workers: Process count (1 = serial).
        runner: Explicit :class:`~repro.runner.ExperimentRunner`;
            overrides ``workers``.
        source_ref/target_ref: Optional cache refs for worker-side
            dataset resolution.

    Returns:
        One curve per method, in ``methods`` order.
    """
    from ..runner import (
        ExperimentRunner,
        RunJob,
        RunSpec,
        dataset_id,
        make_params,
    )

    source_id = source_ref.label if source_ref else dataset_id(source)
    target_id = target_ref.label if target_ref else dataset_id(target)
    jobs = [
        RunJob(
            spec=RunSpec(
                kind="convergence",
                scenario="convergence",
                method=method,
                objective_space="-".join(names),
                objectives=tuple(names),
                budget_key=budget_key,
                n_source=200,
                seed=seed,
                source_id=source_id,
                target_id=target_id,
                params=make_params(min_budget=min_budget),
            ),
            source=source_ref or source,
            target=target_ref or target,
        )
        for method in methods
    ]
    if runner is None:
        runner = ExperimentRunner(workers=workers, memo=None)
    records = runner.run(jobs)
    return [
        ConvergenceCurve(
            method=record.spec.method,
            runs=np.asarray(record.extras["curve_runs"], dtype=int),
            hv_error=np.asarray(
                record.extras["curve_hv_error"], dtype=float
            ),
        )
        for record in records
    ]


def format_convergence_table(
    curves: list[ConvergenceCurve],
    thresholds: tuple[float, ...] = (0.3, 0.2, 0.1, 0.05),
) -> str:
    """Tabulate runs-to-threshold for several curves."""
    header = f"{'method':<12}" + "".join(
        f" {'<=' + format(t, '.2f'):>9}" for t in thresholds
    ) + f" {'final':>8}"
    lines = [header]
    for curve in curves:
        row = f"{curve.method:<12}"
        for t in thresholds:
            hit = curve.runs_to_reach(t)
            row += f" {hit if hit is not None else '-':>9}"
        row += f" {curve.hv_error[-1]:8.3f}"
        lines.append(row)
    return "\n".join(lines)
