"""Anytime convergence curves: front quality vs. tool runs.

The paper's tables report each method's *final* operating point; this
module traces the whole trajectory — after every tool run, the
hyper-volume error of the best front found so far — which shows *when*
each method gets good, not just where it ends (the crossovers the tables
hide).

For evaluated-set methods (all baselines) the curve is exact: the front
after k runs is the non-dominated subset of the first k evaluations.
For PPATuner the same evaluated-set curve is a conservative lower bound
on its reported (classified) front, making the comparison fair.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bench.dataset import BenchmarkDataset
from ..core.result import TuningResult
from ..pareto.dominance import non_dominated_mask
from ..pareto.hypervolume import hypervolume


@dataclass
class ConvergenceCurve:
    """One method's anytime trajectory.

    Attributes:
        method: Method name.
        runs: Tool-run counts (x-axis), 1-based.
        hv_error: Hyper-volume error of the best-so-far front after each
            run.
    """

    method: str
    runs: np.ndarray
    hv_error: np.ndarray

    def runs_to_reach(self, threshold: float) -> int | None:
        """First run count at which ``hv_error <= threshold`` (None if
        never reached)."""
        hits = np.nonzero(self.hv_error <= threshold)[0]
        if len(hits) == 0:
            return None
        return int(self.runs[hits[0]])


def evaluation_order(result: TuningResult) -> np.ndarray:
    """Pool indices in evaluation order.

    Uses the per-iteration history when available (PPATuner); falls back
    to ``evaluated_indices`` order (baselines append in order).
    """
    if result.history:
        ordered: list[int] = []
        seen: set[int] = set()
        for record in result.history:
            for idx in record.selected:
                if idx not in seen:
                    ordered.append(idx)
                    seen.add(idx)
        # Initialization samples are not in history records; prepend
        # whatever is missing, preserving evaluated_indices order.
        init = [
            int(i) for i in result.evaluated_indices if int(i) not in seen
        ]
        return np.array(init + ordered, dtype=int)
    return np.asarray(result.evaluated_indices, dtype=int)


def convergence_curve(
    method: str,
    result: TuningResult,
    dataset: BenchmarkDataset,
    names: tuple[str, ...],
) -> ConvergenceCurve:
    """Compute the anytime HV-error curve for one tuning result.

    Args:
        method: Label for the curve.
        result: The tuning result (its evaluation order is replayed).
        dataset: Benchmark supplying golden values and the reference.
        names: Objective names.

    Returns:
        A :class:`ConvergenceCurve`.
    """
    Y_all = dataset.objectives(names)
    golden = dataset.golden_front(names)
    worst = Y_all.max(axis=0)
    best = Y_all.min(axis=0)
    reference = worst + 0.1 * np.maximum(worst - best, 1e-12)
    h_golden = hypervolume(golden, reference)
    if h_golden <= 0:
        raise ValueError("degenerate golden front")

    order = evaluation_order(result)
    Y_seen = Y_all[order]
    runs = np.arange(1, len(order) + 1)
    errors = np.empty(len(order))
    # Incremental front maintenance: keep the running non-dominated set.
    front: np.ndarray | None = None
    for k in range(len(order)):
        point = Y_seen[k:k + 1]
        if front is None:
            front = point
        else:
            stacked = np.vstack([front, point])
            front = stacked[non_dominated_mask(stacked)]
        errors[k] = (h_golden - hypervolume(front, reference)) / h_golden
    return ConvergenceCurve(method=method, runs=runs, hv_error=errors)


def format_convergence_table(
    curves: list[ConvergenceCurve],
    thresholds: tuple[float, ...] = (0.3, 0.2, 0.1, 0.05),
) -> str:
    """Tabulate runs-to-threshold for several curves."""
    header = f"{'method':<12}" + "".join(
        f" {'<=' + format(t, '.2f'):>9}" for t in thresholds
    ) + f" {'final':>8}"
    lines = [header]
    for curve in curves:
        row = f"{curve.method:<12}"
        for t in thresholds:
            hit = curve.runs_to_reach(t)
            row += f" {hit if hit is not None else '-':>9}"
        row += f" {curve.hv_error[-1]:8.3f}"
        lines.append(row)
    return "\n".join(lines)
