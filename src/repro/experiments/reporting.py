"""Paper-style table formatting and export."""

from __future__ import annotations

import json
from pathlib import Path

from ..bench.dataset import OBJECTIVE_SPACES
from .scenarios import PAPER_METHODS, ScenarioResult

#: Display names of the objective-space rows, paper spelling.
_SPACE_LABELS = {
    "area-delay": "Area-Delay",
    "power-delay": "Power-Delay",
    "area-power-delay": "Area-Power-Delay",
}


def format_scenario_table(
    result: ScenarioResult,
    methods: tuple[str, ...] = PAPER_METHODS,
) -> str:
    """Render a scenario as the paper's Table 2/3 layout.

    Rows: the three objective spaces, then Average and Ratio (each
    method's average normalized by PPATuner's — the paper's bottom row).
    """
    spaces = [s for s in OBJECTIVE_SPACES if any(
        o.objective_space == s for o in result.outcomes
    )]
    present = [m for m in methods if any(
        o.method == m for o in result.outcomes
    )]

    header1 = f"{'Multi-objective':<18}"
    header2 = f"{'':<18}"
    for m in present:
        header1 += f"| {m:^26} "
        header2 += f"| {'HV':>7} {'ADRS':>7} {'Runs':>9} "
    lines = [header1, header2, "-" * len(header2)]

    for s in spaces:
        row = f"{_SPACE_LABELS.get(s, s):<18}"
        for m in present:
            o = result.get(m, s)
            row += f"| {o.hv_error:7.3f} {o.adrs:7.3f} {o.runs:9d} "
        lines.append(row)

    avgs = result.averages()
    row = f"{'Average':<18}"
    for m in present:
        hv, ad, runs = avgs[m]
        row += f"| {hv:7.3f} {ad:7.3f} {runs:9.1f} "
    lines.append(row)

    if "PPATuner" in avgs:
        base = avgs["PPATuner"]
        row = f"{'Ratio':<18}"
        for m in present:
            hv, ad, runs = avgs[m]
            row += (
                f"| {_ratio(hv, base[0]):7.3f} "
                f"{_ratio(ad, base[1]):7.3f} "
                f"{_ratio(runs, base[2]):9.3f} "
            )
        lines.append(row)
    return "\n".join(lines)


def _ratio(value: float, base: float) -> float:
    return value / base if base else float("inf")


def scenario_to_records(result: ScenarioResult) -> list[dict[str, object]]:
    """Flat records (one per table cell) for CSV/JSON export."""
    return [
        {
            "scenario": result.name,
            "source": result.source,
            "target": result.target,
            "pool_size": result.pool_size,
            "method": o.method,
            "objective_space": o.objective_space,
            "hv_error": o.hv_error,
            "adrs": o.adrs,
            "runs": o.runs,
            "n_pareto_found": len(o.result.pareto_indices)
            if o.result is not None else None,
        }
        for o in result.outcomes
    ]


def export_scenario_json(result: ScenarioResult, path: str | Path) -> None:
    """Write the scenario records to a JSON file."""
    Path(path).write_text(
        json.dumps(scenario_to_records(result), indent=2)
    )


def export_scenario_csv(result: ScenarioResult, path: str | Path) -> None:
    """Write the scenario records to a CSV file."""
    records = scenario_to_records(result)
    if not records:
        Path(path).write_text("")
        return
    cols = list(records[0])
    lines = [",".join(cols)]
    for r in records:
        lines.append(",".join(str(r[c]) for c in cols))
    Path(path).write_text("\n".join(lines) + "\n")


def format_benchmark_table(summaries: list[dict[str, object]]) -> str:
    """Render the Table 1-style benchmark statistics."""
    lines = [
        f"{'Benchmark':<10} {'Points':>7} {'Params':>7} {'Design':>7} "
        f"{'Area range':>22} {'Power range':>18} {'Delay range':>16}",
    ]
    for s in summaries:
        a = s["area_range"]
        p = s["power_range"]
        d = s["delay_range"]
        lines.append(
            f"{s['name']:<10} {s['n_points']:>7} {s['n_parameters']:>7} "
            f"{s['design']:>7} "
            f"{a[0]:>10.1f}-{a[1]:<11.1f} "
            f"{p[0]:>8.3f}-{p[1]:<9.3f} "
            f"{d[0]:>7.3f}-{d[1]:<8.3f}"
        )
    return "\n".join(lines)
