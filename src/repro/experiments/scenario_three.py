"""Scenario Three (extension): tuning with a *mixed-quality* archive.

The paper's scenarios transfer from one curated source task.  In
practice a tuning archive holds several past tasks of unknown relevance.
This scenario tunes Target2 with two archives — the related Source2 and
a *decoy* built by shuffling Source2's QoR rows (same marginals, no
input-output relationship) — and compares:

- PPATuner with only the related archive (the paper's setting);
- PPATuner (multi-source) given both archives, which must discover the
  decoy's irrelevance on its own;
- PPATuner given only the decoy (worst case: misleading history);
- PPATuner with no transfer (floor).

Expected shape: multi-source ~ related-only >> decoy-only ~ no-transfer,
with the decoy's learned similarity near zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..bench.generate import generate_benchmark
from ..core import PoolOracle, PPATuner, PPATunerConfig
from ..pareto.dominance import pareto_front
from ..pareto.hypervolume import hypervolume_error
from ..pareto.metrics import adrs


@dataclass
class ScenarioThreeOutcome:
    """One variant's result.

    Attributes:
        variant: Label.
        hv_error: Hyper-volume error vs. the golden front.
        adrs: ADRS vs. the golden front.
        runs: Tool runs consumed.
        lambdas: Learned per-archive similarities (per objective, then
            per archive), when the variant transfers.
    """

    variant: str
    hv_error: float
    adrs: float
    runs: int
    lambdas: list[list[float]]


def scenario_three(
    objective_names: tuple[str, ...] = ("power", "delay"),
    n_source: int = 150,
    max_iterations: int = 50,
    seed: int = 0,
) -> list[ScenarioThreeOutcome]:
    """Run the mixed-archive scenario.

    Args:
        objective_names: Objective space.
        n_source: Points drawn from each archive.
        max_iterations: PPATuner iteration cap.
        seed: Base seed.

    Returns:
        One outcome per variant, in presentation order.
    """
    source = generate_benchmark("source2")
    target = generate_benchmark("target2")
    rng = np.random.default_rng(seed)
    idx = rng.choice(
        source.n, min(2 * n_source, source.n), replace=False
    )
    half = len(idx) // 2
    Xs = source.X[idx[:half]]
    Ys = source.objectives(objective_names)[idx[:half]]
    # The decoy: a disjoint set of configurations whose QoR rows are
    # shuffled — same marginals, no input-output relationship.
    Xs_decoy = source.X[idx[half:]]
    Ys_decoy = source.objectives(objective_names)[idx[half:]][
        rng.permutation(len(idx) - half)
    ]

    golden = target.golden_front(objective_names)
    Y_all = target.objectives(objective_names)
    worst = Y_all.max(axis=0)
    best = Y_all.min(axis=0)
    reference = worst + 0.1 * np.maximum(worst - best, 1e-12)

    variants: list[tuple[str, dict]] = [
        ("related-only", {"X_source": Xs, "Y_source": Ys}),
        ("multi-source", {
            "sources": [(Xs, Ys), (Xs_decoy, Ys_decoy)],
        }),
        ("decoy-only", {"X_source": Xs_decoy, "Y_source": Ys_decoy}),
        ("no-transfer", {}),
    ]

    outcomes = []
    for label, kwargs in variants:
        oracle = PoolOracle(Y_all)
        tuner = PPATuner(PPATunerConfig(
            max_iterations=max_iterations, seed=seed,
        ))
        result = tuner.tune(target.X, oracle, **kwargs)
        front = pareto_front(result.pareto_points)
        lambdas: list[list[float]] = []
        for model in tuner.models_:
            if hasattr(model, "lambdas"):
                try:
                    lambdas.append(
                        [float(v) for v in model.lambdas]
                    )
                except RuntimeError:
                    pass
            elif hasattr(model, "lam") and kwargs:
                try:
                    lambdas.append([float(model.lam)])
                except RuntimeError:
                    pass
        outcomes.append(ScenarioThreeOutcome(
            variant=label,
            hv_error=float(
                hypervolume_error(front, golden, reference)
            ),
            adrs=float(adrs(golden, front)),
            runs=int(result.n_evaluations),
            lambdas=lambdas,
        ))
    return outcomes


def format_scenario_three(outcomes: list[ScenarioThreeOutcome]) -> str:
    """Render the Scenario Three comparison table."""
    lines = [
        f"{'variant':<14} {'HV':>8} {'ADRS':>8} {'Runs':>6}  lambdas",
    ]
    for o in outcomes:
        lam_text = "; ".join(
            "(" + ", ".join(f"{v:+.2f}" for v in per_obj) + ")"
            for per_obj in o.lambdas
        ) or "-"
        lines.append(
            f"{o.variant:<14} {o.hv_error:8.3f} {o.adrs:8.3f} "
            f"{o.runs:6d}  {lam_text}"
        )
    return "\n".join(lines)
