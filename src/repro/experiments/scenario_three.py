"""Scenario Three (extension): tuning with a *mixed-quality* archive.

The paper's scenarios transfer from one curated source task.  In
practice a tuning archive holds several past tasks of unknown relevance.
This scenario tunes Target2 with two archives — the related Source2 and
a *decoy* built by shuffling Source2's QoR rows (same marginals, no
input-output relationship) — and compares:

- PPATuner with only the related archive (the paper's setting);
- PPATuner (multi-source) given both archives, which must discover the
  decoy's irrelevance on its own;
- PPATuner given only the decoy (worst case: misleading history);
- PPATuner with no transfer (floor).

Expected shape: multi-source ~ related-only >> decoy-only ~ no-transfer,
with the decoy's learned similarity near zero.

The four variants are independent cells executed through
:class:`~repro.runner.ExperimentRunner` (serial by default, ``workers``
fans them out); every variant derives the *same* archives from the base
seed via order-independent spawn keys, so the comparison isolates the
archive mix, not the draw.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bench.generate import generate_benchmark


@dataclass
class ScenarioThreeOutcome:
    """One variant's result.

    Attributes:
        variant: Label.
        hv_error: Hyper-volume error vs. the golden front.
        adrs: ADRS vs. the golden front.
        runs: Tool runs consumed.
        lambdas: Learned per-archive similarities (per objective, then
            per archive), when the variant transfers.
    """

    variant: str
    hv_error: float
    adrs: float
    runs: int
    lambdas: list[list[float]]


#: Variant labels, in presentation order.
SCENARIO_THREE_VARIANTS = (
    "related-only", "multi-source", "decoy-only", "no-transfer",
)


def scenario_three(
    objective_names: tuple[str, ...] = ("power", "delay"),
    n_source: int = 150,
    max_iterations: int = 50,
    seed: int = 0,
    workers: int | None = 1,
    runner=None,
    n_points: int | None = None,
    scale: int | None = None,
) -> list[ScenarioThreeOutcome]:
    """Run the mixed-archive scenario.

    The decoy archive is a disjoint set of configurations whose QoR
    rows are shuffled — same marginals, no input-output relationship
    (built inside each cell, identically for every variant).

    Args:
        objective_names: Objective space.
        n_source: Points drawn from each archive.
        max_iterations: PPATuner iteration cap.
        seed: Base seed.
        workers: Process count for variant fan-out (1 = serial).
        runner: Explicit :class:`~repro.runner.ExperimentRunner`
            (memoization/progress); overrides ``workers``.
        n_points: Benchmark pool-size override (smoke runs).
        scale: Subsample the target pool to this many points.

    Returns:
        One outcome per variant, in presentation order.
    """
    from ..runner import (
        ExperimentRunner,
        RunJob,
        RunSpec,
        dataset_id,
        make_params,
    )

    if n_points is not None:
        source = generate_benchmark("source2", n_points=n_points)
        target = generate_benchmark("target2", n_points=n_points)
    else:
        source = generate_benchmark("source2")
        target = generate_benchmark("target2")
    if scale:
        target = target.subsample(scale, seed=seed)
    space_label = "-".join(objective_names)
    jobs = [
        RunJob(
            spec=RunSpec(
                kind="scenario_three",
                scenario="scenario_three",
                method=variant,
                objective_space=space_label,
                objectives=tuple(objective_names),
                n_source=n_source,
                seed=seed,
                source_id=dataset_id(source),
                target_id=dataset_id(target),
                params=make_params(max_iterations=max_iterations),
            ),
            source=source,
            target=target,
        )
        for variant in SCENARIO_THREE_VARIANTS
    ]
    if runner is None:
        runner = ExperimentRunner(workers=workers, memo=None)
    records = runner.run(jobs)
    return [
        ScenarioThreeOutcome(
            variant=record.spec.method,
            hv_error=record.outcome.hv_error,
            adrs=record.outcome.adrs,
            runs=record.outcome.runs,
            lambdas=[
                [float(v) for v in per_obj]
                for per_obj in record.extras.get("lambdas", [])
            ],
        )
        for record in records
    ]


def format_scenario_three(outcomes: list[ScenarioThreeOutcome]) -> str:
    """Render the Scenario Three comparison table."""
    lines = [
        f"{'variant':<14} {'HV':>8} {'ADRS':>8} {'Runs':>6}  lambdas",
    ]
    for o in outcomes:
        lam_text = "; ".join(
            "(" + ", ".join(f"{v:+.2f}" for v in per_obj) + ")"
            for per_obj in o.lambdas
        ) or "-"
        lines.append(
            f"{o.variant:<14} {o.hv_error:8.3f} {o.adrs:8.3f} "
            f"{o.runs:6d}  {lam_text}"
        )
    return "\n".join(lines)
