"""Scenario runners reproducing the paper's Tables 2 and 3.

Scenario One (same design): Source1 -> Target1, the designer re-tunes a
different parameter subspace of the same MAC.  Scenario Two (similar
designs): Source2 -> Target2, knowledge moves from the small MAC to the
larger one.  Each scenario sweeps the paper's three objective spaces and
five methods, reporting hyper-volume error, ADRS and tool runs.

Method budgets default to the paper's run counts expressed as fractions
of the pool (so reduced-scale runs keep the paper's relative budgets).

Every (method, objective-space, repeat) cell is independent and runs
through :class:`~repro.runner.ExperimentRunner`: serial by default,
fanned out over a process pool with ``workers > 1``, memoized/resumable
when the runner carries a :class:`~repro.runner.RunMemo`.  Randomness is
derived per cell from the base seed with order-independent spawn keys
(see :mod:`repro.runner.spec`), so the parallel result is bit-identical
to the serial one; trajectories differ from the pre-runner order-coupled
serial loop at the same base seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..baselines import (
    Aspdac20Fist,
    CopulaTransferTuner,
    Dac19Recommender,
    Mlcad19LcbBayesOpt,
    RandomSearchTuner,
    Tcad19ActiveLearner,
)
from ..bench.dataset import OBJECTIVE_SPACES, BenchmarkDataset
from ..core import PPATuner, PPATunerConfig
from ..core.result import TuningResult
from ..reliability.policy import FaultPolicy
from ..pareto.dominance import pareto_front
from ..pareto.hypervolume import hypervolume_error
from ..pareto.metrics import adrs

#: Paper "Runs" per method, normalized by the pool size of each target
#: benchmark (Tables 2-3: Target1 pool 5000, Target2 pool 727).
PAPER_BUDGET_FRACTIONS: dict[str, dict[str, float]] = {
    "TCAD'19": {"target1": 508 / 5000, "target2": 92 / 727},
    "MLCAD'19": {"target1": 400 / 5000, "target2": 70 / 727},
    "DAC'19": {"target1": 600 / 5000, "target2": 131 / 727},
    "ASPDAC'20": {"target1": 400 / 5000, "target2": 70 / 727},
    "Random": {"target1": 400 / 5000, "target2": 70 / 727},
    "CopulaTransfer": {"target1": 400 / 5000, "target2": 70 / 727},
}

#: Methods appearing in the paper's tables, in column order.
PAPER_METHODS = ("TCAD'19", "MLCAD'19", "DAC'19", "ASPDAC'20", "PPATuner")

#: Every runnable method: the paper's five plus the random-search floor,
#: the no-transfer PPATuner ablation, and the copula transfer baseline
#: (extended comparisons).
ALL_METHODS = PAPER_METHODS + ("Random", "PPATuner-NT", "CopulaTransfer")


@dataclass
class MethodOutcome:
    """One (method, objective-space) cell triple of Tables 2-3.

    Attributes:
        method: Method name.
        objective_space: e.g. ``"power-delay"``.
        hv_error: Hyper-volume error vs. the golden front (Eq. (2)).
        adrs: Average distance from reference set (Eq. (3)).
        runs: Tool runs consumed.
        result: The raw tuning result (frontier points for Figure 3).
        repeat: Repeat index when a cell is run multiple times.
    """

    method: str
    objective_space: str
    hv_error: float
    adrs: float
    runs: int
    result: TuningResult = field(repr=False, default=None)  # type: ignore[assignment]
    repeat: int = 0


@dataclass
class ScenarioResult:
    """All outcomes of one scenario (one paper table).

    Attributes:
        name: ``"scenario_one"`` or ``"scenario_two"``.
        source: Source benchmark name.
        target: Target benchmark name.
        outcomes: Flat list of method/objective outcomes.
        pool_size: Target pool size used.
    """

    name: str
    source: str
    target: str
    outcomes: list[MethodOutcome]
    pool_size: int

    def get(self, method: str, objective_space: str) -> MethodOutcome:
        """Look up one cell.

        Raises:
            KeyError: If absent.
        """
        for o in self.outcomes:
            if o.method == method and o.objective_space == objective_space:
                return o
        raise KeyError((method, objective_space))

    def averages(self) -> dict[str, tuple[float, float, float]]:
        """Per-method (mean HV error, mean ADRS, mean runs) — the tables'
        "Average" row.

        A single grouped pass over the outcomes (the per-method rescan
        was quadratic in method count); repeats average in naturally.
        """
        groups: dict[str, list[MethodOutcome]] = {}
        for o in self.outcomes:
            groups.setdefault(o.method, []).append(o)
        return {
            m: (
                float(np.mean([r.hv_error for r in rows])),
                float(np.mean([r.adrs for r in rows])),
                float(np.mean([r.runs for r in rows])),
            )
            for m, rows in groups.items()
        }


#: Method name -> tuner factory.  Factories take the keyword surface of
#: :func:`make_method` (``budget``, ``pool_size``, ``seed``,
#: ``ppa_config``, ``fault_policy``).
_METHOD_REGISTRY: dict[str, "Callable[..., Tuner]"] = {}


def register_method(name: str):
    """Class/function decorator adding a tuner factory to the registry.

    New tuners plug into the scenario matrix, convergence suite, and
    CLI without touching the experiments package::

        @register_method("MyMethod")
        def _make_my_method(budget, pool_size, seed, ppa_config,
                            fault_policy):
            return MyTuner(budget=budget, seed=seed)

    Re-registering a name replaces the previous factory (idempotent
    module reloads; tests can shadow and restore entries).
    """
    def decorate(factory):
        _METHOD_REGISTRY[name] = factory
        return factory
    return decorate


def registered_methods() -> tuple[str, ...]:
    """Registered method names, sorted."""
    return tuple(sorted(_METHOD_REGISTRY))


def make_method(
    name: str,
    budget: int,
    pool_size: int,
    seed: int,
    ppa_config: PPATunerConfig | None = None,
    fault_policy: FaultPolicy | None = None,
):
    """Construct a tuner by its registered method name.

    Args:
        name: One of :func:`registered_methods` (:data:`ALL_METHODS`
            ships by default).
        budget: Tool-run budget for fixed-budget methods.
        pool_size: Target pool size (bounds PPATuner's iteration cap).
        seed: RNG seed.
        ppa_config: Optional explicit PPATuner configuration.
        fault_policy: Optional resilience policy; overrides the PPATuner
            config's (baselines handle faults at the oracle layer only).

    Raises:
        ValueError: For an unknown method name, listing the registered
            ones.
    """
    try:
        factory = _METHOD_REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; registered methods: "
            f"{', '.join(registered_methods())}"
        ) from None
    return factory(
        budget=budget, pool_size=pool_size, seed=seed,
        ppa_config=ppa_config, fault_policy=fault_policy,
    )


@register_method("TCAD'19")
def _make_tcad19(budget, pool_size, seed, ppa_config, fault_policy):
    return Tcad19ActiveLearner(budget=budget, seed=seed)


@register_method("MLCAD'19")
def _make_mlcad19(budget, pool_size, seed, ppa_config, fault_policy):
    return Mlcad19LcbBayesOpt(budget=budget, seed=seed)


@register_method("DAC'19")
def _make_dac19(budget, pool_size, seed, ppa_config, fault_policy):
    return Dac19Recommender(budget=budget, seed=seed)


@register_method("ASPDAC'20")
def _make_aspdac20(budget, pool_size, seed, ppa_config, fault_policy):
    return Aspdac20Fist(budget=budget, seed=seed)


@register_method("Random")
def _make_random(budget, pool_size, seed, ppa_config, fault_policy):
    return RandomSearchTuner(budget=budget, seed=seed)


@register_method("CopulaTransfer")
def _make_copula_transfer(budget, pool_size, seed, ppa_config,
                          fault_policy):
    return CopulaTransferTuner(budget=budget, seed=seed)


@register_method("PPATuner")
def _make_ppatuner(budget, pool_size, seed, ppa_config, fault_policy):
    config = ppa_config or PPATunerConfig(
        max_iterations=max(10, int(round(0.07 * pool_size))),
        init_fraction=0.02,
        seed=seed,
    )
    if fault_policy is not None:
        config = replace(config, fault_policy=fault_policy)
    return PPATuner(config)


@register_method("PPATuner-NT")
def _make_ppatuner_nt(budget, pool_size, seed, ppa_config, fault_policy):
    tuner = _make_ppatuner(budget, pool_size, seed, ppa_config,
                           fault_policy)
    tuner.config = replace(tuner.config, transfer=False)
    return tuner


def evaluate_outcome(
    method: str,
    objective_space: str,
    result: TuningResult,
    dataset: BenchmarkDataset,
    names: tuple[str, ...],
) -> MethodOutcome:
    """Score one tuning result against the golden front."""
    golden = dataset.golden_front(names)
    # Shared reference point: padded worst corner of the full pool, so
    # every method is scored against the same volume.
    Y_all = dataset.objectives(names)
    worst = Y_all.max(axis=0)
    best = Y_all.min(axis=0)
    reference = worst + 0.1 * np.maximum(worst - best, 1e-12)
    approx = pareto_front(result.pareto_points)
    return MethodOutcome(
        method=method,
        objective_space=objective_space,
        hv_error=float(
            hypervolume_error(approx, golden, reference)
        ),
        adrs=float(adrs(golden, approx)),
        runs=int(result.n_evaluations),
        result=result,
    )


def build_scenario_jobs(
    source: BenchmarkDataset,
    target: BenchmarkDataset,
    name: str,
    budget_key: str,
    methods: tuple[str, ...] = PAPER_METHODS,
    objective_spaces: dict[str, tuple[str, ...]] | None = None,
    n_source: int = 200,
    seed: int = 0,
    ppa_config: PPATunerConfig | None = None,
    repeats: int = 1,
    source_ref: "DatasetRef | None" = None,
    target_ref: "DatasetRef | None" = None,
    fault_policy: FaultPolicy | None = None,
    prune_space: "bool | dict | None" = None,
) -> "list[RunJob]":
    """Expand one scenario into its independent cell jobs.

    When cache refs are given, workers resolve the pools by name through
    the concurrency-safe benchmark cache instead of unpickling arrays.
    Repeat indices are the innermost expansion, so
    :meth:`ScenarioResult.get` keeps returning the repeat-0 cell.

    An explicit ``fault_policy`` rides along as a spec param (it governs
    the per-cell :class:`~repro.reliability.ResilientOracle`); ``None``
    is dropped from the params, so default spec hashes — and therefore
    existing memo entries — are unchanged.  The same holds for
    ``prune_space``: ``True`` (defaults) or a settings dict (keyword
    overrides for :func:`repro.ml.prune_space`, e.g.
    ``{"threshold": 0.08}``) enables the FIST-style knob-importance
    pruning pass inside every cell; ``None``/``False`` keeps pruning
    off and spec hashes unchanged.
    """
    from ..runner import (
        RunJob,
        RunSpec,
        config_fingerprint,
        dataset_id,
        make_params,
    )

    spaces = objective_spaces or OBJECTIVE_SPACES
    fingerprint = config_fingerprint(ppa_config)
    if prune_space is True:
        prune_space = {}
    elif prune_space is False:
        prune_space = None
    params = make_params(
        fault_policy=(
            fault_policy.to_json() if fault_policy is not None else None
        ),
        prune_space=(
            dict(sorted(prune_space.items()))
            if prune_space is not None else None
        ),
    )
    source_id = source_ref.label if source_ref else dataset_id(source)
    target_id = target_ref.label if target_ref else dataset_id(target)
    jobs = []
    for space_name, names in spaces.items():
        for method in methods:
            for rep in range(repeats):
                spec = RunSpec(
                    kind="scenario",
                    scenario=name,
                    method=method,
                    objective_space=space_name,
                    objectives=tuple(names),
                    budget_key=budget_key,
                    n_source=n_source,
                    seed=seed,
                    repeat=rep,
                    source_id=source_id,
                    target_id=target_id,
                    config_fingerprint=fingerprint,
                    params=params,
                )
                jobs.append(RunJob(
                    spec=spec,
                    source=source_ref or source,
                    target=target_ref or target,
                    ppa_config=ppa_config,
                ))
    return jobs


def run_scenario(
    source: BenchmarkDataset,
    target: BenchmarkDataset,
    name: str,
    budget_key: str,
    methods: tuple[str, ...] = PAPER_METHODS,
    objective_spaces: dict[str, tuple[str, ...]] | None = None,
    n_source: int = 200,
    seed: int = 0,
    ppa_config: PPATunerConfig | None = None,
    workers: int | None = 1,
    repeats: int = 1,
    runner: "ExperimentRunner | None" = None,
    source_ref: "DatasetRef | None" = None,
    target_ref: "DatasetRef | None" = None,
    fault_policy: FaultPolicy | None = None,
    prune_space: "bool | dict | None" = None,
) -> ScenarioResult:
    """Run every (method, objective-space) combination of one scenario.

    Args:
        source: Source benchmark (``D^S``).
        target: Target benchmark pool.
        name: Scenario label.
        budget_key: ``"target1"`` or ``"target2"`` — selects the paper
            budget fractions.
        methods: Methods to run.
        objective_spaces: Objective subsets; defaults to the paper's
            three.
        n_source: Source points made available to transfer methods (the
            paper uses 200).
        seed: Base seed (every cell derives order-independent streams
            from it, so serial and parallel runs are bit-identical).
        ppa_config: Optional PPATuner configuration override (its seed
            is re-derived per cell).
        workers: Process count (1 = inline serial execution; ``None`` =
            the ``PPATUNER_WORKERS`` convention).
        repeats: Independent repeats per cell (distinct derived seeds);
            :meth:`ScenarioResult.averages` averages across them.
        runner: Explicit :class:`~repro.runner.ExperimentRunner`
            (carrying a memo store, progress hook, ...); overrides
            ``workers``.
        source_ref: Optional cache ref workers resolve ``source`` from.
        target_ref: Optional cache ref workers resolve ``target`` from.
        fault_policy: Explicit per-evaluation resilience policy (retry /
            timeout / breaker limits); ``None`` keeps the defaults and
            existing memo keys.
        prune_space: Opt-in FIST-style knob-importance pruning —
            ``True`` for defaults or a settings dict (see
            :func:`repro.ml.prune_space`); cells then tune over the
            source-table-informed knob subset.  ``None`` keeps pruning
            off and existing memo keys.

    Returns:
        A :class:`ScenarioResult`.
    """
    from ..runner import ExperimentRunner

    jobs = build_scenario_jobs(
        source, target, name, budget_key,
        methods=methods, objective_spaces=objective_spaces,
        n_source=n_source, seed=seed, ppa_config=ppa_config,
        repeats=repeats, source_ref=source_ref, target_ref=target_ref,
        fault_policy=fault_policy, prune_space=prune_space,
    )
    if runner is None:
        runner = ExperimentRunner(workers=workers, memo=None)
    records = runner.run(jobs)
    return ScenarioResult(
        name=name,
        source=source.name,
        target=target.name,
        outcomes=[r.outcome for r in records],
        pool_size=target.n,
    )


def _paper_scenario(
    which: str,
    source_name: str,
    target_name: str,
    budget_key: str,
    scale: int | None,
    seed: int,
    methods: tuple[str, ...],
    workers: int | None,
    repeats: int,
    runner,
    n_points: int | None,
    fault_policy: FaultPolicy | None = None,
    prune_space: "bool | dict | None" = None,
) -> ScenarioResult:
    """Shared driver for the two paper scenarios (cache-ref fan-out)."""
    from ..runner import DatasetRef

    source_ref = DatasetRef(source_name, n_points=n_points)
    target_ref = DatasetRef(
        target_name, n_points=n_points,
        subsample=scale, subsample_seed=seed,
    )
    return run_scenario(
        source_ref.resolve(), target_ref.resolve(), which, budget_key,
        methods=methods, seed=seed, workers=workers, repeats=repeats,
        runner=runner, source_ref=source_ref, target_ref=target_ref,
        fault_policy=fault_policy, prune_space=prune_space,
    )


def scenario_one(
    scale: int | None = None,
    seed: int = 0,
    methods: tuple[str, ...] = PAPER_METHODS,
    workers: int | None = 1,
    repeats: int = 1,
    runner: "ExperimentRunner | None" = None,
    n_points: int | None = None,
    fault_policy: FaultPolicy | None = None,
    prune_space: "bool | dict | None" = None,
) -> ScenarioResult:
    """Paper Table 2: Source1 -> Target1 (same design).

    Args:
        scale: Optional target-pool subsample size for fast runs (None =
            the paper's 5000 points).
        seed: Base seed.
        methods: Methods to run.
        workers: Process count for cell fan-out.
        repeats: Independent repeats per cell.
        runner: Explicit runner (memoization/progress); overrides
            ``workers``.
        n_points: Pool-size override for both benchmarks.
        fault_policy: Explicit per-evaluation resilience policy.
        prune_space: Opt-in knob-importance pruning (see
            :func:`run_scenario`).
    """
    return _paper_scenario(
        "scenario_one", "source1", "target1", "target1",
        scale, seed, methods, workers, repeats, runner, n_points,
        fault_policy=fault_policy, prune_space=prune_space,
    )


def scenario_two(
    scale: int | None = None,
    seed: int = 0,
    methods: tuple[str, ...] = PAPER_METHODS,
    workers: int | None = 1,
    repeats: int = 1,
    runner: "ExperimentRunner | None" = None,
    n_points: int | None = None,
    fault_policy: FaultPolicy | None = None,
    prune_space: "bool | dict | None" = None,
) -> ScenarioResult:
    """Paper Table 3: Source2 -> Target2 (similar designs).

    Args:
        scale: Optional target-pool subsample size (None = 727 points).
        seed: Base seed.
        methods: Methods to run.
        workers: Process count for cell fan-out.
        repeats: Independent repeats per cell.
        runner: Explicit runner (memoization/progress); overrides
            ``workers``.
        n_points: Pool-size override for both benchmarks.
        fault_policy: Explicit per-evaluation resilience policy.
        prune_space: Opt-in knob-importance pruning (see
            :func:`run_scenario`).
    """
    return _paper_scenario(
        "scenario_two", "source2", "target2", "target2",
        scale, seed, methods, workers, repeats, runner, n_points,
        fault_policy=fault_policy, prune_space=prune_space,
    )
