"""Scenario runners reproducing the paper's Tables 2 and 3.

Scenario One (same design): Source1 -> Target1, the designer re-tunes a
different parameter subspace of the same MAC.  Scenario Two (similar
designs): Source2 -> Target2, knowledge moves from the small MAC to the
larger one.  Each scenario sweeps the paper's three objective spaces and
five methods, reporting hyper-volume error, ADRS and tool runs.

Method budgets default to the paper's run counts expressed as fractions
of the pool (so reduced-scale runs keep the paper's relative budgets).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..baselines import (
    Aspdac20Fist,
    Dac19Recommender,
    Mlcad19LcbBayesOpt,
    RandomSearchTuner,
    Tcad19ActiveLearner,
)
from ..bench.dataset import OBJECTIVE_SPACES, BenchmarkDataset
from ..bench.generate import generate_benchmark
from ..core import PPATuner, PPATunerConfig, PoolOracle
from ..core.result import TuningResult
from ..pareto.dominance import pareto_front
from ..pareto.hypervolume import hypervolume_error
from ..pareto.metrics import adrs

#: Paper "Runs" per method, normalized by the pool size of each target
#: benchmark (Tables 2-3: Target1 pool 5000, Target2 pool 727).
PAPER_BUDGET_FRACTIONS: dict[str, dict[str, float]] = {
    "TCAD'19": {"target1": 508 / 5000, "target2": 92 / 727},
    "MLCAD'19": {"target1": 400 / 5000, "target2": 70 / 727},
    "DAC'19": {"target1": 600 / 5000, "target2": 131 / 727},
    "ASPDAC'20": {"target1": 400 / 5000, "target2": 70 / 727},
    "Random": {"target1": 400 / 5000, "target2": 70 / 727},
}

#: Methods appearing in the paper's tables, in column order.
PAPER_METHODS = ("TCAD'19", "MLCAD'19", "DAC'19", "ASPDAC'20", "PPATuner")


@dataclass
class MethodOutcome:
    """One (method, objective-space) cell triple of Tables 2-3.

    Attributes:
        method: Method name.
        objective_space: e.g. ``"power-delay"``.
        hv_error: Hyper-volume error vs. the golden front (Eq. (2)).
        adrs: Average distance from reference set (Eq. (3)).
        runs: Tool runs consumed.
        result: The raw tuning result (frontier points for Figure 3).
    """

    method: str
    objective_space: str
    hv_error: float
    adrs: float
    runs: int
    result: TuningResult = field(repr=False, default=None)  # type: ignore[assignment]


@dataclass
class ScenarioResult:
    """All outcomes of one scenario (one paper table).

    Attributes:
        name: ``"scenario_one"`` or ``"scenario_two"``.
        source: Source benchmark name.
        target: Target benchmark name.
        outcomes: Flat list of method/objective outcomes.
        pool_size: Target pool size used.
    """

    name: str
    source: str
    target: str
    outcomes: list[MethodOutcome]
    pool_size: int

    def get(self, method: str, objective_space: str) -> MethodOutcome:
        """Look up one cell.

        Raises:
            KeyError: If absent.
        """
        for o in self.outcomes:
            if o.method == method and o.objective_space == objective_space:
                return o
        raise KeyError((method, objective_space))

    def averages(self) -> dict[str, tuple[float, float, float]]:
        """Per-method (mean HV error, mean ADRS, mean runs) — the tables'
        "Average" row."""
        out: dict[str, tuple[float, float, float]] = {}
        methods = {o.method for o in self.outcomes}
        for m in methods:
            rows = [o for o in self.outcomes if o.method == m]
            out[m] = (
                float(np.mean([r.hv_error for r in rows])),
                float(np.mean([r.adrs for r in rows])),
                float(np.mean([r.runs for r in rows])),
            )
        return out


def make_method(
    name: str,
    budget: int,
    pool_size: int,
    seed: int,
    ppa_config: PPATunerConfig | None = None,
):
    """Construct a tuner by its paper name.

    Args:
        name: One of :data:`PAPER_METHODS` or ``"Random"``.
        budget: Tool-run budget for fixed-budget methods.
        pool_size: Target pool size (bounds PPATuner's iteration cap).
        seed: RNG seed.
        ppa_config: Optional explicit PPATuner configuration.

    Raises:
        ValueError: For an unknown method name.
    """
    if name == "TCAD'19":
        return Tcad19ActiveLearner(budget=budget, seed=seed)
    if name == "MLCAD'19":
        return Mlcad19LcbBayesOpt(budget=budget, seed=seed)
    if name == "DAC'19":
        return Dac19Recommender(budget=budget, seed=seed)
    if name == "ASPDAC'20":
        return Aspdac20Fist(budget=budget, seed=seed)
    if name == "Random":
        return RandomSearchTuner(budget=budget, seed=seed)
    if name == "PPATuner":
        config = ppa_config or PPATunerConfig(
            max_iterations=max(10, int(round(0.07 * pool_size))),
            init_fraction=0.02,
            seed=seed,
        )
        return PPATuner(config)
    raise ValueError(f"unknown method {name!r}")


def evaluate_outcome(
    method: str,
    objective_space: str,
    result: TuningResult,
    dataset: BenchmarkDataset,
    names: tuple[str, ...],
) -> MethodOutcome:
    """Score one tuning result against the golden front."""
    golden = dataset.golden_front(names)
    # Shared reference point: padded worst corner of the full pool, so
    # every method is scored against the same volume.
    Y_all = dataset.objectives(names)
    worst = Y_all.max(axis=0)
    best = Y_all.min(axis=0)
    reference = worst + 0.1 * np.maximum(worst - best, 1e-12)
    approx = pareto_front(result.pareto_points)
    return MethodOutcome(
        method=method,
        objective_space=objective_space,
        hv_error=float(
            hypervolume_error(approx, golden, reference)
        ),
        adrs=float(adrs(golden, approx)),
        runs=int(result.n_evaluations),
        result=result,
    )


def run_scenario(
    source: BenchmarkDataset,
    target: BenchmarkDataset,
    name: str,
    budget_key: str,
    methods: tuple[str, ...] = PAPER_METHODS,
    objective_spaces: dict[str, tuple[str, ...]] | None = None,
    n_source: int = 200,
    seed: int = 0,
    ppa_config: PPATunerConfig | None = None,
) -> ScenarioResult:
    """Run every (method, objective-space) combination of one scenario.

    Args:
        source: Source benchmark (``D^S``).
        target: Target benchmark pool.
        name: Scenario label.
        budget_key: ``"target1"`` or ``"target2"`` — selects the paper
            budget fractions.
        methods: Methods to run.
        objective_spaces: Objective subsets; defaults to the paper's
            three.
        n_source: Source points made available to transfer methods (the
            paper uses 200).
        seed: Base seed (methods get distinct derived seeds).
        ppa_config: Optional PPATuner configuration override.

    Returns:
        A :class:`ScenarioResult`.
    """
    spaces = objective_spaces or OBJECTIVE_SPACES
    rng = np.random.default_rng(seed)
    src_idx = rng.choice(
        source.n, size=min(n_source, source.n), replace=False
    )
    outcomes: list[MethodOutcome] = []
    for space_name, names in spaces.items():
        Y_target = target.objectives(names)
        X_source = source.X[src_idx]
        Y_source = source.objectives(names)[src_idx]
        # Shared initial design per objective space so methods start from
        # the same information.
        n_init = max(5, int(round(0.02 * target.n)))
        init = rng.choice(target.n, size=n_init, replace=False)
        for i, method in enumerate(methods):
            budget_frac = PAPER_BUDGET_FRACTIONS.get(method, {}).get(
                budget_key, 0.08
            )
            budget = max(n_init + 5, int(round(budget_frac * target.n)))
            tuner = make_method(
                method, budget, target.n, seed + 97 * i,
                ppa_config=ppa_config,
            )
            oracle = PoolOracle(Y_target)
            result = tuner.tune(
                target.X, oracle,
                X_source=X_source, Y_source=Y_source,
                init_indices=init.copy(),
            )
            outcomes.append(evaluate_outcome(
                method, space_name, result, target, names
            ))
    return ScenarioResult(
        name=name,
        source=source.name,
        target=target.name,
        outcomes=outcomes,
        pool_size=target.n,
    )


def scenario_one(
    scale: int | None = None,
    seed: int = 0,
    methods: tuple[str, ...] = PAPER_METHODS,
) -> ScenarioResult:
    """Paper Table 2: Source1 -> Target1 (same design).

    Args:
        scale: Optional target-pool subsample size for fast runs (None =
            the paper's 5000 points).
        seed: Base seed.
        methods: Methods to run.
    """
    source = generate_benchmark("source1")
    target = generate_benchmark("target1")
    if scale is not None:
        target = target.subsample(scale, seed=seed)
    return run_scenario(
        source, target, "scenario_one", "target1",
        methods=methods, seed=seed,
    )


def scenario_two(
    scale: int | None = None,
    seed: int = 0,
    methods: tuple[str, ...] = PAPER_METHODS,
) -> ScenarioResult:
    """Paper Table 3: Source2 -> Target2 (similar designs).

    Args:
        scale: Optional target-pool subsample size (None = 727 points).
        seed: Base seed.
        methods: Methods to run.
    """
    source = generate_benchmark("source2")
    target = generate_benchmark("target2")
    if scale is not None:
        target = target.subsample(scale, seed=seed)
    return run_scenario(
        source, target, "scenario_two", "target2",
        methods=methods, seed=seed,
    )
