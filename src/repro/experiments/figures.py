"""Data generators for the paper's figures.

Figure 2(a): shrinkage of a candidate's uncertainty region across
iterations (diameter trace).  Figure 2(b): the δ-accurate frontier found
by PPATuner vs. the golden frontier.  Figure 3: per-method Pareto
frontiers in the power-delay space on Target2.

These return plain data structures (series of points) — the paper's plots
are scatter/line charts of exactly these series, so the benches print them
instead of rendering images.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..bench.dataset import BenchmarkDataset
from ..core import PPATuner, PPATunerConfig, PoolOracle
from ..pareto.dominance import pareto_front
from .scenarios import ScenarioResult


@dataclass
class Figure2Data:
    """Series behind Figure 2.

    Attributes:
        iterations: Iteration numbers.
        max_diameters: Largest live uncertainty-region diameter per
            iteration (the panel (a) shrinkage story).
        n_undecided: Undecided-count trace.
        n_pareto: Classified-Pareto-count trace.
        golden_front: Golden Pareto frontier points.
        found_front: PPATuner's (δ-accurate) frontier points.
        delta: Absolute δ vector used.
    """

    iterations: list[int]
    max_diameters: list[float]
    n_undecided: list[int]
    n_pareto: list[int]
    golden_front: np.ndarray
    found_front: np.ndarray
    delta: np.ndarray = field(default_factory=lambda: np.empty(0))


def figure2_uncertainty_shrinkage(
    dataset: BenchmarkDataset,
    source: BenchmarkDataset | None = None,
    objective_names: tuple[str, ...] = ("power", "delay"),
    scale: int | None = 400,
    seed: int = 0,
    config: PPATunerConfig | None = None,
) -> Figure2Data:
    """Run PPATuner once and extract the Figure 2 series.

    Args:
        dataset: Target benchmark.
        source: Optional source benchmark for transfer.
        objective_names: Objective space (paper panel uses power-delay).
        scale: Target-pool subsample for speed (None = full).
        seed: RNG seed.
        config: Optional tuner configuration.

    Returns:
        The :class:`Figure2Data` series.
    """
    target = dataset if scale is None else dataset.subsample(scale, seed)
    Y = target.objectives(objective_names)
    oracle = PoolOracle(Y)
    cfg = config or PPATunerConfig(
        max_iterations=max(10, int(0.1 * target.n)), seed=seed
    )
    tuner = PPATuner(cfg)
    kwargs = {}
    if source is not None:
        rng = np.random.default_rng(seed)
        idx = rng.choice(source.n, size=min(200, source.n), replace=False)
        kwargs = {
            "sources": [(
                source.X[idx],
                source.objectives(objective_names)[idx],
            )],
        }
    result = tuner.tune(target.X, oracle, **kwargs)

    return Figure2Data(
        iterations=[h.iteration for h in result.history],
        max_diameters=[h.max_diameter for h in result.history],
        n_undecided=[h.n_undecided for h in result.history],
        n_pareto=[h.n_pareto for h in result.history],
        golden_front=target.golden_front(objective_names),
        found_front=pareto_front(result.pareto_points),
    )


def figure3_frontiers(
    scenario: ScenarioResult,
    dataset: BenchmarkDataset,
    objective_space: str = "power-delay",
    objective_names: tuple[str, ...] = ("power", "delay"),
) -> dict[str, np.ndarray]:
    """Per-method frontier point series of Figure 3.

    Args:
        scenario: A completed Scenario Two result.
        dataset: The target benchmark (golden frontier source).
        objective_space: Which scenario rows to read.
        objective_names: Metric names of that space.

    Returns:
        Mapping from series name (``"golden"`` + each method) to its
        frontier points, exactly the scatter series of the paper's plot.
    """
    series: dict[str, np.ndarray] = {
        "golden": dataset.golden_front(objective_names)
    }
    for outcome in scenario.outcomes:
        if outcome.objective_space != objective_space:
            continue
        if outcome.result is None:
            continue
        series[outcome.method] = pareto_front(
            outcome.result.pareto_points
        )
    return series
