"""Cross-design transfer scenarios (heterogeneous design families).

The paper's two scenarios transfer between MAC designs; these three
transfer *across* families, where source and target share knob columns
but genuinely different netlists (DESIGN.md §14):

- ``mac_to_fabric`` — Source3 (small MAC over the fabric knob set) →
  Fabric1 (structured-ASIC fabric).  Related physics, different
  architecture: the useful-transfer case.
- ``cpu_small_to_large`` — Cpu1 → Cpu2, the same CPU core scaled up
  with a shifted ``freq`` range (the paper's small→large protocol on a
  new family).
- ``fabric_to_cpu`` — Fabric2 (fabric over the cpu knob set) → Cpu2.
  A negative-transfer control: columns match, response surfaces do
  not, so transfer methods must discriminate relevance to win.

Each runs through the same :func:`~repro.experiments.scenarios.run_scenario`
machinery as the paper tables (cache-ref fan-out, memoized resume,
bit-identical parallel execution), with opt-in FIST-style
knob-importance pruning (``prune_space=``).
"""

from __future__ import annotations

from ..reliability.policy import FaultPolicy
from .scenarios import ScenarioResult, run_scenario

__all__ = [
    "CROSS_DESIGN_METHODS",
    "CROSS_DESIGN_SCENARIOS",
    "cross_design_scenario",
]

#: Scenario name -> (source benchmark, target benchmark).  The budget
#: key is the target name (no paper fractions exist for these tables,
#: so fixed-budget methods fall back to the 8% default).
CROSS_DESIGN_SCENARIOS: dict[str, tuple[str, str]] = {
    "mac_to_fabric": ("source3", "fabric1"),
    "cpu_small_to_large": ("cpu1", "cpu2"),
    "fabric_to_cpu": ("fabric2", "cpu2"),
}

#: Default method set: the transfer method under test, its no-transfer
#: ablation, and the random floor.
CROSS_DESIGN_METHODS = ("PPATuner", "PPATuner-NT", "Random")


def cross_design_scenario(
    name: str,
    scale: int | None = None,
    seed: int = 0,
    methods: tuple[str, ...] = CROSS_DESIGN_METHODS,
    workers: int | None = 1,
    repeats: int = 1,
    runner: "ExperimentRunner | None" = None,
    n_points: int | None = None,
    fault_policy: FaultPolicy | None = None,
    prune_space: "bool | dict | None" = None,
) -> ScenarioResult:
    """Run one cross-design transfer scenario end to end.

    Args:
        name: One of :data:`CROSS_DESIGN_SCENARIOS`.
        scale: Optional target-pool subsample size for fast runs.
        seed: Base seed (cells derive order-independent streams).
        methods: Methods to run.
        workers: Process count for cell fan-out.
        repeats: Independent repeats per cell.
        runner: Explicit runner (memoization/progress); overrides
            ``workers``.
        n_points: Pool-size override for both benchmarks.
        fault_policy: Explicit per-evaluation resilience policy.
        prune_space: Opt-in knob-importance pruning — ``True`` or a
            settings dict for :func:`repro.ml.prune_space`.

    Raises:
        ValueError: For an unknown scenario name, listing the known
            ones.
    """
    from ..runner import DatasetRef

    try:
        source_name, target_name = CROSS_DESIGN_SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown cross-design scenario {name!r}; choose from "
            f"{', '.join(sorted(CROSS_DESIGN_SCENARIOS))}"
        ) from None
    source_ref = DatasetRef(source_name, n_points=n_points)
    target_ref = DatasetRef(
        target_name, n_points=n_points,
        subsample=scale, subsample_seed=seed,
    )
    return run_scenario(
        source_ref.resolve(), target_ref.resolve(), name, target_name,
        methods=methods, seed=seed, workers=workers, repeats=repeats,
        runner=runner, source_ref=source_ref, target_ref=target_ref,
        fault_policy=fault_policy, prune_space=prune_space,
    )
