"""Offline benchmarks (paper Table 1): spaces, generation, datasets."""

from .dataset import OBJECTIVE_SPACES, QOR_METRICS, BenchmarkDataset
from .io import export_benchmark_csv, import_benchmark_csv
from .generate import (
    CACHE_VERSION,
    cache_workers,
    default_cache_dir,
    design_spec,
    evaluate_configs,
    evaluate_configs_parallel,
    full_scale,
    generate_all,
    generate_benchmark,
    get_flow,
)
from .store import BenchmarkStore, CacheCorruptionError, VerifyReport
from .spaces import (
    BENCHMARK_DESIGN,
    PAPER_POOL_SIZES,
    SPACES,
    source1_space,
    source2_space,
    target1_space,
    target2_space,
)

__all__ = [
    "BENCHMARK_DESIGN",
    "CACHE_VERSION",
    "OBJECTIVE_SPACES",
    "PAPER_POOL_SIZES",
    "QOR_METRICS",
    "SPACES",
    "BenchmarkDataset",
    "BenchmarkStore",
    "CacheCorruptionError",
    "VerifyReport",
    "cache_workers",
    "default_cache_dir",
    "export_benchmark_csv",
    "import_benchmark_csv",
    "design_spec",
    "evaluate_configs",
    "evaluate_configs_parallel",
    "full_scale",
    "generate_all",
    "generate_benchmark",
    "get_flow",
    "source1_space",
    "source2_space",
    "target1_space",
    "target2_space",
]
