"""Benchmark import/export: CSV interchange for offline tables.

Lets users bring their *own* tool's tuning records into the framework
(export a template, fill it from their flow, load it back as a
:class:`BenchmarkDataset`) and inspect ours in a spreadsheet.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..space.space import Configuration, ParameterSpace
from .dataset import QOR_METRICS, BenchmarkDataset


def export_benchmark_csv(
    dataset: BenchmarkDataset, path: str | Path
) -> None:
    """Write a benchmark as CSV: one row per configuration.

    Columns: the parameter names (native values), then
    area/power/delay.
    """
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(list(dataset.space.names) + list(QOR_METRICS))
        for config, qor in zip(dataset.configs, dataset.Y):
            writer.writerow(
                [config[name] for name in dataset.space.names]
                + [repr(float(v)) for v in qor]
            )


def import_benchmark_csv(
    path: str | Path,
    space: ParameterSpace,
    name: str = "imported",
    design: str = "external",
) -> BenchmarkDataset:
    """Load a benchmark from CSV written by :func:`export_benchmark_csv`
    (or hand-built with the same columns).

    Args:
        path: CSV file.
        space: Parameter space describing the columns.
        name: Dataset name.
        design: Design label.

    Returns:
        The reconstructed :class:`BenchmarkDataset`.

    Raises:
        ValueError: On missing columns or malformed rows.
    """
    path = Path(path)
    configs: list[Configuration] = []
    rows: list[list[float]] = []
    with path.open() as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            raise ValueError("empty CSV")
        expected = list(space.names) + list(QOR_METRICS)
        if header != expected:
            raise ValueError(
                f"CSV columns {header} do not match expected {expected}"
            )
        for line_no, row in enumerate(reader, start=2):
            if len(row) != len(expected):
                raise ValueError(f"row {line_no}: wrong column count")
            config: Configuration = {}
            for param, raw in zip(space.parameters, row):
                config[param.name] = _parse_value(raw)
            try:
                space.validate(config)
                qor = [float(v) for v in row[space.dim:]]
            except ValueError as exc:
                raise ValueError(f"row {line_no}: {exc}") from exc
            configs.append(config)
            rows.append(qor)
    if not configs:
        raise ValueError("CSV contains no data rows")
    return BenchmarkDataset(
        name=name,
        space=space,
        configs=configs,
        X=space.encode_many(configs),
        Y=np.array(rows),
        design=design,
    )


def _parse_value(raw: str) -> object:
    """Parse a CSV cell back to bool/int/float/str.

    Booleans are matched case-insensitively (``true``/``TRUE``/``True``)
    so tables written by external tools import cleanly.
    """
    text = raw.strip()
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    try:
        as_int = int(text)
    except ValueError:
        pass
    else:
        return as_int
    try:
        return float(text)
    except ValueError:
        return text
