"""Offline benchmark generation (paper Section 4.1 protocol).

Latin-hypercube sample the benchmark's parameter space, push every
configuration through the simulated PD flow, and store the golden QoR
table.  Generation is deterministic per (benchmark, scale) and cached on
disk through the crash-safe :class:`~repro.bench.store.BenchmarkStore`,
mirroring how the paper built its offline tables once and tuned against
them.  Corrupt cache files are quarantined and transparently
regenerated; concurrent generators of the same table build it exactly
once.

Scale: by default the designs are reduced-bit-width MACs so the full suite
generates in tens of seconds; set the environment variable
``PPATUNER_FULL=1`` for paper-scale cell counts (see DESIGN.md §2).
Cold regeneration fans the flow runs out over a process pool
(``PPATUNER_WORKERS`` overrides the worker count).
"""

from __future__ import annotations

import functools
import logging
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from ..pdtool.family import design_family, resolve_design
from ..pdtool.flow import PDFlow
from ..pdtool.params import ToolParameters
from ..space.sampling import latin_hypercube
from ..space.space import Configuration
from .dataset import QOR_METRICS, BenchmarkDataset
from .spaces import BENCHMARK_DESIGN, POOL_SIZES, SPACES

# Re-exported for compatibility (PAPER_POOL_SIZES lived here first).
from .spaces import PAPER_POOL_SIZES  # noqa: F401
from .store import BenchmarkStore, default_cache_dir

__all__ = [
    "CACHE_VERSION",
    "DESIGN_BASE_PARAMS",
    "cache_workers",
    "default_cache_dir",
    "design_base_params",
    "design_spec",
    "evaluate_configs",
    "evaluate_configs_parallel",
    "full_scale",
    "generate_all",
    "generate_benchmark",
    "get_flow",
]

log = logging.getLogger(__name__)

#: Cache-format version; bump when the simulator's physics change.
CACHE_VERSION = 15

#: Seed offsets so each benchmark gets an independent LHS draw.
_BENCH_SEEDS = {
    "source1": 11, "target1": 13, "source2": 17, "target2": 19,
    "source3": 23, "fabric1": 29, "fabric2": 31, "cpu1": 37, "cpu2": 41,
}

#: Below this pool size a cold build stays serial — the process-pool
#: spin-up would cost more than it saves.
_PARALLEL_MIN_POINTS = 512

#: Fixed tool parameters per design for knobs the benchmark space does
#: not tune (see :meth:`~repro.pdtool.family.DesignFamily.base_params`,
#: the authoritative source).  Kept as a plain mapping — under both the
#: legacy and canonical design names — because pre-registry callers
#: index it directly.
DESIGN_BASE_PARAMS: dict[str, dict[str, object]] = {
    "small": {},
    "large": {"freq": 450.0},
    "mac_small": {},
    "mac_large": {"freq": 450.0},
    "fabric_small": {},
    "fabric_large": {},
    "cpu_small": {},
    "cpu_large": {},
}


def full_scale() -> bool:
    """Whether paper-scale designs were requested via ``PPATUNER_FULL``."""
    from .. import env

    return env.full_scale()


def cache_workers() -> int:
    """Worker-process count for cold benchmark builds.

    ``PPATUNER_WORKERS`` overrides; defaults to the CPU count (capped at
    8 — the flow runs are short, so more workers only add fork cost).
    See :func:`repro.env.workers`.
    """
    from .. import env

    return env.workers()


def design_spec(design: str) -> object:
    """Spec dataclass for a benchmark design name at the active scale.

    Dispatches through the design-family registry, so the return type
    is the family's spec class — :class:`~repro.pdtool.mac.MacSpec`
    for MAC designs, :class:`~repro.pdtool.fabric.FabricSpec` for
    fabrics, and so on (it was documented as always-``MacSpec`` when
    MACs were the only family).

    Args:
        design: Canonical family-prefixed design name
            (``"mac_small"``, ``"fabric_large"``, ...).  The legacy
            MAC shorthand ``"small"``/``"large"`` still resolves, with
            a :class:`DeprecationWarning`.

    Raises:
        ValueError: For an unregistered design family; the message
            reports the family token parsed from ``design`` and lists
            every registered family.
    """
    design = resolve_design(design)
    return design_family(design).spec(design, full=full_scale())


def design_base_params(design: str) -> dict[str, object]:
    """Fixed tool parameters for a design's untuned knobs.

    Registry-backed replacement for indexing
    :data:`DESIGN_BASE_PARAMS` directly; accepts legacy names.
    """
    design = resolve_design(design)
    return design_family(design).base_params(design)


_FLOW_CACHE: dict[str, PDFlow] = {}


def get_flow(design: str) -> PDFlow:
    """Process-cached :class:`PDFlow` for a design name (any family)."""
    design = resolve_design(design)
    key = f"{design}-{'full' if full_scale() else 'reduced'}"
    if key not in _FLOW_CACHE:
        family = design_family(design)
        _FLOW_CACHE[key] = PDFlow(
            family.netlist(design, full=full_scale())
        )
    return _FLOW_CACHE[key]


def evaluate_configs(
    flow: PDFlow,
    configs: list[Configuration],
    base_params: dict[str, object] | None = None,
) -> np.ndarray:
    """Run the flow on each configuration; returns ``(n, 3)`` QoR rows.

    Args:
        flow: The tool.
        configs: Tuned-parameter assignments.
        base_params: Fixed values for untuned knobs (merged under each
            configuration).
    """
    base = dict(base_params or {})
    rows = np.empty((len(configs), len(QOR_METRICS)))
    for i, config in enumerate(configs):
        merged = {**base, **dict(config)}
        report = flow.run(ToolParameters.from_dict(merged))
        rows[i] = report.objectives(QOR_METRICS)
    return rows


def _evaluate_chunk(
    design: str,
    base_params: dict[str, object],
    configs: list[Configuration],
) -> np.ndarray:
    """Worker: rebuild the flow locally and evaluate one chunk."""
    return evaluate_configs(get_flow(design), configs, base_params)


def evaluate_configs_parallel(
    design: str,
    configs: list[Configuration],
    base_params: dict[str, object] | None = None,
    n_workers: int | None = None,
) -> np.ndarray:
    """Evaluate a pool across a process pool, preserving row order.

    Flow runs are independent and deterministic per configuration, so the
    result is bit-identical to the serial :func:`evaluate_configs`.  Falls
    back to serial when only one worker is available, for small pools
    (under ``_PARALLEL_MIN_POINTS`` unless ``n_workers`` is explicit), or
    if the pool cannot be started.

    Args:
        design: Canonical design name (``"mac_small"``, ``"cpu_large"``,
            ...) — each worker rebuilds its flow from this, as
            :class:`PDFlow` need not be picklable.
        configs: Tuned-parameter assignments.
        base_params: Fixed values for untuned knobs.
        n_workers: Worker count; defaults to :func:`cache_workers`.
    """
    base = dict(base_params or {})
    workers = n_workers if n_workers is not None else cache_workers()
    if n_workers is None and len(configs) < _PARALLEL_MIN_POINTS:
        workers = 1
    workers = min(workers, len(configs)) or 1
    if workers <= 1:
        return evaluate_configs(get_flow(design), configs, base)
    bounds = np.linspace(0, len(configs), workers + 1).astype(int)
    chunks = [
        configs[lo:hi]
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]
    try:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(
                functools.partial(_evaluate_chunk, design, base), chunks
            ))
    except Exception:
        log.warning(
            "process pool failed; evaluating %d configs serially",
            len(configs), exc_info=True,
        )
        return evaluate_configs(get_flow(design), configs, base)
    return np.vstack(parts)


def _build_benchmark(
    name: str, n: int, design: str
) -> tuple[list[Configuration], np.ndarray, np.ndarray]:
    """Cold build: LHS-sample the space and run every config."""
    space = SPACES[name]()
    configs = latin_hypercube(space, n, seed=_BENCH_SEEDS[name])
    X = space.encode_many(configs)
    Y = evaluate_configs_parallel(
        design, configs, design_base_params(design)
    )
    return configs, X, Y


def generate_benchmark(
    name: str,
    n_points: int | None = None,
    cache: bool = True,
) -> BenchmarkDataset:
    """Build (or load) one offline benchmark.

    Cached tables are loaded through the crash-safe store: a corrupt or
    truncated cache file is quarantined and the table rebuilt instead of
    raising, and concurrent invocations build each table exactly once
    (the others block on an advisory lock, then load).

    Args:
        name: A benchmark name — the paper's four (``"source1"`` ...
            ``"target2"``) or a cross-design table (``"source3"``,
            ``"fabric1"``, ``"fabric2"``, ``"cpu1"``, ``"cpu2"``).
        n_points: Pool size; defaults to the paper's (Table 1) or the
            cross-design default.
        cache: Use the on-disk cache.

    Returns:
        The :class:`BenchmarkDataset`.

    Raises:
        ValueError: For an unknown benchmark name.
    """
    if name not in SPACES:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {sorted(SPACES)}"
        )
    n = n_points if n_points is not None else POOL_SIZES[name]
    space = SPACES[name]()
    design = BENCHMARK_DESIGN[name]
    scale = "full" if full_scale() else "reduced"

    if not cache:
        configs, X, Y = _build_benchmark(name, n, design)
        return BenchmarkDataset(name, space, configs, X, Y, design)

    store = BenchmarkStore(default_cache_dir())
    filename = f"{name}-{scale}-n{n}-v{CACHE_VERSION}.npz"
    arrays = store.load(filename, required=("X", "Y"))
    if arrays is None:
        with store.lock(filename):
            # Another process may have built it while we waited.
            arrays = store.load(filename, required=("X", "Y"))
            if arrays is None:
                configs, X, Y = _build_benchmark(name, n, design)
                store.save(filename, {"X": X, "Y": Y})
                store.gc_stale(CACHE_VERSION)
                return BenchmarkDataset(name, space, configs, X, Y, design)
    X = arrays["X"]
    Y = arrays["Y"]
    configs = [space.decode(row) for row in X]
    return BenchmarkDataset(name, space, configs, X, Y, design)


def generate_all(
    n_points: dict[str, int] | None = None, cache: bool = True
) -> dict[str, BenchmarkDataset]:
    """Generate every benchmark (the paper's four tables).

    Args:
        n_points: Optional per-benchmark size override.
        cache: Use the on-disk cache.
    """
    sizes = n_points or {}
    return {
        name: generate_benchmark(name, sizes.get(name), cache=cache)
        for name in SPACES
    }
