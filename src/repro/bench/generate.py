"""Offline benchmark generation (paper Section 4.1 protocol).

Latin-hypercube sample the benchmark's parameter space, push every
configuration through the simulated PD flow, and store the golden QoR
table.  Generation is deterministic per (benchmark, scale) and cached on
disk, mirroring how the paper built its offline tables once and tuned
against them.

Scale: by default the designs are reduced-bit-width MACs so the full suite
generates in tens of seconds; set the environment variable
``PPATUNER_FULL=1`` for paper-scale cell counts (see DESIGN.md §2).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..pdtool.flow import PDFlow
from ..pdtool.mac import (
    LARGE_MAC,
    PAPER_LARGE_MAC,
    PAPER_SMALL_MAC,
    SMALL_MAC,
    MacSpec,
)
from ..pdtool.params import ToolParameters
from ..space.sampling import latin_hypercube
from ..space.space import Configuration
from .dataset import QOR_METRICS, BenchmarkDataset
from .spaces import BENCHMARK_DESIGN, PAPER_POOL_SIZES, SPACES

#: Cache-format version; bump when the simulator's physics change.
CACHE_VERSION = 15

#: Seed offsets so each benchmark gets an independent LHS draw.
_BENCH_SEEDS = {"source1": 11, "target1": 13, "source2": 17, "target2": 19}

#: Fixed tool parameters per design for knobs the benchmark space does not
#: tune.  The clock target must sit near each design's achievable speed or
#: the timing-optimization knobs saturate (the larger MAC is a deeper,
#: slower design).
DESIGN_BASE_PARAMS: dict[str, dict[str, object]] = {
    "small": {},
    "large": {"freq": 450.0},
}


def full_scale() -> bool:
    """Whether paper-scale designs were requested via ``PPATUNER_FULL``."""
    return os.environ.get("PPATUNER_FULL", "").strip() in {"1", "true"}


def design_spec(design: str) -> MacSpec:
    """MAC spec for a benchmark design name at the active scale."""
    if design == "small":
        return PAPER_SMALL_MAC if full_scale() else SMALL_MAC
    if design == "large":
        return PAPER_LARGE_MAC if full_scale() else LARGE_MAC
    raise ValueError(f"unknown design {design!r}")


def default_cache_dir() -> Path:
    """Directory for cached benchmark tables."""
    override = os.environ.get("PPATUNER_CACHE")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / ".cache" / "benchmarks"


_FLOW_CACHE: dict[str, PDFlow] = {}


def get_flow(design: str) -> PDFlow:
    """Process-cached :class:`PDFlow` for a design name."""
    key = f"{design}-{'full' if full_scale() else 'reduced'}"
    if key not in _FLOW_CACHE:
        _FLOW_CACHE[key] = PDFlow.for_mac(design_spec(design))
    return _FLOW_CACHE[key]


def evaluate_configs(
    flow: PDFlow,
    configs: list[Configuration],
    base_params: dict[str, object] | None = None,
) -> np.ndarray:
    """Run the flow on each configuration; returns ``(n, 3)`` QoR rows.

    Args:
        flow: The tool.
        configs: Tuned-parameter assignments.
        base_params: Fixed values for untuned knobs (merged under each
            configuration).
    """
    base = dict(base_params or {})
    rows = np.empty((len(configs), len(QOR_METRICS)))
    for i, config in enumerate(configs):
        merged = {**base, **dict(config)}
        report = flow.run(ToolParameters.from_dict(merged))
        rows[i] = report.objectives(QOR_METRICS)
    return rows


def generate_benchmark(
    name: str,
    n_points: int | None = None,
    cache: bool = True,
) -> BenchmarkDataset:
    """Build (or load) one offline benchmark.

    Args:
        name: ``"source1"``, ``"target1"``, ``"source2"`` or
            ``"target2"``.
        n_points: Pool size; defaults to the paper's (Table 1).
        cache: Use the on-disk cache.

    Returns:
        The :class:`BenchmarkDataset`.

    Raises:
        ValueError: For an unknown benchmark name.
    """
    if name not in SPACES:
        raise ValueError(
            f"unknown benchmark {name!r}; choose from {sorted(SPACES)}"
        )
    n = n_points if n_points is not None else PAPER_POOL_SIZES[name]
    space = SPACES[name]()
    design = BENCHMARK_DESIGN[name]
    scale = "full" if full_scale() else "reduced"
    cache_file = default_cache_dir() / (
        f"{name}-{scale}-n{n}-v{CACHE_VERSION}.npz"
    )

    if cache and cache_file.exists():
        data = np.load(cache_file, allow_pickle=False)
        X = data["X"]
        Y = data["Y"]
        configs = [space.decode(row) for row in X]
        return BenchmarkDataset(name, space, configs, X, Y, design)

    configs = latin_hypercube(space, n, seed=_BENCH_SEEDS[name])
    X = space.encode_many(configs)
    Y = evaluate_configs(
        get_flow(design), configs, DESIGN_BASE_PARAMS[design]
    )
    if cache:
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(cache_file, X=X, Y=Y)
    return BenchmarkDataset(name, space, configs, X, Y, design)


def generate_all(
    n_points: dict[str, int] | None = None, cache: bool = True
) -> dict[str, BenchmarkDataset]:
    """Generate every benchmark (the paper's four tables).

    Args:
        n_points: Optional per-benchmark size override.
        cache: Use the on-disk cache.
    """
    sizes = n_points or {}
    return {
        name: generate_benchmark(name, sizes.get(name), cache=cache)
        for name in SPACES
    }
