"""Offline benchmark datasets: configurations with golden QoR tables."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pareto.dominance import pareto_front, pareto_indices
from ..space.space import Configuration, ParameterSpace

#: The three headline QoR metrics, in storage order.
QOR_METRICS = ("area", "power", "delay")

#: The paper's three explored objective subsets (Tables 2-3 rows).
OBJECTIVE_SPACES = {
    "area-delay": ("area", "delay"),
    "power-delay": ("power", "delay"),
    "area-power-delay": ("area", "power", "delay"),
}


@dataclass
class BenchmarkDataset:
    """One offline benchmark: a pool of configurations with golden QoR.

    Attributes:
        name: Benchmark name (``source1`` ... ``target2``).
        space: The parameter space the pool was sampled from.
        configs: The pool configurations.
        X: ``(n, d)`` encoded feature matrix (column order =
            ``space.names``).
        Y: ``(n, 3)`` golden metric matrix in :data:`QOR_METRICS` order.
        design: Which MAC design produced the table.
    """

    name: str
    space: ParameterSpace
    configs: list[Configuration]
    X: np.ndarray
    Y: np.ndarray
    design: str

    def __post_init__(self) -> None:
        if not (len(self.configs) == len(self.X) == len(self.Y)):
            raise ValueError("configs/X/Y misaligned")
        if self.Y.shape[1] != len(QOR_METRICS):
            raise ValueError("Y must have area/power/delay columns")

    @property
    def n(self) -> int:
        """Pool size."""
        return len(self.configs)

    def metric_column(self, metric: str) -> np.ndarray:
        """Golden values of one metric.

        Raises:
            KeyError: For an unknown metric name.
        """
        return self.Y[:, QOR_METRICS.index(metric)]

    def objectives(self, names: tuple[str, ...]) -> np.ndarray:
        """Golden objective matrix restricted to ``names`` (in order)."""
        cols = [QOR_METRICS.index(nm) for nm in names]
        return self.Y[:, cols]

    def golden_front(self, names: tuple[str, ...]) -> np.ndarray:
        """The golden Pareto front in the ``names`` objective space.

        The paper defines "golden" as the best within the offline table
        (Section 4.1), exactly what this returns.
        """
        return pareto_front(self.objectives(names))

    def golden_indices(self, names: tuple[str, ...]) -> np.ndarray:
        """Pool indices of the golden Pareto configurations."""
        return pareto_indices(self.objectives(names))

    def subsample(self, n: int, seed: int = 0) -> "BenchmarkDataset":
        """Random subset of the pool (used by reduced-scale benches).

        Args:
            n: Subset size (clamped to the pool size).
            seed: Sampling seed.
        """
        if n >= self.n:
            return self
        rng = np.random.default_rng(seed)
        idx = np.sort(rng.choice(self.n, size=n, replace=False))
        return BenchmarkDataset(
            name=f"{self.name}[{n}]",
            space=self.space,
            configs=[self.configs[i] for i in idx],
            X=self.X[idx],
            Y=self.Y[idx],
            design=self.design,
        )

    def summary(self) -> dict[str, object]:
        """Human-readable stats (feeds the Table 1 regenerator)."""
        return {
            "name": self.name,
            "n_points": self.n,
            "n_parameters": self.space.dim,
            "design": self.design,
            "area_range": (
                float(self.metric_column("area").min()),
                float(self.metric_column("area").max()),
            ),
            "power_range": (
                float(self.metric_column("power").min()),
                float(self.metric_column("power").max()),
            ),
            "delay_range": (
                float(self.metric_column("delay").min()),
                float(self.metric_column("delay").max()),
            ),
        }
