"""The four benchmark parameter spaces of paper Table 1, verbatim.

Source1/Target1 tune 12 parameters of the small MAC design; Source2 tunes
9 parameters of the same small MAC and Target2 the same 9 on the larger
MAC.  Ranges are copied from Table 1 ("-" rows excluded per benchmark).
The paper's ``max_density`` (placement bin cap) and ``max_Density`` (area
utilization) are distinct knobs; see DESIGN.md §9 for the naming.
"""

from __future__ import annotations

from ..space.parameters import (
    BoolParameter,
    EnumParameter,
    FloatParameter,
    IntParameter,
)
from ..space.space import ParameterSpace

_FLOW_EFFORT = ("standard", "express", "extreme")
_CONG_EFFORT = ("AUTO", "MEDIUM", "HIGH")
_TIMING_EFFORT = ("medium", "high")


def source1_space() -> ParameterSpace:
    """Source1: 12 parameters of the small MAC (Table 1, columns 2-3)."""
    return ParameterSpace((
        FloatParameter("freq", 950.0, 1050.0),
        FloatParameter("place_uncertainty", 50.0, 200.0),
        EnumParameter("flow_effort", _FLOW_EFFORT),
        BoolParameter("uniform_density"),
        EnumParameter("cong_effort", _CONG_EFFORT),
        FloatParameter("max_density_place", 0.65, 0.90),
        FloatParameter("max_length", 160.0, 310.0),
        FloatParameter("max_density_util", 0.65, 0.90),
        FloatParameter("max_transition", 0.19, 0.34),
        FloatParameter("max_capacitance", 0.08, 0.13),
        IntParameter("max_fanout", 25, 50),
        FloatParameter("max_allowed_delay", 0.00, 0.25),
    ))


def target1_space() -> ParameterSpace:
    """Target1: 12 parameters of the small MAC (Table 1, columns 4-5)."""
    return ParameterSpace((
        FloatParameter("freq", 1000.0, 1300.0),
        FloatParameter("place_uncertainty", 20.0, 100.0),
        EnumParameter("flow_effort", _FLOW_EFFORT),
        BoolParameter("uniform_density"),
        EnumParameter("cong_effort", _CONG_EFFORT),
        FloatParameter("max_density_place", 0.65, 0.90),
        FloatParameter("max_length", 160.0, 300.0),
        FloatParameter("max_density_util", 0.65, 0.90),
        FloatParameter("max_transition", 0.10, 0.35),
        FloatParameter("max_capacitance", 0.08, 0.20),
        IntParameter("max_fanout", 25, 50),
        FloatParameter("max_allowed_delay", 0.00, 0.25),
    ))


def source2_space() -> ParameterSpace:
    """Source2: 9 parameters of the small MAC (Table 1, columns 6-7)."""
    return ParameterSpace((
        FloatParameter("place_rcfactor", 1.00, 1.30),
        EnumParameter("flow_effort", _FLOW_EFFORT),
        EnumParameter("timing_effort", _TIMING_EFFORT),
        BoolParameter("clock_power_driven"),
        FloatParameter("max_length", 250.0, 350.0),
        FloatParameter("max_density_util", 0.50, 1.00),
        FloatParameter("max_capacitance", 0.07, 0.12),
        IntParameter("max_fanout", 25, 40),
        FloatParameter("max_allowed_delay", 0.06, 0.12),
    ))


def target2_space() -> ParameterSpace:
    """Target2: 9 parameters of the large MAC (Table 1, columns 8-9)."""
    return ParameterSpace((
        FloatParameter("place_rcfactor", 1.00, 1.30),
        EnumParameter("flow_effort", _FLOW_EFFORT),
        EnumParameter("timing_effort", _TIMING_EFFORT),
        BoolParameter("clock_power_driven"),
        FloatParameter("max_length", 250.0, 350.0),
        FloatParameter("max_density_util", 0.50, 1.00),
        FloatParameter("max_capacitance", 0.05, 0.15),
        IntParameter("max_fanout", 25, 39),
        FloatParameter("max_allowed_delay", 0.00, 0.12),
    ))


#: Paper pool sizes per benchmark (Table 1 / Section 4.1).
PAPER_POOL_SIZES = {
    "source1": 5000,
    "target1": 5000,
    "source2": 1440,
    "target2": 727,
}

#: Space factory per benchmark name.
SPACES = {
    "source1": source1_space,
    "target1": target1_space,
    "source2": source2_space,
    "target2": target2_space,
}

#: Which design each benchmark runs on ("small" or "large" MAC).
BENCHMARK_DESIGN = {
    "source1": "small",
    "target1": "small",
    "source2": "small",
    "target2": "large",
}
