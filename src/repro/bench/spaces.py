"""Benchmark parameter spaces: paper Table 1 plus the cross-design set.

Source1/Target1 tune 12 parameters of the small MAC design; Source2 tunes
9 parameters of the same small MAC and Target2 the same 9 on the larger
MAC.  Ranges are copied from Table 1 ("-" rows excluded per benchmark).
The paper's ``max_density`` (placement bin cap) and ``max_Density`` (area
utilization) are distinct knobs; see DESIGN.md §9 for the naming.

The cross-design benchmarks (DESIGN.md §14) extend the matrix beyond
the MAC family: the *fabric* knob set (placement/congestion-centric,
8 knobs) is shared by Source3 (small MAC) and Fabric1 (structured-ASIC
fabric) so MAC→fabric transfer sees identical columns over different
response surfaces, and the *cpu* knob set (timing/DRV-centric, 9 knobs)
is shared by Cpu1/Cpu2 (small→large CPU core, different ``freq`` ranges
exactly as Table 1 varies ranges per benchmark) and Fabric2 (the fabric
design over the cpu knobs — the negative-transfer control source).
Frequency ranges bracket each design's measured achievable speed.
"""

from __future__ import annotations

from ..space.parameters import (
    BoolParameter,
    EnumParameter,
    FloatParameter,
    IntParameter,
)
from ..space.space import ParameterSpace

_FLOW_EFFORT = ("standard", "express", "extreme")
_CONG_EFFORT = ("AUTO", "MEDIUM", "HIGH")
_TIMING_EFFORT = ("medium", "high")


def source1_space() -> ParameterSpace:
    """Source1: 12 parameters of the small MAC (Table 1, columns 2-3)."""
    return ParameterSpace((
        FloatParameter("freq", 950.0, 1050.0),
        FloatParameter("place_uncertainty", 50.0, 200.0),
        EnumParameter("flow_effort", _FLOW_EFFORT),
        BoolParameter("uniform_density"),
        EnumParameter("cong_effort", _CONG_EFFORT),
        FloatParameter("max_density_place", 0.65, 0.90),
        FloatParameter("max_length", 160.0, 310.0),
        FloatParameter("max_density_util", 0.65, 0.90),
        FloatParameter("max_transition", 0.19, 0.34),
        FloatParameter("max_capacitance", 0.08, 0.13),
        IntParameter("max_fanout", 25, 50),
        FloatParameter("max_allowed_delay", 0.00, 0.25),
    ))


def target1_space() -> ParameterSpace:
    """Target1: 12 parameters of the small MAC (Table 1, columns 4-5)."""
    return ParameterSpace((
        FloatParameter("freq", 1000.0, 1300.0),
        FloatParameter("place_uncertainty", 20.0, 100.0),
        EnumParameter("flow_effort", _FLOW_EFFORT),
        BoolParameter("uniform_density"),
        EnumParameter("cong_effort", _CONG_EFFORT),
        FloatParameter("max_density_place", 0.65, 0.90),
        FloatParameter("max_length", 160.0, 300.0),
        FloatParameter("max_density_util", 0.65, 0.90),
        FloatParameter("max_transition", 0.10, 0.35),
        FloatParameter("max_capacitance", 0.08, 0.20),
        IntParameter("max_fanout", 25, 50),
        FloatParameter("max_allowed_delay", 0.00, 0.25),
    ))


def source2_space() -> ParameterSpace:
    """Source2: 9 parameters of the small MAC (Table 1, columns 6-7)."""
    return ParameterSpace((
        FloatParameter("place_rcfactor", 1.00, 1.30),
        EnumParameter("flow_effort", _FLOW_EFFORT),
        EnumParameter("timing_effort", _TIMING_EFFORT),
        BoolParameter("clock_power_driven"),
        FloatParameter("max_length", 250.0, 350.0),
        FloatParameter("max_density_util", 0.50, 1.00),
        FloatParameter("max_capacitance", 0.07, 0.12),
        IntParameter("max_fanout", 25, 40),
        FloatParameter("max_allowed_delay", 0.06, 0.12),
    ))


def target2_space() -> ParameterSpace:
    """Target2: 9 parameters of the large MAC (Table 1, columns 8-9)."""
    return ParameterSpace((
        FloatParameter("place_rcfactor", 1.00, 1.30),
        EnumParameter("flow_effort", _FLOW_EFFORT),
        EnumParameter("timing_effort", _TIMING_EFFORT),
        BoolParameter("clock_power_driven"),
        FloatParameter("max_length", 250.0, 350.0),
        FloatParameter("max_density_util", 0.50, 1.00),
        FloatParameter("max_capacitance", 0.05, 0.15),
        IntParameter("max_fanout", 25, 39),
        FloatParameter("max_allowed_delay", 0.00, 0.12),
    ))


def _fabric_knob_space(freq_lo: float, freq_hi: float) -> ParameterSpace:
    """The shared fabric knob set (8 placement/congestion knobs)."""
    return ParameterSpace((
        FloatParameter("freq", freq_lo, freq_hi),
        EnumParameter("flow_effort", _FLOW_EFFORT),
        EnumParameter("cong_effort", _CONG_EFFORT),
        BoolParameter("uniform_density"),
        FloatParameter("max_density_place", 0.65, 0.90),
        FloatParameter("max_density_util", 0.50, 0.95),
        FloatParameter("max_length", 120.0, 300.0),
        FloatParameter("place_uncertainty", 20.0, 150.0),
    ))


def _cpu_knob_space(freq_lo: float, freq_hi: float) -> ParameterSpace:
    """The shared cpu knob set (9 timing/DRV knobs)."""
    return ParameterSpace((
        FloatParameter("freq", freq_lo, freq_hi),
        FloatParameter("place_uncertainty", 20.0, 150.0),
        EnumParameter("flow_effort", _FLOW_EFFORT),
        EnumParameter("timing_effort", _TIMING_EFFORT),
        BoolParameter("clock_power_driven"),
        FloatParameter("max_transition", 0.10, 0.35),
        FloatParameter("max_capacitance", 0.05, 0.20),
        IntParameter("max_fanout", 20, 50),
        FloatParameter("max_allowed_delay", 0.00, 0.25),
    ))


def source3_space() -> ParameterSpace:
    """Source3: the fabric knob set on the small MAC (its freq range)."""
    return _fabric_knob_space(950.0, 1050.0)


def fabric1_space() -> ParameterSpace:
    """Fabric1: the fabric knob set on the small fabric (fast design)."""
    return _fabric_knob_space(1500.0, 2100.0)


def fabric2_space() -> ParameterSpace:
    """Fabric2: the cpu knob set on the small fabric (negative-transfer
    control source for fabric→CPU)."""
    return _cpu_knob_space(1500.0, 2100.0)


def cpu1_space() -> ParameterSpace:
    """Cpu1: the cpu knob set on the small CPU core."""
    return _cpu_knob_space(1000.0, 1350.0)


def cpu2_space() -> ParameterSpace:
    """Cpu2: the same 9 cpu knobs on the large CPU core (slower design,
    lower freq range — same-knobs/different-ranges as Table 1)."""
    return _cpu_knob_space(420.0, 570.0)


#: Paper pool sizes per benchmark (Table 1 / Section 4.1).
PAPER_POOL_SIZES = {
    "source1": 5000,
    "target1": 5000,
    "source2": 1440,
    "target2": 727,
}

#: Pool sizes of the cross-design benchmarks (chosen so cold builds
#: stay in the tens of seconds at reduced scale, like the paper set).
EXTRA_POOL_SIZES = {
    "source3": 1200,
    "fabric1": 900,
    "fabric2": 900,
    "cpu1": 900,
    "cpu2": 800,
}

#: Default pool size per benchmark (paper tables keep paper sizes).
POOL_SIZES = {**PAPER_POOL_SIZES, **EXTRA_POOL_SIZES}

#: Space factory per benchmark name.
SPACES = {
    "source1": source1_space,
    "target1": target1_space,
    "source2": source2_space,
    "target2": target2_space,
    "source3": source3_space,
    "fabric1": fabric1_space,
    "fabric2": fabric2_space,
    "cpu1": cpu1_space,
    "cpu2": cpu2_space,
}

#: Which design each benchmark runs on (canonical family-prefixed
#: names; the design-family registry resolves them to specs).
BENCHMARK_DESIGN = {
    "source1": "mac_small",
    "target1": "mac_small",
    "source2": "mac_small",
    "target2": "mac_large",
    "source3": "mac_small",
    "fabric1": "fabric_small",
    "fabric2": "fabric_small",
    "cpu1": "cpu_small",
    "cpu2": "cpu_large",
}
