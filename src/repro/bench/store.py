"""Crash-safe benchmark cache store.

The offline QoR tables (``.npz`` files under the cache directory) are a
shared hot path: every ``tune``/``generate``/scenario run loads them, and
concurrent workers may build them simultaneously.  A torn in-place write
(power loss, SIGKILL, full disk) used to leave a truncated zip behind that
poisoned the cache forever — every later ``np.load`` raised ``BadZipFile``.

This module makes the store impossible to poison:

- **Atomic writes.**  Tables are written to a same-directory temp file,
  fsync'd, then ``os.replace``'d into place; readers can never observe a
  half-written file.
- **Integrity verification on load.**  Every load checks zip structure and
  a per-file SHA-256 recorded in a small JSON manifest
  (``manifest.json``); torn, garbage, or silently-modified files are
  detected before their arrays are trusted.
- **Self-healing.**  A corrupt entry is logged, moved into a
  ``quarantine/`` subdirectory, and the caller regenerates — corruption
  never raises out of :func:`~repro.bench.generate.generate_benchmark`.
- **Cross-process locking.**  ``fcntl`` advisory locks serialize builders
  of the same table, so N concurrent generators produce exactly one build
  while the rest wait and load the winner's file.
- **Garbage collection.**  Tables from stale ``CACHE_VERSION``
  generations and abandoned temp files are swept.

Layout of the cache directory::

    .cache/benchmarks/
        manifest.json                     integrity manifest (see below)
        <bench>-<scale>-n<N>-v<V>.npz     one table per benchmark config
        <bench>-...-v<V>.npz.lock         advisory lock files (empty)
        .tmp-*.npz                        in-flight atomic writes
        quarantine/                       corrupt files kept for autopsy

Manifest format (``manifest.json``)::

    {
      "format": 1,
      "entries": {
        "target2-reduced-n727-v15.npz": {
          "sha256": "…hex…",
          "size": 25963,
          "builds": 1,
          "created": "2026-08-05T12:34:56+00:00"
        }
      }
    }

``builds`` counts how many times the entry was (re)built — under correct
locking, concurrent generators leave it at 1.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import logging
import os
import re
import tempfile
import time
import zipfile
import zlib
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

try:  # advisory locking is POSIX-only; degrade gracefully elsewhere
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]

log = logging.getLogger(__name__)

#: Name of the integrity manifest inside the cache directory.
MANIFEST_NAME = "manifest.json"

#: Subdirectory corrupt files are moved into instead of being trusted.
QUARANTINE_DIR = "quarantine"

#: Prefix of in-flight atomic-write temp files (dot: hidden from globs).
TMP_PREFIX = ".tmp-"

#: Abandoned temp files older than this many seconds are swept.
TMP_MAX_AGE_S = 600.0

_MANIFEST_FORMAT = 1
_VERSION_RE = re.compile(r"-v(\d+)\.npz$")

#: Exceptions ``np.load`` raises on a damaged ``.npz``.
_LOAD_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    ValueError,
    KeyError,
    EOFError,
    OSError,
)


def default_cache_dir() -> Path:
    """Directory for cached benchmark tables.

    Honours the ``PPATUNER_CACHE`` environment variable; defaults to
    ``<repo>/.cache/benchmarks`` (see :func:`repro.env.bench_cache_dir`).
    """
    from .. import env

    return env.bench_cache_dir()


class CacheCorruptionError(Exception):
    """A cache file failed structural or checksum verification."""


@dataclass(frozen=True)
class VerifyReport:
    """Outcome of verifying one cache file.

    Attributes:
        filename: Cache file name (relative to the store root).
        status: ``"ok"``, ``"quarantined"``, ``"stale"`` or
            ``"swept-tmp"``.
        detail: Human-readable explanation.
    """

    filename: str
    status: str
    detail: str = ""


def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with path.open("rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a rename survives power loss (best effort)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


def file_cache_version(filename: str) -> int | None:
    """Parse the ``-v<N>.npz`` generation suffix from a cache file name."""
    m = _VERSION_RE.search(filename)
    return int(m.group(1)) if m else None


class BenchmarkStore:
    """Crash-safe, concurrency-safe store for benchmark ``.npz`` tables.

    All public methods are safe to call concurrently from multiple
    processes sharing the same cache directory.
    """

    def __init__(self, root: Path | str | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    # ------------------------------------------------------------------
    # locking

    @contextlib.contextmanager
    def lock(self, filename: str) -> Iterator[None]:
        """Exclusive cross-process advisory lock for one cache entry.

        Blocks until the lock is free.  A no-op where ``fcntl`` is
        unavailable.
        """
        yield from self._flock(self.root / f"{filename}.lock")

    @contextlib.contextmanager
    def _manifest_lock(self) -> Iterator[None]:
        yield from self._flock(self.root / ".manifest.lock")

    def _flock(self, lock_path: Path) -> Iterator[None]:
        if fcntl is None:  # pragma: no cover - non-POSIX platform
            yield
            return
        self.root.mkdir(parents=True, exist_ok=True)
        with lock_path.open("a") as fh:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------------
    # manifest

    def _read_manifest(self) -> dict:
        path = self.root / MANIFEST_NAME
        try:
            manifest = json.loads(path.read_text())
        except FileNotFoundError:
            return {"format": _MANIFEST_FORMAT, "entries": {}}
        except (OSError, json.JSONDecodeError) as exc:
            log.warning("cache manifest %s unreadable (%s); resetting",
                        path, exc)
            return {"format": _MANIFEST_FORMAT, "entries": {}}
        if not isinstance(manifest.get("entries"), dict):
            return {"format": _MANIFEST_FORMAT, "entries": {}}
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=TMP_PREFIX, suffix=".json", dir=self.root
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(manifest, fh, indent=1, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.root / MANIFEST_NAME)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        _fsync_dir(self.root)

    def _update_manifest(self, filename: str, entry: dict | None) -> None:
        """Set (or, with ``entry=None``, drop) one manifest record."""
        with self._manifest_lock():
            manifest = self._read_manifest()
            if entry is None:
                manifest["entries"].pop(filename, None)
            else:
                manifest["entries"][filename] = entry
            self._write_manifest(manifest)

    def manifest_entry(self, filename: str) -> dict | None:
        """The manifest record for one cache file, if any."""
        return self._read_manifest()["entries"].get(filename)

    # ------------------------------------------------------------------
    # save / load

    def save(self, filename: str, arrays: Mapping[str, np.ndarray]) -> Path:
        """Atomically write ``arrays`` as ``<root>/<filename>``.

        The file is written to a same-directory temp file, fsync'd, and
        renamed into place, then its SHA-256 is recorded in the manifest.

        Returns:
            The final file path.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        target = self.root / filename
        fd, tmp = tempfile.mkstemp(
            prefix=TMP_PREFIX, suffix=".npz", dir=self.root
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, **arrays)
                fh.flush()
                os.fsync(fh.fileno())
            digest = _sha256(Path(tmp))
            size = os.path.getsize(tmp)
            os.replace(tmp, target)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        _fsync_dir(self.root)
        previous = self.manifest_entry(filename) or {}
        self._update_manifest(filename, {
            "sha256": digest,
            "size": size,
            "builds": int(previous.get("builds", 0)) + 1,
            "created": datetime.now(timezone.utc).isoformat(
                timespec="seconds"
            ),
        })
        return target

    def load(
        self,
        filename: str,
        required: tuple[str, ...] = (),
    ) -> dict[str, np.ndarray] | None:
        """Load and verify one cache entry.

        Verification: zip structure, SHA-256 against the manifest (when
        an entry exists — unmanifested legacy files fall back to the
        structural check), a full decompressing read, and presence of the
        ``required`` array keys.  Any failure quarantines the file and
        returns ``None`` so the caller regenerates; corruption never
        propagates as an exception.

        Returns:
            The arrays, or ``None`` if the file is absent or was corrupt.
        """
        path = self.root / filename
        if not path.exists():
            return None
        try:
            self._check_integrity(path, filename)
            with np.load(path, allow_pickle=False) as data:
                missing = set(required) - set(data.files)
                if missing:
                    raise CacheCorruptionError(
                        f"missing arrays {sorted(missing)}"
                    )
                return {key: data[key] for key in data.files}
        except CacheCorruptionError as exc:
            self._quarantine(filename, str(exc))
            return None
        except _LOAD_ERRORS as exc:
            self._quarantine(filename, f"{type(exc).__name__}: {exc}")
            return None

    def _check_integrity(self, path: Path, filename: str) -> None:
        if not zipfile.is_zipfile(path):
            raise CacheCorruptionError("not a valid zip archive")
        entry = self.manifest_entry(filename)
        if entry and "sha256" in entry:
            actual = _sha256(path)
            if actual != entry["sha256"]:
                raise CacheCorruptionError(
                    f"checksum mismatch (manifest {entry['sha256'][:12]}…,"
                    f" file {actual[:12]}…)"
                )

    def _quarantine(self, filename: str, reason: str) -> None:
        """Move a corrupt file out of the way and forget its manifest."""
        src = self.root / filename
        dest_dir = self.root / QUARANTINE_DIR
        log.warning(
            "benchmark cache entry %s is corrupt (%s); "
            "quarantining to %s and regenerating", src, reason, dest_dir,
        )
        try:
            dest_dir.mkdir(parents=True, exist_ok=True)
            os.replace(src, dest_dir / filename)
        except OSError:
            with contextlib.suppress(OSError):
                src.unlink()
        self._update_manifest(filename, None)

    # ------------------------------------------------------------------
    # maintenance

    def _tables(self) -> list[Path]:
        """Committed cache tables — in-flight ``.tmp-*`` files excluded
        (``pathlib`` globs match dotfiles)."""
        return sorted(
            p for p in self.root.glob("*.npz")
            if not p.name.startswith(TMP_PREFIX)
        )

    def gc_stale(self, current_version: int) -> list[str]:
        """Delete tables from cache generations other than the current.

        Also sweeps abandoned atomic-write temp files older than
        :data:`TMP_MAX_AGE_S`.

        Returns:
            The removed file names.
        """
        removed: list[str] = []
        if not self.root.is_dir():
            return removed
        for path in self._tables():
            version = file_cache_version(path.name)
            if version is None or version == current_version:
                continue
            with contextlib.suppress(OSError):
                path.unlink()
                removed.append(path.name)
                self._update_manifest(path.name, None)
            lock = self.root / f"{path.name}.lock"
            with contextlib.suppress(OSError):
                lock.unlink()
        removed.extend(self._sweep_tmp())
        if removed:
            log.info("cache gc removed %d stale file(s)", len(removed))
        return removed

    def _sweep_tmp(self) -> list[str]:
        swept: list[str] = []
        cutoff = time.time() - TMP_MAX_AGE_S
        for path in self.root.glob(f"{TMP_PREFIX}*"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    swept.append(path.name)
            except OSError:  # pragma: no cover - concurrent removal
                continue
        return swept

    def verify(self, current_version: int | None = None) -> list[VerifyReport]:
        """Verify every cache entry, healing what it can.

        Corrupt files are quarantined (their tables regenerate on next
        use); when ``current_version`` is given, stale generations are
        garbage-collected; abandoned temp files are swept.

        Returns:
            One :class:`VerifyReport` per examined or removed file.
        """
        reports: list[VerifyReport] = []
        if not self.root.is_dir():
            return reports
        if current_version is not None:
            reports.extend(
                VerifyReport(name, "stale", "old cache generation")
                for name in self.gc_stale(current_version)
                if name.endswith(".npz")
            )
        else:
            reports.extend(
                VerifyReport(name, "swept-tmp", "abandoned temp file")
                for name in self._sweep_tmp()
            )
        for path in self._tables():
            if self.load(path.name) is None:
                reports.append(VerifyReport(
                    path.name, "quarantined",
                    f"corrupt; moved to {QUARANTINE_DIR}/",
                ))
            else:
                reports.append(VerifyReport(path.name, "ok"))
        return reports

    def clear(self) -> int:
        """Remove every cache artifact (tables, manifest, locks, temp
        files, quarantine).

        Returns:
            The number of files removed.
        """
        if not self.root.is_dir():
            return 0
        count = 0
        patterns = ("*.npz", "*.npz.lock", f"{TMP_PREFIX}*",
                    MANIFEST_NAME, ".manifest.lock")
        for pattern in patterns:
            for path in self.root.glob(pattern):
                with contextlib.suppress(OSError):
                    path.unlink()
                    count += 1
        quarantine = self.root / QUARANTINE_DIR
        if quarantine.is_dir():
            for path in quarantine.iterdir():
                with contextlib.suppress(OSError):
                    path.unlink()
                    count += 1
            with contextlib.suppress(OSError):
                quarantine.rmdir()
        return count

    def info(self) -> dict[str, object]:
        """Summary of the cache contents (feeds ``repro cache info``)."""
        entries: list[dict[str, object]] = []
        total = 0
        manifest = self._read_manifest()["entries"]
        if self.root.is_dir():
            for path in self._tables():
                size = path.stat().st_size
                total += size
                record = manifest.get(path.name, {})
                entries.append({
                    "filename": path.name,
                    "size": size,
                    "version": file_cache_version(path.name),
                    "manifested": path.name in manifest,
                    "builds": record.get("builds"),
                })
        quarantined = (
            sorted(p.name for p in (self.root / QUARANTINE_DIR).glob("*"))
            if (self.root / QUARANTINE_DIR).is_dir() else []
        )
        return {
            "root": str(self.root),
            "n_files": len(entries),
            "total_bytes": total,
            "entries": entries,
            "quarantined": quarantined,
        }
