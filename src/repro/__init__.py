"""PPATuner reproduction (DAC 2022).

Pareto-driven physical-design tool parameter auto-tuning via Gaussian
process transfer learning, plus every substrate the paper depends on:
a simulated PD flow, offline benchmarks, GP/transfer-GP models, Pareto
metrics, the four baseline tuners, the parallel experiment runner, the
structured observability layer, the fault-tolerant evaluation layer
(retries, circuit breaking, deterministic fault injection), and the
resumable ask/tell tuning service (``repro serve``).

Quickstart::

    from repro import PPATuner, PPATunerConfig, PoolOracle
    from repro.bench import generate_benchmark

    target = generate_benchmark("target2")
    oracle = PoolOracle(target.objectives(("power", "delay")))
    result = PPATuner(PPATunerConfig()).tune(target.X, oracle)

Traced run and exact replay::

    from repro import TraceRecorder
    from repro.obs import JsonlSink, replay_trace

    rec = TraceRecorder(sinks=[JsonlSink("run.jsonl")])
    PPATuner(PPATunerConfig(), recorder=rec).tune(target.X, oracle)
    rec.close()
    replay_trace("run.jsonl").to_result()   # no tool re-runs

The names in ``__all__`` are the stable public API; submodules load
lazily on first attribute access, so ``import repro`` stays cheap.
"""

from typing import TYPE_CHECKING

__version__ = "1.1.0"

#: Stable public API.  Everything else should be imported from its
#: submodule and may move between releases.
__all__ = [
    "Aspdac20Fist",
    "CopulaTransferTuner",
    "Dac19Recommender",
    "ExperimentRunner",
    "FaultInjectingOracle",
    "FaultPlan",
    "FaultPolicy",
    "FlowOracle",
    "GPRegressor",
    "GaussianCopula",
    "MetricsRegistry",
    "Mlcad19LcbBayesOpt",
    "NullRecorder",
    "Oracle",
    "PDFlow",
    "PPATuner",
    "PPATunerConfig",
    "PoolOracle",
    "QoRReport",
    "RandomSearchTuner",
    "RemoteTuner",
    "ResilientOracle",
    "RunSpec",
    "ServiceClient",
    "Tcad19ActiveLearner",
    "ToolParameters",
    "TraceRecorder",
    "TransferGP",
    "TransferKernel",
    "Tuner",
    "TuningResult",
    "TuningService",
    "TuningSession",
    "adrs",
    "copula_seed_indices",
    "hypervolume",
    "hypervolume_error",
    "pareto_front",
    "replay_trace",
    "__version__",
]

#: Public name -> defining submodule (PEP 562 lazy imports).
_EXPORTS = {
    "Aspdac20Fist": "baselines",
    "CopulaTransferTuner": "baselines",
    "Dac19Recommender": "baselines",
    "Mlcad19LcbBayesOpt": "baselines",
    "RandomSearchTuner": "baselines",
    "Tcad19ActiveLearner": "baselines",
    "FlowOracle": "core",
    "Oracle": "core",
    "PPATuner": "core",
    "PPATunerConfig": "core",
    "PoolOracle": "core",
    "Tuner": "core",
    "TuningResult": "core",
    "TuningSession": "core",
    "GaussianCopula": "copula",
    "copula_seed_indices": "copula",
    "RemoteTuner": "service",
    "ServiceClient": "service",
    "TuningService": "service",
    "GPRegressor": "gp",
    "TransferGP": "gp",
    "TransferKernel": "gp",
    "MetricsRegistry": "obs",
    "NullRecorder": "obs",
    "TraceRecorder": "obs",
    "replay_trace": "obs",
    "adrs": "pareto",
    "hypervolume": "pareto",
    "hypervolume_error": "pareto",
    "pareto_front": "pareto",
    "PDFlow": "pdtool",
    "QoRReport": "pdtool",
    "ToolParameters": "pdtool",
    "ExperimentRunner": "runner",
    "RunSpec": "runner",
    "FaultInjectingOracle": "reliability",
    "FaultPlan": "reliability",
    "FaultPolicy": "reliability",
    "ResilientOracle": "reliability",
}

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .baselines import (
        Aspdac20Fist,
        CopulaTransferTuner,
        Dac19Recommender,
        Mlcad19LcbBayesOpt,
        RandomSearchTuner,
        Tcad19ActiveLearner,
    )
    from .copula import GaussianCopula, copula_seed_indices
    from .core import (
        FlowOracle,
        Oracle,
        PPATuner,
        PPATunerConfig,
        PoolOracle,
        Tuner,
        TuningResult,
        TuningSession,
    )
    from .gp import GPRegressor, TransferGP, TransferKernel
    from .obs import (
        MetricsRegistry,
        NullRecorder,
        TraceRecorder,
        replay_trace,
    )
    from .pareto import adrs, hypervolume, hypervolume_error, pareto_front
    from .pdtool import PDFlow, QoRReport, ToolParameters
    from .reliability import (
        FaultInjectingOracle,
        FaultPlan,
        FaultPolicy,
        ResilientOracle,
    )
    from .runner import ExperimentRunner, RunSpec
    from .service import RemoteTuner, ServiceClient, TuningService


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache: next access skips __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
