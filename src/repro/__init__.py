"""PPATuner reproduction (DAC 2022).

Pareto-driven physical-design tool parameter auto-tuning via Gaussian
process transfer learning, plus every substrate the paper depends on:
a simulated PD flow, offline benchmarks, GP/transfer-GP models, Pareto
metrics, and the four baseline tuners.

Quickstart::

    from repro import PPATuner, PPATunerConfig, PoolOracle
    from repro.bench import generate_benchmark

    target = generate_benchmark("target2")
    oracle = PoolOracle(target.objectives(("power", "delay")))
    result = PPATuner(PPATunerConfig()).tune(target.X, oracle)
"""

from .baselines import (
    Aspdac20Fist,
    Dac19Recommender,
    Mlcad19LcbBayesOpt,
    RandomSearchTuner,
    Tcad19ActiveLearner,
)
from .core import (
    FlowOracle,
    PPATuner,
    PPATunerConfig,
    PoolOracle,
    TuningResult,
)
from .gp import GPRegressor, TransferGP, TransferKernel
from .pareto import adrs, hypervolume, hypervolume_error, pareto_front
from .pdtool import PDFlow, QoRReport, ToolParameters

__version__ = "1.0.0"

__all__ = [
    "Aspdac20Fist",
    "Dac19Recommender",
    "FlowOracle",
    "GPRegressor",
    "Mlcad19LcbBayesOpt",
    "PDFlow",
    "PPATuner",
    "PPATunerConfig",
    "PoolOracle",
    "QoRReport",
    "RandomSearchTuner",
    "Tcad19ActiveLearner",
    "ToolParameters",
    "TransferGP",
    "TransferKernel",
    "TuningResult",
    "adrs",
    "hypervolume",
    "hypervolume_error",
    "pareto_front",
    "__version__",
]
