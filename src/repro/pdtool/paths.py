"""Critical-path extraction and timing reports.

Complements the vectorized STA with the query every timing engineer
actually runs: *which* paths are critical.  Paths are traced backwards
from the worst endpoints through each cell's worst-arrival fanin, giving
the classic single-worst-path-per-endpoint report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .netlist import CompiledNetlist
from .sta import TimingResult


@dataclass(frozen=True)
class TimingPath:
    """One reported timing path.

    Attributes:
        endpoint: Index of the capturing sequential cell.
        cells: Cell indices along the path, launch to capture (the
            endpoint itself excluded).
        arrival: Data arrival time at the endpoint in ps.
        slack: Endpoint slack in ps (period minus arrival minus margins,
            as computed by the STA pass).
    """

    endpoint: int
    cells: tuple[int, ...]
    arrival: float
    slack: float

    @property
    def depth(self) -> int:
        """Logic depth of the path (cells traversed)."""
        return len(self.cells)


def extract_critical_paths(
    compiled: CompiledNetlist,
    timing: TimingResult,
    n_paths: int = 5,
) -> list[TimingPath]:
    """Report the worst path per endpoint, for the worst ``n_paths``
    endpoints.

    Args:
        compiled: Compiled netlist the timing result belongs to.
        timing: Result of ``analyze_timing``.
        n_paths: Number of endpoints reported.

    Returns:
        Paths sorted worst-first (largest arrival).
    """
    if n_paths < 1:
        raise ValueError("n_paths must be >= 1")
    endpoints = np.nonzero(compiled.is_seq)[0]
    if len(endpoints) == 0:
        return []
    order = np.argsort(-timing.data_arrival[endpoints])[:n_paths]
    global_margin = timing.critical_delay - float(
        timing.data_arrival[compiled.is_seq].max()
    ) if compiled.is_seq.any() else 0.0

    paths = []
    for ep in endpoints[order]:
        cells = _trace_back(compiled, timing, int(ep))
        arrival = float(timing.data_arrival[ep])
        paths.append(TimingPath(
            endpoint=int(ep),
            cells=tuple(cells),
            arrival=arrival,
            slack=float(timing.slack + (
                timing.critical_delay - global_margin - arrival
            )),
        ))
    return paths


def _worst_fanin(
    compiled: CompiledNetlist, timing: TimingResult, cell: int
) -> int | None:
    """Driver with the largest output arrival among ``cell``'s fanins."""
    lo, hi = compiled.fanin_ptr[cell], compiled.fanin_ptr[cell + 1]
    drivers = compiled.fanin_idx[lo:hi]
    real = drivers[drivers >= 0]
    if len(real) == 0:
        return None
    return int(real[np.argmax(timing.arrival[real])])

def _trace_back(
    compiled: CompiledNetlist, timing: TimingResult, endpoint: int
) -> list[int]:
    """Walk the worst-arrival chain from an endpoint to a startpoint."""
    cells: list[int] = []
    cursor = _worst_fanin(compiled, timing, endpoint)
    guard = compiled.n_cells + 1
    while cursor is not None and guard:
        cells.append(cursor)
        if compiled.is_seq[cursor]:
            break  # reached the launching register
        cursor = _worst_fanin(compiled, timing, cursor)
        guard -= 1
    cells.reverse()
    return cells


def format_path_report(
    compiled: CompiledNetlist, paths: list[TimingPath]
) -> str:
    """Human-readable multi-path timing report."""
    lines = []
    for rank, path in enumerate(paths, 1):
        lines.append(
            f"Path {rank}: endpoint U{path.endpoint} "
            f"arrival={path.arrival:.1f} ps "
            f"slack={path.slack:+.1f} ps depth={path.depth}"
        )
        for cell in path.cells:
            inst = compiled.netlist.instances[cell]
            lines.append(
                f"    {inst.name:<12s} {inst.cell.name:<12s} "
                f"arr={float(path_arrival(compiled, cell)):.1f}"
            )
    return "\n".join(lines)


#: Cache-free helper used by the report formatter.
def path_arrival(compiled: CompiledNetlist, cell: int) -> float:
    """Arrival of one cell from the last computed report context.

    The report formatter stores no timing state; this helper exists so
    tests can monkeypatch formatting without an STA pass.  It returns
    NaN when no context is installed.
    """
    timing = getattr(compiled, "_last_timing", None)
    if timing is None:
        return float("nan")
    return float(timing.arrival[cell])


def install_report_context(
    compiled: CompiledNetlist, timing: TimingResult
) -> None:
    """Attach ``timing`` to ``compiled`` for report formatting."""
    compiled._last_timing = timing  # type: ignore[attr-defined]
