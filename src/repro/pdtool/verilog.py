"""Structural Verilog export/import for gate-level netlists.

A real PD flow consumes and emits gate-level Verilog; this module writes
the simulator's :class:`~repro.pdtool.netlist.Netlist` as a synthesizable
structural module and reads the same subset back.  The supported subset
is deliberately strict (one module, library-cell instantiations with
named port connections, ``input``/``wire`` declarations), which keeps
round-trips loss-free and the parser honest.

Conventions:

- instance output nets are named ``n<id>``, primary inputs ``pi<k>``;
- cell input pins are ``A``, ``B``, ``C`` ... in fanin order, the output
  pin is ``Y`` (``Q`` for sequential cells);
- sequential cells get ``CK(clk)`` automatically.
"""

from __future__ import annotations

import re
from pathlib import Path

from .library import CellLibrary
from .netlist import PRIMARY_INPUT, Netlist

#: Pin names for instance inputs, in fanin order.
_PIN_NAMES = ("A", "B", "C", "D")


def _output_pin(is_sequential: bool) -> str:
    return "Q" if is_sequential else "Y"


def write_verilog(netlist: Netlist, path: str | Path) -> None:
    """Write ``netlist`` as a structural Verilog module.

    Args:
        netlist: The design to export.
        path: Output file path.
    """
    lines: list[str] = []
    n_pi = netlist.n_primary_inputs
    ports = ["clk"] + [f"pi{k}" for k in range(n_pi)]
    lines.append(f"module {netlist.name} (")
    lines.append("  " + ", ".join(ports))
    lines.append(");")
    lines.append("  input clk;")
    for k in range(n_pi):
        lines.append(f"  input pi{k};")
    for i in range(netlist.n_cells):
        lines.append(f"  wire n{i};")
    lines.append("")

    # Primary-input pins are consumed in instance order; each
    # PRIMARY_INPUT fanin takes the next pi index, which makes the
    # export deterministic and the import unambiguous.
    pi_cursor = 0
    for i, inst in enumerate(netlist.instances):
        conns = []
        for pin_idx, fanin in enumerate(inst.fanins):
            pin = _PIN_NAMES[pin_idx]
            if fanin == PRIMARY_INPUT:
                net = f"pi{pi_cursor}"
                pi_cursor += 1
            else:
                net = f"n{fanin}"
            conns.append(f".{pin}({net})")
        out_pin = _output_pin(inst.cell.is_sequential)
        conns.append(f".{out_pin}(n{i})")
        if inst.cell.is_sequential:
            conns.append(".CK(clk)")
        lines.append(
            f"  {inst.cell.name} {inst.name} ({', '.join(conns)});"
        )
    lines.append("endmodule")
    Path(path).write_text("\n".join(lines) + "\n")


_INSTANCE_RE = re.compile(
    r"^\s*(?P<cell>[A-Za-z_][\w]*)\s+(?P<name>[\w\\\[\]]+)\s*"
    r"\((?P<conns>.*)\)\s*;\s*$"
)
_CONN_RE = re.compile(r"\.(?P<pin>\w+)\s*\(\s*(?P<net>[\w\[\]]+)\s*\)")
_MODULE_RE = re.compile(r"^\s*module\s+(?P<name>\w+)")


class VerilogParseError(ValueError):
    """Raised when the input is outside the supported structural subset."""


def read_verilog(
    path: str | Path, library: CellLibrary | None = None
) -> Netlist:
    """Parse a structural Verilog file written by :func:`write_verilog`.

    Args:
        path: Input file.
        library: Cell library to resolve masters against.

    Returns:
        The reconstructed :class:`Netlist`.

    Raises:
        VerilogParseError: On unsupported constructs, unknown cells,
            undriven nets, or combinational cycles.
    """
    library = library or CellLibrary.default_7nm()
    text = Path(path).read_text()
    # Strip comments.
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"/\*.*?\*/", "", text, flags=re.DOTALL)

    module_name = None
    raw_instances: list[tuple[str, str, dict[str, str]]] = []
    n_pi = 0
    for statement in _statements(text):
        if statement.strip() in ("", ";"):
            continue
        m = _MODULE_RE.match(statement)
        if m:
            module_name = m.group("name")
            continue
        if re.match(r"^\s*(endmodule|wire |output )", statement):
            continue
        if re.match(r"^\s*input\s", statement):
            names = statement.split("input", 1)[1]
            n_pi += sum(
                1 for token in re.findall(r"\w+", names)
                if token.startswith("pi")
            )
            continue
        m = _INSTANCE_RE.match(statement)
        if m:
            conns = dict(
                (c.group("pin"), c.group("net"))
                for c in _CONN_RE.finditer(m.group("conns"))
            )
            raw_instances.append((m.group("cell"), m.group("name"), conns))
            continue
        if statement.strip():
            raise VerilogParseError(
                f"unsupported construct: {statement.strip()[:60]!r}"
            )
    if module_name is None:
        raise VerilogParseError("no module declaration found")

    # Map output nets to the producing raw-instance index.
    driver_of: dict[str, int] = {}
    for idx, (cell_name, _, conns) in enumerate(raw_instances):
        if cell_name not in library:
            raise VerilogParseError(f"unknown cell {cell_name!r}")
        out_pin = _output_pin(library.get(cell_name).is_sequential)
        if out_pin not in conns:
            raise VerilogParseError(
                f"instance {idx} missing output pin {out_pin}"
            )
        net = conns[out_pin]
        if net in driver_of:
            raise VerilogParseError(f"net {net!r} multiply driven")
        driver_of[net] = idx

    # Topologically order instances (inputs before users); sequential
    # cells break cycles like the simulator's levelizer.
    order = _toposort(raw_instances, driver_of, library)
    new_id = {old: new for new, old in enumerate(order)}

    netlist = Netlist(module_name, library)
    for _ in range(n_pi):
        netlist.add_input()
    for old_idx in order:
        cell_name, inst_name, conns = raw_instances[old_idx]
        cell = library.get(cell_name)
        fanins: list[int] = []
        for pin_idx in range(cell.n_inputs):
            pin = _PIN_NAMES[pin_idx]
            if pin not in conns:
                raise VerilogParseError(
                    f"instance {inst_name} missing pin {pin}"
                )
            net = conns[pin]
            if net.startswith("pi"):
                fanins.append(PRIMARY_INPUT)
            elif net in driver_of:
                fanins.append(new_id[driver_of[net]])
            else:
                raise VerilogParseError(f"undriven net {net!r}")
        netlist.add_cell(
            cell.function, fanins, drive=cell.drive, name=inst_name
        )
    netlist.validate()
    return netlist


def _statements(text: str):
    """Split Verilog text into statements (on ';' keeping headers)."""
    # Module headers span the port list; normalize whitespace first.
    text = re.sub(r"\s+", " ", text)
    for part in text.split(";"):
        yield part + ";"


def _toposort(raw_instances, driver_of, library: CellLibrary) -> list[int]:
    """Topological order of raw instance indices.

    The netlist model is append-only (fanins precede users), so *every*
    dependency — including a flip-flop's data input — must be orderable.
    Register feedback loops therefore parse as cycles and are rejected
    (the simulator's MAC generator models accumulate loops by shadow
    registers instead; see ``mac.py``).

    Raises:
        VerilogParseError: On any cyclic dependency.
    """
    n = len(raw_instances)
    deps: list[list[int]] = []
    for cell_name, _, conns in raw_instances:
        cell = library.get(cell_name)
        cell_deps = []
        for pin_idx in range(cell.n_inputs):
            net = conns.get(_PIN_NAMES[pin_idx], "")
            if net in driver_of:
                cell_deps.append(driver_of[net])
        deps.append(cell_deps)

    state = [0] * n  # 0=unvisited 1=visiting 2=done
    order: list[int] = []

    def visit(i: int) -> None:
        if state[i] == 2:
            return
        if state[i] == 1:
            raise VerilogParseError(
                "cyclic dependency (combinational cycle or register "
                "feedback loop) is not representable"
            )
        state[i] = 1
        for d in deps[i]:
            visit(d)
        state[i] = 2
        order.append(i)

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 10 * n + 100))
    try:
        for i in range(n):
            visit(i)
    finally:
        sys.setrecursionlimit(old_limit)
    return order
