"""Design-rule-violation (DRV) checking and repair model.

The DRV parameters of paper Table 1 (``max_transition``, ``max_capacitance``,
``max_fanout``, ``max_Length``) bound per-net electrical quality.  A real
tool repairs violations by buffering/splitting nets; each buffer costs area
and power but restores slew, and over-constraining (very tight limits)
floods the design with buffers — the classic DRV trade-off this model
reproduces.

All repairs are computed *virtually*: instead of mutating the netlist (too
slow inside a tuning loop), we compute per-driver violation counts, the
buffers needed, and the resulting effective loads/delays, returning flat
arrays the STA and power stages consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .library import CellLibrary
from .netlist import CompiledNetlist
from .params import ToolParameters
from .routing import RoutingResult

#: Wire capacitance per um on signal layers, in fF.
WIRE_CAP_PER_UM = 0.20
#: Wire resistance per um, in kOhm (7 nm lower-metal wires are resistive).
WIRE_RES_PER_UM = 0.010
#: Output slew is ~3x the driver RC time constant (10-90% ramp).
SLEW_RC_FACTOR = 3.0
#: Steiner sharing: a multi-sink net's tree is shorter than the sum of its
#: driver->sink paths.
_STEINER_FACTOR = 0.6


@dataclass
class DrvResult:
    """Output of DRV analysis/repair.

    Attributes:
        net_length: Per-driver routed net length in um (Steiner estimate).
        net_wire_cap: Per-driver wire capacitance in fF after repair.
        effective_load: Per-driver total load in fF after buffering (pin
            caps + wire cap, clamped by the repair).
        repair_delay: Per-driver extra delay in ps from inserted buffers.
        n_buffers: Total repair buffers inserted.
        n_violations: Nets violating at least one rule before repair.
        added_area: Buffer area in um^2.
        added_leakage: Buffer leakage in nW.
        added_cap: Buffer input capacitance added to the design in fF
            (contributes to switching power).
    """

    net_length: np.ndarray
    net_wire_cap: np.ndarray
    effective_load: np.ndarray
    repair_delay: np.ndarray
    n_buffers: int
    n_violations: int
    added_area: float
    added_leakage: float
    added_cap: float


def repair_drv(
    compiled: CompiledNetlist,
    routing: RoutingResult,
    params: ToolParameters,
    library: CellLibrary,
) -> DrvResult:
    """Check the four DRV rules and virtually repair violations.

    Args:
        compiled: Compiled netlist.
        routing: Routed edge lengths.
        params: Tool parameters carrying the DRV limits.
        library: Cell library (buffer characteristics).

    Returns:
        A :class:`DrvResult` with post-repair electrical state.
    """
    n = compiled.n_cells
    buf = library.variant("BUF", 4)

    # Per-driver routed net length: Steiner-shared sum of sink edges.
    net_length = np.zeros(n)
    drivers = compiled.fanin_idx
    valid = drivers >= 0
    np.add.at(net_length, drivers[valid], routing.routed_edge_length[valid])
    multi = compiled.fanout_count > 1
    net_length[multi] *= _STEINER_FACTOR

    pin_load = compiled.sink_load_cap()
    # place_rcfactor is the tool's RC-extraction derating knob; it scales
    # the estimated wire parasitics (both R, applied in STA, and C here).
    wire_cap = net_length * WIRE_CAP_PER_UM * params.place_rcfactor
    total_load = pin_load + wire_cap

    max_cap_ff = params.max_capacitance * 1000.0  # pF -> fF
    max_tran_ps = params.max_transition * 1000.0  # ns -> ps

    # Slew proxy: ramp time at the far sink — driver resistance plus the
    # full wire resistance into the total load.
    slew = SLEW_RC_FACTOR * (
        compiled.drive_res
        + WIRE_RES_PER_UM * net_length * params.place_rcfactor
    ) * total_load

    viol_cap = total_load > max_cap_ff
    viol_tran = slew > max_tran_ps
    viol_fanout = compiled.fanout_count > params.max_fanout
    viol_length = net_length > params.max_length
    any_viol = viol_cap | viol_tran | viol_fanout | viol_length

    # Structured repair, the way a real tool stages it:
    # 1. fanout splitting (a buffer tree over the sinks),
    # 2. length repeaters along the route,
    # 3. residual slew/cap buffers on what remains per segment.
    need_fanout = np.maximum(
        np.ceil(compiled.fanout_count / params.max_fanout) - 1, 0
    )
    need_length = np.maximum(
        np.ceil(net_length / max(params.max_length, 1e-9)) - 1, 0
    )
    segments = 1.0 + need_fanout + need_length
    seg_load = total_load / segments
    seg_res = (
        compiled.drive_res
        + WIRE_RES_PER_UM * net_length * params.place_rcfactor / segments
    )
    seg_slew = SLEW_RC_FACTOR * seg_res * seg_load
    need_tran = np.maximum(np.ceil(seg_slew / max_tran_ps) - 1, 0)
    need_cap = np.maximum(np.ceil(seg_load / max_cap_ff) - 1, 0)
    buffers = need_fanout + need_length + np.maximum(need_tran, need_cap)
    buffers = np.clip(buffers, 0, 24).astype(np.int64)
    buffers[~any_viol] = 0

    n_buffers = int(buffers.sum())
    n_violations = int(any_viol.sum())

    # Post-repair electrical state: a buffered net is split into
    # (buffers + 1) segments, so the driver sees ~1/(b+1) of the load, and
    # each buffer stage adds its own loaded delay.
    segments = buffers + 1.0
    effective_load = total_load / segments + np.where(
        buffers > 0, buf.input_cap, 0.0
    )
    stage_load = total_load / segments
    repair_delay = buffers * (
        buf.intrinsic_delay + buf.drive_res * stage_load
    )

    return DrvResult(
        net_length=net_length,
        net_wire_cap=wire_cap / segments,
        effective_load=effective_load,
        repair_delay=repair_delay,
        n_buffers=n_buffers,
        n_violations=n_violations,
        added_area=n_buffers * buf.area,
        added_leakage=n_buffers * buf.leakage,
        added_cap=n_buffers * buf.input_cap,
    )
