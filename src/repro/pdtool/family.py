"""Design-family registry: one protocol from spec to netlist to space.

Before this module, ``repro.bench.generate`` hardcoded a per-design
``if/elif`` over the two MAC specs, and the FIR/ALU/fabric/CPU
generators each had their own ad-hoc entry points.  The registry
unifies them: a :class:`DesignFamily` knows its designs, builds their
specs and netlists at either scale, names each design's default knob
space, and supplies the fixed base parameters its benchmarks assume —
so benchmark generation, the CLI, and the scenario matrix dispatch on
the *family token* (the first ``_``-separated token of a design name,
the same token :class:`~repro.pdtool.variation.VariationField` keys
systematic variation on) instead of growing more branches.

New families plug in with the decorator, mirroring the method registry
of :mod:`repro.experiments.scenarios`::

    @register_design_family("ring")
    class RingFamily:
        family = "ring"
        ...

Legacy design names (``"small"``/``"large"``, pre-registry MAC
shorthand) resolve through :func:`resolve_design` with a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from .cpu import (
    LARGE_CPU,
    PAPER_LARGE_CPU,
    PAPER_SMALL_CPU,
    SMALL_CPU,
    generate_cpu_netlist,
)
from .designs import (
    AluSpec,
    FirSpec,
    generate_alu_netlist,
    generate_fir_netlist,
)
from .fabric import (
    LARGE_FABRIC,
    PAPER_LARGE_FABRIC,
    PAPER_SMALL_FABRIC,
    SMALL_FABRIC,
    generate_fabric_netlist,
)
from .mac import (
    LARGE_MAC,
    PAPER_LARGE_MAC,
    PAPER_SMALL_MAC,
    SMALL_MAC,
    generate_mac_netlist,
)
from .netlist import Netlist

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from ..space.space import ParameterSpace

__all__ = [
    "DesignFamily",
    "design_family",
    "family_token",
    "register_design_family",
    "registered_design_families",
    "resolve_design",
]

#: Pre-registry design shorthand -> canonical family-prefixed name.
_LEGACY_DESIGNS = {"small": "mac_small", "large": "mac_large"}


@runtime_checkable
class DesignFamily(Protocol):
    """What a registered design family must provide.

    A family unifies the whole construction chain for its designs:
    spec (:meth:`spec`) -> netlist (:meth:`netlist`) -> default
    parameter space (:meth:`parameter_space`) -> golden table (the
    bench layer calls :meth:`netlist`/:meth:`base_params` when it
    builds tables through ``BenchmarkStore``).
    """

    #: The family token designs of this family are prefixed with.
    family: str

    def design_names(self) -> tuple[str, ...]:
        """Canonical design names this family can build, sorted."""
        ...

    def spec(self, design: str, full: bool | None = None) -> object:
        """The design's spec dataclass at the requested scale.

        Args:
            design: Canonical design name (e.g. ``"mac_small"``).
            full: Paper-scale when True, reduced when False; ``None``
                follows the ``PPATUNER_FULL`` environment convention.
        """
        ...

    def netlist(self, design: str, full: bool | None = None) -> Netlist:
        """Generate the design's gate-level netlist."""
        ...

    def parameter_space(self, design: str) -> "ParameterSpace":
        """The design's default Table-1-style knob space."""
        ...

    def base_params(self, design: str) -> dict[str, object]:
        """Fixed tool parameters for knobs the space does not tune."""
        ...


def _full_scale(full: bool | None) -> bool:
    if full is not None:
        return full
    from .. import env

    return env.full_scale()


class _SpecTableFamily:
    """Shared implementation: families defined by a spec table.

    Subclasses set :attr:`family`, :attr:`_designs` (design name ->
    ``(reduced_spec, paper_spec)``), :attr:`_generator`, and optionally
    :attr:`_base_params` / :attr:`_space_names` (design -> factory name
    in :mod:`repro.bench.spaces`, looked up lazily to keep ``pdtool``
    import-independent of the bench layer).
    """

    family: str = ""
    _designs: dict[str, tuple[object, object]] = {}
    _base_params: dict[str, dict[str, object]] = {}
    _space_names: dict[str, str] = {}

    def design_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._designs))

    def _lookup(self, design: str) -> tuple[object, object]:
        try:
            return self._designs[design]
        except KeyError:
            raise ValueError(
                f"unknown design {design!r} in family "
                f"{self.family!r}; known designs: "
                f"{', '.join(self.design_names())}"
            ) from None

    def spec(self, design: str, full: bool | None = None) -> object:
        reduced, paper = self._lookup(design)
        return paper if _full_scale(full) else reduced

    def netlist(self, design: str, full: bool | None = None) -> Netlist:
        return self._generate(self.spec(design, full))

    @staticmethod
    def _generate(spec: object) -> Netlist:
        raise NotImplementedError

    def parameter_space(self, design: str) -> "ParameterSpace":
        from ..bench import spaces as _spaces

        self._lookup(design)
        factory = getattr(
            _spaces,
            self._space_names.get(design, self._space_names[""]),
        )
        return factory()

    def base_params(self, design: str) -> dict[str, object]:
        self._lookup(design)
        return dict(self._base_params.get(design, {}))


#: Family token -> registered family instance.
_FAMILY_REGISTRY: dict[str, DesignFamily] = {}


def register_design_family(family: str):
    """Class decorator adding a design family to the registry.

    The class is instantiated once at registration and must satisfy the
    :class:`DesignFamily` protocol.  Re-registering a token replaces
    the previous entry (idempotent module reloads; tests can shadow and
    restore entries).

    Raises:
        TypeError: If the instance does not satisfy the protocol.
    """
    def decorate(cls):
        instance = cls()
        if not isinstance(instance, DesignFamily):
            raise TypeError(
                f"{cls.__name__} does not satisfy the DesignFamily "
                "protocol"
            )
        _FAMILY_REGISTRY[family] = instance
        return cls
    return decorate


def registered_design_families() -> tuple[str, ...]:
    """Registered family tokens, sorted."""
    return tuple(sorted(_FAMILY_REGISTRY))


def family_token(design: str) -> str:
    """The family token of a design name (first ``_`` token)."""
    return design.split("_")[0]


def resolve_design(design: str) -> str:
    """Canonicalize a design name, warning on legacy shorthand.

    ``"small"``/``"large"`` predate the family registry and mean the
    two MAC designs; new code should say ``"mac_small"``/``"mac_large"``.
    """
    canonical = _LEGACY_DESIGNS.get(design)
    if canonical is None:
        return design
    warnings.warn(
        f"design name {design!r} is deprecated; use {canonical!r}",
        DeprecationWarning,
        stacklevel=3,
    )
    return canonical


def design_family(design: str) -> DesignFamily:
    """Look up the registered family for a design (or family) name.

    Args:
        design: Canonical design name (``"fabric_small"``), a bare
            family token (``"fabric"``), or legacy MAC shorthand.

    Raises:
        ValueError: For an unregistered family, reporting the token
            parsed from the design name and listing every registered
            family.
    """
    token = family_token(resolve_design(design))
    try:
        return _FAMILY_REGISTRY[token]
    except KeyError:
        raise ValueError(
            f"unknown design family {token!r} (parsed from design "
            f"{design!r}); registered families: "
            f"{', '.join(registered_design_families())}"
        ) from None


@register_design_family("mac")
class MacFamily(_SpecTableFamily):
    """Multiply-accumulate datapaths (the paper's two benchmarks)."""

    family = "mac"
    _designs = {
        "mac_small": (SMALL_MAC, PAPER_SMALL_MAC),
        "mac_large": (LARGE_MAC, PAPER_LARGE_MAC),
    }
    # The larger MAC is a deeper, slower design: benchmarks that do not
    # tune ``freq`` must pin the clock near its achievable speed or the
    # timing knobs saturate (pre-registry DESIGN_BASE_PARAMS values,
    # preserved exactly so cached tables stay byte-identical).
    _base_params = {"mac_large": {"freq": 450.0}}
    _space_names = {"": "source1_space", "mac_large": "target2_space"}
    _generate = staticmethod(generate_mac_netlist)


@register_design_family("fir")
class FirFamily(_SpecTableFamily):
    """Transposed-form FIR filters (MAC-adjacent datapaths)."""

    family = "fir"
    _designs = {
        "fir_small": (FirSpec(taps=4, width=6, name="fir_small"),
                      FirSpec(taps=8, width=12, name="fir_small")),
        "fir_large": (FirSpec(taps=8, width=8, name="fir_large"),
                      FirSpec(taps=16, width=16, name="fir_large")),
    }
    _space_names = {"": "source1_space"}
    _generate = staticmethod(generate_fir_netlist)


@register_design_family("alu")
class AluFamily(_SpecTableFamily):
    """Small muxed ALU slices (control-flavoured)."""

    family = "alu"
    _designs = {
        "alu_small": (AluSpec(width=16, name="alu_small"),
                      AluSpec(width=48, name="alu_small")),
        "alu_large": (AluSpec(width=32, name="alu_large"),
                      AluSpec(width=96, name="alu_large")),
    }
    _space_names = {"": "cpu1_space"}
    _generate = staticmethod(generate_alu_netlist)


@register_design_family("fabric")
class FabricFamily(_SpecTableFamily):
    """Structured-ASIC tile fabrics (regular, DFF/buffer-dominated)."""

    family = "fabric"
    _designs = {
        "fabric_small": (SMALL_FABRIC, PAPER_SMALL_FABRIC),
        "fabric_large": (LARGE_FABRIC, PAPER_LARGE_FABRIC),
    }
    _space_names = {"": "fabric1_space"}
    _generate = staticmethod(generate_fabric_netlist)


@register_design_family("cpu")
class CpuFamily(_SpecTableFamily):
    """Z80/6502-class CPU cores (control-heavy mux datapaths)."""

    family = "cpu"
    _designs = {
        "cpu_small": (SMALL_CPU, PAPER_SMALL_CPU),
        "cpu_large": (LARGE_CPU, PAPER_LARGE_CPU),
    }
    _space_names = {"": "cpu1_space", "cpu_large": "cpu2_space"}
    _generate = staticmethod(generate_cpu_netlist)
