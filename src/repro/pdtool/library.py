"""Synthetic 7 nm-flavoured standard-cell library.

The paper's evaluation runs a commercial physical-design tool on industrial
7 nm designs.  We cannot ship a real PDK, so this module provides a compact
standard-cell library whose *relative* characteristics (area, leakage, input
capacitance, drive resistance, intrinsic delay) follow the usual ordering of
a real library: an inverter is small and fast, a full adder is large and
slow, flip-flops dominate sequential power, higher drive strengths cost area
and leakage but push load faster.

Units are arbitrary-but-consistent "library units":

- area:            um^2
- capacitance:     fF
- resistance:      kOhm       (so R * C is in ps)
- delay:           ps
- leakage:         nW

Every cell type is available in several drive strengths (``X1``, ``X2``,
``X4`` ...).  Gate sizing during flow optimization moves cells along this
drive ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CellType:
    """A single standard cell master (function at one drive strength).

    Attributes:
        name: Library cell name, e.g. ``"NAND2_X2"``.
        function: Logical function family, e.g. ``"NAND2"``.
        drive: Drive-strength multiplier (1, 2, 4, ...).
        n_inputs: Number of data input pins.
        area: Cell footprint in um^2.
        input_cap: Capacitance of one input pin in fF.
        drive_res: Equivalent pull resistance in kOhm; cell delay grows as
            ``drive_res * load_cap``.
        intrinsic_delay: Parasitic (unloaded) delay in ps.
        leakage: Static leakage power in nW.
        internal_energy: Internal switching energy per output toggle in fJ.
        is_sequential: True for flip-flops / latches.
    """

    name: str
    function: str
    drive: int
    n_inputs: int
    area: float
    input_cap: float
    drive_res: float
    intrinsic_delay: float
    leakage: float
    internal_energy: float
    is_sequential: bool = False


def _scaled(base: "CellType", drive: int) -> CellType:
    """Derive a higher-drive variant of ``base``.

    Doubling drive roughly doubles area/leakage/input-cap and halves drive
    resistance, which is how real libraries behave to first order.
    """
    return CellType(
        name=f"{base.function}_X{drive}",
        function=base.function,
        drive=drive,
        n_inputs=base.n_inputs,
        area=base.area * (0.55 + 0.45 * drive),
        input_cap=base.input_cap * (0.6 + 0.4 * drive),
        drive_res=base.drive_res / drive,
        intrinsic_delay=base.intrinsic_delay * (1.0 + 0.08 * (drive - 1)),
        leakage=base.leakage * (0.5 + 0.5 * drive),
        internal_energy=base.internal_energy * (0.6 + 0.4 * drive),
        is_sequential=base.is_sequential,
    )


# Base (X1) masters.  Numbers are representative of a 7 nm-class library in
# the units documented at module top; only relative magnitudes matter.
_BASE_CELLS = [
    CellType("INV_X1", "INV", 1, 1, 0.20, 0.7, 1.625, 4.0, 1.2, 0.25),
    CellType("BUF_X1", "BUF", 1, 1, 0.28, 0.8, 1.500, 7.5, 1.6, 0.40),
    CellType("NAND2_X1", "NAND2", 1, 2, 0.28, 0.8, 1.875, 5.5, 1.8, 0.35),
    CellType("NOR2_X1", "NOR2", 1, 2, 0.28, 0.9, 2.250, 6.0, 1.9, 0.38),
    CellType("AND2_X1", "AND2", 1, 2, 0.36, 0.8, 1.950, 8.0, 2.2, 0.45),
    CellType("OR2_X1", "OR2", 1, 2, 0.36, 0.9, 2.200, 8.5, 2.3, 0.47),
    CellType("XOR2_X1", "XOR2", 1, 2, 0.56, 1.3, 2.625, 11.0, 3.4, 0.80),
    CellType("XNOR2_X1", "XNOR2", 1, 2, 0.56, 1.3, 2.625, 11.0, 3.4, 0.80),
    CellType("AOI21_X1", "AOI21", 1, 3, 0.42, 0.9, 2.125, 7.0, 2.6, 0.50),
    CellType("OAI21_X1", "OAI21", 1, 3, 0.42, 0.9, 2.175, 7.2, 2.6, 0.50),
    CellType("MUX2_X1", "MUX2", 1, 3, 0.60, 1.1, 2.375, 10.0, 3.6, 0.70),
    CellType("HA_X1", "HA", 1, 2, 0.76, 1.4, 2.750, 13.0, 4.5, 1.00),
    CellType("FA_X1", "FA", 1, 3, 1.16, 1.6, 3.125, 17.0, 6.8, 1.60),
    CellType(
        "DFF_X1", "DFF", 1, 1, 1.40, 1.0, 2.000, 22.0, 8.5, 2.40,
        is_sequential=True,
    ),
    CellType(
        "CLKBUF_X1", "CLKBUF", 1, 1, 0.40, 1.0, 1.250, 6.5, 2.4, 0.55,
    ),
]

_DRIVES = (1, 2, 4, 8)


@dataclass
class CellLibrary:
    """A full library: every function at every drive strength.

    Provides name and (function, drive) lookup plus the drive ladder used by
    gate sizing.

    Attributes:
        cells: Mapping from cell name to :class:`CellType`.
        voltage: Supply voltage in V (used by power analysis).
    """

    cells: dict[str, CellType] = field(default_factory=dict)
    voltage: float = 0.75

    @classmethod
    def default_7nm(cls) -> "CellLibrary":
        """Build the default synthetic 7 nm library."""
        lib = cls()
        for base in _BASE_CELLS:
            for drive in _DRIVES:
                cell = base if drive == 1 else _scaled(base, drive)
                lib.cells[cell.name] = cell
        return lib

    def get(self, name: str) -> CellType:
        """Look up a cell master by name.

        Raises:
            KeyError: If the cell is not in the library.
        """
        return self.cells[name]

    def variant(self, function: str, drive: int) -> CellType:
        """Return the master implementing ``function`` at ``drive``.

        Raises:
            KeyError: If the function/drive combination does not exist.
        """
        return self.cells[f"{function}_X{drive}"]

    def functions(self) -> list[str]:
        """All function families in the library, sorted."""
        return sorted({c.function for c in self.cells.values()})

    def drives_for(self, function: str) -> list[int]:
        """Available drive strengths for ``function``, ascending."""
        return sorted(
            c.drive for c in self.cells.values() if c.function == function
        )

    def upsize(self, cell: CellType) -> CellType | None:
        """Next-stronger variant of ``cell``, or None at the top of the ladder."""
        drives = self.drives_for(cell.function)
        idx = drives.index(cell.drive)
        if idx + 1 >= len(drives):
            return None
        return self.variant(cell.function, drives[idx + 1])

    def downsize(self, cell: CellType) -> CellType | None:
        """Next-weaker variant of ``cell``, or None at the bottom."""
        drives = self.drives_for(cell.function)
        idx = drives.index(cell.drive)
        if idx == 0:
            return None
        return self.variant(cell.function, drives[idx - 1])

    def __len__(self) -> int:
        return len(self.cells)

    def __contains__(self, name: str) -> bool:
        return name in self.cells
