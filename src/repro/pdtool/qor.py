"""Quality-of-results report returned by the simulated PD flow."""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class QoRReport:
    """Post-layout QoR of one flow run.

    The three headline metrics match the paper's objective spaces:

    Attributes:
        area: Total design area in um^2 (cells + clock tree + DRV buffers,
            inflated by low utilization).
        power: Total power in mW.
        delay: Critical-path delay in ns.
        slack_ns: Setup slack against the target clock in ns.
        wirelength: Routed wirelength in um.
        n_cells: Final instance count (including repair/clock buffers).
        n_drv_violations: Nets violating a DRV rule before repair.
        congestion_overflow: Average routing overflow after optimization.
        runtime_hours: Modeled tool runtime in hours (for reporting
            flavour; the tuners count runs, not hours, like the paper).
    """

    area: float
    power: float
    delay: float
    slack_ns: float = 0.0
    wirelength: float = 0.0
    n_cells: int = 0
    n_drv_violations: int = 0
    congestion_overflow: float = 0.0
    runtime_hours: float = 0.0

    def objectives(self, names: tuple[str, ...]) -> tuple[float, ...]:
        """Extract the named QoR metrics in order.

        Args:
            names: Metric names, each one of ``area``/``power``/``delay``
                (or any other report field).

        Returns:
            The metric values as a tuple.

        Raises:
            AttributeError: If a name is not a report field.
        """
        return tuple(float(getattr(self, name)) for name in names)

    def to_dict(self) -> dict[str, float]:
        """Plain-dict view of all fields."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
