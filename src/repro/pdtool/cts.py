"""Clock-tree synthesis model.

Builds an H-tree abstraction over the design's sequential cells: tree depth
follows the sink count, buffer count follows depth and die size, and the
resulting skew/insertion-delay/power respond to the clock-related tool
parameters (``freq``, ``clock_power_driven``, ``place_uncertainty``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .library import CellLibrary
from .netlist import CompiledNetlist
from .params import ToolParameters
from .placement import PlacementResult


@dataclass
class CtsResult:
    """Output of the CTS stage.

    Attributes:
        n_clock_buffers: Clock buffers inserted.
        clock_tree_area: Added area in um^2.
        clock_tree_cap: Total clock-net capacitance in fF (drives power).
        skew: Global clock skew in ps (eats into the timing budget).
        insertion_delay: Clock insertion delay in ps.
        clock_leakage: Leakage of clock buffers in nW.
    """

    n_clock_buffers: int
    clock_tree_area: float
    clock_tree_cap: float
    skew: float
    insertion_delay: float
    clock_leakage: float


#: Maximum flip-flop sinks a single leaf clock buffer drives.
_SINKS_PER_LEAF = 24
#: Wire capacitance per um of clock routing, in fF.
_CLK_CAP_PER_UM = 0.25


def synthesize_clock_tree(
    compiled: CompiledNetlist,
    placement: PlacementResult,
    params: ToolParameters,
    library: CellLibrary,
) -> CtsResult:
    """Run the CTS model.

    Args:
        compiled: Compiled netlist (sink count = sequential cells).
        placement: Placement result (die size sets wire spans).
        params: Tool parameters.
        library: Cell library (clock buffer characteristics).

    Returns:
        A :class:`CtsResult`.
    """
    n_sinks = int(compiled.is_seq.sum())
    if n_sinks == 0:
        return CtsResult(0, 0.0, 0.0, 0.0, 0.0, 0.0)

    clkbuf = library.variant("CLKBUF", 4)
    n_leaves = int(np.ceil(n_sinks / _SINKS_PER_LEAF))
    depth = max(1, int(np.ceil(np.log2(max(n_leaves, 2)))))
    # H-tree: level k has 2^k buffers; total internal + leaf buffers.
    n_buffers = (2 ** (depth + 1) - 1)

    # Clock-power-driven mode merges leaves and skews the tree toward
    # fewer buffers / less wire at the cost of extra skew.
    if params.clock_power_driven:
        n_buffers = int(n_buffers * 0.75)
        skew_penalty = 1.35
        cap_scale = 0.80
    else:
        skew_penalty = 1.0
        cap_scale = 1.0

    half_span = (placement.die_width + placement.die_height) / 4.0
    wire_length = half_span * 2 ** 0.5 * (2 ** (depth / 2.0) + 1.0)
    clock_cap = cap_scale * (
        wire_length * _CLK_CAP_PER_UM
        + n_buffers * clkbuf.input_cap
        + n_sinks * library.variant("DFF", 1).input_cap
    )

    # Skew grows with tree depth and die span; placement uncertainty is a
    # *margin* the designer asserts, handled in STA, not physical skew.
    skew = skew_penalty * (1.5 * depth + 0.004 * half_span)
    insertion_delay = depth * (
        clkbuf.intrinsic_delay
        + clkbuf.drive_res * clock_cap / max(n_buffers, 1)
    )

    return CtsResult(
        n_clock_buffers=n_buffers,
        clock_tree_area=n_buffers * clkbuf.area,
        clock_tree_cap=float(clock_cap),
        skew=float(skew),
        insertion_delay=float(insertion_delay),
        clock_leakage=n_buffers * clkbuf.leakage,
    )
