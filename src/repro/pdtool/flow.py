"""Full physical-design flow orchestration (the simulated "Innovus").

:class:`PDFlow` wires the stages together::

    netlist -> placement -> CTS -> routing -> DRV repair -> STA/power
             \\________ effort-driven optimization loop ________/

The optimization loop models what ``flowEffort`` / ``timing_effort`` buy in
a real tool: more sizing iterations.  Each iteration upsizes near-critical
cells (faster but bigger/leakier) while a final power-recovery pass at
``extreme`` effort downsizes cells with slack.  ``max_AllowedDelay`` relaxes
the timing target the optimizer chases, trading delay for area/power —
exactly the knob's role in the paper's flow.

Gate sizing is virtual: per-cell drive-scale arrays transform the compiled
netlist's electrical views without mutating the shared netlist, so one
compiled design serves thousands of flow runs (what benchmark generation
needs).
"""

from __future__ import annotations

import dataclasses
import math
import zlib
from dataclasses import dataclass

import numpy as np

from .cts import synthesize_clock_tree
from .drv import repair_drv
from .library import CellLibrary
from .mac import MacSpec, generate_mac_netlist
from .netlist import CompiledNetlist, Netlist
from .params import ToolParameters
from .placement import place
from .power import analyze_power
from .qor import QoRReport
from .routing import route
from .sta import analyze_timing
from .variation import VariationField

#: Drive-scale step applied to critical cells per sizing iteration.
_UPSIZE_STEP = 1.5
#: Drive-scale floor/ceiling (mirrors the X1..X8 library ladder).
_MIN_SCALE, _MAX_SCALE = 0.3, 8.0
#: Fraction of near-critical cells sized per iteration.
_SIZING_FRACTION = 0.35


def _scaled_view(
    compiled: CompiledNetlist, scale: np.ndarray
) -> CompiledNetlist:
    """Return a cheap electrical view of ``compiled`` with drives scaled.

    Follows the library's drive-scaling law (see ``library._scaled``): at
    scale s, resistance /= s, cap/area/leakage grow affinely.
    """
    view = dataclasses.replace(compiled)
    view.area = compiled.area * (0.55 + 0.45 * scale)
    view.input_cap = compiled.input_cap * (0.6 + 0.4 * scale)
    view.drive_res = compiled.drive_res / scale
    view.intrinsic = compiled.intrinsic * (1.0 + 0.08 * (scale - 1.0))
    view.leakage = compiled.leakage * (0.5 + 0.5 * scale)
    view.internal_energy = compiled.internal_energy * (0.6 + 0.4 * scale)
    view.drive = compiled.drive
    # Structure-only caches are parameter independent; share them.
    cache = getattr(compiled, "_level_pins_cache", None)
    if cache is not None:
        view._level_pins_cache = cache  # type: ignore[attr-defined]
    return view


@dataclass
class FlowConfig:
    """Simulator-level settings (not tool parameters).

    Attributes:
        placement_seed: Seed for the placement jitter.
        base_runtime_hours: Modeled runtime of a ``standard``-effort run on
            the small design; scales with cell count and effort.
        qor_noise: Relative magnitude of the deterministic per-config QoR
            jitter that models tool run-to-run noise (placement seeds,
            heuristic tie-breaks).  The jitter is a pure function of the
            parameter configuration, so the offline-benchmark protocol
            stays reproducible.
        variation_amplitude: Magnitude of the structured
            :class:`~repro.pdtool.variation.VariationField` (systematic
            parameter-interaction variation; see that module).
    """

    placement_seed: int = 2022
    base_runtime_hours: float = 3.0
    qor_noise: float = 0.003
    variation_amplitude: float = 0.065


class PDFlow:
    """The simulated physical-design tool for one design.

    One instance owns a compiled netlist and evaluates arbitrarily many
    parameter configurations against it.

    Example:
        >>> flow = PDFlow.for_mac()
        >>> report = flow.run(ToolParameters(freq=1100.0))
        >>> report.area > 0 and report.power > 0 and report.delay > 0
        True
    """

    def __init__(
        self,
        netlist: Netlist,
        config: FlowConfig | None = None,
    ) -> None:
        """Compile ``netlist`` and prepare the flow.

        Args:
            netlist: Design to implement.
            config: Simulator settings.
        """
        self.netlist = netlist
        self.library: CellLibrary = netlist.library
        self.config = config or FlowConfig()
        self.compiled = netlist.compile()
        self._run_count = 0
        # Designs named "<family>_<variant>" share a family variation
        # component (the transferable structure of "similar designs").
        family = netlist.name.split("_")[0]
        self._variation = VariationField(
            design_seed=zlib.crc32(netlist.name.encode()),
            amplitude=self.config.variation_amplitude,
            family_seed=zlib.crc32(family.encode()),
            family_weight=0.8,
        )

    @classmethod
    def for_mac(
        cls, spec: MacSpec | None = None, config: FlowConfig | None = None
    ) -> "PDFlow":
        """Build a flow around a generated MAC design.

        Args:
            spec: MAC scale; defaults to the small benchmark MAC.
            config: Simulator settings.
        """
        from .mac import SMALL_MAC

        netlist = generate_mac_netlist(spec or SMALL_MAC)
        return cls(netlist, config)

    @property
    def run_count(self) -> int:
        """Number of :meth:`run` invocations so far (the paper's cost unit)."""
        return self._run_count

    def run(self, params: ToolParameters) -> QoRReport:
        """Execute the full flow for one parameter configuration.

        Args:
            params: Tool parameter configuration.

        Returns:
            The post-layout :class:`QoRReport`.
        """
        self._run_count += 1
        compiled = self.compiled
        n = compiled.n_cells

        placement = place(compiled, params, seed=self.config.placement_seed)
        cts = synthesize_clock_tree(
            compiled, placement, params, self.library
        )
        routing = route(compiled, placement, params)
        # Higher flow effort buys placement/routing refinement passes that
        # recover wirelength.
        wl_gain = 1.0 - 0.05 * params.flow_effort_level
        edge_length = routing.routed_edge_length * wl_gain
        routing = dataclasses.replace(
            routing, routed_edge_length=edge_length
        )

        # Timing target the optimizer chases: the clock period relaxed by
        # max_AllowedDelay (ns -> ps).
        target_ps = params.clock_period_ps + params.max_allowed_delay * 1000.0

        scale = np.ones(n)
        iterations = (
            2
            + 3 * params.flow_effort_level
            + 2 * params.timing_effort_level
        )
        view = _scaled_view(compiled, scale)
        drv = repair_drv(view, routing, params, self.library)

        # Constraint-driven sizing: the tool honours max_transition as a
        # design-wide constraint, proactively strengthening drivers whose
        # slew approaches the limit (tight limits -> stronger, hungrier
        # cells everywhere).
        slew = 3.0 * view.drive_res * drv.effective_load
        near_limit = (slew > 0.7 * params.max_transition * 1000.0) | (
            drv.effective_load > 0.6 * params.max_capacitance * 1000.0
        )
        if near_limit.any():
            scale[near_limit] = np.minimum(
                scale[near_limit] * 1.3, _MAX_SCALE
            )
            view = _scaled_view(compiled, scale)
            drv = repair_drv(view, routing, params, self.library)

        timing = analyze_timing(
            view, drv, cts, params, routing.routed_edge_length
        )

        for _ in range(iterations):
            if timing.critical_delay <= target_ps:
                break
            crit = timing.critical_cells
            if len(crit) == 0:
                break
            # Size the worst fraction of near-critical cells; push harder
            # when the gap to target is large.
            gap = timing.critical_delay / max(target_ps, 1.0) - 1.0
            fraction = min(0.9, _SIZING_FRACTION * (1.0 + 2.0 * gap))
            k = max(1, int(len(crit) * fraction))
            order = np.argsort(timing.arrival[crit])[::-1][:k]
            chosen = crit[order]
            scale[chosen] = np.minimum(
                scale[chosen] * _UPSIZE_STEP, _MAX_SCALE
            )
            if np.all(scale[chosen] >= _MAX_SCALE):
                break
            view = _scaled_view(compiled, scale)
            drv = repair_drv(view, routing, params, self.library)
            timing = analyze_timing(
                view, drv, cts, params, routing.routed_edge_length
            )

        # Area/power recovery: when the target is met with margin, the tool
        # downsizes cells off the critical path (leakage optimization runs
        # by default in modern flows; extreme effort pushes harder).
        recovery_passes = 8 if params.flow_effort == "extreme" else 5
        recovery_factor = 0.80 if params.flow_effort == "extreme" else 0.87
        # High timing effort preserves setup margin: recovery stops well
        # short of the target (better delay, less power recovered).
        recovery_stop = (0.97, 0.88)[params.timing_effort_level]
        margin = cts.skew + params.place_uncertainty
        for _ in range(recovery_passes):
            if timing.critical_delay > recovery_stop * target_ps:
                break
            # Downsize everything below the relaxed target (minus a 10%
            # guardband) — the looser the target (larger max_AllowedDelay,
            # slower clock), the more of the design is eligible and the
            # closer the final delay creeps to the target.
            cutoff = 0.9 * max(target_ps - margin, 0.0)
            non_crit = np.nonzero(
                (timing.arrival < cutoff) & ~compiled.is_seq
            )[0]
            if len(non_crit) == 0:
                break
            prev_scale = scale.copy()
            prev_state = (view, drv, timing)
            scale[non_crit] = np.maximum(
                scale[non_crit] * recovery_factor, _MIN_SCALE
            )
            view = _scaled_view(compiled, scale)
            drv = repair_drv(view, routing, params, self.library)
            timing = analyze_timing(
                view, drv, cts, params, routing.routed_edge_length
            )
            if timing.critical_delay > target_ps:
                # A recovery pass may not violate the (relaxed) target;
                # revert it and stop, like a real tool's guard.
                scale = prev_scale
                view, drv, timing = prev_state
                break

        power = analyze_power(view, drv, cts, params, self.library)

        cell_area = float(view.area.sum()) + cts.clock_tree_area
        cell_area += drv.added_area
        # Reported area is the placed footprint: cells / utilization.
        area = cell_area / params.max_density_util

        runtime = (
            self.config.base_runtime_hours
            * (n / 2500.0)
            * (1.0 + 0.6 * params.flow_effort_level)
            * (1.0 + 0.2 * params.timing_effort_level)
            * (1.0 + 0.3 * params.cong_effort_level)
        )

        jitter = self._qor_jitter(params)
        vary = self._variation.multipliers(params)
        return QoRReport(
            area=area * vary[0]
            * (1.0 + self.config.qor_noise * jitter[0]),
            power=power.total_power * vary[1]
            * (1.0 + self.config.qor_noise * jitter[1]),
            delay=timing.delay_ns * vary[2]
            * (1.0 + self.config.qor_noise * jitter[2]),
            slack_ns=timing.slack / 1000.0,
            wirelength=routing.total_wirelength,
            n_cells=n + drv.n_buffers + cts.n_clock_buffers,
            n_drv_violations=drv.n_violations,
            congestion_overflow=routing.overflow,
            runtime_hours=float(runtime),
        )

    def _qor_jitter(self, params: ToolParameters) -> np.ndarray:
        """Deterministic per-configuration noise in ``[-1, 1]^3``.

        Seeded from a stable digest of the parameter values, so the same
        configuration always reports the same QoR (offline-benchmark
        reproducibility) while distinct configurations decorrelate.
        """
        digest = zlib.crc32(
            repr(sorted(params.to_dict().items())).encode()
        )
        rng = np.random.default_rng(digest ^ self.config.placement_seed)
        return rng.uniform(-1.0, 1.0, size=3)

    def run_batch(self, configs: list[ToolParameters]) -> list[QoRReport]:
        """Evaluate several configurations (the paper's parallel licenses).

        Args:
            configs: Parameter configurations to run.

        Returns:
            One :class:`QoRReport` per configuration, in order.
        """
        return [self.run(p) for p in configs]


def effective_frequency_mhz(report: QoRReport, params: ToolParameters) -> float:
    """Highest frequency the run's critical path supports, in MHz.

    Args:
        report: Flow output.
        params: The configuration that produced it.

    Returns:
        ``1e3 / delay_ns`` guarded against degenerate delays.
    """
    if report.delay <= 0:
        return math.inf
    return 1000.0 / report.delay
