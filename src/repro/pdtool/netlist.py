"""Gate-level netlist representation and compilation.

A :class:`Netlist` is a DAG of cell instances connected by nets.  Primary
inputs and the clock are modelled as virtual driver indices.  For speed the
simulator never walks the object graph during analysis; instead the netlist
is *compiled* once into flat numpy arrays (:class:`CompiledNetlist`) —
levelized fanin CSR structure, fanout counts, per-cell library attributes —
and every parameter-dependent analysis (STA, power, DRV) is vectorized over
those arrays.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .library import CellLibrary, CellType

#: Virtual driver index used for primary inputs (no driving cell).
PRIMARY_INPUT = -1


@dataclass
class Instance:
    """A placed-and-routable cell instance.

    Attributes:
        name: Unique instance name.
        cell: Library master implementing this instance.
        fanins: Indices of driving instances, one per input pin;
            ``PRIMARY_INPUT`` for pins tied to primary inputs.
    """

    name: str
    cell: CellType
    fanins: list[int] = field(default_factory=list)


@dataclass
class Netlist:
    """A gate-level netlist (single-output cells, one net per output).

    The netlist is append-only during construction; analyses operate on the
    compiled form (:meth:`compile`).

    Attributes:
        name: Design name.
        library: Cell library the instances reference.
        instances: All cell instances; index in this list is the instance id
            and also the id of the net driven by the instance.
        n_primary_inputs: Number of primary input ports.
    """

    name: str
    library: CellLibrary
    instances: list[Instance] = field(default_factory=list)
    n_primary_inputs: int = 0

    def add_input(self) -> int:
        """Register one more primary input; returns nothing useful beyond count."""
        self.n_primary_inputs += 1
        return PRIMARY_INPUT

    def add_cell(
        self, function: str, fanins: list[int], drive: int = 1,
        name: str | None = None,
    ) -> int:
        """Instantiate ``function`` at ``drive`` and return its instance id.

        Args:
            function: Library function family (e.g. ``"NAND2"``).
            fanins: Driving instance ids (or ``PRIMARY_INPUT``) per input pin.
            drive: Drive strength.
            name: Optional explicit instance name.

        Raises:
            ValueError: If the pin count does not match the master, or a
                fanin id is out of range (forward reference).
        """
        cell = self.library.variant(function, drive)
        if len(fanins) != cell.n_inputs:
            raise ValueError(
                f"{cell.name} needs {cell.n_inputs} fanins, got {len(fanins)}"
            )
        idx = len(self.instances)
        for f in fanins:
            if f != PRIMARY_INPUT and not (0 <= f < idx):
                raise ValueError(
                    f"fanin {f} of instance {idx} is not an existing instance"
                )
        self.instances.append(
            Instance(name or f"U{idx}", cell, list(fanins))
        )
        return idx

    @property
    def n_cells(self) -> int:
        """Total number of cell instances."""
        return len(self.instances)

    def cell_area(self) -> float:
        """Sum of instance footprints in um^2."""
        return float(sum(inst.cell.area for inst in self.instances))

    def counts_by_function(self) -> dict[str, int]:
        """Histogram of instances per function family."""
        counts: dict[str, int] = {}
        for inst in self.instances:
            counts[inst.cell.function] = counts.get(inst.cell.function, 0) + 1
        return counts

    def validate(self) -> None:
        """Check structural sanity (pin counts, acyclicity by construction).

        Raises:
            ValueError: On any inconsistency.
        """
        for idx, inst in enumerate(self.instances):
            if len(inst.fanins) != inst.cell.n_inputs:
                raise ValueError(f"instance {idx} has wrong pin count")
            for f in inst.fanins:
                if f != PRIMARY_INPUT and not (0 <= f < idx):
                    raise ValueError(f"instance {idx} has invalid fanin {f}")
        if self.n_primary_inputs <= 0 and self.instances:
            raise ValueError("netlist with cells must have primary inputs")

    def compile(self) -> "CompiledNetlist":
        """Flatten to numpy arrays and levelize; see :class:`CompiledNetlist`."""
        return CompiledNetlist.from_netlist(self)


@dataclass
class CompiledNetlist:
    """Numpy view of a :class:`Netlist`, levelized for vectorized analyses.

    Sequential cells (DFFs) are timing *startpoints* as well as endpoints:
    their data arrival starts a new clock cycle, so levelization treats them
    as level-0 sources and STA measures the longest register-to-register /
    input-to-register path.

    Attributes:
        netlist: Source netlist (kept for sizing, which mutates masters).
        fanin_ptr: CSR row pointers into ``fanin_idx`` (len ``n_cells + 1``).
        fanin_idx: Flattened fanin instance ids (``PRIMARY_INPUT`` allowed).
        fanout_count: Number of sink pins on each instance's output net.
        level: Topological level of each instance (sequential cells and
            cells fed only by primary inputs are level 0).
        levels: For each level, the array of instance ids at that level.
        is_seq: Boolean mask of sequential instances.
        area: Per-instance area (refreshed via :meth:`refresh_cell_arrays`).
        input_cap: Per-instance single-pin input capacitance.
        drive_res: Per-instance drive resistance.
        intrinsic: Per-instance intrinsic delay.
        leakage: Per-instance leakage.
        internal_energy: Per-instance internal energy per toggle.
        drive: Per-instance drive strength.
    """

    netlist: Netlist
    fanin_ptr: np.ndarray
    fanin_idx: np.ndarray
    fanout_count: np.ndarray
    level: np.ndarray
    levels: list[np.ndarray]
    is_seq: np.ndarray
    area: np.ndarray = field(default=None)  # type: ignore[assignment]
    input_cap: np.ndarray = field(default=None)  # type: ignore[assignment]
    drive_res: np.ndarray = field(default=None)  # type: ignore[assignment]
    intrinsic: np.ndarray = field(default=None)  # type: ignore[assignment]
    leakage: np.ndarray = field(default=None)  # type: ignore[assignment]
    internal_energy: np.ndarray = field(default=None)  # type: ignore[assignment]
    drive: np.ndarray = field(default=None)  # type: ignore[assignment]

    @classmethod
    def from_netlist(cls, netlist: Netlist) -> "CompiledNetlist":
        """Build the flat arrays and levelization for ``netlist``."""
        netlist.validate()
        n = netlist.n_cells
        fanin_ptr = np.zeros(n + 1, dtype=np.int64)
        for i, inst in enumerate(netlist.instances):
            fanin_ptr[i + 1] = fanin_ptr[i] + len(inst.fanins)
        fanin_idx = np.empty(fanin_ptr[-1], dtype=np.int64)
        for i, inst in enumerate(netlist.instances):
            fanin_idx[fanin_ptr[i]:fanin_ptr[i + 1]] = inst.fanins

        fanout_count = np.zeros(n, dtype=np.int64)
        real = fanin_idx[fanin_idx >= 0]
        np.add.at(fanout_count, real, 1)

        is_seq = np.array(
            [inst.cell.is_sequential for inst in netlist.instances],
            dtype=bool,
        )

        # Levelize: sequential cells break timing paths, so they sit at
        # level 0 regardless of their fanin depth.
        level = np.zeros(n, dtype=np.int64)
        for i, inst in enumerate(netlist.instances):
            if is_seq[i]:
                level[i] = 0
                continue
            lv = 0
            for f in inst.fanins:
                if f != PRIMARY_INPUT:
                    lv = max(lv, level[f] + 1)
            level[i] = lv

        max_level = int(level.max()) if n else 0
        order = np.argsort(level, kind="stable")
        sorted_levels = level[order]
        bounds = np.searchsorted(sorted_levels, np.arange(max_level + 2))
        levels = [
            order[bounds[lv]:bounds[lv + 1]] for lv in range(max_level + 1)
        ]

        compiled = cls(
            netlist=netlist,
            fanin_ptr=fanin_ptr,
            fanin_idx=fanin_idx,
            fanout_count=fanout_count,
            level=level,
            levels=levels,
            is_seq=is_seq,
        )
        compiled.refresh_cell_arrays()
        return compiled

    def refresh_cell_arrays(self) -> None:
        """Re-extract per-instance library attributes (after gate sizing)."""
        insts = self.netlist.instances
        self.area = np.array([i.cell.area for i in insts])
        self.input_cap = np.array([i.cell.input_cap for i in insts])
        self.drive_res = np.array([i.cell.drive_res for i in insts])
        self.intrinsic = np.array([i.cell.intrinsic_delay for i in insts])
        self.leakage = np.array([i.cell.leakage for i in insts])
        self.internal_energy = np.array(
            [i.cell.internal_energy for i in insts]
        )
        self.drive = np.array([i.cell.drive for i in insts], dtype=np.int64)

    @property
    def n_cells(self) -> int:
        """Number of instances."""
        return len(self.netlist.instances)

    def sink_load_cap(self) -> np.ndarray:
        """Total sink-pin capacitance on each instance's output net (fF)."""
        load = np.zeros(self.n_cells)
        valid = self.fanin_idx >= 0
        # Each fanin pin of cell j adds cell j's pin cap to the driver's net.
        pin_owner = np.repeat(
            np.arange(self.n_cells), np.diff(self.fanin_ptr)
        )
        np.add.at(
            load,
            self.fanin_idx[valid],
            self.input_cap[pin_owner[valid]],
        )
        return load
