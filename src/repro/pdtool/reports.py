"""Tool-style text reports: QoR summary and run comparison.

Every commercial PD tool closes a run with a summary report; these
helpers produce the equivalent for the simulated flow, plus a
side-by-side comparison formatter used when sweeping configurations.
"""

from __future__ import annotations

from .params import ToolParameters
from .qor import QoRReport


def format_qor_report(
    report: QoRReport,
    params: ToolParameters | None = None,
    design_name: str = "design",
) -> str:
    """Render one run's QoR as a tool-style summary block.

    Args:
        report: Flow output.
        params: Optional configuration to echo.
        design_name: Header label.

    Returns:
        A multi-line report string.
    """
    lines = [
        "#" * 58,
        f"#  QoR summary: {design_name}",
        "#" * 58,
        f"{'Total area':<28}: {report.area:14.2f} um^2",
        f"{'Total power':<28}: {report.power:14.4f} mW",
        f"{'Critical-path delay':<28}: {report.delay:14.4f} ns",
        f"{'Setup slack':<28}: {report.slack_ns:+14.4f} ns",
        f"{'Routed wirelength':<28}: {report.wirelength:14.1f} um",
        f"{'Instance count':<28}: {report.n_cells:14d}",
        f"{'DRV violations (pre-fix)':<28}: "
        f"{report.n_drv_violations:14d}",
        f"{'Routing overflow':<28}: "
        f"{report.congestion_overflow:14.4f}",
        f"{'Modeled runtime':<28}: {report.runtime_hours:14.2f} h",
    ]
    if params is not None:
        lines.append("-" * 58)
        lines.append("#  Parameters")
        for key, value in params.to_dict().items():
            lines.append(f"{key:<28}: {value}")
    return "\n".join(lines)


def format_comparison(
    rows: list[tuple[str, QoRReport]],
    baseline: int = 0,
) -> str:
    """Side-by-side comparison of several runs.

    Args:
        rows: ``(label, report)`` pairs.
        baseline: Row index percent-deltas are computed against.

    Returns:
        A table string with absolute values and deltas.

    Raises:
        ValueError: On empty input or bad baseline index.
    """
    if not rows:
        raise ValueError("nothing to compare")
    if not 0 <= baseline < len(rows):
        raise ValueError("baseline index out of range")
    base = rows[baseline][1]

    def delta(v: float, ref: float) -> str:
        if ref == 0:
            return "    n/a"
        return f"{100.0 * (v / ref - 1.0):+6.1f}%"

    header = (
        f"{'run':<18} {'area um^2':>12} {'Δ':>7} "
        f"{'power mW':>10} {'Δ':>7} {'delay ns':>10} {'Δ':>7}"
    )
    lines = [header, "-" * len(header)]
    for label, r in rows:
        lines.append(
            f"{label:<18} {r.area:12.1f} {delta(r.area, base.area):>7} "
            f"{r.power:10.4f} {delta(r.power, base.power):>7} "
            f"{r.delay:10.4f} {delta(r.delay, base.delay):>7}"
        )
    return "\n".join(lines)
