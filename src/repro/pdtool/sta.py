"""Static timing analysis (levelized, vectorized).

Computes data arrivals over the compiled netlist DAG with load- and
slew-dependent cell delays and RC wire delays from routed lengths.
Sequential cells break paths: their outputs launch at clock-to-Q, and the
worst data arrival at any sequential input (plus setup, skew, and the
asserted ``place_uncertainty``) is the design's critical delay.

The whole propagation is vectorized per topological level, so an STA pass
over a 20k-cell design costs a handful of numpy gathers per level.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cts import CtsResult
from .drv import SLEW_RC_FACTOR, DrvResult, WIRE_RES_PER_UM
from .netlist import CompiledNetlist
from .params import ToolParameters

#: Fraction of the driver's output slew that degrades the receiving cell's
#: delay (first-order slew propagation).
_SLEW_DELAY_FACTOR = 0.08
#: Setup time of the library flip-flop, ps.
_DFF_SETUP = 8.0


@dataclass
class TimingResult:
    """Output of one STA pass.

    Attributes:
        arrival: Per-cell output arrival time in ps (clock-to-Q for
            sequential cells).
        data_arrival: Per-cell worst input-data arrival in ps.
        critical_delay: Worst endpoint delay in ps including setup, skew
            and uncertainty margins.
        slack: ``clock_period - critical_delay`` in ps.
        critical_cells: Indices of cells on (near-)critical paths, used by
            optimization to direct gate sizing.
        cell_delay: Per-cell loaded delay in ps.
    """

    arrival: np.ndarray
    data_arrival: np.ndarray
    critical_delay: float
    slack: float
    critical_cells: np.ndarray
    cell_delay: np.ndarray

    @property
    def delay_ns(self) -> float:
        """Critical delay in ns (the paper's delay QoR unit)."""
        return self.critical_delay / 1000.0


def _level_pins(compiled: CompiledNetlist) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-level (pin indices, pin owner cells); cached on ``compiled``."""
    cached = getattr(compiled, "_level_pins_cache", None)
    if cached is not None:
        return cached
    out: list[tuple[np.ndarray, np.ndarray]] = []
    for cells in compiled.levels:
        if len(cells) == 0:
            out.append((np.empty(0, np.int64), np.empty(0, np.int64)))
            continue
        counts = (
            compiled.fanin_ptr[cells + 1] - compiled.fanin_ptr[cells]
        )
        total = int(counts.sum())
        if total == 0:
            out.append((np.empty(0, np.int64), np.empty(0, np.int64)))
            continue
        # Grouped arange: pins of each cell are contiguous in fanin_idx.
        starts = np.repeat(compiled.fanin_ptr[cells], counts)
        within = np.arange(total) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        pin_idx = starts + within
        owners = np.repeat(cells, counts)
        out.append((pin_idx, owners))
    compiled._level_pins_cache = out  # type: ignore[attr-defined]
    return out


def analyze_timing(
    compiled: CompiledNetlist,
    drv: DrvResult,
    cts: CtsResult,
    params: ToolParameters,
    edge_length: np.ndarray,
) -> TimingResult:
    """Run one full STA pass.

    Args:
        compiled: Compiled netlist.
        drv: Post-repair electrical state (loads, repair delays).
        cts: Clock-tree result (skew margin).
        params: Tool parameters (``place_rcfactor``, ``place_uncertainty``,
            clock period).
        edge_length: Routed per-fanin-edge lengths in um.

    Returns:
        A :class:`TimingResult`.
    """
    n = compiled.n_cells
    cell_delay = compiled.intrinsic + compiled.drive_res * drv.effective_load
    slew = SLEW_RC_FACTOR * compiled.drive_res * drv.effective_load

    # Per-pin edge delay: RC wire delay (Elmore: R_wire * (C_wire/2 + C_pin))
    # plus the driver's repair-buffer delay and slew degradation.
    pin_owner = np.repeat(np.arange(n), np.diff(compiled.fanin_ptr))
    drivers = compiled.fanin_idx
    valid = drivers >= 0
    wire_res = WIRE_RES_PER_UM * edge_length * params.place_rcfactor
    wire_cap_half = drv.net_wire_cap[np.clip(drivers, 0, n - 1)] / 2.0
    pin_cap = compiled.input_cap[pin_owner]
    edge_delay = wire_res * (wire_cap_half + pin_cap)
    extra = np.zeros(len(drivers))
    extra[valid] = (
        drv.repair_delay[drivers[valid]]
        + _SLEW_DELAY_FACTOR * slew[drivers[valid]]
    )
    edge_delay = edge_delay + extra

    arrival = np.zeros(n)
    seq = compiled.is_seq
    arrival[seq] = compiled.intrinsic[seq]  # clock-to-Q

    # Level 0 combinational cells see only primary inputs.
    lv0 = compiled.levels[0]
    comb0 = lv0[~seq[lv0]]
    arrival[comb0] = cell_delay[comb0]

    level_pins = _level_pins(compiled)
    for lv in range(1, len(compiled.levels)):
        pin_idx, owners = level_pins[lv]
        if len(pin_idx) == 0:
            continue
        drv_ids = drivers[pin_idx]
        src = np.where(drv_ids >= 0, arrival[np.clip(drv_ids, 0, n - 1)], 0.0)
        incoming = src + edge_delay[pin_idx]
        data_arr = np.zeros(n)
        np.maximum.at(data_arr, owners, incoming)
        cells = compiled.levels[lv]
        arrival[cells] = data_arr[cells] + cell_delay[cells]

    # Worst data arrival at every cell (needed for sequential endpoints,
    # whose fanins can come from any level).
    data_arrival = np.zeros(n)
    src_all = np.where(valid, arrival[np.clip(drivers, 0, n - 1)], 0.0)
    incoming_all = src_all + edge_delay
    np.maximum.at(data_arrival, pin_owner, incoming_all)

    endpoints = data_arrival[seq]
    if len(endpoints):
        worst_path = float(endpoints.max())
    else:
        worst_path = float(arrival.max()) if n else 0.0

    margin = cts.skew + params.place_uncertainty + _DFF_SETUP
    critical_delay = worst_path + margin
    slack = params.clock_period_ps - critical_delay

    # Near-critical cells: those whose arrival is in the top 40% of the
    # worst path (sizing targets; mid-path cells matter too).
    threshold = 0.6 * worst_path if worst_path > 0 else 0.0
    critical_cells = np.nonzero(
        (arrival >= threshold) & ~seq
    )[0]

    return TimingResult(
        arrival=arrival,
        data_arrival=data_arrival,
        critical_delay=float(critical_delay),
        slack=float(slack),
        critical_cells=critical_cells,
        cell_delay=cell_delay,
    )
