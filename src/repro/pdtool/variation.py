"""Systematic mid-frequency QoR variation field.

Our stage models capture the first-order physics of a PD flow, but a real
tool's QoR surface also carries *structured* parameter interactions the
stage models are too simple to produce (placement seeds interacting with
density targets, router heuristics flipping between topologies, ...).
These effects are deterministic for a given design — re-running the same
configuration reproduces them — and they are what separates sample-
efficient surrogates from weak ones in practice.

We model them as a low-amplitude random-Fourier field over the normalized
parameter vector: a fixed (design-seeded) sum of cosines with moderate
frequencies.  Properties that matter for the reproduction:

- deterministic per configuration (offline benchmarks stay golden);
- smooth but non-trivial (a GP can learn it, given enough samples);
- shared across tuning tasks on the *same* design (Scenario One), and
  design-specific across different designs (Scenario Two) — which is
  precisely the structure transfer learning exploits and the paper's two
  scenarios probe.

See DESIGN.md §2 for the substitution rationale.
"""

from __future__ import annotations

import numpy as np

from .params import ToolParameters

#: Reference ranges used to normalize each tool parameter into [0, 1]
#: (union of the Table 1 benchmark ranges, padded).
_REFERENCE_RANGES: dict[str, tuple[float, float]] = {
    "freq": (900.0, 1400.0),
    "place_rcfactor": (0.95, 1.35),
    "place_uncertainty": (0.0, 250.0),
    "max_density_place": (0.5, 1.0),
    "max_length": (150.0, 360.0),
    "max_density_util": (0.45, 1.05),
    "max_transition": (0.08, 0.40),
    "max_capacitance": (0.04, 0.22),
    "max_fanout": (20.0, 55.0),
    "max_allowed_delay": (0.0, 0.30),
}

#: Number of random-Fourier components per metric.
_N_COMPONENTS = 8
#: Frequency band of the components (radians per unit cube).
_FREQ_LOW, _FREQ_HIGH = 2.0, 7.0


def normalize_params(params: ToolParameters) -> np.ndarray:
    """Map a configuration to the canonical unit-cube vector.

    Continuous knobs use the padded Table 1 union ranges; ordinal and
    boolean knobs use their level index.
    """
    values = [
        (params.freq, "freq"),
        (params.place_rcfactor, "place_rcfactor"),
        (params.place_uncertainty, "place_uncertainty"),
        (params.max_density_place, "max_density_place"),
        (params.max_length, "max_length"),
        (params.max_density_util, "max_density_util"),
        (params.max_transition, "max_transition"),
        (params.max_capacitance, "max_capacitance"),
        (float(params.max_fanout), "max_fanout"),
        (params.max_allowed_delay, "max_allowed_delay"),
    ]
    out = []
    for value, key in values:
        lo, hi = _REFERENCE_RANGES[key]
        out.append(np.clip((value - lo) / (hi - lo), 0.0, 1.0))
    out.append(params.flow_effort_level / 2.0)
    out.append(params.timing_effort_level / 1.0)
    out.append(params.cong_effort_level / 2.0)
    out.append(1.0 if params.uniform_density else 0.0)
    out.append(1.0 if params.clock_power_driven else 0.0)
    return np.array(out)


class _FourierField:
    """One seeded random-Fourier field (unit std per metric)."""

    def __init__(self, seed: int, dim: int) -> None:
        rng = np.random.default_rng(seed)
        self._omegas = rng.uniform(
            _FREQ_LOW, _FREQ_HIGH, size=(3, _N_COMPONENTS, dim)
        ) * rng.choice([-1.0, 1.0], size=(3, _N_COMPONENTS, dim))
        self._phases = rng.uniform(
            0.0, 2.0 * np.pi, size=(3, _N_COMPONENTS)
        )
        self._weights = rng.normal(size=(3, _N_COMPONENTS))
        # Sum of K independent cosines has std ||w|| * sqrt(1/2); scale
        # weights so each metric's field has unit std over the cube.
        self._weights /= np.linalg.norm(
            self._weights, axis=1, keepdims=True
        ) * np.sqrt(0.5)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        phase = self._omegas @ x + self._phases  # (3, K)
        return np.sum(self._weights * np.cos(phase), axis=1)


class VariationField:
    """Design-seeded random-Fourier multiplier field over configurations.

    The field is a weighted blend of a *family* component (shared by
    designs of the same architectural family — what the paper's
    "similar designs" scenario transfers) and a *design-specific*
    component.  Same design -> identical field; same family -> strongly
    correlated fields; unrelated designs -> independent.

    Attributes:
        amplitude: Relative std of the field across the parameter cube.
        family_weight: Share of the field contributed by the family
            component (0 = fully design-specific).
    """

    def __init__(
        self,
        design_seed: int,
        amplitude: float = 0.04,
        family_seed: int | None = None,
        family_weight: float = 0.6,
    ) -> None:
        """Create the field.

        Args:
            design_seed: Seed derived from the specific design.
            amplitude: Relative variation magnitude.
            family_seed: Seed shared across the design family; None
                makes the field fully design-specific.
            family_weight: Blend weight of the family component in
                ``[0, 1]``.

        Raises:
            ValueError: On a negative amplitude or out-of-range weight.
        """
        if amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if not 0.0 <= family_weight <= 1.0:
            raise ValueError("family_weight must be in [0, 1]")
        self.amplitude = amplitude
        self.family_weight = family_weight if family_seed is not None else 0.0
        dim = len(normalize_params(ToolParameters()))
        self._design_field = _FourierField(design_seed, dim)
        self._family_field = (
            _FourierField(family_seed, dim)
            if family_seed is not None else None
        )
        # Keep the blended field at unit std.
        w = self.family_weight
        self._norm = float(np.sqrt(w * w + (1.0 - w) * (1.0 - w)))

    def multipliers(self, params: ToolParameters) -> np.ndarray:
        """Per-metric multiplicative factors ``1 + amplitude * field``.

        Returns:
            Length-3 array ordered (area, power, delay).
        """
        x = normalize_params(params)
        field = (1.0 - self.family_weight) * self._design_field(x)
        if self._family_field is not None:
            field = field + self.family_weight * self._family_field(x)
        return 1.0 + self.amplitude * field / self._norm
