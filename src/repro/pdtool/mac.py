"""Multiply-accumulate (MAC) design generator.

The paper's benchmarks come from two industrial MAC designs (~20 k and
~67 k post-placement cells) under 7 nm.  This module generates structurally
faithful gate-level MACs: an array of Wallace-tree multipliers feeding
carry-lookahead adders and an accumulator register bank, at configurable
bit-widths and lane counts, so different "designs" share architecture (which
is what the paper's transfer learning exploits) while differing in scale.
"""

from __future__ import annotations

from dataclasses import dataclass

from .library import CellLibrary
from .netlist import PRIMARY_INPUT, Netlist


@dataclass(frozen=True)
class MacSpec:
    """Parameters of a generated MAC design.

    Attributes:
        width: Operand bit-width of each multiplier.
        lanes: Number of parallel MAC lanes (multiplier + adder each).
        acc_bits: Accumulator register width per lane.
        pipeline_stages: Register ranks inserted between multiplier and
            adder (>=1 keeps the design sequential like the paper's MACs).
        name: Design name used in reports.
    """

    width: int = 8
    lanes: int = 4
    acc_bits: int = 24
    pipeline_stages: int = 1
    name: str = "mac"


#: Reduced-scale specs used by default (see DESIGN.md §2); paper-scale specs
#: are selected with the ``PPATUNER_FULL`` environment variable by the bench
#: layer.
SMALL_MAC = MacSpec(width=8, lanes=4, acc_bits=24, name="mac_small")
LARGE_MAC = MacSpec(width=12, lanes=8, acc_bits=32, name="mac_large")
PAPER_SMALL_MAC = MacSpec(width=16, lanes=8, acc_bits=40, name="mac_20k")
PAPER_LARGE_MAC = MacSpec(width=16, lanes=28, acc_bits=48, name="mac_67k")


def _half_adder(nl: Netlist, a: int, b: int) -> tuple[int, int]:
    """Add two bits; returns (sum, carry) instance ids."""
    s = nl.add_cell("XOR2", [a, b])
    c = nl.add_cell("AND2", [a, b])
    return s, c


def _full_adder(nl: Netlist, a: int, b: int, cin: int) -> tuple[int, int]:
    """Add three bits using the FA master; returns (sum, carry)."""
    s = nl.add_cell("FA", [a, b, cin])
    # Carry shares the FA structurally; model as majority via AOI tree to
    # keep one-output-per-instance semantics.
    ab = nl.add_cell("AND2", [a, b])
    axb = nl.add_cell("XOR2", [a, b])
    c = nl.add_cell("AOI21", [axb, cin, ab])
    return s, c


def _wallace_multiply(
    nl: Netlist, a_bits: list[int], b_bits: list[int]
) -> list[int]:
    """Wallace-tree multiplier over driver ids; returns product bit drivers."""
    width = len(a_bits)
    columns: list[list[int]] = [[] for _ in range(2 * width)]
    for i, ai in enumerate(a_bits):
        for j, bj in enumerate(b_bits):
            pp = nl.add_cell("AND2", [ai, bj])
            columns[i + j].append(pp)

    # Reduce columns with 3:2 and 2:2 compressors until height <= 2.
    while any(len(col) > 2 for col in columns):
        next_cols: list[list[int]] = [[] for _ in range(len(columns) + 1)]
        for c, col in enumerate(columns):
            k = 0
            while len(col) - k >= 3:
                s, carry = _full_adder(nl, col[k], col[k + 1], col[k + 2])
                next_cols[c].append(s)
                next_cols[c + 1].append(carry)
                k += 3
            if len(col) - k == 2:
                s, carry = _half_adder(nl, col[k], col[k + 1])
                next_cols[c].append(s)
                next_cols[c + 1].append(carry)
                k += 2
            next_cols[c].extend(col[k:])
        while len(next_cols) > 2 * width:
            next_cols.pop()
        columns = next_cols

    # Final carry-propagate row.
    product: list[int] = []
    carry: int | None = None
    for col in columns:
        if not col:
            if carry is not None:
                product.append(carry)
                carry = None
            continue
        if len(col) == 1 and carry is None:
            product.append(col[0])
        elif len(col) == 1:
            s, carry = _half_adder(nl, col[0], carry)
            product.append(s)
        else:
            a, b = col
            if carry is None:
                s, carry = _half_adder(nl, a, b)
            else:
                s, carry = _full_adder(nl, a, b, carry)
            product.append(s)
    if carry is not None:
        product.append(carry)
    return product


def _cla_add(
    nl: Netlist, a_bits: list[int], b_bits: list[int]
) -> list[int]:
    """Carry-lookahead-flavoured adder; returns sum bit drivers.

    Implements 4-bit lookahead groups (generate/propagate networks) with
    ripple between groups, which matches the logic depth profile of a real
    CLA without block-level flattening.
    """
    n = min(len(a_bits), len(b_bits))
    sums: list[int] = []
    carry: int | None = None
    for base in range(0, n, 4):
        hi = min(base + 4, n)
        gen = [
            nl.add_cell("AND2", [a_bits[i], b_bits[i]])
            for i in range(base, hi)
        ]
        prop = [
            nl.add_cell("XOR2", [a_bits[i], b_bits[i]])
            for i in range(base, hi)
        ]
        for k in range(hi - base):
            if carry is None:
                sums.append(prop[k])
                carry = gen[k]
            else:
                sums.append(nl.add_cell("XOR2", [prop[k], carry]))
                pc = nl.add_cell("AND2", [prop[k], carry])
                carry = nl.add_cell("OR2", [gen[k], pc])
    if carry is not None:
        sums.append(carry)
    return sums


def _register_bank(nl: Netlist, drivers: list[int]) -> list[int]:
    """Register each driver through a DFF; returns the Q drivers."""
    return [nl.add_cell("DFF", [d]) for d in drivers]


def generate_mac_netlist(
    spec: MacSpec, library: CellLibrary | None = None
) -> Netlist:
    """Build a gate-level MAC netlist from ``spec``.

    The design per lane is: input registers -> Wallace multiplier ->
    pipeline register rank(s) -> CLA adder accumulating into a registered
    accumulator -> output registers.

    Args:
        spec: Design-scale parameters.
        library: Cell library; defaults to the synthetic 7 nm library.

    Returns:
        A validated :class:`Netlist`.
    """
    library = library or CellLibrary.default_7nm()
    nl = Netlist(spec.name, library)

    # Global accumulate-enable: one registered control bit broadcast to all
    # lanes.  This is the design's high-fanout net (real MACs have such
    # enable/mode nets), which is what the max_fanout / max_capacitance DRV
    # rules act on.
    nl.add_input()
    enable = nl.add_cell("DFF", [PRIMARY_INPUT], name="en_reg")

    for lane in range(spec.lanes):
        a_in = []
        b_in = []
        for _ in range(spec.width):
            nl.add_input()
            a_in.append(PRIMARY_INPUT)
            nl.add_input()
            b_in.append(PRIMARY_INPUT)
        # Input registers (so the multiplier is a reg-to-reg path).
        a_bits = _register_bank(nl, a_in)
        b_bits = _register_bank(nl, b_in)

        product = _wallace_multiply(nl, a_bits, b_bits)
        for _ in range(spec.pipeline_stages):
            product = _register_bank(nl, product)

        # Accumulator: acc <= acc + product.  The accumulator registers are
        # created first as DFFs fed by placeholders, but our netlist is
        # append-only/acyclic, so we model the accumulate loop as an
        # unrolled add of the product with a registered shadow of itself —
        # timing- and power-equivalent to the real loop.
        # Gate the addend with the broadcast enable (acc += en ? p : 0).
        gated = [nl.add_cell("AND2", [p, enable]) for p in product]
        shadow = _register_bank(nl, gated)
        width = min(spec.acc_bits, len(gated))
        total = _cla_add(nl, gated[:width], shadow[:width])
        _register_bank(nl, total[: spec.acc_bits])

    nl.validate()
    return nl


def estimate_cell_count(spec: MacSpec) -> int:
    """Cheap analytic estimate of instance count for ``spec``.

    Useful for picking specs near a target cell count without generating
    the netlist.  Wallace reduction costs ~6 instances per partial product.
    """
    pp = spec.width * spec.width
    per_lane = (
        2 * spec.width          # input registers
        + pp                    # partial products
        + 6 * pp                # wallace compressors (FA decomposition)
        + spec.pipeline_stages * 2 * spec.width
        + 10 * spec.acc_bits    # shadow regs + CLA + output regs
    )
    return per_lane * spec.lanes
