"""Additional benchmark design generators: FIR filter and ALU.

The paper's benchmarks come from one design family (MACs).  These
generators extend the family zoo — a transposed-form FIR filter (MAC-like
datapath, so a *related* family) and a small ALU (control-heavy, an
*unrelated* family) — which is what the multi-source transfer extension
needs to demonstrate relevance discrimination across archives.
"""

from __future__ import annotations

from dataclasses import dataclass

from .library import CellLibrary
from .mac import _cla_add, _register_bank, _wallace_multiply
from .netlist import PRIMARY_INPUT, Netlist


@dataclass(frozen=True)
class FirSpec:
    """A transposed-form FIR filter.

    Attributes:
        taps: Number of filter taps (one multiplier + adder per tap).
        width: Data/coefficient bit-width.
        name: Design name (first ``_``-separated token is the family).
    """

    taps: int = 4
    width: int = 6
    name: str = "fir_small"


@dataclass(frozen=True)
class AluSpec:
    """A small ALU slice (add, and, or, xor with operation select).

    Attributes:
        width: Operand bit-width.
        name: Design name.
    """

    width: int = 16
    name: str = "alu_small"


def generate_fir_netlist(
    spec: FirSpec, library: CellLibrary | None = None
) -> Netlist:
    """Build a transposed-form FIR: per tap, multiply the (registered)
    input by a (registered) coefficient and accumulate through a
    register chain.

    Args:
        spec: Filter scale.
        library: Cell library (defaults to the synthetic 7 nm one).

    Returns:
        A validated :class:`Netlist`.
    """
    library = library or CellLibrary.default_7nm()
    nl = Netlist(spec.name, library)

    # Shared data input, registered once.
    data_in = []
    for _ in range(spec.width):
        nl.add_input()
        data_in.append(PRIMARY_INPUT)
    x = _register_bank(nl, data_in)

    carry_chain: list[int] | None = None
    for _ in range(spec.taps):
        coeff_in = []
        for _ in range(spec.width):
            nl.add_input()
            coeff_in.append(PRIMARY_INPUT)
        coeff = _register_bank(nl, coeff_in)
        product = _wallace_multiply(nl, x, coeff)
        if carry_chain is None:
            carry_chain = _register_bank(nl, product)
        else:
            w = min(len(product), len(carry_chain))
            total = _cla_add(nl, product[:w], carry_chain[:w])
            carry_chain = _register_bank(nl, total[: 2 * spec.width])
    assert carry_chain is not None
    _register_bank(nl, carry_chain[: spec.width])

    nl.validate()
    return nl


def generate_alu_netlist(
    spec: AluSpec, library: CellLibrary | None = None
) -> Netlist:
    """Build a small ALU: four bitwise/arith units muxed by a registered
    2-bit opcode.

    Args:
        spec: ALU scale.
        library: Cell library.

    Returns:
        A validated :class:`Netlist`.
    """
    library = library or CellLibrary.default_7nm()
    nl = Netlist(spec.name, library)

    a_in, b_in = [], []
    for _ in range(spec.width):
        nl.add_input()
        a_in.append(PRIMARY_INPUT)
        nl.add_input()
        b_in.append(PRIMARY_INPUT)
    a = _register_bank(nl, a_in)
    b = _register_bank(nl, b_in)
    nl.add_input()
    op0 = nl.add_cell("DFF", [PRIMARY_INPUT], name="op0")
    nl.add_input()
    op1 = nl.add_cell("DFF", [PRIMARY_INPUT], name="op1")

    and_bits = [nl.add_cell("AND2", [a[i], b[i]]) for i in range(spec.width)]
    or_bits = [nl.add_cell("OR2", [a[i], b[i]]) for i in range(spec.width)]
    xor_bits = [nl.add_cell("XOR2", [a[i], b[i]]) for i in range(spec.width)]
    sum_bits = _cla_add(nl, a, b)[: spec.width]

    out = []
    for i in range(spec.width):
        lo = nl.add_cell("MUX2", [and_bits[i], or_bits[i], op0])
        hi = nl.add_cell("MUX2", [xor_bits[i], sum_bits[i], op0])
        out.append(nl.add_cell("MUX2", [lo, hi, op1]))
    _register_bank(nl, out)

    nl.validate()
    return nl
