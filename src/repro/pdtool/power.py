"""Power analysis.

Total power = switching + internal + leakage + clock-tree power, with
switching activity propagated structurally (deeper combinational logic
glitches more; registers reset activity to the toggle rate).

Units: the library uses fF / V / MHz / nW; ``P = a * C * V^2 * f`` with C in
fF and f in MHz gives power in nW; results are reported in mW like the
paper's Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cts import CtsResult
from .drv import DrvResult
from .library import CellLibrary
from .netlist import CompiledNetlist
from .params import ToolParameters

#: Toggle probability of register outputs per cycle.
_BASE_ACTIVITY = 0.15
#: Glitch amplification per combinational level.
_GLITCH_PER_LEVEL = 0.03
#: Activity of the clock net (toggles twice per cycle).
_CLOCK_ACTIVITY = 2.0


@dataclass
class PowerResult:
    """Output of power analysis.

    Attributes:
        switching_power: Net-charging dynamic power in mW.
        internal_power: Cell-internal dynamic power in mW.
        leakage_power: Static power in mW.
        clock_power: Clock-tree power in mW.
        total_power: Sum, in mW.
    """

    switching_power: float
    internal_power: float
    leakage_power: float
    clock_power: float
    total_power: float


def analyze_power(
    compiled: CompiledNetlist,
    drv: DrvResult,
    cts: CtsResult,
    params: ToolParameters,
    library: CellLibrary,
) -> PowerResult:
    """Run the power model.

    Args:
        compiled: Compiled netlist.
        drv: Post-repair loads and buffer overheads.
        cts: Clock-tree capacitance/leakage.
        params: Tool parameters (``freq`` sets dynamic power directly).
        library: Cell library (supply voltage).

    Returns:
        A :class:`PowerResult` in mW.
    """
    v2 = library.voltage ** 2
    f_mhz = params.freq

    # Activity: registers toggle at the base rate; combinational activity
    # grows mildly with logic depth (glitching), capped at 2x base.
    activity = _BASE_ACTIVITY * np.minimum(
        1.0 + _GLITCH_PER_LEVEL * compiled.level, 2.0
    )
    activity = np.where(compiled.is_seq, _BASE_ACTIVITY, activity)

    # Load each driver charges: post-repair effective load plus the wire.
    net_cap = drv.effective_load + drv.net_wire_cap
    switching_nw = float((activity * net_cap).sum()) * v2 * f_mhz
    # Repair buffers switch at their net's activity; approximate with the
    # mean activity.
    switching_nw += float(activity.mean()) * drv.added_cap * v2 * f_mhz

    internal_nw = float(
        (activity * compiled.internal_energy).sum()
    ) * f_mhz  # fJ * MHz = nW

    leakage_nw = float(compiled.leakage.sum()) + drv.added_leakage

    clock_nw = (
        _CLOCK_ACTIVITY * cts.clock_tree_cap * v2 * f_mhz
        + cts.clock_leakage
    )
    if params.clock_power_driven:
        # Power-driven CTS additionally gates quiet branches.
        clock_nw *= 0.85

    to_mw = 1e-6
    return PowerResult(
        switching_power=switching_nw * to_mw,
        internal_power=internal_nw * to_mw,
        leakage_power=leakage_nw * to_mw,
        clock_power=clock_nw * to_mw,
        total_power=(switching_nw + internal_nw + leakage_nw + clock_nw)
        * to_mw,
    )
