"""Placement model: die sizing, cell locations, wirelength, bin densities.

A real placer solves a large optimization; our simulator needs placement to
(1) respond to the placement-related tool parameters in physically plausible
directions, and (2) expose per-edge wire lengths and per-bin densities to
downstream routing/STA/power.  We use a deterministic grid placement:

- Die area = total cell area / ``max_density_util`` (target utilization).
- Cells are placed in instance order along a Morton (Z-order) space-filling
  curve.  The MAC generator emits connected logic with nearby instance ids,
  and the Morton curve keeps any run of k sequential ids inside a
  ~sqrt(k) x sqrt(k) region — the 2-D clustering a real placer produces; a
  seeded jitter models placer noise.
- ``max_density_place`` caps local bin density during "global placement":
  lower caps force spreading, inflating the effective row pitch (longer
  wires) while easing congestion.
- ``uniform_density`` evens out bin fill (less variance, slightly longer
  average wires), mirroring Innovus' even-cell-distribution switch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .netlist import CompiledNetlist
from .params import ToolParameters


@dataclass
class PlacementResult:
    """Output of the placement stage.

    Attributes:
        xy: ``(n_cells, 2)`` cell coordinates in um.
        die_width: Die width in um.
        die_height: Die height in um.
        edge_length: Manhattan length in um of each fanin edge (same order
            as ``CompiledNetlist.fanin_idx``; primary-input edges get a
            boundary-distance length).
        bin_density: Flattened per-bin placement densities.
        density_overflow: Mean excess of bin density over
            ``max_density_place`` (0 when every bin respects the cap).
        utilization: Achieved core utilization.
    """

    xy: np.ndarray
    die_width: float
    die_height: float
    edge_length: np.ndarray
    bin_density: np.ndarray
    density_overflow: float
    utilization: float

    @property
    def total_wirelength(self) -> float:
        """Sum of edge lengths in um (pre-routing estimate)."""
        return float(self.edge_length.sum())


def _morton_decode(index: np.ndarray, bits: int) -> tuple[np.ndarray, np.ndarray]:
    """De-interleave Morton codes into (x, y) grid coordinates.

    Args:
        index: Z-curve site indices (int64).
        bits: Bits per coordinate (grid is ``2**bits`` wide).

    Returns:
        ``(x, y)`` integer coordinate arrays.
    """
    x = np.zeros_like(index)
    y = np.zeros_like(index)
    for b in range(bits):
        x |= ((index >> (2 * b)) & 1) << b
        y |= ((index >> (2 * b + 1)) & 1) << b
    return x, y


def place(
    compiled: CompiledNetlist,
    params: ToolParameters,
    seed: int = 2022,
) -> PlacementResult:
    """Run the placement model.

    Args:
        compiled: Compiled netlist to place.
        params: Tool parameters (utilization, density caps, spreading).
        seed: Seed for the deterministic placer jitter.

    Returns:
        A :class:`PlacementResult` with coordinates, edge lengths and
        density statistics.
    """
    n = compiled.n_cells
    rng = np.random.default_rng(seed)

    total_area = float(compiled.area.sum())
    utilization = params.max_density_util
    die_area = total_area / utilization
    die_width = die_height = float(np.sqrt(die_area))

    # Effective spreading: a tight placement cap or uniform-density mode
    # pushes cells apart, which manifests as a larger effective pitch.
    spread = 1.0
    if params.max_density_place < utilization:
        # The requested local cap is tighter than the average fill: the
        # placer must spread to honour it, growing wirelength.
        spread += 0.6 * (utilization / params.max_density_place - 1.0)
    if params.uniform_density:
        spread += 0.05
    pitch_scale = np.sqrt(spread)

    # Morton (Z-order) scan over a 2^m x 2^m grid of cell sites: run of k
    # sequential instance ids lands in an O(sqrt(k))-wide square.
    m = max(1, int(np.ceil(np.log2(max(n, 2)) / 2.0)))
    grid = 2 ** m
    # Spread the n ids over all grid^2 z-curve sites (monotone, collision
    # free since grid^2 >= n) so the whole die is used evenly.
    site = (np.arange(n, dtype=np.int64) * grid * grid) // max(n, 1)
    col, row = _morton_decode(site, m)
    cols = rows = grid

    cell_pitch_x = die_width / cols
    cell_pitch_y = die_height / max(rows, 1)
    jitter_mag = 0.35 if not params.uniform_density else 0.15
    jx = rng.uniform(-jitter_mag, jitter_mag, size=n) * cell_pitch_x
    jy = rng.uniform(-jitter_mag, jitter_mag, size=n) * cell_pitch_y
    x = (col + 0.5) * cell_pitch_x + jx
    y = (row + 0.5) * cell_pitch_y + jy
    xy = np.column_stack([x, y]) * pitch_scale

    # Per-edge Manhattan lengths.
    pin_owner = np.repeat(np.arange(n), np.diff(compiled.fanin_ptr))
    drivers = compiled.fanin_idx
    valid = drivers >= 0
    edge_length = np.empty(len(drivers))
    src = xy[np.clip(drivers, 0, n - 1)]
    dst = xy[pin_owner]
    manhattan = np.abs(src - dst).sum(axis=1)
    edge_length[valid] = manhattan[valid]
    # Primary-input edges: distance from the nearest die edge (IO ring).
    io_dist = np.minimum.reduce([
        dst[:, 0], dst[:, 1],
        die_width * pitch_scale - dst[:, 0],
        die_height * pitch_scale - dst[:, 1],
    ])
    edge_length[~valid] = np.maximum(io_dist[~valid], 0.0)

    # Bin densities on a 16x16 (or smaller) grid.
    nbins = min(16, max(2, int(np.sqrt(n) / 4)))
    width_eff = die_width * pitch_scale
    height_eff = die_height * pitch_scale
    bx = np.clip((xy[:, 0] / width_eff * nbins).astype(int), 0, nbins - 1)
    by = np.clip((xy[:, 1] / height_eff * nbins).astype(int), 0, nbins - 1)
    flat = bx * nbins + by
    bin_area = np.zeros(nbins * nbins)
    np.add.at(bin_area, flat, compiled.area)
    bin_capacity = (width_eff * height_eff) / (nbins * nbins)
    bin_density = bin_area / bin_capacity

    if params.uniform_density:
        # Even-distribution mode pulls densities toward their mean.
        mean = bin_density.mean()
        bin_density = mean + 0.4 * (bin_density - mean)

    excess = np.maximum(bin_density - params.max_density_place, 0.0)
    density_overflow = float(excess.mean())

    achieved_util = total_area / (width_eff * height_eff)
    return PlacementResult(
        xy=xy,
        die_width=width_eff,
        die_height=height_eff,
        edge_length=edge_length,
        bin_density=bin_density,
        density_overflow=density_overflow,
        utilization=float(achieved_util),
    )
