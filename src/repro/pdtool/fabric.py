"""Structured-ASIC fabric design generator.

A structured ASIC is a prefabricated grid of identical logic tiles
(LUT + output register) personalized by a configuration bitstream, with
fixed routing channels between tile rows and a prefabricated H-tree
clock spine.  This generator builds a structurally faithful gate-level
fabric: a ``rows x cols`` tile grid where each tile is a
``lut_inputs``-input LUT built from a MUX2 tree over configuration
bits, the configuration bits form one long shift chain (the bitstream
scan path), inter-row routing runs over a fixed number of buffered
channel tracks, and a CLKBUF H-tree of configurable depth broadcasts
the tile enable.

The family is *regular* where the MAC family is *datapath-shaped*:
short reg-to-reg logic cones, very high DFF fraction (configuration
cells), and buffer-dominated routing — so fabric benchmarks exercise
transfer where source and target genuinely differ (ROADMAP item 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from .library import CellLibrary
from .mac import _register_bank
from .netlist import PRIMARY_INPUT, Netlist


@dataclass(frozen=True)
class FabricSpec:
    """Parameters of a generated structured-ASIC fabric.

    Attributes:
        rows: Tile rows in the grid.
        cols: Tile columns in the grid.
        lut_inputs: LUT input count per tile (the tile's logic depth).
        htree_depth: Depth of the CLKBUF enable H-tree (``2**depth``
            leaf buffers; deeper trees model larger prefab die).
        channel_tracks: Buffered routing tracks per column carried
            across each inter-row channel.
        name: Design name (first ``_``-separated token is the family).
    """

    rows: int = 4
    cols: int = 5
    lut_inputs: int = 3
    htree_depth: int = 3
    channel_tracks: int = 2
    name: str = "fabric"


#: Reduced-scale specs (default; see DESIGN.md §14).  Paper-scale specs
#: are selected with ``PPATUNER_FULL`` by the bench layer.
SMALL_FABRIC = FabricSpec(rows=4, cols=5, lut_inputs=3, htree_depth=3,
                          channel_tracks=2, name="fabric_small")
LARGE_FABRIC = FabricSpec(rows=8, cols=8, lut_inputs=4, htree_depth=4,
                          channel_tracks=2, name="fabric_large")
PAPER_SMALL_FABRIC = FabricSpec(rows=12, cols=12, lut_inputs=4,
                                htree_depth=5, channel_tracks=3,
                                name="fabric_9k")
PAPER_LARGE_FABRIC = FabricSpec(rows=18, cols=18, lut_inputs=4,
                                htree_depth=6, channel_tracks=3,
                                name="fabric_21k")


def _enable_htree(nl: Netlist, root: int, depth: int) -> list[int]:
    """Balanced CLKBUF tree under ``root``; returns the leaf drivers."""
    level = [nl.add_cell("CLKBUF", [root], drive=4, name="ht_root")]
    for _ in range(depth):
        level = [
            nl.add_cell("CLKBUF", [node], drive=2)
            for node in level
            for _ in range(2)
        ]
    return level


def _lut(nl: Netlist, inputs: list[int], cfg_bits: list[int]) -> int:
    """MUX2 tree implementing a LUT: ``2**len(inputs)`` config leaves
    folded one select input at a time; returns the output driver."""
    layer = list(cfg_bits)
    for sel in inputs:
        layer = [
            nl.add_cell("MUX2", [layer[i], layer[i + 1], sel])
            for i in range(0, len(layer), 2)
        ]
    assert len(layer) == 1
    return layer[0]


def generate_fabric_netlist(
    spec: FabricSpec, library: CellLibrary | None = None
) -> Netlist:
    """Build a gate-level structured-ASIC fabric from ``spec``.

    Per tile: ``lut_inputs`` routing muxes pick tile inputs off the
    row's channel tracks, a MUX2-tree LUT over shift-chain config bits
    computes the tile function, the output is gated by the H-tree
    enable leaf and registered.  Row outputs plus buffered continuation
    tracks form the next row's channel.

    Args:
        spec: Fabric-scale parameters.
        library: Cell library; defaults to the synthetic 7 nm library.

    Returns:
        A validated :class:`Netlist`.
    """
    library = library or CellLibrary.default_7nm()
    nl = Netlist(spec.name, library)

    # Configuration bitstream: one scan input feeding a shift chain; a
    # fresh chain stage per config bit (the structured-ASIC "SRAM").
    nl.add_input()
    cfg_prev = nl.add_cell("DFF", [PRIMARY_INPUT], name="cfg_head")

    def next_cfg() -> int:
        nonlocal cfg_prev
        cfg_prev = nl.add_cell("DFF", [cfg_prev])
        return cfg_prev

    # Global tile enable broadcast over the prefab H-tree.
    nl.add_input()
    enable = nl.add_cell("DFF", [PRIMARY_INPUT], name="en_reg")
    leaves = _enable_htree(nl, enable, spec.htree_depth)

    # Initial channel: registered primary inputs, one track bundle per
    # column.
    width = spec.cols * spec.channel_tracks
    channel_in = []
    for _ in range(width):
        nl.add_input()
        channel_in.append(PRIMARY_INPUT)
    channel = _register_bank(nl, channel_in)

    for r in range(spec.rows):
        row_out: list[int] = []
        for c in range(spec.cols):
            tile = r * spec.cols + c
            base = c * spec.channel_tracks
            # Routing muxes: each LUT input picks between two channel
            # tracks under a config bit (the personalization vias).
            inputs = [
                nl.add_cell("MUX2", [
                    channel[(base + k) % width],
                    channel[(base + k + 1 + r) % width],
                    next_cfg(),
                ])
                for k in range(spec.lut_inputs)
            ]
            cfg_bits = [next_cfg() for _ in range(2 ** spec.lut_inputs)]
            out = _lut(nl, inputs, cfg_bits)
            gated = nl.add_cell(
                "AND2", [out, leaves[tile % len(leaves)]]
            )
            row_out.append(nl.add_cell("DFF", [gated]))
        # Next channel: this row's outputs plus buffered continuation
        # tracks (the fixed inter-row routing channel).
        carried = [
            nl.add_cell("BUF", [channel[(i + spec.cols) % width]])
            for i in range(width - spec.cols)
        ]
        channel = row_out + carried

    # Output ring: register the final channel.
    _register_bank(nl, channel[: spec.cols])

    nl.validate()
    return nl


def estimate_fabric_cell_count(spec: FabricSpec) -> int:
    """Cheap analytic instance-count estimate for ``spec``."""
    per_tile = (
        2 * spec.lut_inputs          # routing muxes + their config bits
        + 2 ** spec.lut_inputs       # LUT config bits
        + 2 ** spec.lut_inputs - 1   # LUT mux tree
        + 2                          # enable gate + tile register
    )
    tiles = spec.rows * spec.cols
    width = spec.cols * spec.channel_tracks
    return (
        tiles * per_tile
        + spec.rows * (width - spec.cols)     # channel buffers
        + 2 ** (spec.htree_depth + 1) - 1     # H-tree CLKBUFs
        + width + spec.cols + 2               # I/O registers + control
    )
