"""Simulated physical-design tool (the paper's Cadence Innovus substitute).

See DESIGN.md §2 for the substitution rationale.  Public surface:

- :class:`ToolParameters` — the Table 1 knobs.
- :class:`PDFlow` — parameter configuration in, :class:`QoRReport` out.
- :class:`DesignFamily` / :func:`design_family` /
  :func:`register_design_family` — the design-family registry
  (DESIGN.md §14) unifying spec → netlist → parameter space for every
  family.
- :func:`generate_mac_netlist` / :class:`MacSpec` (and the FIR, ALU,
  fabric and CPU equivalents) — the benchmark design generators.
"""

from .cts import CtsResult, synthesize_clock_tree
from .drv import DrvResult, repair_drv
from .flow import FlowConfig, PDFlow, effective_frequency_mhz
from .library import CellLibrary, CellType
from .mac import (
    LARGE_MAC,
    PAPER_LARGE_MAC,
    PAPER_SMALL_MAC,
    SMALL_MAC,
    MacSpec,
    estimate_cell_count,
    generate_mac_netlist,
)
from .netlist import PRIMARY_INPUT, CompiledNetlist, Instance, Netlist
from .params import (
    CONG_EFFORT_LEVELS,
    FLOW_EFFORT_LEVELS,
    TIMING_EFFORT_LEVELS,
    ToolParameters,
)
from .placement import PlacementResult, place
from .power import PowerResult, analyze_power
from .qor import QoRReport
from .routing import RoutingResult, route
from .sta import TimingResult, analyze_timing
from .designs import (
    AluSpec,
    FirSpec,
    generate_alu_netlist,
    generate_fir_netlist,
)
from .fabric import (
    LARGE_FABRIC,
    PAPER_LARGE_FABRIC,
    PAPER_SMALL_FABRIC,
    SMALL_FABRIC,
    FabricSpec,
    estimate_fabric_cell_count,
    generate_fabric_netlist,
)
from .cpu import (
    LARGE_CPU,
    PAPER_LARGE_CPU,
    PAPER_SMALL_CPU,
    SMALL_CPU,
    CpuSpec,
    estimate_cpu_cell_count,
    generate_cpu_netlist,
)
from .family import (
    DesignFamily,
    design_family,
    family_token,
    register_design_family,
    registered_design_families,
    resolve_design,
)
from .paths import TimingPath, extract_critical_paths, format_path_report
from .reports import format_comparison, format_qor_report
from .variation import VariationField, normalize_params
from .verilog import VerilogParseError, read_verilog, write_verilog

__all__ = [
    "AluSpec",
    "CpuSpec",
    "DesignFamily",
    "FabricSpec",
    "FirSpec",
    "LARGE_CPU",
    "LARGE_FABRIC",
    "PAPER_LARGE_CPU",
    "PAPER_LARGE_FABRIC",
    "PAPER_SMALL_CPU",
    "PAPER_SMALL_FABRIC",
    "SMALL_CPU",
    "SMALL_FABRIC",
    "design_family",
    "estimate_cpu_cell_count",
    "estimate_fabric_cell_count",
    "family_token",
    "generate_cpu_netlist",
    "generate_fabric_netlist",
    "register_design_family",
    "registered_design_families",
    "resolve_design",
    "TimingPath",
    "extract_critical_paths",
    "format_comparison",
    "format_path_report",
    "format_qor_report",
    "generate_alu_netlist",
    "generate_fir_netlist",
    "CONG_EFFORT_LEVELS",
    "FLOW_EFFORT_LEVELS",
    "LARGE_MAC",
    "PAPER_LARGE_MAC",
    "PAPER_SMALL_MAC",
    "PRIMARY_INPUT",
    "SMALL_MAC",
    "TIMING_EFFORT_LEVELS",
    "CellLibrary",
    "CellType",
    "CompiledNetlist",
    "CtsResult",
    "DrvResult",
    "FlowConfig",
    "Instance",
    "MacSpec",
    "Netlist",
    "PDFlow",
    "PlacementResult",
    "PowerResult",
    "QoRReport",
    "RoutingResult",
    "TimingResult",
    "ToolParameters",
    "VariationField",
    "VerilogParseError",
    "analyze_power",
    "analyze_timing",
    "effective_frequency_mhz",
    "estimate_cell_count",
    "generate_mac_netlist",
    "normalize_params",
    "read_verilog",
    "place",
    "repair_drv",
    "route",
    "synthesize_clock_tree",
    "write_verilog",
]
