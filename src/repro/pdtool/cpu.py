"""CPU-core design generator (Z80/6502-class microarchitecture).

Builds a gate-level single-issue CPU core slice: a registered
instruction word is decoded into register-file addresses and an ALU
opcode, two read ports mux the architectural register file onto the
datapath, the ALU (bitwise units + carry-lookahead adder + shifter)
computes the result, and write-back muxes steer it into the next-state
register file under one-hot write enables.  Like the MAC accumulator,
the architectural state loop is unrolled — current state is a
registered shadow, next state is a fresh register rank — keeping the
netlist append-only/acyclic while staying timing- and power-equivalent
to the real loop.

Control-heavy mux trees plus a wide register file give this family a
very different QoR response surface from the MAC/FIR datapaths, which
is what the cross-design transfer scenarios need.
"""

from __future__ import annotations

from dataclasses import dataclass

from .library import CellLibrary
from .mac import _cla_add, _register_bank
from .netlist import PRIMARY_INPUT, Netlist


@dataclass(frozen=True)
class CpuSpec:
    """Parameters of a generated CPU core.

    Attributes:
        width: Datapath bit-width.
        n_regs: Architectural register count (power of two).
        name: Design name (first ``_``-separated token is the family).
    """

    width: int = 8
    n_regs: int = 8
    name: str = "cpu"

    def __post_init__(self) -> None:
        if self.n_regs < 2 or self.n_regs & (self.n_regs - 1):
            raise ValueError("n_regs must be a power of two >= 2")


#: Reduced-scale specs (default; see DESIGN.md §14).  Paper-scale specs
#: are selected with ``PPATUNER_FULL`` by the bench layer.
SMALL_CPU = CpuSpec(width=8, n_regs=8, name="cpu_small")
LARGE_CPU = CpuSpec(width=16, n_regs=16, name="cpu_large")
PAPER_SMALL_CPU = CpuSpec(width=24, n_regs=32, name="cpu_8k")
PAPER_LARGE_CPU = CpuSpec(width=32, n_regs=64, name="cpu_18k")


def _input_word(nl: Netlist, bits: int) -> list[int]:
    """Register a fresh ``bits``-wide primary-input word."""
    word = []
    for _ in range(bits):
        nl.add_input()
        word.append(PRIMARY_INPUT)
    return _register_bank(nl, word)


def _read_port(
    nl: Netlist, regs: list[list[int]], sel: list[int]
) -> list[int]:
    """Binary MUX2 tree reading one register-file port.

    Args:
        nl: Netlist under construction.
        regs: ``n_regs`` registers, each a list of bit drivers.
        sel: Address bits, LSB first (``log2(n_regs)`` of them).

    Returns:
        The selected word's bit drivers.
    """
    layer = regs
    for s in sel:
        layer = [
            [
                nl.add_cell("MUX2", [layer[i][b], layer[i + 1][b], s])
                for b in range(len(layer[i]))
            ]
            for i in range(0, len(layer), 2)
        ]
    assert len(layer) == 1
    return layer[0]


def _one_hot(nl: Netlist, sel: list[int], n: int) -> list[int]:
    """One-hot decode of ``sel`` (LSB first) into ``n`` enable lines."""
    inv = [nl.add_cell("INV", [s]) for s in sel]
    lines = []
    for code in range(n):
        bits = [
            sel[k] if (code >> k) & 1 else inv[k]
            for k in range(len(sel))
        ]
        term = bits[0]
        for b in bits[1:]:
            term = nl.add_cell("AND2", [term, b])
        lines.append(term)
    return lines


def generate_cpu_netlist(
    spec: CpuSpec, library: CellLibrary | None = None
) -> Netlist:
    """Build a gate-level CPU core netlist from ``spec``.

    Datapath per cycle: instruction register -> decode (one-hot write
    enables + ALU opcode) -> register-file read ports -> ALU
    (add/and/or/xor/shift) -> flags -> write-back mux into the
    next-state register rank.

    Args:
        spec: Core-scale parameters.
        library: Cell library; defaults to the synthetic 7 nm library.

    Returns:
        A validated :class:`Netlist`.
    """
    library = library or CellLibrary.default_7nm()
    nl = Netlist(spec.name, library)
    addr_bits = (spec.n_regs - 1).bit_length()

    # Instruction register: opcode + rs/rt/rd register fields.
    op = _input_word(nl, 3)
    rs = _input_word(nl, addr_bits)
    rt = _input_word(nl, addr_bits)
    rd = _input_word(nl, addr_bits)

    # Architectural register file, current state (registered shadow of
    # externally-loaded state, as in the MAC accumulator unroll).
    regs = [_input_word(nl, spec.width) for _ in range(spec.n_regs)]

    # Decode: one-hot write enables, gated by a registered global
    # write-enable (the design's high-fanout control net).
    nl.add_input()
    wen = nl.add_cell("DFF", [PRIMARY_INPUT], name="wen_reg")
    enables = [
        nl.add_cell("AND2", [line, wen])
        for line in _one_hot(nl, rd, spec.n_regs)
    ]

    # Read ports.
    a = _read_port(nl, regs, rs)
    b = _read_port(nl, regs, rt)

    # ALU: bitwise units, CLA adder, shift-left, muxed by opcode.
    and_bits = [nl.add_cell("AND2", [a[i], b[i]])
                for i in range(spec.width)]
    or_bits = [nl.add_cell("OR2", [a[i], b[i]])
               for i in range(spec.width)]
    xor_bits = [nl.add_cell("XOR2", [a[i], b[i]])
                for i in range(spec.width)]
    sum_bits = _cla_add(nl, a, b)[: spec.width]
    zero = nl.add_cell("NOR2", [op[0], op[0]])  # constant-ish filler
    shl_bits = [zero] + a[: spec.width - 1]

    result = []
    for i in range(spec.width):
        lo = nl.add_cell("MUX2", [and_bits[i], or_bits[i], op[0]])
        hi = nl.add_cell("MUX2", [xor_bits[i], sum_bits[i], op[0]])
        arith = nl.add_cell("MUX2", [lo, hi, op[1]])
        result.append(nl.add_cell("MUX2", [arith, shl_bits[i], op[2]]))

    # Flags: zero (NOR reduction) and sign, registered.
    nz = result[0]
    for bit in result[1:]:
        nz = nl.add_cell("OR2", [nz, bit])
    zero_flag = nl.add_cell("INV", [nz])
    _register_bank(nl, [zero_flag, result[-1]])

    # Write-back: next-state register rank behind per-register hold
    # muxes (hold current value unless this register's enable fires).
    for r in range(spec.n_regs):
        next_bits = [
            nl.add_cell("MUX2", [regs[r][i], result[i], enables[r]])
            for i in range(spec.width)
        ]
        _register_bank(nl, next_bits)

    nl.validate()
    return nl


def estimate_cpu_cell_count(spec: CpuSpec) -> int:
    """Exact analytic instance count for ``spec`` (without generating).

    Mirrors :func:`generate_cpu_netlist` term by term; the CLA costs
    ``5*width - 3`` cells (2 per generate/propagate pair plus 3 per
    rippled carry).
    """
    addr_bits = (spec.n_regs - 1).bit_length()
    state = 2 * spec.n_regs * spec.width       # shadow + next-state DFFs
    instr = 3 + 3 * addr_bits + 1              # op/rs/rt/rd + wen regs
    decode = addr_bits + spec.n_regs * addr_bits  # one-hot + gating
    read = 2 * spec.width * (spec.n_regs - 1)  # two read-port mux trees
    alu = 3 * spec.width + (5 * spec.width - 3) + 1 + 4 * spec.width
    flags = spec.width + 2                     # OR chain + INV + 2 DFFs
    writeback = spec.n_regs * spec.width       # hold muxes
    return state + instr + decode + read + alu + flags + writeback
