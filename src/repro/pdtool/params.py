"""Tool parameter schema for the simulated PD flow.

These are exactly the tunable knobs of paper Table 1.  Each benchmark space
exposes a *subset* with its own ranges; :class:`ToolParameters` carries the
full set with tool defaults so the flow can always run.

Units follow the paper's conventions for Innovus-style flows:

- ``freq``:               target clock frequency in MHz
- ``place_uncertainty``:  clock uncertainty in ps
- ``max_length``:         DRV max net length in um
- ``max_transition``:     DRV max slew in ns
- ``max_capacitance``:    DRV max net capacitance in pF
- ``max_allowed_delay``:  timing-path relaxation in ns
"""

from __future__ import annotations

from dataclasses import dataclass, fields

FLOW_EFFORT_LEVELS = ("standard", "express", "extreme")
TIMING_EFFORT_LEVELS = ("medium", "high")
CONG_EFFORT_LEVELS = ("AUTO", "MEDIUM", "HIGH")


@dataclass(frozen=True)
class ToolParameters:
    """One full parameter configuration for the simulated PD tool.

    Field names mirror paper Table 1 (snake-cased; the two distinct
    ``max_density``/``max_Density`` knobs become ``max_density_place`` and
    ``max_density_util``).
    """

    freq: float = 1000.0
    place_rcfactor: float = 1.1
    place_uncertainty: float = 100.0
    flow_effort: str = "standard"
    timing_effort: str = "medium"
    clock_power_driven: bool = False
    uniform_density: bool = False
    cong_effort: str = "AUTO"
    max_density_place: float = 0.75
    max_length: float = 250.0
    max_density_util: float = 0.75
    max_transition: float = 0.25
    max_capacitance: float = 0.10
    max_fanout: int = 32
    max_allowed_delay: float = 0.10

    def __post_init__(self) -> None:
        if self.flow_effort not in FLOW_EFFORT_LEVELS:
            raise ValueError(f"bad flow_effort {self.flow_effort!r}")
        if self.timing_effort not in TIMING_EFFORT_LEVELS:
            raise ValueError(f"bad timing_effort {self.timing_effort!r}")
        if self.cong_effort not in CONG_EFFORT_LEVELS:
            raise ValueError(f"bad cong_effort {self.cong_effort!r}")
        if self.freq <= 0:
            raise ValueError("freq must be positive")
        if not 0.0 < self.max_density_place <= 1.0:
            raise ValueError("max_density_place must be in (0, 1]")
        if not 0.0 < self.max_density_util <= 1.0:
            raise ValueError("max_density_util must be in (0, 1]")
        for name in (
            "place_rcfactor", "place_uncertainty", "max_length",
            "max_transition", "max_capacitance", "max_allowed_delay",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.max_fanout < 1:
            raise ValueError("max_fanout must be >= 1")

    @property
    def clock_period_ps(self) -> float:
        """Target clock period in ps derived from ``freq`` (MHz)."""
        return 1.0e6 / self.freq

    @property
    def flow_effort_level(self) -> int:
        """0-based ordinal of ``flow_effort``."""
        return FLOW_EFFORT_LEVELS.index(self.flow_effort)

    @property
    def timing_effort_level(self) -> int:
        """0-based ordinal of ``timing_effort``."""
        return TIMING_EFFORT_LEVELS.index(self.timing_effort)

    @property
    def cong_effort_level(self) -> int:
        """0-based ordinal of ``cong_effort``."""
        return CONG_EFFORT_LEVELS.index(self.cong_effort)

    def replace(self, **changes: object) -> "ToolParameters":
        """Return a copy with ``changes`` applied."""
        current = {f.name: getattr(self, f.name) for f in fields(self)}
        current.update(changes)
        return ToolParameters(**current)  # type: ignore[arg-type]

    def to_dict(self) -> dict[str, object]:
        """Plain-dict view (stable field order)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, values: dict[str, object]) -> "ToolParameters":
        """Build from a (possibly partial) dict; missing fields use defaults."""
        known = {f.name for f in fields(cls)}
        unknown = set(values) - known
        if unknown:
            raise ValueError(f"unknown tool parameters: {sorted(unknown)}")
        return cls(**values)  # type: ignore[arg-type]
