"""Routing / congestion model.

Routing converts placement wirelength estimates into routed lengths.  The
physical story: routing demand concentrates where placement density does;
bins whose demand exceeds track capacity force detours on the nets passing
through them.  ``cong_effort`` spends optimization effort (rip-up & reroute,
spreading) to shrink overflow at a small uniform wirelength cost —
the same trade a real global router makes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .netlist import CompiledNetlist
from .params import ToolParameters
from .placement import PlacementResult


@dataclass
class RoutingResult:
    """Output of the routing stage.

    Attributes:
        routed_edge_length: Per-fanin-edge routed length in um (detours
            applied on top of the placement Manhattan estimate).
        overflow: Average fractional routing overflow after optimization.
        detour_factor: Mean routed/placed length ratio.
    """

    routed_edge_length: np.ndarray
    overflow: float
    detour_factor: float

    @property
    def total_wirelength(self) -> float:
        """Total routed wirelength in um."""
        return float(self.routed_edge_length.sum())


#: Routed-wire capacity per um^2 of bin area (um of wire per um^2), for a
#: 7 nm-class metal stack after power/clock reservations.
_WIRE_CAPACITY_PER_UM2 = 30.0


def route(
    compiled: CompiledNetlist,
    placement: PlacementResult,
    params: ToolParameters,
) -> RoutingResult:
    """Run the routing model.

    Args:
        compiled: Compiled netlist (for edge ownership).
        placement: Placement result supplying edge lengths and densities.
        params: Tool parameters (``cong_effort``, density caps).

    Returns:
        A :class:`RoutingResult` with detoured edge lengths.
    """
    # Demand proxy: bins at high placement density attract proportionally
    # more wire.  Normalize demand by available tracks.
    nbins = len(placement.bin_density)
    area_per_bin = (
        placement.die_width * placement.die_height / max(nbins, 1)
    )
    capacity = _WIRE_CAPACITY_PER_UM2 * area_per_bin
    wl_per_bin = (
        placement.total_wirelength / max(nbins, 1)
        * placement.bin_density
        / max(placement.bin_density.mean(), 1e-12)
    )
    raw_overflow = np.maximum(wl_per_bin / capacity - 1.0, 0.0)

    # Congestion effort: each level of effort removes a large fraction of
    # overflow but costs a small uniform detour everywhere (spreading).
    effort = params.cong_effort_level  # 0=AUTO, 1=MEDIUM, 2=HIGH
    relief = (0.0, 0.35, 0.60)[effort]
    spread_cost = (0.0, 0.01, 0.02)[effort]
    overflow_bins = raw_overflow * (1.0 - relief)
    overflow = float(overflow_bins.mean())

    # Detour: congested fraction of nets takes longer paths.  Density
    # overflow from placement (cap violations) worsens it.
    congestion_detour = 0.25 * overflow + 0.5 * placement.density_overflow
    detour_factor = 1.0 + spread_cost + congestion_detour

    routed = placement.edge_length * detour_factor
    return RoutingResult(
        routed_edge_length=routed,
        overflow=overflow,
        detour_factor=float(detour_factor),
    )
