"""Exact hypervolume computation (minimization).

The hypervolume of a point set ``S`` w.r.t. a reference point ``r`` is the
Lebesgue measure of the region dominated by ``S`` and bounded by ``r``:
``vol( U_{p in S} [p, r] )``.  2-D uses the classic sweep; higher
dimensions use the WFG exclusive-hypervolume recursion, which is exact and
fast for the front sizes that occur here (tens of points).
"""

from __future__ import annotations

import numpy as np

from .dominance import non_dominated_mask


def hypervolume(points: np.ndarray, reference: np.ndarray) -> float:
    """Hypervolume of ``points`` w.r.t. ``reference`` (minimization).

    Points not strictly better than the reference in every objective
    contribute nothing and are dropped.  Dominated points are filtered.

    Args:
        points: ``(n, m)`` objective matrix.
        reference: Length-``m`` reference point (the "worst corner").

    Returns:
        The dominated hypervolume (0.0 for an empty contributing set).

    Raises:
        ValueError: On dimension mismatch.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    ref = np.asarray(reference, dtype=float)
    if pts.shape[1] != len(ref):
        raise ValueError(
            f"points have {pts.shape[1]} objectives, reference {len(ref)}"
        )
    pts = pts[np.all(pts < ref, axis=1)]
    if len(pts) == 0:
        return 0.0
    pts = pts[non_dominated_mask(pts)]
    pts = np.unique(pts, axis=0)
    if pts.shape[1] == 1:
        return float(ref[0] - pts[:, 0].min())
    if pts.shape[1] == 2:
        return _hv_2d(pts, ref)
    return _wfg(pts, ref)


def _hv_2d(pts: np.ndarray, ref: np.ndarray) -> float:
    """Sweep for the 2-D case; ``pts`` non-dominated, unique.

    Vectorized: sorted by x, each point's strip is ``(ref_x - x_i)``
    wide and ``(y_{i-1} - y_i)`` tall (y of the previous point, the
    reference for the first) — one shifted subtraction and a dot
    product instead of a Python sweep.  This sits on the hot path of
    every anytime convergence curve (called once per tool run per
    method).
    """
    order = np.argsort(pts[:, 0])
    x = pts[order, 0]
    y = pts[order, 1]
    prev_y = np.concatenate(([ref[1]], y[:-1]))
    return float(np.dot(ref[0] - x, prev_y - y))


def _inclusive(p: np.ndarray, ref: np.ndarray) -> float:
    """Volume of the single box [p, ref]."""
    return float(np.prod(ref - p))


def _wfg(pts: np.ndarray, ref: np.ndarray) -> float:
    """WFG hypervolume: sum of exclusive contributions."""
    # Sorting improves limit-set domination pruning.
    order = np.lexsort(pts.T[::-1])
    pts = pts[order]
    total = 0.0
    for i in range(len(pts)):
        total += _exclusive(pts[i], pts[i + 1:], ref)
    return float(total)


def _exclusive(p: np.ndarray, rest: np.ndarray, ref: np.ndarray) -> float:
    """Exclusive contribution of ``p`` over the set ``rest``."""
    if len(rest) == 0:
        return _inclusive(p, ref)
    # Limit set: each q in rest, clipped to the region dominated by p.
    limited = np.maximum(rest, p)
    mask = non_dominated_mask(limited)
    limited = np.unique(limited[mask], axis=0)
    return _inclusive(p, ref) - _wfg(limited, ref)


def hypervolume_error(
    approx_front: np.ndarray,
    golden_front: np.ndarray,
    reference: np.ndarray | None = None,
) -> float:
    """The paper's hypervolume error, Eq. (2).

    ``e = (H(P) - H(P_hat)) / H(P)`` with ``P`` the golden Pareto set.

    Args:
        approx_front: Objective points of the approximated Pareto set.
        golden_front: Objective points of the golden Pareto set.
        reference: Reference point; defaults to a 10%-padded worst corner
            over both sets (a standard convention the paper leaves
            unspecified).

    Returns:
        The relative error (can be negative only if ``approx_front``
        contains points that dominate the "golden" set).

    Raises:
        ValueError: If the golden hypervolume is zero.
    """
    approx = np.atleast_2d(np.asarray(approx_front, dtype=float))
    golden = np.atleast_2d(np.asarray(golden_front, dtype=float))
    if reference is None:
        stacked = np.vstack([approx, golden])
        worst = stacked.max(axis=0)
        best = stacked.min(axis=0)
        reference = worst + 0.1 * np.maximum(worst - best, 1e-12)
    h_golden = hypervolume(golden, reference)
    if h_golden <= 0:
        raise ValueError("golden front has zero hypervolume")
    h_approx = hypervolume(approx, reference)
    return (h_golden - h_approx) / h_golden
