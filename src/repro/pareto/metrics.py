"""Pareto-set quality indicators: ADRS (paper Eq. (3)) and helpers."""

from __future__ import annotations

import numpy as np


def adrs(reference_set: np.ndarray, approx_set: np.ndarray) -> float:
    """Average distance from reference set, Eq. (3).

    For each golden point ``a`` the distance to the closest approximation
    point under ``delta(a, p) = max_k |(a_k - p_k) / a_k|`` (the maximum
    relative per-objective deviation), averaged over the golden set.

    Args:
        reference_set: ``(n, m)`` golden Pareto objective points (non-zero
            in every coordinate, since deviations are relative).
        approx_set: ``(k, m)`` approximated Pareto objective points.

    Returns:
        The ADRS value (0.0 iff every golden point is matched exactly).

    Raises:
        ValueError: On empty inputs or dimension mismatch.
    """
    ref = np.atleast_2d(np.asarray(reference_set, dtype=float))
    approx = np.atleast_2d(np.asarray(approx_set, dtype=float))
    if ref.size == 0 or approx.size == 0:
        raise ValueError("ADRS needs non-empty reference and approx sets")
    if ref.shape[1] != approx.shape[1]:
        raise ValueError(
            f"objective mismatch: {ref.shape[1]} vs {approx.shape[1]}"
        )
    if np.any(ref == 0):
        raise ValueError("reference set has a zero coordinate")
    # (n, k, m) relative deviations.
    dev = np.abs(ref[:, None, :] - approx[None, :, :]) / np.abs(
        ref[:, None, :]
    )
    delta = dev.max(axis=2)  # (n, k)
    return float(delta.min(axis=1).mean())


def coverage(set_a: np.ndarray, set_b: np.ndarray) -> float:
    """C-metric: fraction of ``set_b`` weakly dominated by ``set_a``.

    A supplementary indicator (not in the paper's tables) useful for
    pairwise method comparison.
    """
    a = np.atleast_2d(np.asarray(set_a, dtype=float))
    b = np.atleast_2d(np.asarray(set_b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("coverage needs non-empty sets")
    dominated = 0
    for q in b:
        if np.any(np.all(a <= q, axis=1) & np.any(a < q, axis=1)):
            dominated += 1
    return dominated / len(b)


def spacing(front: np.ndarray) -> float:
    """Schott's spacing: uniformity of a front (0 = perfectly even).

    Supplementary diversity indicator.
    """
    pts = np.atleast_2d(np.asarray(front, dtype=float))
    if len(pts) < 2:
        return 0.0
    # Manhattan nearest-neighbour distances.
    dist = np.abs(pts[:, None, :] - pts[None, :, :]).sum(axis=2)
    np.fill_diagonal(dist, np.inf)
    d = dist.min(axis=1)
    return float(np.sqrt(np.mean((d - d.mean()) ** 2)))
