"""Pareto toolkit: dominance, hypervolume, and quality indicators."""

from .dominance import (
    dominates,
    epsilon_dominates,
    non_dominated_mask,
    non_dominated_mask_reference,
    pareto_front,
    pareto_indices,
)
from .hypervolume import hypervolume, hypervolume_error
from .metrics import adrs, coverage, spacing

__all__ = [
    "adrs",
    "coverage",
    "dominates",
    "epsilon_dominates",
    "hypervolume",
    "hypervolume_error",
    "non_dominated_mask",
    "non_dominated_mask_reference",
    "pareto_front",
    "pareto_indices",
    "spacing",
]
