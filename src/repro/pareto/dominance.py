"""Dominance relations and Pareto-front extraction (minimization).

All objective values are *minimized*, matching the paper (power, area,
delay are all smaller-is-better).
"""

from __future__ import annotations

import numpy as np


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether point ``a`` Pareto-dominates ``b`` (minimization).

    ``a`` dominates ``b`` iff it is no worse in every objective and
    strictly better in at least one.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b) and np.any(a < b))


def epsilon_dominates(
    a: np.ndarray, b: np.ndarray, epsilon: np.ndarray | float
) -> bool:
    """Whether ``a`` additively ε-dominates ``b``: ``a - ε <= b`` in all
    objectives (the paper's δ-domination, Eq. (11) sense)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a - np.asarray(epsilon, dtype=float) <= b))


def non_dominated_mask(points: np.ndarray) -> np.ndarray:
    """Boolean mask of the non-dominated rows of ``points``.

    Duplicated points are all kept (none strictly dominates its copy).

    Args:
        points: ``(n, m)`` objective matrix.

    Returns:
        Length-``n`` boolean mask.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(pts)
    mask = np.ones(n, dtype=bool)
    # Sort by first objective so a point can only be dominated by earlier
    # (or equal-first-coordinate) points; cuts the quadratic constant.
    order = np.lexsort(pts.T[::-1])
    sorted_pts = pts[order]
    for i in range(n):
        if not mask[order[i]]:
            continue
        p = sorted_pts[i]
        # Points after i in sort order can't dominate p unless equal in
        # the first objective, but p may dominate them.
        later = sorted_pts[i + 1:]
        dominated = np.all(p <= later, axis=1) & np.any(p < later, axis=1)
        mask[order[i + 1:][dominated]] = False
    return mask


def pareto_front(points: np.ndarray) -> np.ndarray:
    """The unique non-dominated rows of ``points``, lexicographically sorted.

    Args:
        points: ``(n, m)`` objective matrix.

    Returns:
        ``(k, m)`` matrix of distinct Pareto-optimal points.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    front = pts[non_dominated_mask(pts)]
    front = np.unique(front, axis=0)
    order = np.lexsort(front.T[::-1])
    return front[order]


def pareto_indices(points: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated rows of ``points`` (ascending)."""
    return np.nonzero(non_dominated_mask(points))[0]
