"""Dominance relations and Pareto-front extraction (minimization).

All objective values are *minimized*, matching the paper (power, area,
delay are all smaller-is-better).
"""

from __future__ import annotations

import numpy as np


def dominates(a: np.ndarray, b: np.ndarray) -> bool:
    """Whether point ``a`` Pareto-dominates ``b`` (minimization).

    ``a`` dominates ``b`` iff it is no worse in every objective and
    strictly better in at least one.
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a <= b) and np.any(a < b))


def epsilon_dominates(
    a: np.ndarray, b: np.ndarray, epsilon: np.ndarray | float
) -> bool:
    """Whether ``a`` additively ε-dominates ``b``: ``a - ε <= b`` in all
    objectives (the paper's δ-domination, Eq. (11) sense)."""
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    return bool(np.all(a - np.asarray(epsilon, dtype=float) <= b))


#: Row-block size of the vectorized non-dominated sweep; 512 rows keep
#: the (block, block, m) comparison intermediates inside the L2 cache.
_ND_BLOCK = 512


def non_dominated_mask(
    points: np.ndarray, block: int = _ND_BLOCK
) -> np.ndarray:
    """Boolean mask of the non-dominated rows of ``points``.

    Duplicated points are all kept (none strictly dominates its copy).
    NaN rows are kept too — a comparison against NaN is False, so they
    neither dominate nor are dominated.

    Blocked whole-array sweep in lexicographic order: a dominator is
    always lexicographically no later than its victim, so each sorted
    block only needs comparing against (a) itself, strictly-earlier
    rows only, and (b) the *survivors* of earlier blocks — by dominance
    transitivity any dominator eliminated earlier is itself dominated
    by a surviving point, so checking survivors alone yields the exact
    same mask as checking everything (property-tested against the
    retained :func:`non_dominated_mask_reference`).

    Args:
        points: ``(n, m)`` objective matrix.
        block: Row-chunk size of the sweep.

    Returns:
        Length-``n`` boolean mask.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(pts)
    if n == 0:
        return np.zeros(0, dtype=bool)
    order = np.lexsort(pts.T[::-1])
    sorted_pts = pts[order]
    keep = np.ones(n, dtype=bool)  # in sorted order
    for s in range(0, n, block):
        e = min(s + block, n)
        B = sorted_pts[s:e]
        nb = e - s
        dom = np.zeros(nb, dtype=bool)
        # (a) survivors of the earlier blocks.
        prev = np.nonzero(keep[:s])[0]
        for cs in range(0, len(prev), block):
            S = sorted_pts[prev[cs:cs + block]]
            le = np.all(S[:, None, :] <= B[None, :, :], axis=2)
            lt = np.any(S[:, None, :] < B[None, :, :], axis=2)
            dom |= np.any(le & lt, axis=0)
            if dom.all():
                break
        # (b) within the block: only strictly-earlier rows (i < j) can
        # dominate — a lexicographically later row that is <= everywhere
        # would have to be equal, and equals never strictly dominate.
        if not dom.all():
            le = np.all(B[:, None, :] <= B[None, :, :], axis=2)
            lt = np.any(B[:, None, :] < B[None, :, :], axis=2)
            earlier = np.tri(nb, nb, -1, dtype=bool).T  # i < j
            dom |= np.any(le & lt & earlier, axis=0)
        keep[s:e] = ~dom
    mask = np.empty(n, dtype=bool)
    mask[order] = keep
    return mask


def non_dominated_mask_reference(points: np.ndarray) -> np.ndarray:
    """Per-point reference implementation of :func:`non_dominated_mask`.

    The retained pre-vectorization sweep (one Python iteration per
    point); kept as the equivalence baseline for the fast-path property
    tests and the benchmarks.  Returns identical masks.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    n = len(pts)
    mask = np.ones(n, dtype=bool)
    # Sort by first objective so a point can only be dominated by earlier
    # (or equal-first-coordinate) points; cuts the quadratic constant.
    order = np.lexsort(pts.T[::-1])
    sorted_pts = pts[order]
    for i in range(n):
        if not mask[order[i]]:
            continue
        p = sorted_pts[i]
        # Points after i in sort order can't dominate p unless equal in
        # the first objective, but p may dominate them.
        later = sorted_pts[i + 1:]
        dominated = np.all(p <= later, axis=1) & np.any(p < later, axis=1)
        mask[order[i + 1:][dominated]] = False
    return mask


def pareto_front(points: np.ndarray) -> np.ndarray:
    """The unique non-dominated rows of ``points``, lexicographically sorted.

    Args:
        points: ``(n, m)`` objective matrix.

    Returns:
        ``(k, m)`` matrix of distinct Pareto-optimal points.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    front = pts[non_dominated_mask(pts)]
    front = np.unique(front, axis=0)
    order = np.lexsort(front.T[::-1])
    return front[order]


def pareto_indices(points: np.ndarray) -> np.ndarray:
    """Indices of the non-dominated rows of ``points`` (ascending)."""
    return np.nonzero(non_dominated_mask(points))[0]
