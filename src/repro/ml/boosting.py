"""Gradient-boosted regression trees (substrate for ASPDAC'20 / FIST).

Least-squares gradient boosting over :class:`RegressionTree` weak
learners, with shrinkage, optional row subsampling, and aggregated
impurity feature importances — the pieces FIST's feature-importance
sampling strategy needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .tree import RegressionTree


@dataclass
class GradientBoostingRegressor:
    """LS-boosted tree ensemble.

    Attributes:
        n_estimators: Number of boosting rounds.
        learning_rate: Shrinkage per round.
        max_depth: Depth of each weak learner.
        min_samples_leaf: Leaf-size regularization of weak learners.
        subsample: Row-subsampling fraction per round (stochastic
            gradient boosting when < 1).
        seed: RNG seed.
    """

    n_estimators: int = 100
    learning_rate: float = 0.08
    max_depth: int = 3
    min_samples_leaf: int = 2
    subsample: float = 1.0
    seed: int | None = 0
    _trees: list[RegressionTree] = field(default_factory=list, repr=False)
    _base: float = 0.0
    _n_features: int = 0

    def __post_init__(self) -> None:
        if self.n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        if not 0.0 < self.learning_rate <= 1.0:
            raise ValueError("learning_rate must be in (0, 1]")
        if not 0.0 < self.subsample <= 1.0:
            raise ValueError("subsample must be in (0, 1]")

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostingRegressor":
        """Fit the ensemble.

        Args:
            X: ``(n, d)`` features.
            y: Length-``n`` targets.

        Returns:
            ``self``.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y) or len(y) == 0:
            raise ValueError("X/y must be non-empty and aligned")
        rng = np.random.default_rng(self.seed)
        self._n_features = X.shape[1]
        self._trees = []
        self._base = float(y.mean())
        pred = np.full(len(y), self._base)
        n_rows = max(1, int(round(self.subsample * len(y))))
        for t in range(self.n_estimators):
            residual = y - pred
            if self.subsample < 1.0:
                rows = rng.choice(len(y), size=n_rows, replace=False)
            else:
                rows = np.arange(len(y))
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                seed=None if self.seed is None else self.seed + t,
            ).fit(X[rows], residual[rows])
            self._trees.append(tree)
            pred = pred + self.learning_rate * tree.predict(X)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``X``.

        Raises:
            RuntimeError: If not fitted.
        """
        if not self._trees:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        pred = np.full(len(X), self._base)
        for tree in self._trees:
            pred = pred + self.learning_rate * tree.predict(X)
        return pred

    @property
    def feature_importances_(self) -> np.ndarray:
        """Mean normalized importance across the ensemble.

        Raises:
            RuntimeError: If not fitted.
        """
        if not self._trees:
            raise RuntimeError("feature_importances_ before fit()")
        stack = np.vstack(
            [t.feature_importances_ for t in self._trees]
        )
        imp = stack.mean(axis=0)
        total = imp.sum()
        return imp / total if total > 0 else imp

    def staged_score(self, X: np.ndarray, y: np.ndarray) -> list[float]:
        """Training-curve helper: RMSE after each boosting round."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        pred = np.full(len(X), self._base)
        scores = []
        for tree in self._trees:
            pred = pred + self.learning_rate * tree.predict(X)
            scores.append(float(np.sqrt(np.mean((pred - y) ** 2))))
        return scores
