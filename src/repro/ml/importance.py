"""FIST-style knob-importance analysis and parameter-space pruning.

When parameter spaces diverge across designs, a standard companion move
to transfer (ASPDAC'20 FIST, see PAPERS.md) is to rank knobs by how
much of the QoR response they explain on *prior* data — a golden table
from an already-characterized design — and drop the dead ones before
tuning the new design.  A pruned space shrinks the surrogate's input
dimensionality, so the GP needs fewer tool runs to localize the Pareto
front; the pool itself is untouched (tuning still selects full
configurations), only the feature columns the models see change.

Two estimators over a golden table ``(X, Y)``:

- ``"tree"`` — a bootstrapped ensemble of randomized
  :class:`~repro.ml.tree.RegressionTree` learners per metric,
  averaging impurity-based importances (FIST's choice).
- ``"permutation"`` — a :class:`~repro.ml.GradientBoostingRegressor`
  per metric on a train half, scoring each column by the validation-MSE
  increase when that column is shuffled (model-agnostic).

Per-metric importances are normalized to sum to one and aggregated by
the *maximum* across metrics, so a knob that only matters for one
objective is still kept — pruning must be conservative, since dropping
a live knob biases every downstream front.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..space.space import ParameterSpace
from .boosting import GradientBoostingRegressor
from .tree import RegressionTree

__all__ = [
    "ImportanceReport",
    "PrunedSpace",
    "knob_importance",
    "prune_space",
]

#: Golden-table metric names, in column order (mirrors bench.dataset).
_DEFAULT_METRICS = ("area", "power", "delay")


@dataclass(frozen=True)
class ImportanceReport:
    """Knob-importance estimates over one golden table.

    Attributes:
        names: Knob names, in feature-column order.
        importances: ``(d,)`` aggregated importances, normalized to
            sum to one.
        per_metric: ``(n_metrics, d)`` per-metric normalized
            importances.
        metrics: Metric names, matching ``per_metric`` rows.
        method: Estimator used (``"tree"`` or ``"permutation"``).
    """

    names: tuple[str, ...]
    importances: np.ndarray
    per_metric: np.ndarray
    metrics: tuple[str, ...]
    method: str

    def ranked(self) -> list[tuple[str, float]]:
        """(name, importance) pairs, most important first."""
        order = np.argsort(self.importances)[::-1]
        return [
            (self.names[i], float(self.importances[i])) for i in order
        ]

    def format(self) -> str:
        """Fixed-width table of the ranking, with per-metric columns."""
        width = max(len(n) for n in self.names)
        header = f"{'knob':<{width}}  {'agg':>7}  " + "  ".join(
            f"{m:>7}" for m in self.metrics
        )
        lines = [header, "-" * len(header)]
        for name, agg in self.ranked():
            col = self.names.index(name)
            cells = "  ".join(
                f"{self.per_metric[m, col]:7.4f}"
                for m in range(len(self.metrics))
            )
            lines.append(f"{name:<{width}}  {agg:7.4f}  {cells}")
        return "\n".join(lines)


@dataclass(frozen=True)
class PrunedSpace:
    """A parameter space restricted to its informative knobs.

    Attributes:
        space: The pruned :class:`ParameterSpace` (kept knobs, in
            their original column order).
        kept: Names of the surviving knobs.
        dropped: Names of the pruned knobs.
        indices: Feature-column indices of the kept knobs in the
            *original* space (use :meth:`slice`).
        report: The :class:`ImportanceReport` the decision came from.
        threshold: The importance cutoff applied.
    """

    space: ParameterSpace
    kept: tuple[str, ...]
    dropped: tuple[str, ...]
    indices: tuple[int, ...]
    report: ImportanceReport
    threshold: float

    def slice(self, X: np.ndarray) -> np.ndarray:
        """Restrict a feature matrix to the kept columns."""
        return np.ascontiguousarray(
            np.atleast_2d(X)[:, list(self.indices)]
        )


def _tree_importance(
    X: np.ndarray, y: np.ndarray, seed: int, n_trees: int
) -> np.ndarray:
    """Bootstrapped randomized-tree ensemble importances for one metric."""
    rng = np.random.default_rng(seed)
    d = X.shape[1]
    max_features = max(2, int(round(np.sqrt(d))))
    total = np.zeros(d)
    for t in range(n_trees):
        rows = rng.choice(len(X), size=len(X), replace=True)
        tree = RegressionTree(
            max_depth=6,
            min_samples_leaf=3,
            max_features=max_features,
            seed=int(rng.integers(2**31)),
        ).fit(X[rows], y[rows])
        total += tree.feature_importances_
    return total / n_trees


def _permutation_importance(
    X: np.ndarray, y: np.ndarray, seed: int
) -> np.ndarray:
    """Shuffled-column validation-MSE increase for one metric."""
    rng = np.random.default_rng(seed)
    n = len(X)
    perm = rng.permutation(n)
    half = max(8, n // 2)
    train, val = perm[:half], perm[half:]
    if len(val) < 4:  # tiny tables: validate in-sample
        train = val = perm
    model = GradientBoostingRegressor(
        n_estimators=60, max_depth=3, seed=seed
    ).fit(X[train], y[train])
    base = float(np.mean((model.predict(X[val]) - y[val]) ** 2))
    out = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        X_perm = X[val].copy()
        X_perm[:, j] = X_perm[rng.permutation(len(val)), j]
        mse = float(np.mean((model.predict(X_perm) - y[val]) ** 2))
        out[j] = max(0.0, mse - base)
    return out


def knob_importance(
    X: np.ndarray,
    Y: np.ndarray,
    names: tuple[str, ...] | list[str],
    method: str = "tree",
    seed: int = 0,
    n_trees: int = 24,
    metrics: tuple[str, ...] | None = None,
) -> ImportanceReport:
    """Estimate per-knob importances over a golden table.

    Args:
        X: ``(n, d)`` encoded feature matrix (column order = ``names``).
        Y: ``(n,)`` or ``(n, m)`` golden metric matrix.
        names: Knob names, one per feature column.
        method: ``"tree"`` or ``"permutation"``.
        seed: RNG seed (deterministic per seed).
        n_trees: Ensemble size for the tree estimator.
        metrics: Metric names for the report; defaults to
            area/power/delay (or ``("y",)`` for a single column).

    Raises:
        ValueError: On shape mismatch or an unknown method.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    Y = np.asarray(Y, dtype=float)
    if Y.ndim == 1:
        Y = Y[:, None]
    if len(X) != len(Y):
        raise ValueError("X/Y must be aligned")
    if X.shape[1] != len(names):
        raise ValueError(
            f"{len(names)} names for {X.shape[1]} feature columns"
        )
    if metrics is None:
        metrics = (
            _DEFAULT_METRICS if Y.shape[1] == len(_DEFAULT_METRICS)
            else tuple(f"y{i}" for i in range(Y.shape[1]))
        )
    if method == "tree":
        rows = [
            _tree_importance(X, Y[:, m], seed + 1000 * m, n_trees)
            for m in range(Y.shape[1])
        ]
    elif method == "permutation":
        rows = [
            _permutation_importance(X, Y[:, m], seed + 1000 * m)
            for m in range(Y.shape[1])
        ]
    else:
        raise ValueError(
            f"unknown importance method {method!r}; "
            "choose 'tree' or 'permutation'"
        )
    per_metric = np.array(rows)
    sums = per_metric.sum(axis=1, keepdims=True)
    per_metric = np.where(sums > 0, per_metric / np.where(
        sums > 0, sums, 1.0
    ), 1.0 / per_metric.shape[1])
    agg = per_metric.max(axis=0)
    agg = agg / agg.sum()
    return ImportanceReport(
        names=tuple(names),
        importances=agg,
        per_metric=per_metric,
        metrics=tuple(metrics),
        method=method,
    )


def prune_space(
    space: ParameterSpace,
    X: np.ndarray,
    Y: np.ndarray,
    threshold: float = 0.05,
    min_keep: int = 2,
    method: str = "tree",
    seed: int = 0,
    n_trees: int = 24,
) -> PrunedSpace:
    """Drop dead knobs from ``space`` based on a golden table.

    A knob survives when its aggregated importance reaches
    ``threshold`` (as a fraction of the total); at least ``min_keep``
    knobs are always retained (the most important ones), so a flat
    importance profile degrades to no-op pruning rather than an empty
    space.

    Args:
        space: The space whose columns ``X`` encodes.
        X: ``(n, d)`` golden feature matrix (prior design's table).
        Y: ``(n,)`` or ``(n, m)`` golden metrics.
        threshold: Minimum aggregated importance to keep a knob.
        min_keep: Lower bound on surviving knobs.
        method: Importance estimator (``"tree"``/``"permutation"``).
        seed: RNG seed.
        n_trees: Ensemble size for the tree estimator.

    Raises:
        ValueError: If ``X`` has a different column count than
            ``space.dim``.
    """
    X = np.atleast_2d(np.asarray(X, dtype=float))
    if X.shape[1] != space.dim:
        raise ValueError(
            f"X has {X.shape[1]} columns for a {space.dim}-knob space"
        )
    report = knob_importance(
        X, Y, space.names, method=method, seed=seed, n_trees=n_trees
    )
    keep = report.importances >= threshold
    if keep.sum() < min_keep:
        top = np.argsort(report.importances)[::-1][:min_keep]
        keep = np.zeros(space.dim, dtype=bool)
        keep[top] = True
    indices = tuple(int(i) for i in np.flatnonzero(keep))
    kept = tuple(space.names[i] for i in indices)
    dropped = tuple(
        n for i, n in enumerate(space.names) if i not in indices
    )
    pruned = (
        space if not dropped
        else ParameterSpace(tuple(space.parameters[i] for i in indices))
    )
    return PrunedSpace(
        space=pruned,
        kept=kept,
        dropped=dropped,
        indices=indices,
        report=report,
        threshold=threshold,
    )
