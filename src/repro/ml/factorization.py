"""Latent-factor matrix completion (substrate for the DAC'19 baseline).

DAC'19 frames design-flow tuning as a recommender-system problem: a
(configuration x QoR-metric) rating matrix with few observed entries,
completed by low-rank factorization plus feature-linear side information.
This module provides the alternating-least-squares factorization engine
with parameter-feature side features (so unseen configurations get
predictions through their parameter encoding — the "cold start" path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class FeatureALS:
    """Ridge-regularized bilinear model ``y_ij ≈ (W x_i) . v_j``.

    Each configuration's latent vector is a *linear map of its parameter
    features* (projection matrix ``W``), so predictions extend to every
    pool candidate; each metric ``j`` owns a latent vector ``v_j``.
    Trained by alternating ridge solves on the observed entries.

    Attributes:
        rank: Latent dimensionality.
        reg: Ridge regularization strength.
        n_iterations: ALS sweeps.
        seed: Initialization seed.
    """

    rank: int = 6
    reg: float = 0.1
    n_iterations: int = 30
    seed: int | None = 0
    _W: np.ndarray | None = field(default=None, repr=False)
    _V: np.ndarray | None = field(default=None, repr=False)
    _mean: float = 0.0
    _scale: float = 1.0

    def fit(
        self,
        X: np.ndarray,
        observed: np.ndarray,
        values: np.ndarray,
    ) -> "FeatureALS":
        """Fit on observed (row, metric) entries.

        Args:
            X: ``(n, d)`` configuration features (all pool rows).
            observed: ``(k, 2)`` integer array of observed
                ``(row, metric)`` index pairs.
            values: Length-``k`` observed ratings (QoR values).

        Returns:
            ``self``.

        Raises:
            ValueError: On shape problems or empty observations.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        observed = np.asarray(observed, dtype=int).reshape(-1, 2)
        values = np.asarray(values, dtype=float).ravel()
        if len(observed) != len(values) or len(values) == 0:
            raise ValueError("observed/values misaligned or empty")
        n_metrics = int(observed[:, 1].max()) + 1
        d = X.shape[1]
        rng = np.random.default_rng(self.seed)

        self._mean = float(values.mean())
        self._scale = float(values.std()) or 1.0
        z = (values - self._mean) / self._scale

        W = rng.normal(scale=0.1, size=(self.rank, d))
        V = rng.normal(scale=0.1, size=(n_metrics, self.rank))

        rows = observed[:, 0]
        cols = observed[:, 1]
        eye_r = self.reg * np.eye(self.rank)
        for _ in range(self.n_iterations):
            U = X @ W.T  # (n, rank) latent configs
            # Update metric vectors: ridge per metric.
            for j in range(n_metrics):
                mask = cols == j
                if not mask.any():
                    continue
                Uj = U[rows[mask]]
                A = Uj.T @ Uj + eye_r
                V[j] = np.linalg.solve(A, Uj.T @ z[mask])
            # Update projection W: vec regression. Design rows are
            # kron(v_j, x_i); solve ridge in rank*d dims.
            design = np.einsum(
                "kr,kd->krd", V[cols], X[rows]
            ).reshape(len(z), self.rank * d)
            A = design.T @ design + self.reg * np.eye(self.rank * d)
            w = np.linalg.solve(A, design.T @ z)
            W = w.reshape(self.rank, d)

        self._W = W
        self._V = V
        return self

    def predict(self, X: np.ndarray, metric: int) -> np.ndarray:
        """Predicted ratings of every row of ``X`` for one metric.

        Raises:
            RuntimeError: If not fitted.
            IndexError: For an unknown metric index.
        """
        if self._W is None or self._V is None:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if not 0 <= metric < len(self._V):
            raise IndexError(f"metric {metric} out of range")
        z = (X @ self._W.T) @ self._V[metric]
        return z * self._scale + self._mean

    def predict_all(self, X: np.ndarray) -> np.ndarray:
        """``(n, n_metrics)`` predictions for every metric."""
        if self._W is None or self._V is None:
            raise RuntimeError("predict_all() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        z = (X @ self._W.T) @ self._V.T
        return z * self._scale + self._mean
