"""CART regression trees (substrate for the ASPDAC'20 FIST baseline).

A small, vectorized regression-tree learner: variance-reduction splits,
depth / leaf-size regularization, impurity-based feature importances.
No external ML library is available offline, so this is built from
scratch on numpy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class _Node:
    """One tree node (leaf when ``feature`` is None)."""

    value: float
    feature: int | None = None
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    n_samples: int = 0
    impurity_decrease: float = 0.0


@dataclass
class RegressionTree:
    """CART regression tree.

    Attributes:
        max_depth: Maximum tree depth.
        min_samples_leaf: Minimum samples per leaf.
        min_samples_split: Minimum samples to attempt a split.
        max_features: Features considered per split (None = all); useful
            for randomized ensembles.
        seed: RNG seed for feature subsampling.
    """

    max_depth: int = 6
    min_samples_leaf: int = 2
    min_samples_split: int = 4
    max_features: int | None = None
    seed: int | None = None
    _root: _Node | None = field(default=None, repr=False)
    _n_features: int = 0
    _importances: np.ndarray | None = field(default=None, repr=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RegressionTree":
        """Fit the tree.

        Args:
            X: ``(n, d)`` features.
            y: Length-``n`` targets.

        Returns:
            ``self``.

        Raises:
            ValueError: On misaligned or empty inputs.
        """
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if len(X) != len(y) or len(y) == 0:
            raise ValueError("X/y must be non-empty and aligned")
        self._n_features = X.shape[1]
        self._importances = np.zeros(self._n_features)
        rng = np.random.default_rng(self.seed)
        self._root = self._build(X, y, depth=0, rng=rng)
        total = self._importances.sum()
        if total > 0:
            self._importances /= total
        return self

    def _build(
        self, X: np.ndarray, y: np.ndarray, depth: int,
        rng: np.random.Generator,
    ) -> _Node:
        node = _Node(value=float(y.mean()), n_samples=len(y))
        if (
            depth >= self.max_depth
            or len(y) < self.min_samples_split
            or np.ptp(y) == 0.0
        ):
            return node

        n, d = X.shape
        features = np.arange(d)
        if self.max_features is not None and self.max_features < d:
            features = rng.choice(d, size=self.max_features, replace=False)

        parent_sse = float(np.sum((y - y.mean()) ** 2))
        best_gain, best_feat, best_thr = 0.0, None, 0.0
        for j in features:
            gain, thr = self._best_split_1d(X[:, j], y, parent_sse)
            if gain > best_gain:
                best_gain, best_feat, best_thr = gain, int(j), thr
        if best_feat is None:
            return node

        mask = X[:, best_feat] <= best_thr
        node.feature = best_feat
        node.threshold = best_thr
        node.impurity_decrease = best_gain
        assert self._importances is not None
        self._importances[best_feat] += best_gain
        node.left = self._build(X[mask], y[mask], depth + 1, rng)
        node.right = self._build(X[~mask], y[~mask], depth + 1, rng)
        return node

    def _best_split_1d(
        self, x: np.ndarray, y: np.ndarray, parent_sse: float
    ) -> tuple[float, float]:
        """Best variance-reduction split on one feature.

        Returns:
            ``(gain, threshold)``; gain 0 when no valid split exists.
        """
        order = np.argsort(x, kind="stable")
        xs, ys = x[order], y[order]
        n = len(ys)
        csum = np.cumsum(ys)
        csum2 = np.cumsum(ys * ys)
        k = np.arange(1, n)  # left sizes
        left_sse = csum2[:-1] - csum[:-1] ** 2 / k
        right_sum = csum[-1] - csum[:-1]
        right_sse = (csum2[-1] - csum2[:-1]) - right_sum**2 / (n - k)
        gain = parent_sse - (left_sse + right_sse)
        # Valid split: both sides big enough, threshold between distinct xs.
        valid = (
            (k >= self.min_samples_leaf)
            & ((n - k) >= self.min_samples_leaf)
            & (xs[1:] > xs[:-1])
        )
        if not valid.any():
            return 0.0, 0.0
        gain = np.where(valid, gain, -np.inf)
        best = int(np.argmax(gain))
        thr = 0.5 * (xs[best] + xs[best + 1])
        return float(gain[best]), float(thr)

    def predict(self, X: np.ndarray) -> np.ndarray:
        """Predict targets for ``X``.

        Raises:
            RuntimeError: If the tree is not fitted.
        """
        if self._root is None:
            raise RuntimeError("predict() before fit()")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if X.shape[1] != self._n_features:
            raise ValueError("feature-count mismatch")
        out = np.empty(len(X))
        for i, row in enumerate(X):
            node = self._root
            while node.feature is not None:
                node = (
                    node.left if row[node.feature] <= node.threshold
                    else node.right
                )
                assert node is not None
            out[i] = node.value
        return out

    @property
    def feature_importances_(self) -> np.ndarray:
        """Normalized impurity-decrease importances.

        Raises:
            RuntimeError: If the tree is not fitted.
        """
        if self._importances is None:
            raise RuntimeError("feature_importances_ before fit()")
        return self._importances.copy()

    @property
    def depth(self) -> int:
        """Actual depth of the fitted tree."""
        def walk(node: _Node | None) -> int:
            if node is None or node.feature is None:
                return 0
            return 1 + max(walk(node.left), walk(node.right))
        return walk(self._root)
