"""Small ML substrate (trees, boosting, matrix factorization) built from
scratch for the reimplemented baselines."""

from .boosting import GradientBoostingRegressor
from .factorization import FeatureALS
from .tree import RegressionTree

__all__ = [
    "FeatureALS",
    "GradientBoostingRegressor",
    "RegressionTree",
]
