"""Small ML substrate (trees, boosting, matrix factorization, knob
importance) built from scratch for the reimplemented baselines and the
FIST-style space pruning pass."""

from .boosting import GradientBoostingRegressor
from .factorization import FeatureALS
from .importance import (
    ImportanceReport,
    PrunedSpace,
    knob_importance,
    prune_space,
)
from .tree import RegressionTree

__all__ = [
    "FeatureALS",
    "GradientBoostingRegressor",
    "ImportanceReport",
    "PrunedSpace",
    "RegressionTree",
    "knob_importance",
    "prune_space",
]
