"""Multi-tenant tuning service over the ask/tell core.

:class:`TuningService` holds many concurrent
:class:`~repro.core.session.TuningSession`\\ s, each with its own trace
recorder, fault accounting and per-session evaluation budget.  Every
state-changing request (create/ask/tell/stop) is followed by an atomic
snapshot through the :class:`~repro.service.store.SessionStore`, so a
killed server restarts exactly where it stopped: on construction the
service reloads every stored snapshot, rebuilds the sessions by
calibration-log replay, and re-attaches their append-mode trace files.
A client that retries its last ``ask`` after a server restart continues
the run with output bit-identical to an uninterrupted session.

:class:`TuningServiceHTTP` exposes the service over stdlib HTTP
(``ThreadingHTTPServer``; one JSON body per request, no external
dependencies)::

    POST   /sessions                 create (config, pool, sources, ...)
    GET    /sessions                 list session statuses
    GET    /sessions/<id>            one session's status
    POST   /sessions/<id>/ask        -> {"pending": [...], "n_pool": ...}
    POST   /sessions/<id>/tell       report one evaluation or failure
    POST   /sessions/<id>/tell_batch report a whole batch in one request
    GET    /sessions/<id>/pool?from=N  refined pool rows from index N on
    POST   /sessions/<id>/stop       force wrap-up (golden verification)
    GET    /sessions/<id>/result     final TuningResult (409 until done)
    DELETE /sessions/<id>            drop session, snapshot and trace

The oracle stays on the *client*: the server never evaluates anything,
it only decides what should be evaluated next.  Clients forward the
trace events their oracle emits (tool evaluations, retries) with each
``tell`` so the server-side trace stays a complete, replayable record.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from ..core.config import PPATunerConfig
from ..core.session import EvaluationFailure, TuningSession
from ..obs.events import event_from_json
from ..obs.recorder import TraceRecorder
from ..obs.sinks import JsonlSink
from .store import SessionStore, validate_session_id

__all__ = ["TuningService", "TuningServiceHTTP", "serve"]

log = logging.getLogger(__name__)


class _Managed:
    """One hosted session plus its service-side bookkeeping."""

    def __init__(
        self,
        session: TuningSession,
        max_evaluations: int | None,
        traced: bool,
        sink: JsonlSink | None,
    ) -> None:
        self.session = session
        self.max_evaluations = max_evaluations
        self.traced = traced
        self.sink = sink
        self.lock = threading.RLock()

    def service_meta(self) -> dict:
        return {
            "max_evaluations": self.max_evaluations,
            "traced": self.traced,
        }


class TuningService:
    """Session manager: create, step, snapshot and resume sessions.

    Args:
        store: Snapshot persistence; defaults to a store rooted at
            ``root``.
        root: Store directory (used when ``store`` is omitted).

    All public methods are thread-safe; per-session operations
    serialize on a per-session lock, so concurrent sessions proceed
    in parallel.
    """

    def __init__(
        self,
        store: SessionStore | None = None,
        root: Path | str = ".cache/sessions",
    ) -> None:
        self.store = store if store is not None else SessionStore(root)
        self._sessions: dict[str, _Managed] = {}
        self._registry_lock = threading.Lock()
        self._recover()

    # ------------------------------------------------------------------
    # lifecycle

    def _recover(self) -> None:
        """Reload every stored snapshot (server restart)."""
        for sid in self.store.list_ids():
            loaded = self.store.load(sid)
            if loaded is None:
                continue
            snapshot, service_meta = loaded
            traced = bool(service_meta.get("traced"))
            sink = (
                JsonlSink(self.store.trace_path(sid)) if traced else None
            )
            recorder = TraceRecorder(sinks=[sink]) if sink else None
            try:
                session = TuningSession.restore(
                    snapshot, recorder=recorder
                )
            except ValueError as exc:
                log.warning(
                    "session %s unrecoverable (%s); dropping", sid, exc
                )
                self.store.delete(sid)
                continue
            self._sessions[sid] = _Managed(
                session,
                service_meta.get("max_evaluations"),
                traced,
                sink,
            )
            log.info(
                "recovered session %s (phase=%s, t=%d)",
                sid, session.phase, session.iteration,
            )

    def create_session(self, payload: dict) -> dict:
        """Create (and snapshot) a new session from a JSON payload.

        Payload keys: ``session_id`` (optional; generated otherwise),
        ``config`` (a :meth:`PPATunerConfig.to_json` dict), ``X_pool``,
        ``n_objectives``, optional ``X_source``/``Y_source`` or
        ``sources``, ``init_indices``, ``max_evaluations`` (loop-phase
        tool-run budget), ``warm_start`` (``"random"``/``"copula"``;
        overrides the config so a cold-starting client can request
        copula-seeded initialization without rebuilding its config) and
        ``trace`` (record a server-side JSONL trace).

        Returns:
            ``{"session_id": ..., "status": {...}}``.
        """
        sid = payload.get("session_id")
        if sid is None:
            with self._registry_lock:
                sid = f"session-{len(self._sessions):04d}"
                while sid in self._sessions:
                    sid = f"session-{int(sid.rsplit('-', 1)[1]) + 1:04d}"
        validate_session_id(sid)
        with self._registry_lock:
            if sid in self._sessions:
                raise ValueError(f"session {sid!r} already exists")

        cfg_payload = payload.get("config") or {}
        config = (
            cfg_payload if isinstance(cfg_payload, PPATunerConfig)
            else PPATunerConfig.from_json(cfg_payload)
        )
        warm_start = payload.get("warm_start")
        if warm_start is not None:
            config = dataclasses.replace(
                config, warm_start=str(warm_start)
            )
        X_pool = np.asarray(payload["X_pool"], dtype=float)
        n_objectives = int(payload["n_objectives"])
        sources = payload.get("sources")
        if sources is not None:
            sources = [
                (
                    np.asarray(Xs, dtype=float),
                    np.asarray(Ys, dtype=float),
                )
                for Xs, Ys in sources
            ]
        X_source = payload.get("X_source")
        Y_source = payload.get("Y_source")
        init_indices = payload.get("init_indices")
        traced = bool(payload.get("trace"))
        sink = JsonlSink(self.store.trace_path(sid)) if traced else None
        recorder = TraceRecorder(sinks=[sink]) if sink else None
        session = TuningSession(
            config,
            X_pool,
            n_objectives,
            X_source=(
                np.asarray(X_source, dtype=float)
                if X_source is not None else None
            ),
            Y_source=(
                np.asarray(Y_source, dtype=float)
                if Y_source is not None else None
            ),
            sources=sources,
            init_indices=(
                np.asarray(init_indices, dtype=int)
                if init_indices is not None else None
            ),
            recorder=recorder,
        )
        budget = payload.get("max_evaluations")
        managed = _Managed(
            session,
            None if budget is None else int(budget),
            traced,
            sink,
        )
        with self._registry_lock:
            if sid in self._sessions:
                raise ValueError(f"session {sid!r} already exists")
            self._sessions[sid] = managed
        self._persist(sid, managed)
        return {"session_id": sid, "status": session.status()}

    def _managed(self, session_id: str) -> _Managed:
        with self._registry_lock:
            managed = self._sessions.get(session_id)
        if managed is None:
            raise KeyError(f"unknown session {session_id!r}")
        return managed

    def _persist(self, session_id: str, managed: _Managed) -> None:
        self.store.save(
            session_id, managed.session.snapshot(),
            managed.service_meta(),
        )

    # ------------------------------------------------------------------
    # session operations

    def ask(self, session_id: str) -> dict:
        """Advance a session and return its pending candidates.

        Enforces the per-session evaluation budget: once the loop-phase
        tool-run count reaches ``max_evaluations``, the session is
        stopped (``budget_exhausted``) and wraps up through golden
        verification.
        """
        managed = self._managed(session_id)
        with managed.lock:
            session = managed.session
            if (
                managed.max_evaluations is not None
                and not session.done
                and session.phase in ("init", "loop")
                and session.n_evaluations >= managed.max_evaluations
            ):
                session.stop("budget_exhausted")
            pending = session.ask()
            self._persist(session_id, managed)
            return {
                "pending": pending,
                "done": session.done,
                # Pool size rides along so batch clients notice
                # refinement growth and fetch the new rows (see
                # :meth:`pool`) before evaluating.
                "n_pool": int(session.n),
                "status": session.status(),
            }

    def tell(self, session_id: str, payload: dict) -> dict:
        """Feed one evaluation outcome (or failure) into a session.

        Payload keys: ``index``, exactly one of ``values`` /
        ``failure`` (an :meth:`EvaluationFailure.to_json` dict),
        optional ``n_evaluations`` (the client oracle's authoritative
        count) and ``events`` (trace events the client oracle emitted
        for this evaluation, re-emitted into the server-side trace so
        it stays complete and replayable).
        """
        managed = self._managed(session_id)
        with managed.lock:
            session = managed.session
            recorder = session.recorder
            if recorder:
                for event in payload.get("events") or []:
                    recorder.emit(event_from_json(event))
            failure = payload.get("failure")
            values = payload.get("values")
            session.tell(
                int(payload["index"]),
                values=(
                    np.asarray(values, dtype=float)
                    if values is not None else None
                ),
                failure=(
                    EvaluationFailure.from_json(failure)
                    if failure is not None else None
                ),
                n_evaluations=payload.get("n_evaluations"),
            )
            self._persist(session_id, managed)
            return {"status": session.status()}

    def tell_batch(self, session_id: str, payload: dict) -> dict:
        """Feed several evaluation outcomes under one session lock.

        Payload: ``{"tells": [<tell payload>, ...]}`` — each entry has
        the same shape :meth:`tell` accepts.  Outcomes may arrive in any
        order within a pending batch; the session buffers out-of-order
        members and applies everything in ask order.  One snapshot is
        written after the whole batch, so a crash between members can
        lose at most one batch of tells (the client's next ask re-issues
        the still-pending candidates).
        """
        managed = self._managed(session_id)
        tells = payload.get("tells") or []
        with managed.lock:
            session = managed.session
            recorder = session.recorder
            for entry in tells:
                if recorder:
                    for event in entry.get("events") or []:
                        recorder.emit(event_from_json(event))
                failure = entry.get("failure")
                values = entry.get("values")
                session.tell(
                    int(entry["index"]),
                    values=(
                        np.asarray(values, dtype=float)
                        if values is not None else None
                    ),
                    failure=(
                        EvaluationFailure.from_json(failure)
                        if failure is not None else None
                    ),
                    n_evaluations=entry.get("n_evaluations"),
                )
            self._persist(session_id, managed)
            return {"told": len(tells), "status": session.status()}

    def pool(self, session_id: str, start: int = 0) -> dict:
        """Candidate-pool rows from index ``start`` on.

        Batch clients call this when an ask reply's ``n_pool`` exceeds
        the pool size they know, then extend their local oracle with
        the returned rows (refined candidates are *new* configurations
        the client has never seen).
        """
        managed = self._managed(session_id)
        with managed.lock:
            session = managed.session
            start = int(start)
            if not 0 <= start <= session.n:
                raise ValueError(
                    f"start {start} outside pool [0, {session.n}]"
                )
            return {
                "n_pool": int(session.n),
                "start": start,
                "X_pool": session.X_pool[start:].tolist(),
            }

    def stop(self, session_id: str, reason: str = "stopped") -> dict:
        """Force a session to wrap up through golden verification."""
        managed = self._managed(session_id)
        with managed.lock:
            managed.session.stop(reason)
            self._persist(session_id, managed)
            return {"status": managed.session.status()}

    def status(self, session_id: str) -> dict:
        """One session's progress digest."""
        managed = self._managed(session_id)
        with managed.lock:
            return managed.session.status()

    def result(self, session_id: str) -> dict:
        """A finished session's :meth:`TuningResult.to_json` dict.

        Raises:
            RuntimeError: While the session is still running.
        """
        managed = self._managed(session_id)
        with managed.lock:
            return managed.session.result().to_json()

    def delete(self, session_id: str) -> None:
        """Drop a session with its snapshot and trace."""
        with self._registry_lock:
            managed = self._sessions.pop(session_id, None)
        if managed is None:
            raise KeyError(f"unknown session {session_id!r}")
        with managed.lock:
            if managed.sink is not None:
                managed.sink.close()
            self.store.delete(session_id)

    def sessions(self) -> list[dict]:
        """Status digests of every hosted session."""
        with self._registry_lock:
            items = sorted(self._sessions.items())
        out = []
        for sid, managed in items:
            with managed.lock:
                status = managed.session.status()
            status["session_id"] = sid
            out.append(status)
        return out


class _Handler(BaseHTTPRequestHandler):
    """JSON-over-HTTP routing onto the owning :class:`TuningService`."""

    server_version = "repro-tuning-service/1"
    protocol_version = "HTTP/1.1"

    # Set by TuningServiceHTTP.
    service: TuningService = None  # type: ignore[assignment]

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        log.debug("%s - %s", self.address_string(), format % args)

    # -- helpers -------------------------------------------------------

    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        return json.loads(raw.decode("utf-8"))

    def _reply(self, code: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _route(self) -> tuple[str | None, str | None]:
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if not parts or parts[0] != "sessions":
            return None, None
        sid = parts[1] if len(parts) > 1 else None
        action = parts[2] if len(parts) > 2 else None
        if len(parts) > 3:
            return None, None
        return sid, action

    def _dispatch(self, method: str) -> None:
        sid, action = self._route()
        service = self.service
        try:
            if method == "POST" and sid is None and action is None:
                if "sessions" not in self.path:
                    raise KeyError(self.path)
                self._reply(201, service.create_session(self._body()))
            elif method == "GET" and sid is None:
                self._reply(200, {"sessions": service.sessions()})
            elif sid is None:
                raise KeyError(self.path)
            elif method == "GET" and action is None:
                self._reply(200, service.status(sid))
            elif method == "GET" and action == "result":
                self._reply(200, service.result(sid))
            elif method == "POST" and action == "ask":
                self._reply(200, service.ask(sid))
            elif method == "POST" and action == "tell":
                self._reply(200, service.tell(sid, self._body()))
            elif method == "POST" and action == "tell_batch":
                self._reply(200, service.tell_batch(sid, self._body()))
            elif method == "GET" and action == "pool":
                query = self.path.split("?", 1)
                start = 0
                if len(query) > 1:
                    for pair in query[1].split("&"):
                        if pair.startswith("from="):
                            start = int(pair.split("=", 1)[1])
                self._reply(200, service.pool(sid, start))
            elif method == "POST" and action == "stop":
                body = self._body()
                self._reply(
                    200, service.stop(sid, body.get("reason", "stopped"))
                )
            elif method == "DELETE" and action is None:
                service.delete(sid)
                self._reply(200, {"deleted": sid})
            else:
                raise KeyError(self.path)
        except KeyError as exc:
            self._reply(404, {"error": f"not found: {exc}"})
        except (ValueError, json.JSONDecodeError) as exc:
            self._reply(400, {"error": str(exc)})
        except RuntimeError as exc:
            self._reply(409, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            log.exception("unhandled service error")
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


class TuningServiceHTTP:
    """The tuning service bound to a listening HTTP server.

    Example:
        >>> svc = TuningServiceHTTP(root=tmp, port=0)   # doctest: +SKIP
        >>> svc.start()                                 # doctest: +SKIP
        >>> svc.url                                     # doctest: +SKIP
        'http://127.0.0.1:49152'
    """

    def __init__(
        self,
        root: Path | str = ".cache/sessions",
        host: str = "127.0.0.1",
        port: int = 0,
        service: TuningService | None = None,
    ) -> None:
        self.service = (
            service if service is not None else TuningService(root=root)
        )
        handler = type("BoundHandler", (_Handler,), {
            "service": self.service,
        })
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self.httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        """Base URL of the bound listener."""
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "TuningServiceHTTP":
        """Serve on a daemon thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted."""
        self.httpd.serve_forever()

    def shutdown(self) -> None:
        """Stop serving and release the socket."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None


def serve(
    root: Path | str = ".cache/sessions",
    host: str = "127.0.0.1",
    port: int = 8763,
) -> TuningServiceHTTP:
    """Build a bound (not yet serving) tuning service.

    Call :meth:`TuningServiceHTTP.serve_forever` to block or
    :meth:`TuningServiceHTTP.start` for a background thread.
    """
    return TuningServiceHTTP(root=root, host=host, port=port)
