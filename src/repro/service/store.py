"""Atomic on-disk persistence of tuning-session snapshots.

One ``.npz`` per session under the store root, written with the
``RunMemo`` crash-safety playbook (same-directory temp file + fsync +
``os.replace`` atomic rename, directory fsync) so a ``kill -9`` at any
instant leaves either the previous complete snapshot or the new one,
never a torn file.  Loading is self-healing: a torn, garbage or
version-skewed snapshot is deleted and ``None`` returned — the service
then reports the session lost instead of serving corrupt state (the
session's own trace remains on disk for forensics).

Layout::

    <root>/
        <session_id>.snapshot.npz   arrays + __meta__/__service__ JSON
        <session_id>.trace.jsonl    per-session event trace (optional)
"""

from __future__ import annotations

import contextlib
import json
import logging
import os
import re
import tempfile
import zipfile
import zlib
from pathlib import Path

import numpy as np

__all__ = ["SessionStore", "validate_session_id"]

log = logging.getLogger(__name__)

#: Prefix of in-flight atomic-write temp files.
_TMP_PREFIX = ".tmp-"

_SNAPSHOT_SUFFIX = ".snapshot.npz"
_TRACE_SUFFIX = ".trace.jsonl"

#: Exceptions a damaged ``.npz`` can raise on load.
_LOAD_ERRORS = (
    zipfile.BadZipFile,
    zlib.error,
    ValueError,
    KeyError,
    EOFError,
    OSError,
    json.JSONDecodeError,
    UnicodeDecodeError,
)

_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def validate_session_id(session_id: str) -> str:
    """Reject ids that could escape the store directory.

    Returns:
        The id unchanged when well-formed.

    Raises:
        ValueError: On empty, over-long or path-unsafe ids.
    """
    if not isinstance(session_id, str) or not _ID_RE.match(session_id):
        raise ValueError(
            "session id must be 1-64 chars of [A-Za-z0-9._-], "
            "starting alphanumeric"
        )
    return session_id


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


class SessionStore:
    """Snapshot store for :class:`~repro.core.session.TuningSession`.

    Args:
        root: Store directory (created on first save).
    """

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)

    def snapshot_path(self, session_id: str) -> Path:
        """Snapshot file path for one session."""
        return self.root / f"{validate_session_id(session_id)}" \
            f"{_SNAPSHOT_SUFFIX}"

    def trace_path(self, session_id: str) -> Path:
        """Trace file path for one session (exists only when traced)."""
        return self.root / f"{validate_session_id(session_id)}" \
            f"{_TRACE_SUFFIX}"

    def save(
        self,
        session_id: str,
        snapshot: dict,
        service_meta: dict | None = None,
    ) -> Path:
        """Atomically persist one session snapshot.

        Args:
            session_id: The session's id (also the file stem).
            snapshot: ``{"meta": ..., "arrays": ...}`` from
                :meth:`TuningSession.snapshot`.
            service_meta: Service-side sidecar (budget, trace flag, …)
                stored alongside, outside the session's fingerprint.
        """
        arrays = dict(snapshot["arrays"])
        arrays["__meta__"] = np.frombuffer(
            json.dumps(snapshot["meta"], sort_keys=True).encode("utf-8"),
            dtype=np.uint8,
        )
        arrays["__service__"] = np.frombuffer(
            json.dumps(service_meta or {}, sort_keys=True).encode("utf-8"),
            dtype=np.uint8,
        )
        self.root.mkdir(parents=True, exist_ok=True)
        target = self.snapshot_path(session_id)
        fd, tmp = tempfile.mkstemp(
            prefix=_TMP_PREFIX, suffix=".npz", dir=self.root
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez_compressed(fh, **arrays)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, target)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise
        _fsync_dir(self.root)
        return target

    def load(self, session_id: str) -> tuple[dict, dict] | None:
        """Load one snapshot, or ``None``.

        A torn or garbage file is deleted (self-healing) and ``None``
        returned; corruption never raises.

        Returns:
            ``(snapshot, service_meta)`` or ``None``.
        """
        path = self.snapshot_path(session_id)
        if not path.exists():
            return None
        try:
            if not zipfile.is_zipfile(path):
                raise zipfile.BadZipFile("not a zip archive")
            with np.load(path, allow_pickle=False) as data:
                if "__meta__" not in data.files:
                    raise KeyError("missing __meta__")
                meta = json.loads(bytes(data["__meta__"]).decode("utf-8"))
                service_meta = (
                    json.loads(bytes(data["__service__"]).decode("utf-8"))
                    if "__service__" in data.files else {}
                )
                arrays = {
                    k: data[k] for k in data.files
                    if k not in ("__meta__", "__service__")
                }
        except _LOAD_ERRORS as exc:
            log.warning(
                "session snapshot %s is unusable (%s: %s); dropping",
                path, type(exc).__name__, exc,
            )
            with contextlib.suppress(OSError):
                path.unlink()
            return None
        return {"meta": meta, "arrays": arrays}, service_meta

    def delete(self, session_id: str) -> None:
        """Remove a session's snapshot and trace."""
        for path in (
            self.snapshot_path(session_id), self.trace_path(session_id)
        ):
            with contextlib.suppress(OSError):
                path.unlink()

    def list_ids(self) -> list[str]:
        """Ids of every stored snapshot (sorted)."""
        if not self.root.is_dir():
            return []
        return sorted(
            p.name[: -len(_SNAPSHOT_SUFFIX)]
            for p in self.root.glob(f"*{_SNAPSHOT_SUFFIX}")
            if not p.name.startswith(_TMP_PREFIX)
        )
